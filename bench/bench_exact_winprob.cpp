// E12 — exact vs simulated win probability (asymptotics-free validation).
//
// For small populations the k-opinion USD chain is solved exactly (dense
// linear algebra, no sampling), giving the ground-truth plurality win
// probability as a function of the initial bias. The Monte-Carlo column
// must match within sampling error — this is the strongest correctness
// check of the whole simulator stack, and the exact curve is the finite-n
// version of the Theorem 2 threshold picture.
#include <cmath>
#include <vector>

#include "analysis/usd_exact.hpp"
#include "bench_common.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"

using namespace kusd;

int main() {
  bench::banner("E12", "Theorem 2 at exact finite scale",
                "Exact plurality win probability (linear-algebra solution "
                "of the chain) vs Monte Carlo, k = 3, n = 18.");

  const pp::Count n = 18;
  const int k = 3;
  const int trials = runner::scaled_trials(20000);
  analysis::UsdExactSolver solver(n, k);
  runner::Table table({"start (x1,x2,x3)", "bias", "P[win] exact",
                       "P[win] MC", "E[T] exact", "E[T] MC"});
  runner::CsvWriter csv("bench_exact_winprob.csv",
                        {"x1", "x2", "x3", "exact_win", "mc_win"});

  const std::vector<std::vector<pp::Count>> starts{
      {6, 6, 6}, {7, 6, 5}, {8, 5, 5}, {9, 5, 4}, {10, 4, 4}, {12, 3, 3}};
  for (const auto& start : starts) {
    const double exact_win = solver.win_probability(start, 0);
    const double exact_time = solver.expected_consensus_time(start);

    const pp::Configuration x0(start, 0);
    struct Row {
      double time = 0.0;
      int won = 0;
    };
    const auto rows = runner::run_trials<Row>(
        trials, 0xE12000 + start[0],
        [&x0](std::uint64_t seed) {
          core::UsdSimulator sim(x0, rng::Rng(seed));
          sim.run_to_consensus(100'000'000);
          return Row{static_cast<double>(sim.interactions()),
                     sim.consensus_opinion() == 0 ? 1 : 0};
        });
    double time_total = 0.0;
    int wins = 0;
    for (const auto& row : rows) {
      time_total += row.time;
      wins += row.won;
    }
    const auto bias = start[0] - start[1];
    table.add_row({std::to_string(start[0]) + "," +
                       std::to_string(start[1]) + "," +
                       std::to_string(start[2]),
                   std::to_string(bias), runner::fmt(exact_win, 4),
                   runner::fmt(static_cast<double>(wins) / trials, 4),
                   runner::fmt(exact_time, 1),
                   runner::fmt(time_total / trials, 1)});
    csv.write_row({std::to_string(start[0]), std::to_string(start[1]),
                   std::to_string(start[2]), runner::fmt(exact_win, 5),
                   runner::fmt(static_cast<double>(wins) / trials, 5)});
  }
  table.print();
  std::printf("\nexact and MC columns must agree to ~3 decimal places; the\n"
              "win probability rises with bias exactly as the Theorem 2\n"
              "threshold predicts in the large-n limit.\n");
  std::printf("wrote bench_exact_winprob.csv\n");
  return 0;
}
