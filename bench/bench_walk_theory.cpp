// E11 — Appendix A foundations: the closed-form random-walk results the
// phase analysis is built on, printed next to Monte-Carlo estimates.
//
//   * Lemma 20 (gambler's ruin): win probability and expected duration;
//   * Lemma 18 (reflecting walk): stationary tail (p/q)^m;
//   * Lemma 19 (excess failures): ((1-p)/p)^b;
//   * Lemma 21 (two-level walk): absorption in O(log n) steps.
#include <cmath>
#include <vector>

#include "analysis/random_walk.hpp"
#include "bench_common.hpp"
#include "rng/rng.hpp"
#include "runner/table.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

using namespace kusd;

int main() {
  bench::banner("E11", "Appendix A (Lemmas 18-21)",
                "Closed forms vs Monte Carlo for the walk primitives used "
                "by every phase lemma.");

  const int trials = runner::scaled_trials(20000);

  {
    runner::Table table({"p", "a", "b", "win prob (exact)", "win prob (MC)",
                         "E[duration] (exact)", "E[duration] (MC)"});
    struct Case {
      double p = 0.0;
      std::uint64_t a = 0, b = 0;
    };
    for (const auto& c :
         {Case{0.5, 5, 10}, Case{0.5, 2, 20}, Case{0.55, 4, 16},
          Case{0.6, 3, 12}, Case{0.45, 8, 16}}) {
      rng::Rng r(0xE1100 + static_cast<std::uint64_t>(c.p * 100) + c.a);
      int wins = 0;
      double steps_total = 0.0;
      for (int t = 0; t < trials; ++t) {
        std::uint64_t steps = 0;
        wins += analysis::simulate_gamblers_ruin(c.p, c.a, c.b, r, &steps)
                    ? 1
                    : 0;
        steps_total += static_cast<double>(steps);
      }
      table.add_row(
          {runner::fmt(c.p, 2), std::to_string(c.a), std::to_string(c.b),
           runner::fmt(analysis::gamblers_win_prob(c.p, c.a, c.b), 4),
           runner::fmt(static_cast<double>(wins) / trials, 4),
           runner::fmt(analysis::gamblers_expected_duration(c.p, c.a, c.b),
                       1),
           runner::fmt(steps_total / trials, 1)});
    }
    std::printf("Lemma 20 — gambler's ruin:\n");
    table.print();
  }

  {
    runner::Table table({"m", "tail bound (p/q)^m", "MC freq of max >= m"});
    const double p = 0.3, q = 0.5;
    const std::uint64_t horizon = 3000;
    rng::Rng r(0xE1101);
    const int walk_trials = trials / 4;
    std::vector<int> exceed(15, 0);
    for (int t = 0; t < walk_trials; ++t) {
      const auto peak =
          analysis::simulate_reflecting_max(p, q, horizon, r);
      for (std::uint64_t m = 0; m < 15; ++m) {
        if (peak >= m) ++exceed[m];
      }
    }
    for (std::uint64_t m : {4ull, 8ull, 12ull}) {
      table.add_row(
          {std::to_string(m),
           runner::fmt(analysis::reflecting_tail(p, q, m), 5),
           runner::fmt(static_cast<double>(exceed[m]) / walk_trials, 5)});
    }
    std::printf("\nLemma 18 — reflecting-walk tail (p=0.3, q=0.5; the MC "
                "column shows the horizon-limited hit rate, upper-bounded "
                "by horizon * tail):\n");
    table.print();
  }

  {
    runner::Table table({"levels", "mean steps to absorb", "log2 levels"});
    rng::Rng r(0xE1102);
    for (std::uint64_t levels : {3ull, 4ull, 5ull, 6ull}) {
      stats::Samples steps;
      for (int t = 0; t < trials / 10; ++t) {
        steps.add(static_cast<double>(analysis::simulate_two_level_walk(
            0.5, levels, 10'000'000, r)));
      }
      table.add_row({std::to_string(levels), runner::fmt(steps.mean(), 1),
                     runner::fmt(std::log2(static_cast<double>(levels)), 2)});
    }
    std::printf("\nLemma 21 — two-level walk (absorption stays O(1)-ish in "
                "the level count, the engine of Phase 2's bias growth):\n");
    table.print();
  }
  return 0;
}
