// Shared helpers for the bench binaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "runner/scale.hpp"
#include "runner/table.hpp"
#include "util/stopwatch.hpp"

namespace kusd::bench {

/// Min-of-`reps` wall-clock estimator: run the identical deterministic
/// `body` `reps` times and keep the fastest. On the 1-core dev container
/// a single shot can be off by 50% from scheduler interference; the
/// minimum over repetitions estimates the true cost (the standard bench
/// methodology here — see README "Bench methodology").
template <typename Body>
[[nodiscard]] double min_seconds_over(int reps, Body&& body) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    body();
    best = std::min(best, watch.seconds());
  }
  return best;
}

/// The per-trial seed batch every many-trial bench derives the same way:
/// seeds[t] = rng::stream_seed(base, t).
[[nodiscard]] inline std::vector<std::uint64_t> stream_seeds(
    std::uint64_t base, std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t t = 0; t < count; ++t) {
    seeds[t] = rng::stream_seed(base, static_cast<std::uint64_t>(t));
  }
  return seeds;
}

/// Minimal machine-readable result emitter: accumulates an ordered flat
/// JSON object and writes it to `path` (the BENCH_*.json convention — see
/// README "Bench methodology"). Values are emitted verbatim, so callers
/// pass numbers as numbers and pre-quoted strings via add_string.
class JsonResult {
 public:
  void add(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    fields_.emplace_back(key, os.str());
  }
  void add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add_bool(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void add_string(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }

  /// Write `{ "k": v, ... }` to `path`; returns false (with a stderr note)
  /// on I/O failure so benches can exit non-zero instead of advertising a
  /// missing artifact.
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    const bool ok = std::fclose(f) == 0;
    if (!ok) std::fprintf(stderr, "error writing %s\n", path.c_str());
    return ok;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Print the standard experiment banner (id, paper artifact, scale knob).
inline void banner(const char* experiment_id, const char* artifact,
                   const char* claim) {
  std::printf("=== %s — %s ===\n", experiment_id, artifact);
  std::printf("%s\n", claim);
  std::printf("(REPRO_SCALE=%.2f; set REPRO_SCALE to rescale sizes/trials)\n\n",
              runner::repro_scale());
}

/// n log n with natural log, as a double.
inline double n_log_n(pp::Count n) {
  const double dn = static_cast<double>(n);
  return dn * std::log(dn);
}

/// The paper's additive-bias magnitude c * sqrt(n log n).
inline pp::Count additive_beta(pp::Count n, double c) {
  return static_cast<pp::Count>(c * std::sqrt(n_log_n(n)));
}

}  // namespace kusd::bench
