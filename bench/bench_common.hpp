// Shared helpers for the bench binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "pp/configuration.hpp"
#include "runner/scale.hpp"
#include "runner/table.hpp"

namespace kusd::bench {

/// Print the standard experiment banner (id, paper artifact, scale knob).
inline void banner(const char* experiment_id, const char* artifact,
                   const char* claim) {
  std::printf("=== %s — %s ===\n", experiment_id, artifact);
  std::printf("%s\n", claim);
  std::printf("(REPRO_SCALE=%.2f; set REPRO_SCALE to rescale sizes/trials)\n\n",
              runner::repro_scale());
}

/// n log n with natural log, as a double.
inline double n_log_n(pp::Count n) {
  const double dn = static_cast<double>(n);
  return dn * std::log(dn);
}

/// The paper's additive-bias magnitude c * sqrt(n log n).
inline pp::Count additive_beta(pp::Count n, double c) {
  return static_cast<pp::Count>(c * std::sqrt(n_log_n(n)));
}

}  // namespace kusd::bench
