// E16 — dedicated T1-T5 phase-length study at n >= 1e8 on the
// boundary-exact batched observer.
//
// bench_phases measures the phase table at per-interaction scales
// (n <= ~1e5). This bench is the large-n companion the instrument was
// built for: the batched engine with the adaptive chunk controller,
// observed through run_observed's boundary-clamped snapshots so every
// T1..T5 milestone lands exactly on an observation-interval multiple
// (never a chunk late). At full scale (REPRO_SCALE=1) it runs n = 1e8;
// REPRO_SCALE shrinks it for CI smoke runs. Results go to
// BENCH_phases.json (uploaded by CI next to the other bench artifacts).
//
// Shape checks mirrored from the paper (Section 2.1): phases complete in
// order, P1/P5 are ~n log n (independent of k), P2+P3 carry the k factor.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runner/run.hpp"
#include "runner/scale.hpp"
#include "runner/table.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct PhaseRow {
  double len[5] = {0, 0, 0, 0, 0};
  double parallel_time = 0.0;
  bool ok = false;
};

PhaseRow measure(pp::Count n, int k, std::uint64_t seed) {
  const auto x0 = pp::Configuration::uniform(n, k, 0);
  runner::RunOptions opts;
  opts.engine = "batched";
  opts.batch.policy = core::ChunkPolicy::kAdaptive;
  // 64 snapshots per n of parallel time: far below phase lengths, and the
  // batched observer clamps chunks so milestones are boundary-exact.
  opts.observe_interval = std::max<pp::Count>(1, n / 64);
  const auto r = runner::run_usd(x0, seed, opts);
  PhaseRow row;
  if (!r.converged || !r.phases.complete()) return row;
  row.ok = true;
  row.parallel_time = r.parallel_time;
  for (int p = 1; p <= 5; ++p) {
    row.len[p - 1] = static_cast<double>(*r.phases.phase_length(p));
  }
  return row;
}

}  // namespace

int main() {
  bench::banner("E16", "T1-T5 phase lengths at n >= 1e8 (batched observer)",
                "Per-phase interactions for unbiased starts at bench scale; "
                "boundary-exact batched observation, adaptive chunks.");

  const pp::Count n = runner::scaled(100'000'000);
  const std::vector<int> ks{8, 32};
  const int trials = runner::scaled_trials(6);

  runner::Table table({"k", "P1 (rise)", "P2 (add.bias)", "P3 (mult.bias)",
                       "P4 (majority)", "P5 (consensus)", "total/n",
                       "complete"});
  bench::JsonResult json;
  json.add_string("bench", "bench_phase_lengths");
  json.add("repro_scale", runner::repro_scale());
  json.add("n", static_cast<std::uint64_t>(n));
  json.add("trials", trials);

  bool all_complete = true;
  for (const int k : ks) {
    const auto rows = runner::run_trials<PhaseRow>(
        trials, 0xE16000 + static_cast<std::uint64_t>(k),
        [n, k](std::uint64_t seed) { return measure(n, k, seed); });
    stats::Samples phase[5];
    int ok = 0;
    double parallel_total = 0.0;
    for (const auto& row : rows) {
      if (!row.ok) continue;
      ++ok;
      parallel_total += row.parallel_time;
      for (int i = 0; i < 5; ++i) phase[i].add(row.len[i]);
    }
    all_complete = all_complete && ok == trials;
    const std::string prefix = "k" + std::to_string(k) + "_";
    json.add(prefix + "complete_trials", ok);
    if (ok == 0) {
      table.add_row({std::to_string(k), "-", "-", "-", "-", "-", "-", "0"});
      continue;
    }
    double total = 0.0;
    for (int i = 0; i < 5; ++i) {
      total += phase[i].mean();
      json.add(prefix + "p" + std::to_string(i + 1) + "_mean",
               phase[i].mean());
    }
    json.add(prefix + "parallel_time_mean",
             parallel_total / static_cast<double>(ok));
    json.add(prefix + "total_over_k_n_ln_n",
             total / (static_cast<double>(k) * bench::n_log_n(n)));
    table.add_row({std::to_string(k), runner::fmt_compact(phase[0].mean()),
                   runner::fmt_compact(phase[1].mean()),
                   runner::fmt_compact(phase[2].mean()),
                   runner::fmt_compact(phase[3].mean()),
                   runner::fmt_compact(phase[4].mean()),
                   runner::fmt(total / static_cast<double>(n), 1),
                   std::to_string(ok) + "/" + std::to_string(trials)});
  }
  table.print();

  json.add_bool("all_trials_complete", all_complete);
  const bool json_ok = json.write("BENCH_phases.json");
  std::printf("\nwrote BENCH_phases.json\n");
  // Incomplete phases at bench scale mean the instrument regressed; fail
  // loudly so the bench-smoke CI lane notices.
  return (all_complete && json_ok) ? 0 : 1;
}
