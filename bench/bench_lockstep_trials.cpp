// E18 — lockstep many-trial kernel: trial batches through one SoA engine.
//
// The adaptive batched engine (E10) spends ~0.018 s per trial at
// n = 10^8, k = 32 — almost all of it per-draw dispatch overhead, since
// a whole trial is only a few thousand binomial draws. The lockstep
// kernel amortizes that overhead across a trial batch: one weight pass
// and one batched-binomial call per event family per chunk, with
// finished trials masked out of the active set.
//
//  1. Trial throughput at n = 10^8, k = 32 (adaptive chunks): seconds
//     per trial, lockstep vs the scalar engine run trial-by-trial in
//     this process, and vs the checked-in E10 baseline. Target >= 5x
//     over the baseline's 0.0181585 s/trial.
//  2. Bit-identity audit: every lockstep trial must equal the scalar
//     engine under the same seed (interactions, chunk count, winner).
//  3. KS fidelity at property-test scale: lockstep consensus times vs
//     the exact asynchronous chain, alpha = 0.001.
//
// Results land in BENCH_lockstep.json. Wall-clock numbers here are
// single-threaded by construction (the kernel batches draws, it does
// not spawn threads), so the speedup is algorithmic and holds on a
// 1-core container.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "core/batched_usd.hpp"
#include "core/lockstep_usd.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/stopwatch.hpp"

using namespace kusd;

namespace {

constexpr std::uint64_t kNoCap = ~std::uint64_t{0};
// BENCH_adaptive.json (E10, repro_scale 1): adaptive full convergence at
// n = 1e8, k = 32 with the former std::binomial_distribution sampler.
constexpr double kBaselineSecondsPerTrial = 0.0181585;

std::vector<double> exact_times(const pp::Configuration& x0, int trials,
                                std::uint64_t seed_base) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    core::UsdSimulator sim(
        x0,
        rng::Rng(rng::stream_seed(seed_base, static_cast<std::uint64_t>(t))),
        core::UsdOptions{core::StepMode::kEveryInteraction});
    sim.run_to_consensus(kNoCap);
    out.push_back(static_cast<double>(sim.interactions()));
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E18", "lockstep many-trial kernel",
                "Structure-of-arrays tau-leaping: one batched-binomial "
                "draw per event family advances every unfinished trial "
                "at once, amortizing per-draw dispatch across the "
                "batch.");

  core::ChunkOptions adaptive;
  adaptive.policy = core::ChunkPolicy::kAdaptive;

  // ---- Part 1: trial throughput at n = 1e8, k = 32 ----
  bool bit_identical = true;
  double scalar_per_trial = 0.0, lockstep_per_trial = 0.0;
  const pp::Count n = runner::scaled(100'000'000);
  const int k = 32;
  const std::size_t trials = 10;
  {
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    const auto seeds = bench::stream_seeds(0xE18, trials);
    const int reps = 5;

    std::vector<std::uint64_t> scalar_interactions(trials),
        scalar_chunks(trials);
    std::vector<int> scalar_winner(trials);
    const double scalar_seconds = bench::min_seconds_over(reps, [&] {
      for (std::size_t t = 0; t < trials; ++t) {
        core::BatchedUsdSimulator sim(x0, rng::Rng(seeds[t]), adaptive);
        sim.run_to_consensus(kNoCap);
        scalar_interactions[t] = sim.interactions();
        scalar_chunks[t] = sim.chunks();
        scalar_winner[t] = sim.consensus_opinion();
      }
    });

    const double lockstep_seconds = bench::min_seconds_over(reps, [&] {
      core::LockstepRoundEngine kernel(x0, seeds, adaptive);
      kernel.advance_all(kNoCap);

      // ---- Part 2: bit-identity audit against the scalar runs ----
      for (std::size_t t = 0; t < trials; ++t) {
        bit_identical = bit_identical &&
                        kernel.interactions(t) == scalar_interactions[t] &&
                        kernel.chunks(t) == scalar_chunks[t] &&
                        kernel.is_consensus(t) &&
                        kernel.consensus_opinion(t) == scalar_winner[t];
      }
    });

    scalar_per_trial = scalar_seconds / static_cast<double>(trials);
    lockstep_per_trial = lockstep_seconds / static_cast<double>(trials);
    const double vs_scalar =
        scalar_per_trial / std::max(lockstep_per_trial, 1e-12);
    const double vs_baseline =
        kBaselineSecondsPerTrial / std::max(lockstep_per_trial, 1e-12);

    runner::Table table(
        {"engine", "trials", "seconds", "s/trial", "speedup"});
    table.add_row({"scalar loop", runner::fmt_int(trials),
                   runner::fmt(scalar_seconds, 4),
                   runner::fmt(scalar_per_trial, 5), "1.0"});
    table.add_row({"lockstep", runner::fmt_int(trials),
                   runner::fmt(lockstep_seconds, 4),
                   runner::fmt(lockstep_per_trial, 5),
                   runner::fmt(vs_scalar, 1)});
    table.print();
    std::printf("bit-identical to scalar engine: %s\n",
                bit_identical ? "yes" : "NO");
    std::printf("vs E10 baseline %.5f s/trial: %sx (>= 5x target: %s)\n\n",
                kBaselineSecondsPerTrial,
                runner::fmt(vs_baseline, 1).c_str(),
                vs_baseline >= 5.0 ? "yes" : "NO");
  }

  // ---- Part 3: KS fidelity at property-test scale ----
  const auto x_small = pp::Configuration::uniform(400, 3, 0);
  const int ks_trials = runner::scaled_trials(350, 60);
  const auto exact = exact_times(x_small, ks_trials, 0xE18B);
  const auto ks_seeds =
      bench::stream_seeds(0xE18C, static_cast<std::size_t>(ks_trials));
  core::LockstepRoundEngine small_kernel(x_small, ks_seeds,
                                         core::ChunkOptions{});
  small_kernel.advance_all(kNoCap);
  std::vector<double> lockstep_times;
  lockstep_times.reserve(ks_seeds.size());
  for (std::size_t t = 0; t < ks_seeds.size(); ++t) {
    lockstep_times.push_back(static_cast<double>(small_kernel.interactions(t)));
  }
  const double threshold =
      stats::ks_threshold(exact.size(), lockstep_times.size(), 0.001);
  const double ks = stats::ks_statistic(exact, lockstep_times);
  std::printf("KS vs exact chain at n=400 (threshold %.4f, %d trials): "
              "%.4f %s\n\n",
              threshold, ks_trials, ks, ks < threshold ? "pass" : "FAIL");

  const double vs_scalar =
      scalar_per_trial / std::max(lockstep_per_trial, 1e-12);
  const double vs_baseline =
      kBaselineSecondsPerTrial / std::max(lockstep_per_trial, 1e-12);
  bench::JsonResult json;
  json.add_string("bench", "bench_lockstep_trials/throughput");
  json.add("repro_scale", runner::repro_scale());
  json.add("n", static_cast<std::uint64_t>(n));
  json.add("k", k);
  json.add("trials", static_cast<std::uint64_t>(trials));
  json.add("scalar_seconds_per_trial", scalar_per_trial);
  json.add("lockstep_seconds_per_trial", lockstep_per_trial);
  json.add("speedup_vs_scalar", vs_scalar);
  json.add("baseline_seconds_per_trial", kBaselineSecondsPerTrial);
  json.add("speedup_vs_baseline", vs_baseline);
  json.add_bool("speedup_target_5x_met", vs_baseline >= 5.0);
  json.add_bool("bit_identical_to_scalar", bit_identical);
  json.add("ks_trials", ks_trials);
  json.add("ks_threshold", threshold);
  json.add("ks_lockstep_vs_exact", ks);
  json.add_bool("ks_pass", ks < threshold);
  const bool json_ok = json.write("BENCH_lockstep.json");
  std::printf("wrote BENCH_lockstep.json\n");
  return json_ok && bit_identical && ks < threshold ? 0 : 1;
}
