// E2 — Theorem 2(1): multiplicative bias.
//
// With an initial multiplicative bias of 1 + eps the USD reaches plurality
// consensus within O(n log n + n^2/x1(0)) = O(n log n + n k) interactions,
// and the initial plurality wins w.h.p. Shape checks:
//   * win rate ~ 1 across n and k;
//   * interactions grow linearly in k for fixed n (the n*k term dominates
//     once k >> log n);
//   * interactions / (n log n + n k) stays bounded by a constant.
#include <vector>

#include "bench_common.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct Outcome {
  double interactions = 0.0;
  bool plurality_won = false;
};

Outcome measure(const pp::Configuration& x0, std::uint64_t seed) {
  runner::RunOptions opts;
  opts.track_phases = false;
  const auto r = runner::run_usd(x0, seed, opts);
  return {static_cast<double>(r.interactions),
          r.converged && r.plurality_won};
}

}  // namespace

int main() {
  bench::banner("E2", "Theorem 2(1)",
                "Multiplicative bias 1+eps (eps=1): plurality consensus in "
                "O(n log n + n^2/x1(0)) = O(n log n + n k) interactions, "
                "plurality wins w.h.p. (requires k = O(sqrt(n)/log^2 n))");

  const int trials = runner::scaled_trials(12);
  runner::Table table({"n", "k", "mean interactions", "p95", "wins",
                       "T / (n ln n + n^2/x1)"});
  runner::CsvWriter csv("bench_theorem2_multiplicative.csv",
                        {"n", "k", "mean_interactions", "win_rate"});

  std::vector<double> ks_fit, t_fit;
  const pp::Count n_fix = runner::scaled(65536);
  for (int k : {2, 4, 8, 16, 32}) {
    const auto x0 =
        pp::Configuration::with_multiplicative_bias(n_fix, k, 0, 2.0);
    const auto rows = runner::run_trials<Outcome>(
        trials, 0xE2000 + static_cast<std::uint64_t>(k),
        [&x0](std::uint64_t seed) { return measure(x0, seed); });
    stats::Samples t;
    int wins = 0;
    for (const auto& row : rows) {
      t.add(row.interactions);
      wins += row.plurality_won ? 1 : 0;
    }
    const double bound =
        bench::n_log_n(n_fix) +
        static_cast<double>(n_fix) * static_cast<double>(n_fix) /
            static_cast<double>(x0.opinion(0));
    table.add_row({runner::fmt_int(n_fix), std::to_string(k),
                   runner::fmt_compact(t.mean()),
                   runner::fmt_compact(t.quantile(0.95)),
                   std::to_string(wins) + "/" + std::to_string(trials),
                   runner::fmt(t.mean() / bound, 3)});
    csv.write_row({std::to_string(n_fix), std::to_string(k),
                   runner::fmt(t.mean(), 1),
                   runner::fmt(static_cast<double>(wins) / trials, 3)});
    ks_fit.push_back(static_cast<double>(k));
    t_fit.push_back(t.mean());
  }

  // Sweep n at fixed k.
  const int k_fix = 16;
  for (pp::Count n :
       {runner::scaled(16384), runner::scaled(65536),
        runner::scaled(131072)}) {
    const auto x0 =
        pp::Configuration::with_multiplicative_bias(n, k_fix, 0, 2.0);
    const auto rows = runner::run_trials<Outcome>(
        trials, 0xE2100 + n,
        [&x0](std::uint64_t seed) { return measure(x0, seed); });
    stats::Samples t;
    int wins = 0;
    for (const auto& row : rows) {
      t.add(row.interactions);
      wins += row.plurality_won ? 1 : 0;
    }
    const double bound = bench::n_log_n(n) +
                         static_cast<double>(n) * static_cast<double>(n) /
                             static_cast<double>(x0.opinion(0));
    table.add_row({runner::fmt_int(n), std::to_string(k_fix),
                   runner::fmt_compact(t.mean()),
                   runner::fmt_compact(t.quantile(0.95)),
                   std::to_string(wins) + "/" + std::to_string(trials),
                   runner::fmt(t.mean() / bound, 3)});
    csv.write_row({std::to_string(n), std::to_string(k_fix),
                   runner::fmt(t.mean(), 1),
                   runner::fmt(static_cast<double>(wins) / trials, 3)});
  }
  table.print();

  const auto fit = stats::loglog_fit(ks_fit, t_fit);
  std::printf("\nscaling in k at fixed n: log-log slope %.2f "
              "(paper: -> 1 once nk dominates n log n)\n",
              fit.slope);
  std::printf("wrote bench_theorem2_multiplicative.csv\n");
  return 0;
}
