// E17 — degree-aggregated graph engine: fidelity at overlap scale,
// throughput at n = 1e8.
//
// The per-interaction "graph" engine is the quenched reference but stores
// O(n) vertex states and advances one edge per step; "graph-batched"
// collapses the topology to degree classes and tau-leaps whole chunks.
// This bench records both halves of that trade:
//
//  * Fidelity (overlap scale, shared topology per engine pair):
//    KS of consensus-time distributions on `complete` (where the annealed
//    model is exact) and `regular:64` (dense mean-field regime), plus the
//    measured mean-time ratio on `regular:8`, where the documented
//    O(1/d) mean-field bias is visible (the aggregated chain is faster —
//    no local opinion clustering).
//  * Throughput: wall-clock of a full sweep point at n = 1e8 (k = 8,
//    regular:8, adaptive chunks) — the ISSUE-5 acceptance point, which
//    the materialized engine cannot even allocate — and the
//    per-interaction vs aggregated wall ratio at the overlap scale.
//
// Results go to BENCH_graph_batched.json (checked in at full scale at the
// repo root; CI uploads the REPRO_SCALE=0.05 smoke copy as an artifact).
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rng/rng.hpp"
#include "runner/sweep.hpp"
#include "sim/graph_spec.hpp"
#include "sim/registry.hpp"
#include "stats/summary.hpp"
#include "util/stopwatch.hpp"

using namespace kusd;

namespace {

struct OverlapResult {
  stats::Samples graph_times;
  stats::Samples aggregated_times;
  double graph_wall_s = 0.0;
  double aggregated_wall_s = 0.0;
};

/// Run `trials` of both engines on one shared realization of `spec_name`,
/// mirroring the sweep's topology-sharing discipline (the materialized
/// graph for "graph", the degree-class model for "graph-batched").
OverlapResult run_overlap(pp::Count n, int k, const sim::GraphSpec& graph,
                          int trials, std::uint64_t seed_base) {
  const auto x0 = pp::Configuration::uniform(n, k, 0);
  OverlapResult out;

  rng::Rng graph_rng(rng::stream_seed(seed_base, sim::kTopologyStream));
  const auto topology = sim::build_graph(graph, n, graph_rng);
  sim::EngineOptions graph_options;
  graph_options.graph = graph;
  graph_options.shared_graph = &topology;

  rng::Rng degrees_rng(rng::stream_seed(seed_base + 1, sim::kTopologyStream));
  const auto degrees = sim::degree_class_model(graph, n, degrees_rng);
  sim::EngineOptions aggregated_options;
  aggregated_options.graph = graph;
  aggregated_options.shared_degrees = &degrees;

  {
    util::Stopwatch watch;
    for (int t = 0; t < trials; ++t) {
      const auto engine = sim::Registry::instance().create(
          "graph", x0,
          rng::stream_seed(seed_base, static_cast<std::uint64_t>(t)),
          graph_options);
      (void)engine->run_to_consensus(engine->default_budget());
      out.graph_times.add(engine->parallel_time());
    }
    out.graph_wall_s = watch.seconds();
  }
  {
    util::Stopwatch watch;
    for (int t = 0; t < trials; ++t) {
      const auto engine = sim::Registry::instance().create(
          "graph-batched", x0,
          rng::stream_seed(seed_base + 1, static_cast<std::uint64_t>(t)),
          aggregated_options);
      (void)engine->run_to_consensus(engine->default_budget());
      out.aggregated_times.add(engine->parallel_time());
    }
    out.aggregated_wall_s = watch.seconds();
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E17", "degree-aggregated graph engine (graph-batched)",
                "Distributional agreement with the per-interaction graph "
                "engine at overlap scale; wall-clock of an n = 1e8 "
                "regular:8 sweep point the materialized engine cannot "
                "allocate.");

  const pp::Count overlap_n = runner::scaled(20000, 500);
  const int overlap_trials = runner::scaled_trials(100, 6);
  const int overlap_k = 4;

  bench::JsonResult json;
  json.add_string("bench", "bench_graph_batched");
  json.add("repro_scale", runner::repro_scale());
  json.add("overlap_n", overlap_n);
  json.add("overlap_k", overlap_k);
  json.add("overlap_trials", overlap_trials);

  runner::Table table({"topology", "engine", "trials", "pt_mean", "wall_s",
                       "ks", "ks_threshold"});

  // --- Fidelity: complete (exact) and regular:64 (dense mean field) ---
  for (const auto& [name, graph] : {
           std::pair<const char*, sim::GraphSpec>{
               "complete", sim::GraphSpec{}},
           std::pair<const char*, sim::GraphSpec>{
               "regular:64",
               sim::GraphSpec{sim::GraphSpec::Kind::kRegular, 64}},
       }) {
    const auto result = run_overlap(overlap_n, overlap_k, graph,
                                    overlap_trials, 0xE17);
    const double ks = stats::ks_statistic(result.graph_times.values(),
                                          result.aggregated_times.values());
    const double threshold =
        stats::ks_threshold(result.graph_times.count(),
                            result.aggregated_times.count(), 0.001);
    table.add_row({name, "graph", std::to_string(overlap_trials),
                   runner::fmt(result.graph_times.mean(), 2),
                   runner::fmt(result.graph_wall_s, 2), runner::fmt(ks, 4),
                   runner::fmt(threshold, 4)});
    table.add_row({name, "graph-batched", std::to_string(overlap_trials),
                   runner::fmt(result.aggregated_times.mean(), 2),
                   runner::fmt(result.aggregated_wall_s, 2), "", ""});
    const std::string key = std::string(name) == "complete"
                                ? "complete"
                                : "regular64";
    json.add("ks_" + key, ks);
    json.add("ks_threshold_" + key, threshold);
    json.add("graph_wall_s_" + key, result.graph_wall_s);
    json.add("aggregated_wall_s_" + key, result.aggregated_wall_s);
    json.add("wall_ratio_" + key,
             result.aggregated_wall_s > 0.0
                 ? result.graph_wall_s / result.aggregated_wall_s
                 : 0.0);
  }

  // --- The documented sparse-regime bias: regular:8 mean-time ratio ---
  {
    const auto result = run_overlap(
        overlap_n, overlap_k, sim::GraphSpec{sim::GraphSpec::Kind::kRegular, 8},
        overlap_trials, 0xE17 + 100);
    table.add_row({"regular:8", "graph", std::to_string(overlap_trials),
                   runner::fmt(result.graph_times.mean(), 2),
                   runner::fmt(result.graph_wall_s, 2), "", ""});
    table.add_row({"regular:8", "graph-batched",
                   std::to_string(overlap_trials),
                   runner::fmt(result.aggregated_times.mean(), 2),
                   runner::fmt(result.aggregated_wall_s, 2), "", ""});
    // < 1: the annealed mean field is optimistic at low degree (O(1/d)
    // bias, see batched_graph_engine.hpp).
    json.add("mean_time_ratio_regular8",
             result.graph_times.mean() > 0.0
                 ? result.aggregated_times.mean() / result.graph_times.mean()
                 : 0.0);
    json.add("graph_wall_s_regular8", result.graph_wall_s);
    json.add("aggregated_wall_s_regular8", result.aggregated_wall_s);
  }

  // --- Throughput: the n = 1e8 sweep point (ISSUE-5 acceptance) ---
  {
    runner::SweepSpec spec;
    spec.ns = {runner::scaled(100'000'000, 10'000)};
    spec.ks = {8};
    spec.engines = {"graph-batched"};
    spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kRegular, 8}};
    spec.trials = runner::scaled_trials(5, 2);
    spec.master_seed = 0xE17;
    spec.batch_policy = core::ChunkPolicy::kAdaptive;
    util::Stopwatch watch;
    std::vector<runner::SweepCell> cells;
    runner::Sweep(spec).run(
        [&cells](const runner::SweepCell& cell) { cells.push_back(cell); });
    const double wall = watch.seconds();
    const auto& cell = cells.front();
    table.add_row({"regular:8 (scale)", "graph-batched",
                   std::to_string(spec.trials),
                   runner::fmt(cell.parallel_time.mean(), 2),
                   runner::fmt(wall, 3), "", ""});
    json.add("scale_n", spec.ns.front());
    json.add("scale_k", 8);
    json.add("scale_trials", spec.trials);
    json.add("scale_wall_seconds", wall);
    json.add("scale_pt_mean", cell.parallel_time.mean());
    json.add("scale_converged_rate", cell.converged_rate);
    json.add("scale_graph_edges", cell.graph_edges.value_or(0));
    json.add_bool("scale_connected", cell.connected.value_or(false));
    std::printf("\nn = %llu sweep point (%d trials, adaptive chunks): "
                "%.3f s wall\n",
                static_cast<unsigned long long>(spec.ns.front()), spec.trials,
                wall);
  }

  table.print();
  return json.write("BENCH_graph_batched.json") ? 0 : 1;
}
