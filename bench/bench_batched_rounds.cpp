// E10 — batched round engine: Θ(n) interactions per O(k) draw.
//
// Two demonstrations of the BatchedUsdSimulator (chunked Poissonization):
//
//  1. Fixed-budget throughput vs StepMode::kEveryInteraction at
//     n = 10^8, k = 32: both engines advance the same interaction budget
//     from the same configuration; the batched engine must be >= 50x
//     faster (it is typically 10^4-10^6 x).
//  2. Full convergence at n = 10^9, k = 64 — a population size the
//     per-interaction engines cannot touch — completing in seconds.
//
// Accuracy of the approximation is not measured here; it is enforced by
// the KS property tests in tests/test_batched_usd.cpp.
#include <algorithm>

#include "bench_common.hpp"
#include "core/batched_usd.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/stopwatch.hpp"

using namespace kusd;

namespace {

double time_plain_budget(const pp::Configuration& x0, std::uint64_t budget,
                         std::uint64_t seed) {
  core::UsdSimulator sim(x0, rng::Rng(seed),
                         core::UsdOptions{core::StepMode::kEveryInteraction});
  util::Stopwatch watch;
  sim.run_to_consensus(budget);
  return watch.seconds();
}

double time_batched_budget(const pp::Configuration& x0, std::uint64_t budget,
                           std::uint64_t seed) {
  core::BatchedUsdSimulator sim(x0, rng::Rng(seed));
  util::Stopwatch watch;
  sim.run_to_consensus(budget);
  return watch.seconds();
}

}  // namespace

int main() {
  bench::banner("E10", "batched round engine",
                "Chunked-multinomial batching advances Theta(n) "
                "interactions in O(k) work: fixed-budget speedup over "
                "kEveryInteraction, then n = 1e9 full convergence.");

  // ---- Part 1: fixed interaction budget, identical work for both ----
  {
    const pp::Count n = runner::scaled(100'000'000);
    const int k = 32;
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    // 2n interactions ~ 2 units of parallel time: enough to be firmly in
    // the steady state, small enough that the plain engine finishes.
    const std::uint64_t budget = 2 * n;

    runner::Table table({"engine", "interactions", "seconds", "speedup"});
    const double plain_s = time_plain_budget(x0, budget, 0xE10);
    const double batched_s = time_batched_budget(x0, budget, 0xE10);
    const double speedup = plain_s / std::max(batched_s, 1e-9);
    table.add_row({"every-interaction", runner::fmt_compact(
                       static_cast<double>(budget)),
                   runner::fmt(plain_s, 4), "1.0"});
    table.add_row({"batched-rounds", runner::fmt_compact(
                       static_cast<double>(budget)),
                   runner::fmt(batched_s, 4), runner::fmt(speedup, 1)});
    table.print();
    std::printf("speedup %s >= 50x target: %s\n\n",
                runner::fmt(speedup, 1).c_str(),
                speedup >= 50.0 ? "yes" : "NO");
  }

  // ---- Part 2: n = 1e9, k = 64, batched engine runs to consensus ----
  {
    const pp::Count n = runner::scaled(1'000'000'000);
    const int k = 64;
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    core::BatchedUsdSimulator sim(x0, rng::Rng(0xE10B));
    util::Stopwatch watch;
    const bool converged =
        sim.run_to_consensus(~std::uint64_t{0});
    const double seconds = watch.seconds();
    runner::Table table(
        {"n", "k", "converged", "parallel time", "chunks", "seconds"});
    table.add_row({runner::fmt_compact(static_cast<double>(n)),
                   std::to_string(k), converged ? "yes" : "no",
                   runner::fmt(static_cast<double>(sim.interactions()) /
                                   static_cast<double>(n),
                               1),
                   runner::fmt_int(sim.chunks()),
                   runner::fmt(seconds, 2)});
    table.print();
  }
  return 0;
}
