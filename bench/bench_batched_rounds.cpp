// E10 — batched round engine: Θ(n) interactions per O(k) draw.
//
// Three demonstrations of the BatchedUsdSimulator (chunked Poissonization):
//
//  1. Fixed-budget throughput vs StepMode::kEveryInteraction at
//     n = 10^8, k = 32: both engines advance the same interaction budget
//     from the same configuration; the batched engine must be >= 50x
//     faster (it is typically 10^4-10^6 x).
//  2. Adaptive vs fixed chunk policy at the same scale, full convergence:
//     the error-controlled ChunkController must beat the fixed 2% chunk
//     by >= 3x wall-clock at equal accuracy (accuracy is pinned by the KS
//     property tests and re-checked here at small n). Results land in
//     BENCH_adaptive.json.
//  3. Full convergence at n = 10^9, k = 64 — a population size the
//     per-interaction engines cannot touch — completing in seconds.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "core/batched_usd.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/stopwatch.hpp"

using namespace kusd;

namespace {

double time_plain_budget(const pp::Configuration& x0, std::uint64_t budget,
                         std::uint64_t seed) {
  core::UsdSimulator sim(x0, rng::Rng(seed),
                         core::UsdOptions{core::StepMode::kEveryInteraction});
  util::Stopwatch watch;
  sim.run_to_consensus(budget);
  return watch.seconds();
}

double time_batched_budget(const pp::Configuration& x0, std::uint64_t budget,
                           std::uint64_t seed) {
  core::BatchedUsdSimulator sim(x0, rng::Rng(seed));
  util::Stopwatch watch;
  sim.run_to_consensus(budget);
  return watch.seconds();
}

struct PolicyRun {
  double seconds = 0.0;
  std::uint64_t chunks = 0;
  double parallel_time = 0.0;
  bool converged = false;
};

PolicyRun run_policy(const pp::Configuration& x0, core::BatchedOptions options,
                     std::uint64_t seed) {
  core::BatchedUsdSimulator sim(x0, rng::Rng(seed), options);
  util::Stopwatch watch;
  PolicyRun out;
  out.converged = sim.run_to_consensus(~std::uint64_t{0});
  out.seconds = watch.seconds();
  out.chunks = sim.chunks();
  out.parallel_time = static_cast<double>(sim.interactions()) /
                      static_cast<double>(sim.n());
  return out;
}

std::vector<double> consensus_times(const pp::Configuration& x0, int trials,
                                    std::uint64_t seed_base,
                                    const core::BatchedOptions* options) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const auto seed =
        rng::stream_seed(seed_base, static_cast<std::uint64_t>(t));
    std::uint64_t interactions = 0;
    if (options == nullptr) {
      core::UsdSimulator sim(
          x0, rng::Rng(seed),
          core::UsdOptions{core::StepMode::kEveryInteraction});
      sim.run_to_consensus(~std::uint64_t{0});
      interactions = sim.interactions();
    } else {
      core::BatchedUsdSimulator sim(x0, rng::Rng(seed), *options);
      sim.run_to_consensus(~std::uint64_t{0});
      interactions = sim.interactions();
    }
    out.push_back(static_cast<double>(interactions));
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E10", "batched round engine",
                "Chunked-multinomial batching advances Theta(n) "
                "interactions in O(k) work: fixed-budget speedup over "
                "kEveryInteraction, the adaptive chunk controller vs the "
                "fixed 2% chunk, then n = 1e9 full convergence.");

  // ---- Part 1: fixed interaction budget, identical work for both ----
  {
    const pp::Count n = runner::scaled(100'000'000);
    const int k = 32;
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    // 2n interactions ~ 2 units of parallel time: enough to be firmly in
    // the steady state, small enough that the plain engine finishes.
    const std::uint64_t budget = 2 * n;

    runner::Table table({"engine", "interactions", "seconds", "speedup"});
    const double plain_s = time_plain_budget(x0, budget, 0xE10);
    const double batched_s = time_batched_budget(x0, budget, 0xE10);
    const double speedup = plain_s / std::max(batched_s, 1e-9);
    table.add_row({"every-interaction", runner::fmt_compact(
                       static_cast<double>(budget)),
                   runner::fmt(plain_s, 4), "1.0"});
    table.add_row({"batched-rounds", runner::fmt_compact(
                       static_cast<double>(budget)),
                   runner::fmt(batched_s, 4), runner::fmt(speedup, 1)});
    table.print();
    std::printf("speedup %s >= 50x target: %s\n\n",
                runner::fmt(speedup, 1).c_str(),
                speedup >= 50.0 ? "yes" : "NO");
  }

  // ---- Part 2: adaptive vs fixed chunk policy, full convergence ----
  bool json_ok = true;
  {
    const pp::Count n = runner::scaled(100'000'000);
    const int k = 32;
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    core::BatchedOptions fixed;  // 2% chunks
    core::BatchedOptions adaptive;
    adaptive.policy = core::ChunkPolicy::kAdaptive;

    const auto fixed_run = run_policy(x0, fixed, 0xE10A);
    const auto adaptive_run = run_policy(x0, adaptive, 0xE10A);
    const double speedup =
        fixed_run.seconds / std::max(adaptive_run.seconds, 1e-9);
    const double chunk_ratio =
        static_cast<double>(fixed_run.chunks) /
        std::max<double>(1.0, static_cast<double>(adaptive_run.chunks));

    runner::Table table(
        {"policy", "converged", "parallel time", "chunks", "seconds",
         "speedup"});
    table.add_row({"fixed-2%", fixed_run.converged ? "yes" : "no",
                   runner::fmt(fixed_run.parallel_time, 1),
                   runner::fmt_int(fixed_run.chunks),
                   runner::fmt(fixed_run.seconds, 4), "1.0"});
    table.add_row({"adaptive", adaptive_run.converged ? "yes" : "no",
                   runner::fmt(adaptive_run.parallel_time, 1),
                   runner::fmt_int(adaptive_run.chunks),
                   runner::fmt(adaptive_run.seconds, 4),
                   runner::fmt(speedup, 1)});
    table.print();
    std::printf("adaptive speedup %s >= 3x target: %s\n\n",
                runner::fmt(speedup, 1).c_str(),
                speedup >= 3.0 ? "yes" : "NO");

    // Equal-accuracy check at property-test scale: both chunk policies
    // must be KS-indistinguishable from the exact chain on the
    // consensus-time distribution.
    const auto x_small = pp::Configuration::uniform(400, 3, 0);
    const int trials = runner::scaled_trials(350, 60);
    const auto exact = consensus_times(x_small, trials, 0xE10B, nullptr);
    const auto with_fixed =
        consensus_times(x_small, trials, 0xE10C, &fixed);
    const auto with_adaptive =
        consensus_times(x_small, trials, 0xE10D, &adaptive);
    const double threshold =
        stats::ks_threshold(exact.size(), with_adaptive.size(), 0.001);
    const double ks_fixed = stats::ks_statistic(exact, with_fixed);
    const double ks_adaptive = stats::ks_statistic(exact, with_adaptive);
    std::printf("KS vs exact chain at n=400 (threshold %.4f, %d trials): "
                "fixed %.4f %s, adaptive %.4f %s\n\n",
                threshold, trials, ks_fixed,
                ks_fixed < threshold ? "pass" : "FAIL", ks_adaptive,
                ks_adaptive < threshold ? "pass" : "FAIL");

    bench::JsonResult json;
    json.add_string("bench", "bench_batched_rounds/adaptive_vs_fixed");
    json.add("repro_scale", runner::repro_scale());
    json.add("n", static_cast<std::uint64_t>(n));
    json.add("k", k);
    json.add("fixed_chunk_fraction", fixed.chunk_fraction);
    json.add("adaptive_drift_tolerance", adaptive.adaptive.drift_tolerance);
    json.add("adaptive_max_fraction", adaptive.adaptive.max_fraction);
    json.add("fixed_seconds", fixed_run.seconds);
    json.add("adaptive_seconds", adaptive_run.seconds);
    json.add("fixed_chunks", fixed_run.chunks);
    json.add("adaptive_chunks", adaptive_run.chunks);
    json.add("fixed_parallel_time", fixed_run.parallel_time);
    json.add("adaptive_parallel_time", adaptive_run.parallel_time);
    json.add("wall_speedup", speedup);
    json.add("chunk_ratio", chunk_ratio);
    json.add_bool("speedup_target_3x_met", speedup >= 3.0);
    json.add("ks_trials", trials);
    json.add("ks_threshold", threshold);
    json.add("ks_fixed_vs_exact", ks_fixed);
    json.add("ks_adaptive_vs_exact", ks_adaptive);
    json.add_bool("ks_pass", ks_adaptive < threshold && ks_fixed < threshold);
    json_ok = json.write("BENCH_adaptive.json") && json_ok;
    std::printf("wrote BENCH_adaptive.json\n\n");
  }

  // ---- Part 3: n = 1e9, k = 64, batched engine runs to consensus ----
  {
    const pp::Count n = runner::scaled(1'000'000'000);
    const int k = 64;
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    core::BatchedUsdSimulator sim(x0, rng::Rng(0xE10B));
    util::Stopwatch watch;
    const bool converged =
        sim.run_to_consensus(~std::uint64_t{0});
    const double seconds = watch.seconds();
    runner::Table table(
        {"n", "k", "converged", "parallel time", "chunks", "seconds"});
    table.add_row({runner::fmt_compact(static_cast<double>(n)),
                   std::to_string(k), converged ? "yes" : "no",
                   runner::fmt(static_cast<double>(sim.interactions()) /
                                   static_cast<double>(n),
                               1),
                   runner::fmt_int(sim.chunks()),
                   runner::fmt(seconds, 2)});
    table.print();
  }
  return json_ok ? 0 : 1;
}
