// E7 — approximate majority / plurality threshold.
//
// The paper (following Angluin et al. and Condon et al. for k=2, and
// Theorem 2(2) for k>2) locates the bias needed for the initial plurality
// to win w.h.p. at Theta(sqrt(n log n)). We sweep the additive bias in
// units of sqrt(n log n) and print the plurality win rate: the series must
// rise from the symmetric baseline (~1/k + ties) to ~1 around 1-2 units —
// the "figure" implied by the theorem statement.
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"

using namespace kusd;

int main() {
  bench::banner("E7", "Theorem 2(2) threshold (approximate plurality)",
                "Win rate of the initial plurality vs additive bias in "
                "units of sqrt(n log n): chance level -> 1 around O(1) "
                "units.");

  const int trials = runner::scaled_trials(40);
  const pp::Count n = runner::scaled(32768);
  runner::Table table({"bias/sqrt(n ln n)", "k=2 win rate", "k=8 win rate"});
  runner::CsvWriter csv("bench_winrate_vs_bias.csv",
                        {"bias_units", "k", "win_rate"});

  const std::vector<double> units{0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
  for (double c : units) {
    std::vector<std::string> row{runner::fmt(c, 2)};
    for (int k : {2, 8}) {
      const pp::Count beta = bench::additive_beta(n, c);
      const auto x0 =
          beta == 0 ? pp::Configuration::uniform(n, k, 0)
                    : pp::Configuration::with_additive_bias(n, k, 0, beta);
      const auto wins = runner::run_trials<int>(
          trials,
          0xE7000 + static_cast<std::uint64_t>(c * 100) +
              static_cast<std::uint64_t>(k),
          [&x0](std::uint64_t seed) {
            runner::RunOptions opts;
            opts.track_phases = false;
            const auto r = runner::run_usd(x0, seed, opts);
            return r.converged && r.plurality_won ? 1 : 0;
          });
      int won = 0;
      for (int w : wins) won += w;
      const double rate = static_cast<double>(won) / trials;
      row.push_back(runner::fmt(rate, 3));
      csv.write_row({runner::fmt(c, 2), std::to_string(k),
                     runner::fmt(rate, 3)});
    }
    table.add_row(row);
  }
  table.print();
  std::printf("\nexpected shape: ~1/k at zero bias (any opinion can win),\n"
              "monotone in the bias, ~1.0 by 2-4 units of sqrt(n ln n).\n");
  std::printf("wrote bench_winrate_vs_bias.csv\n");
  return 0;
}
