// E13 — extension: the USD beyond the complete graph.
//
// The paper's model is the complete interaction graph; its cited follow-up
// literature (expanders, Erdos-Renyi) asks how much topology matters. We
// run the 2-opinion USD from a biased start on four topologies and report
// interactions to consensus and the plurality win rate. Expected shape:
// complete ~ dense ER ~ random-regular (expanders behave like the clique
// up to constants), while the cycle is polynomially slower and loses the
// plurality guarantee.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/usd.hpp"
#include "pp/graph.hpp"
#include "pp/graph_scheduler.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct Outcome {
  double steps = 0.0;
  bool converged = false;
  bool plurality_won = false;
};

Outcome run_on_graph(const pp::InteractionGraph& graph,
                     std::span<const int> init, std::uint64_t seed,
                     std::uint64_t cap) {
  core::UsdProtocol usd(2);
  pp::GraphScheduler sched(usd, graph,
                           std::vector<int>(init.begin(), init.end()),
                           rng::Rng(seed));
  const auto n = graph.num_vertices();
  sched.run_until(
      [n](std::span<const std::uint64_t> c) {
        return c[0] == n || c[1] == n;
      },
      cap);
  Outcome out;
  out.steps = static_cast<double>(sched.steps());
  out.converged = sched.counts()[0] == n || sched.counts()[1] == n;
  out.plurality_won = sched.counts()[0] == n;
  return out;
}

}  // namespace

int main() {
  bench::banner("E13", "extension: restricted interaction graphs",
                "2-opinion USD with 60/40 bias on four topologies; "
                "expanders track the complete graph, the cycle does not.");

  // n stays small: on the cycle the USD needs Omega(n^3) interactions
  // (boundary random walks), and showing that contrast is the point.
  const auto n = static_cast<std::uint32_t>(runner::scaled(256));
  const int trials = runner::scaled_trials(10);
  const std::uint64_t cap = 400ull * n * n;

  // 60/40 split, randomly placed.
  std::vector<int> init(n, 1);
  {
    rng::Rng placer(4242);
    std::uint32_t placed = 0;
    while (placed < n * 6 / 10) {
      const auto v = static_cast<std::size_t>(placer.bounded(n));
      if (init[v] == 1) {
        init[v] = 0;
        ++placed;
      }
    }
  }

  rng::Rng graph_rng(777);
  struct NamedGraph {
    std::string name;
    pp::InteractionGraph graph;
  };
  std::vector<NamedGraph> graphs;
  graphs.push_back({"complete", pp::InteractionGraph::complete(n)});
  graphs.push_back(
      {"random 8-regular",
       pp::InteractionGraph::random_regular(n, 8, graph_rng)});
  graphs.push_back(
      {"Erdos-Renyi p=4ln(n)/n",
       pp::InteractionGraph::erdos_renyi(
           n, 4.0 * std::log(static_cast<double>(n)) /
                  static_cast<double>(n),
           graph_rng)});
  graphs.push_back({"cycle", pp::InteractionGraph::cycle(n)});

  runner::Table table({"topology", "edges", "connected", "mean steps / n",
                       "converged", "plurality wins"});
  runner::CsvWriter csv("bench_graphs.csv",
                        {"topology", "steps_per_n", "win_rate"});

  for (const auto& [name, graph] : graphs) {
    const auto rows = runner::run_trials<Outcome>(
        trials, 0xE13000 + graph.num_edges(),
        [&graph, &init, cap](std::uint64_t seed) {
          return run_on_graph(graph, init, seed, cap);
        });
    stats::Samples steps;
    int converged = 0, wins = 0;
    for (const auto& row : rows) {
      steps.add(row.steps / static_cast<double>(n));
      converged += row.converged ? 1 : 0;
      wins += row.plurality_won ? 1 : 0;
    }
    table.add_row({name, runner::fmt_int(graph.num_edges()),
                   graph.is_connected() ? "yes" : "no",
                   runner::fmt(steps.mean(), 1),
                   std::to_string(converged) + "/" + std::to_string(trials),
                   std::to_string(wins) + "/" + std::to_string(trials)});
    csv.write_row({name, runner::fmt(steps.mean(), 2),
                   runner::fmt(static_cast<double>(wins) / trials, 3)});
  }
  table.print();
  std::printf("\nexpected shape: complete ~ regular ~ ER in steps/n (all\n"
              "expander-like); the cycle is polynomially slower (may hit\n"
              "the cap) and its winner is decided by boundary drift, not\n"
              "global plurality.\n");
  std::printf("wrote bench_graphs.csv\n");
  return 0;
}
