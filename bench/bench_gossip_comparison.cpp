// E8 — Appendix D: population model vs gossip model (Becchetti et al. [9]).
//
// Appendix D shows that under a multiplicative bias, this paper's
// population-model rate O(log n + n/x1) *parallel time* beats the gossip
// bound O(md(x) log n) exactly when the plurality is small:
// x1 <= n log n / k. We sweep initial skewness (geometric profiles with
// varying ratio, which moves x1 between ~n/k and ~n/2), measure parallel
// time of the USD in both models, and print measured times next to both
// bounds. Shape check: the measured population/gossip ratio flips in
// favor of the population model as x1 shrinks toward n/k.
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "core/bias.hpp"
#include "runner/run.hpp"
#include "gossip/gossip_usd.hpp"
#include "pp/configuration.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

using namespace kusd;

int main() {
  bench::banner("E8", "Appendix D",
                "USD parallel time: population protocol model vs gossip "
                "model across initial skewness; crossover predicted at "
                "x1 ~ n log n / k.");

  const int trials = runner::scaled_trials(10);
  const pp::Count n = runner::scaled(65536);
  const int k = 16;
  runner::Table table({"profile", "x1/n", "md(x)", "pop par.time",
                       "gossip rounds", "pop bound", "gossip bound",
                       "pop/gossip measured"});
  runner::CsvWriter csv("bench_gossip_comparison.csv",
                        {"ratio", "x1", "md", "pop_time", "gossip_rounds"});

  // ratio 1.0 = flat (x1 ~ n/k, population model favored);
  // small ratio = skewed (x1 large, gossip bound comparable/better).
  for (double ratio : {1.0, 0.9, 0.8, 0.6, 0.4}) {
    const auto x0 = pp::Configuration::geometric(n, k, 0, ratio);
    const double md = core::monochromatic_distance(x0);

    const auto pop_times = runner::run_trials_samples(
        trials, 0xE8000 + static_cast<std::uint64_t>(ratio * 100),
        [&x0](std::uint64_t seed) {
          runner::RunOptions opts;
          opts.track_phases = false;
          return runner::run_usd(x0, seed, opts).parallel_time;
        });
    const auto gossip_rounds = runner::run_trials_samples(
        trials, 0xE8100 + static_cast<std::uint64_t>(ratio * 100),
        [&x0](std::uint64_t seed) {
          gossip::GossipUsd g(x0, rng::Rng(seed));
          g.run_to_consensus(1'000'000);
          return static_cast<double>(g.rounds());
        });

    table.add_row(
        {runner::fmt(ratio, 2),
         runner::fmt(static_cast<double>(x0.opinion(0)) /
                         static_cast<double>(n),
                     3),
         runner::fmt(md, 2), runner::fmt(pop_times.mean(), 1),
         runner::fmt(gossip_rounds.mean(), 1),
         runner::fmt(core::population_rate_bound(x0), 1),
         runner::fmt(core::gossip_rate_bound(x0), 1),
         runner::fmt(pop_times.mean() / gossip_rounds.mean(), 2)});
    csv.write_row({runner::fmt(ratio, 2),
                   std::to_string(x0.opinion(0)), runner::fmt(md, 3),
                   runner::fmt(pop_times.mean(), 2),
                   runner::fmt(gossip_rounds.mean(), 2)});
  }
  table.print();
  std::printf("\nexpected shape: for flat profiles (x1 ~ n/k) the\n"
              "population bound log n + n/x1 ~ log n + k is far below the\n"
              "gossip bound md(x) log n ~ k log n, and the measured ratio\n"
              "reflects it; as skew grows (x1 -> n/2) the gap closes per\n"
              "Appendix D's x1 > n log n / k criterion.\n");
  std::printf("wrote bench_gossip_comparison.csv\n");
  return 0;
}
