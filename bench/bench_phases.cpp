// E1 — the paper's phase table (Section 2.1).
//
// For unbiased starts we measure the mean interactions spent in each of the
// five phases and print them next to the paper's asymptotic column. The
// shape checks:
//   * phases occur in order and all complete;
//   * Phase 1 and Phase 5 scale like n log n (independent of k);
//   * Phases 2-3 scale like n^2 log n / xmax ~ k n log n (linear in k);
//   * Phase 4 is O(n^2/xmax + n log n).
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct PhaseRow {
  double len[5] = {0, 0, 0, 0, 0};
  bool ok = false;
};

PhaseRow measure(pp::Count n, int k, std::uint64_t seed) {
  const auto x0 = pp::Configuration::uniform(n, k, 0);
  runner::RunOptions opts;
  opts.observe_interval = std::max<pp::Count>(1, n / 32);
  const auto r = runner::run_usd(x0, seed, opts);
  PhaseRow row;
  if (!r.converged || !r.phases.complete()) return row;
  row.ok = true;
  for (int p = 1; p <= 5; ++p) {
    row.len[p - 1] = static_cast<double>(*r.phases.phase_length(p));
  }
  return row;
}

}  // namespace

int main() {
  bench::banner("E1", "phase table, Section 2.1",
                "Per-phase interactions for unbiased starts; paper bounds: "
                "P1 O(n log n), P2/P3 O(n^2 log n / xmax), "
                "P4 O(n^2/xmax + n log n), P5 O(n log n).");

  const int trials = runner::scaled_trials(8);
  const std::vector<int> ks{2, 8, 32};
  const std::vector<pp::Count> ns{
      runner::scaled(8192), runner::scaled(32768),
      runner::scaled(131072)};

  runner::Table table({"n", "k", "P1 (rise)", "P2 (add.bias)",
                       "P3 (mult.bias)", "P4 (majority)", "P5 (consensus)",
                       "total", "total/(k n ln n)"});
  runner::CsvWriter csv("bench_phases.csv",
                        {"n", "k", "p1", "p2", "p3", "p4", "p5"});

  // For the scaling fits: mean phase lengths per (n, k).
  std::vector<double> fit_n, fit_p1, fit_p23;
  for (pp::Count n : ns) {
    for (int k : ks) {
      const auto rows = runner::run_trials<PhaseRow>(
          trials, 0xE1000 + n + static_cast<pp::Count>(k),
          [n, k](std::uint64_t seed) { return measure(n, k, seed); });
      stats::Samples p[5];
      int ok = 0;
      for (const auto& row : rows) {
        if (!row.ok) continue;
        ++ok;
        for (int i = 0; i < 5; ++i) p[i].add(row.len[i]);
      }
      if (ok == 0) continue;
      double total = 0.0;
      for (int i = 0; i < 5; ++i) total += p[i].mean();
      table.add_row({runner::fmt_int(n), std::to_string(k),
                     runner::fmt_compact(p[0].mean()),
                     runner::fmt_compact(p[1].mean()),
                     runner::fmt_compact(p[2].mean()),
                     runner::fmt_compact(p[3].mean()),
                     runner::fmt_compact(p[4].mean()),
                     runner::fmt_compact(total),
                     runner::fmt(total / (k * bench::n_log_n(n)), 3)});
      csv.write_row({std::to_string(n), std::to_string(k),
                     runner::fmt(p[0].mean(), 1), runner::fmt(p[1].mean(), 1),
                     runner::fmt(p[2].mean(), 1), runner::fmt(p[3].mean(), 1),
                     runner::fmt(p[4].mean(), 1)});
      if (k == 8) {
        fit_n.push_back(static_cast<double>(n));
        fit_p1.push_back(p[0].mean() + 1.0);
        fit_p23.push_back(p[1].mean() + p[2].mean() + 1.0);
      }
    }
  }
  table.print();

  if (fit_n.size() >= 2) {
    const auto e1 = stats::loglog_fit(fit_n, fit_p1);
    const auto e23 = stats::loglog_fit(fit_n, fit_p23);
    std::printf("\nscaling in n at k=8 (log-log slope; n log n ~ 1.1):\n");
    std::printf("  Phase 1:      %.2f (paper: O(n log n))\n", e1.slope);
    std::printf("  Phases 2+3:   %.2f (paper: O(n^2 log n / xmax) "
                "= O(k n log n))\n",
                e23.slope);
  }
  std::printf("\nwrote bench_phases.csv\n");
  return 0;
}
