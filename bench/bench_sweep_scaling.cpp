// E15 — sweep scheduler scaling: work-stealing execution of
// many-small-point grids.
//
// runner::Sweep schedules every grid as one work-stealing task graph of
// (point, trial-stripe) units. For grids of many tiny points the stripe
// width sets the stealing grain: wide stripes collapse each point to one
// unit (whole-point stealing, minimal overhead), narrow stripes cut each
// point into many units (fine-grained balancing). Either way the grid
// should scale near-linearly with the worker count until the hardware
// runs out, and the streamed rows must stay byte-identical to the
// single-thread run — stripe width and shuffle are pure scheduling.
//
// This bench runs one such grid — engine x k x bias, small n, a few
// trials per point — single-threaded and then work-stealing at
// increasing thread counts (shuffled at the widest count), verifies the
// byte-identity contract every time, and writes the wall-clock
// trajectory to BENCH_sweep.json. Scaling is only observable with real
// cores: hardware_concurrency is recorded so a 1-core CI smoke run
// reporting speedup ~1 is interpretable.
#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "runner/sweep.hpp"
#include "util/stopwatch.hpp"

using namespace kusd;

namespace {

runner::SweepSpec grid_spec() {
  runner::SweepSpec spec;
  // Many small points: 2 engines x 2 n x 3 k x 4 alpha = 48 cells of a
  // few hundred agents each.
  spec.engines = {"skip", "gossip"};
  spec.ns = {runner::scaled(2000, 200), runner::scaled(4000, 400)};
  spec.ks = {2, 4, 8};
  spec.bias_kind = runner::BiasKind::kMultiplicative;
  spec.bias_values = {1.5, 2.0, 3.0, 4.0};
  spec.trials = runner::scaled_trials(8, 2);
  spec.master_seed = 0xE15;
  return spec;
}

/// Render the streamed rows into one string (the byte-identity witness).
std::string run_rendered(const runner::SweepSpec& spec, double* seconds) {
  const runner::Sweep sweep(spec);
  std::string out;
  util::Stopwatch watch;
  sweep.run([&out](const runner::SweepCell& cell) {
    for (const auto& field : runner::Sweep::csv_row(cell)) {
      out += field;
      out += ',';
    }
    out += '\n';
  });
  *seconds = watch.seconds();
  return out;
}

}  // namespace

int main() {
  bench::banner("E15", "work-stealing sweep scaling",
                "Grids of many tiny points: the (point, trial-stripe) task "
                "graph vs a single thread, byte-identical output, wall-clock "
                "per thread count.");

  auto spec = grid_spec();
  const std::size_t hardware = std::thread::hardware_concurrency();
  const std::size_t grid_cells = runner::Sweep(spec).grid().size();

  double sequential_s = 0.0;
  spec.threads = 1;
  const std::string reference = run_rendered(spec, &sequential_s);

  runner::Table table({"mode", "threads", "seconds", "speedup", "identical"});
  table.add_row({"sequential", "1", runner::fmt(sequential_s, 3), "1.0",
                 "(reference)"});

  bench::JsonResult json;
  json.add_string("bench", "bench_sweep_scaling");
  json.add("repro_scale", runner::repro_scale());
  json.add("hardware_concurrency", static_cast<std::uint64_t>(hardware));
  json.add("grid_cells", static_cast<std::uint64_t>(grid_cells));
  json.add("trials_per_cell", spec.trials);
  json.add("sequential_seconds", sequential_s);

  bool all_identical = true;
  double best_speedup = 1.0;
  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (hardware > 4) thread_counts.push_back(hardware);
  for (const std::size_t threads : thread_counts) {
    spec.threads = threads;
    spec.shuffle_points = threads == thread_counts.back();
    double seconds = 0.0;
    const std::string rendered = run_rendered(spec, &seconds);
    const bool identical = rendered == reference;
    all_identical = all_identical && identical;
    const double speedup = sequential_s / std::max(seconds, 1e-9);
    best_speedup = std::max(best_speedup, speedup);
    table.add_row({spec.shuffle_points ? "work-stealing+shuffle"
                                       : "work-stealing",
                   std::to_string(threads), runner::fmt(seconds, 3),
                   runner::fmt(speedup, 2), identical ? "yes" : "NO"});
    json.add("task_graph_seconds_t" + std::to_string(threads), seconds);
    json.add("speedup_t" + std::to_string(threads), speedup);
  }
  table.print();

  json.add("best_speedup", best_speedup);
  json.add_bool("output_byte_identical", all_identical);
  const bool json_ok = json.write("BENCH_sweep.json");
  std::printf("\noutput byte-identical across schedules: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("wrote BENCH_sweep.json\n");
  // Byte-identity is a correctness contract, not a perf number: fail the
  // bench (and the bench-smoke CI run) if it breaks.
  return (all_identical && json_ok) ? 0 : 1;
}
