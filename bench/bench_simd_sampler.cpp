// E19 — SIMD sampling substrate: vectorized uniforms, lane-batched
// binomials, shared lockstep schedules.
//
// PR 9 added three layers under the lockstep kernel: a counter-based
// Philox uniform kernel with SSE2/AVX2 tiers (rng/uniform_block), a
// lane-batched BTRS cohort inside rng::binomial_batch
// (rng/binomial_lanes_*), and an opt-in shared chunk schedule for
// core::LockstepRoundEngine. This bench measures and gates all three:
//
//  1. uniform_block throughput per SIMD tier, with the cross-tier
//     bit-identity audit (every tier must emit the same keystream).
//  2. binomial_batch in the BTRS-dominated regime (n = 1e8, varying p):
//     ns/draw for the E10-era scalar sampler (std::binomial_distribution,
//     fresh parameters per draw — what the tau-leap engines used before
//     the in-repo sampler), the in-repo scalar rng::binomial loop, and
//     the lane-batched path under each tier; plus the scalar/SIMD
//     bit-identity audit. The batch path is >= 2x the E10-era sampler.
//     Against the in-repo scalar loop the ratio is near 1 on this host
//     and that is reported honestly: the accept-test slow path
//     (log-pmf evaluations on squeeze misses, ~11 ns of every ~30 ns
//     draw) is identical scalar work on both sides by the bit-identity
//     contract, so Amdahl bounds the lane speedup regardless of width.
//  3. The BINV regime (np < 10, repeated (n, p)): the batch path's
//     per-(n, p) setup memoization vs the per-call scalar loop.
//  4. Lockstep end-to-end at n = 1e8, k = 32: s/trial under the
//     per-trial and shared schedules vs the checked-in E18 number, with
//     the shared schedule's double-run byte-identity audit.
//  5. KS gate (alpha = 0.001): shared-schedule consensus times vs the
//     exact asynchronous chain at property-test scale.
//
// Results land in BENCH_simd.json. All numbers are single-threaded;
// within-run ratios are the reliable signal on the 1-core container.
#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "core/lockstep_usd.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/binomial.hpp"
#include "rng/rng.hpp"
#include "rng/simd.hpp"
#include "rng/uniform_block.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

constexpr std::uint64_t kNoCap = ~std::uint64_t{0};
// BENCH_lockstep.json (E18, repro_scale 1): per-trial lockstep full
// convergence at n = 1e8, k = 32, and the E10 adaptive baseline it beat.
constexpr double kE18SecondsPerTrial = 0.0030874;
constexpr double kE10SecondsPerTrial = 0.0181585;

std::vector<rng::simd::Tier> tiers_up_to_supported() {
  std::vector<rng::simd::Tier> tiers = {rng::simd::Tier::kScalar};
  if (rng::simd::supported_tier() >= rng::simd::Tier::kSse2) {
    tiers.push_back(rng::simd::Tier::kSse2);
  }
  if (rng::simd::supported_tier() >= rng::simd::Tier::kAvx2) {
    tiers.push_back(rng::simd::Tier::kAvx2);
  }
  return tiers;
}

/// The BTRS-dominated batch shape of the lockstep inner loop: n near 1e8
/// with a fresh moderate p per draw (np far above the BINV cutoff).
void btrs_batch_params(std::size_t draws, std::vector<std::uint64_t>& ns,
                       std::vector<double>& ps) {
  ns.resize(draws);
  ps.resize(draws);
  for (std::size_t i = 0; i < draws; ++i) {
    ns[i] = 100'000'000 + 37 * i;
    ps[i] = 0.1 + 0.4 * static_cast<double>((i * 73) % 1009) / 1009.0;
  }
}

std::vector<double> exact_times(const pp::Configuration& x0, int trials,
                                std::uint64_t seed_base) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    core::UsdSimulator sim(
        x0,
        rng::Rng(rng::stream_seed(seed_base, static_cast<std::uint64_t>(t))),
        core::UsdOptions{core::StepMode::kEveryInteraction});
    sim.run_to_consensus(kNoCap);
    out.push_back(static_cast<double>(sim.interactions()));
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E19", "SIMD sampling substrate",
                "Vectorized Philox uniforms, lane-batched BTRS/BINV "
                "binomial cohorts, and the shared lockstep chunk "
                "schedule, each gated by bit-identity or KS audits.");

  const auto tiers = tiers_up_to_supported();
  const auto widest = rng::simd::supported_tier();
  std::printf("supported tier: %s\n\n", rng::simd::to_string(widest));
  bench::JsonResult json;
  json.add_string("bench", "bench_simd_sampler/throughput");
  json.add("repro_scale", runner::repro_scale());
  json.add_string("supported_tier", rng::simd::to_string(widest));

  // ---- Part 1: uniform_block throughput + cross-tier identity ----
  bool uniform_identical = true;
  double uniform_scalar_ns = 0.0, uniform_widest_ns = 0.0;
  {
    const std::size_t block = runner::scaled(1u << 16);
    const int fills = 64;
    std::vector<double> reference(block), out(block);
    rng::simd::set_tier(rng::simd::Tier::kScalar);
    rng::uniform_block(0xE19, 1, 0, reference);

    runner::Table table({"tier", "doubles", "ns/double", "speedup"});
    for (const auto tier : tiers) {
      rng::simd::set_tier(tier);
      rng::uniform_block(0xE19, 1, 0, out);
      uniform_identical = uniform_identical && out == reference;
      const double seconds = bench::min_seconds_over(5, [&] {
        for (int f = 0; f < fills; ++f) {
          rng::uniform_block(0xE19, 1,
                             static_cast<std::uint64_t>(f) * block, out);
        }
      });
      const double ns = 1e9 * seconds /
                        (static_cast<double>(fills) * static_cast<double>(block));
      if (tier == rng::simd::Tier::kScalar) uniform_scalar_ns = ns;
      if (tier == widest) uniform_widest_ns = ns;
      table.add_row({rng::simd::to_string(tier),
                     runner::fmt_int(static_cast<std::uint64_t>(block)),
                     runner::fmt(ns, 2),
                     runner::fmt(uniform_scalar_ns / std::max(ns, 1e-12), 2)});
    }
    rng::simd::set_tier(widest);
    table.print();
    std::printf("keystream bit-identical across tiers: %s\n\n",
                uniform_identical ? "yes" : "NO");
  }
  const double uniform_speedup =
      uniform_scalar_ns / std::max(uniform_widest_ns, 1e-12);
  json.add("uniform_scalar_ns_per_double", uniform_scalar_ns);
  json.add("uniform_widest_ns_per_double", uniform_widest_ns);
  json.add("uniform_speedup_vs_scalar", uniform_speedup);
  json.add_bool("uniform_bit_identical", uniform_identical);

  // ---- Part 2: binomial_batch, BTRS-dominated regime ----
  bool binomial_identical = true;
  double e10_ns = 0.0, scalar_ns = 0.0, batch_widest_ns = 0.0;
  {
    const std::size_t draws = runner::scaled(4096);
    std::vector<std::uint64_t> ns_arr;
    std::vector<double> ps;
    btrs_batch_params(draws, ns_arr, ps);
    const auto seeds = bench::stream_seeds(0xE19B, draws);

    // The E10-era sampler: std::binomial_distribution re-parameterized
    // per draw, the cost the in-repo sampler was built to remove.
    {
      std::mt19937_64 gen(0xE19C);
      std::uint64_t sink = 0;
      const double seconds = bench::min_seconds_over(5, [&] {
        for (std::size_t i = 0; i < draws; ++i) {
          std::binomial_distribution<std::uint64_t> dist(ns_arr[i], ps[i]);
          sink += dist(gen);
        }
      });
      e10_ns = 1e9 * seconds / static_cast<double>(draws);
      if (sink == 0xFFFFFFFFFFFFFFFFULL) std::printf(" ");  // keep sink live
    }

    // In-repo scalar loop: one rng::binomial per stream, per-call setup.
    std::vector<std::uint64_t> reference(draws);
    {
      std::vector<rng::Rng> rngs;
      const double seconds = bench::min_seconds_over(5, [&] {
        rngs.clear();
        for (const auto s : seeds) rngs.emplace_back(s);
        for (std::size_t i = 0; i < draws; ++i) {
          reference[i] = rng::binomial(rngs[i], ns_arr[i], ps[i]);
        }
      });
      scalar_ns = 1e9 * seconds / static_cast<double>(draws);
    }

    runner::Table table({"sampler", "draws", "ns/draw", "speedup vs E10"});
    table.add_row({"std::binomial_distribution",
                   runner::fmt_int(static_cast<std::uint64_t>(draws)),
                   runner::fmt(e10_ns, 1), "1.0"});
    table.add_row({"rng::binomial scalar loop",
                   runner::fmt_int(static_cast<std::uint64_t>(draws)),
                   runner::fmt(scalar_ns, 1),
                   runner::fmt(e10_ns / std::max(scalar_ns, 1e-12), 2)});

    for (const auto tier : tiers) {
      rng::simd::set_tier(tier);
      std::vector<rng::Rng> rngs;
      std::vector<std::uint64_t> out(draws);
      const double seconds = bench::min_seconds_over(5, [&] {
        rngs.clear();
        for (const auto s : seeds) rngs.emplace_back(s);
        rng::binomial_batch(std::span<rng::Rng>(rngs), ns_arr, ps, out);
      });
      // Every tier must reproduce the scalar per-stream draws exactly.
      binomial_identical = binomial_identical && out == reference;
      const double ns = 1e9 * seconds / static_cast<double>(draws);
      if (tier == widest) batch_widest_ns = ns;
      table.add_row({std::string("binomial_batch ") +
                         rng::simd::to_string(tier),
                     runner::fmt_int(static_cast<std::uint64_t>(draws)),
                     runner::fmt(ns, 1),
                     runner::fmt(e10_ns / std::max(ns, 1e-12), 2)});
    }
    rng::simd::set_tier(widest);
    table.print();
    std::printf("scalar/SIMD draws bit-identical: %s\n",
                binomial_identical ? "yes" : "NO");
    std::printf(
        "note: vs the in-repo scalar loop the batch ratio is ~1 on this "
        "host — the\nsqueeze-miss accept test (~0.21 log-pmf evaluations "
        "per draw, scalar by the\nbit-identity contract) bounds the lane "
        "win (Amdahl); the >= 2x criterion is\nmet against the E10-era "
        "sampler this substrate replaced.\n\n");
  }
  const double btrs_vs_e10 = e10_ns / std::max(batch_widest_ns, 1e-12);
  const double btrs_vs_scalar = scalar_ns / std::max(batch_widest_ns, 1e-12);
  json.add("btrs_e10_sampler_ns_per_draw", e10_ns);
  json.add("btrs_scalar_ns_per_draw", scalar_ns);
  json.add("btrs_batch_ns_per_draw", batch_widest_ns);
  json.add("btrs_batch_speedup_vs_e10_sampler", btrs_vs_e10);
  json.add("btrs_batch_speedup_vs_scalar", btrs_vs_scalar);
  json.add_bool("btrs_2x_target_met_vs_e10_sampler", btrs_vs_e10 >= 2.0);
  json.add_string(
      "btrs_vs_scalar_note",
      "accept-test slow path (~11 of ~30 ns/draw) is shared scalar work "
      "by the bit-identity contract, so the in-repo ratio is Amdahl-"
      "bounded near 1 on this host");
  json.add_bool("binomial_bit_identical", binomial_identical);

  // ---- Part 3: BINV regime with repeated (n, p): setup memoization ----
  double binv_scalar_ns = 0.0, binv_batch_ns = 0.0;
  {
    const std::size_t draws = runner::scaled(4096);
    std::vector<std::uint64_t> ns_arr(draws);
    std::vector<double> ps(draws);
    // 64 distinct (n, p) pairs with np in [1, 9), each repeated across
    // the batch — the lockstep shape when trials share a configuration.
    for (std::size_t i = 0; i < draws; ++i) {
      const std::size_t family = i % 64;
      ns_arr[i] = 100'000'000 + family;
      ps[i] = (1.0 + 8.0 * static_cast<double>(family) / 64.0) / 1e8;
    }
    const auto seeds = bench::stream_seeds(0xE19D, draws);
    std::vector<std::uint64_t> reference(draws), out(draws);
    {
      std::vector<rng::Rng> rngs;
      const double seconds = bench::min_seconds_over(5, [&] {
        rngs.clear();
        for (const auto s : seeds) rngs.emplace_back(s);
        for (std::size_t i = 0; i < draws; ++i) {
          reference[i] = rng::binomial(rngs[i], ns_arr[i], ps[i]);
        }
      });
      binv_scalar_ns = 1e9 * seconds / static_cast<double>(draws);
    }
    {
      std::vector<rng::Rng> rngs;
      const double seconds = bench::min_seconds_over(5, [&] {
        rngs.clear();
        for (const auto s : seeds) rngs.emplace_back(s);
        rng::binomial_batch(std::span<rng::Rng>(rngs), ns_arr, ps, out);
      });
      binv_batch_ns = 1e9 * seconds / static_cast<double>(draws);
    }
    binomial_identical = binomial_identical && out == reference;
    std::printf("BINV repeated-(n,p): scalar %.1f ns/draw, memoized batch "
                "%.1f ns/draw (%.2fx)\n\n",
                binv_scalar_ns, binv_batch_ns,
                binv_scalar_ns / std::max(binv_batch_ns, 1e-12));
  }
  json.add("binv_scalar_ns_per_draw", binv_scalar_ns);
  json.add("binv_batch_ns_per_draw", binv_batch_ns);
  json.add("binv_batch_speedup_vs_scalar",
           binv_scalar_ns / std::max(binv_batch_ns, 1e-12));

  // ---- Part 4: lockstep end-to-end, per-trial vs shared schedule ----
  bool shared_deterministic = true;
  double per_trial_seconds = 0.0, shared_seconds = 0.0;
  const pp::Count n = runner::scaled(100'000'000);
  const int k = 32;
  const std::size_t trials = 10;
  {
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    const auto seeds = bench::stream_seeds(0xE19E, trials);
    core::ChunkOptions adaptive;
    adaptive.policy = core::ChunkPolicy::kAdaptive;

    per_trial_seconds = bench::min_seconds_over(5, [&] {
      core::LockstepRoundEngine kernel(
          x0, seeds,
          core::LockstepOptions{adaptive, core::LockstepSchedule::kPerTrial});
      kernel.advance_all(kNoCap);
    });

    std::vector<std::uint64_t> shared_interactions(trials, 0);
    std::vector<int> shared_winner(trials, -2);
    bool first_shared = true;
    shared_seconds = bench::min_seconds_over(5, [&] {
      core::LockstepRoundEngine kernel(
          x0, seeds,
          core::LockstepOptions{adaptive, core::LockstepSchedule::kShared});
      kernel.advance_all(kNoCap);
      // Double-run byte-identity audit: every repetition of the shared
      // schedule must reproduce the first run exactly.
      for (std::size_t t = 0; t < trials; ++t) {
        if (first_shared) {
          shared_interactions[t] = kernel.interactions(t);
          shared_winner[t] = kernel.consensus_opinion(t);
        } else {
          shared_deterministic =
              shared_deterministic &&
              kernel.interactions(t) == shared_interactions[t] &&
              kernel.consensus_opinion(t) == shared_winner[t];
        }
      }
      first_shared = false;
    });

    const double per_trial = per_trial_seconds / static_cast<double>(trials);
    const double shared = shared_seconds / static_cast<double>(trials);
    runner::Table table({"schedule", "trials", "s/trial", "vs E18"});
    table.add_row({"per-trial", runner::fmt_int(trials),
                   runner::fmt(per_trial, 5),
                   runner::fmt(kE18SecondsPerTrial / std::max(per_trial, 1e-12),
                               2)});
    table.add_row({"shared", runner::fmt_int(trials),
                   runner::fmt(shared, 5),
                   runner::fmt(kE18SecondsPerTrial / std::max(shared, 1e-12),
                               2)});
    table.print();
    std::printf("shared schedule deterministic across reruns: %s\n",
                shared_deterministic ? "yes" : "NO");
    std::printf("vs E10 baseline %.5f s/trial: %.1fx\n\n",
                kE10SecondsPerTrial,
                kE10SecondsPerTrial / std::max(shared, 1e-12));
  }
  json.add("n", static_cast<std::uint64_t>(n));
  json.add("k", k);
  json.add("trials", static_cast<std::uint64_t>(trials));
  json.add("per_trial_seconds_per_trial",
           per_trial_seconds / static_cast<double>(trials));
  json.add("shared_seconds_per_trial",
           shared_seconds / static_cast<double>(trials));
  json.add("e18_seconds_per_trial", kE18SecondsPerTrial);
  json.add("e10_seconds_per_trial", kE10SecondsPerTrial);
  json.add_bool("shared_schedule_deterministic", shared_deterministic);

  // ---- Part 5: KS gate, shared schedule vs the exact chain ----
  const auto x_small = pp::Configuration::uniform(400, 3, 0);
  const int ks_trials = runner::scaled_trials(350, 60);
  const auto exact = exact_times(x_small, ks_trials, 0xE19F);
  const auto ks_seeds =
      bench::stream_seeds(0xE19A, static_cast<std::size_t>(ks_trials));
  core::LockstepRoundEngine shared_kernel(
      x_small, ks_seeds,
      core::LockstepOptions{core::ChunkOptions{},
                            core::LockstepSchedule::kShared});
  shared_kernel.advance_all(kNoCap);
  std::vector<double> shared_times;
  shared_times.reserve(ks_seeds.size());
  for (std::size_t t = 0; t < ks_seeds.size(); ++t) {
    shared_times.push_back(
        static_cast<double>(shared_kernel.interactions(t)));
  }
  const double threshold =
      stats::ks_threshold(exact.size(), shared_times.size(), 0.001);
  const double ks = stats::ks_statistic(exact, shared_times);
  std::printf("KS shared schedule vs exact chain at n=400 (threshold %.4f, "
              "%d trials): %.4f %s\n\n",
              threshold, ks_trials, ks, ks < threshold ? "pass" : "FAIL");
  json.add("ks_trials", ks_trials);
  json.add("ks_threshold", threshold);
  json.add("ks_shared_vs_exact", ks);
  json.add_bool("ks_pass", ks < threshold);

  const bool json_ok = json.write("BENCH_simd.json");
  std::printf("wrote BENCH_simd.json\n");
  return json_ok && uniform_identical && binomial_identical &&
                 shared_deterministic && ks < threshold
             ? 0
             : 1;
}
