// E6 — Lemma 2: Phase 1 preserves bias and plurality support.
//
// Through Phase 1 (until T1, when the undecided population has risen):
//   1. an additive bias of alpha sqrt(n log n) shrinks by at most a
//      constant factor (paper: to >= alpha/3 sqrt(n log n));
//   2. a multiplicative bias 1+eps stays at least 1 + eps/(6+5eps);
//   3. the plurality keeps at least a third of its support
//      (X1(T1) >= x1(0)/3).
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "core/budget.hpp"
#include "runner/run.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct AtT1 {
  double additive_ratio = 0.0;        // (x1-x2)(T1) / (x1-x2)(0)
  double multiplicative_at_t1 = 0.0;  // x1(T1)/x2(T1)
  double x1_ratio = 0.0;              // x1(T1) / x1(0)
};

AtT1 measure(const pp::Configuration& x0, std::uint64_t seed) {
  core::UsdSimulator sim(x0, rng::Rng(seed),
                         core::UsdOptions{core::StepMode::kSkipUnproductive});
  const double gap0 = static_cast<double>(x0.opinion(0)) -
                      static_cast<double>(x0.opinion(1));
  const double x1_0 = static_cast<double>(x0.opinion(0));
  const pp::Count n = x0.n();
  const std::uint64_t check_every = std::max<pp::Count>(1, n / 64);
  const std::uint64_t cap = core::default_interaction_cap(n, x0.k());
  AtT1 out;
  std::uint64_t next_check = 0;
  // Step manually so the run stops at T1 instead of consensus.
  while (!sim.is_consensus() && sim.interactions() < cap) {
    sim.step();
    if (sim.interactions() < next_check) continue;
    next_check = sim.interactions() + check_every;
    const auto opinions = sim.opinions();
    const pp::Count u = sim.undecided();
    const pp::Count xmax =
        *std::max_element(opinions.begin(), opinions.end());
    if (2 * u < n - xmax) continue;  // T1 not reached yet
    // T1 reached: record the gap of the initial plurality (index 0)
    // against the best other opinion, then stop.
    const double x1 = static_cast<double>(opinions[0]);
    double best_other = 0.0;
    for (std::size_t i = 1; i < opinions.size(); ++i) {
      best_other = std::max(best_other, static_cast<double>(opinions[i]));
    }
    out.additive_ratio = gap0 > 0 ? (x1 - best_other) / gap0 : 0.0;
    out.multiplicative_at_t1 = best_other > 0 ? x1 / best_other : 1e9;
    out.x1_ratio = x1 / x1_0;
    break;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E6", "Lemma 2",
                "Bias preservation through Phase 1: additive bias keeps a "
                "constant fraction, multiplicative bias stays bounded away "
                "from 1, x1 keeps >= 1/3 of its support.");

  const int trials = runner::scaled_trials(24);
  const pp::Count n = runner::scaled(65536);
  runner::Table table({"start", "k", "metric", "mean", "min",
                       "paper floor"});

  for (int k : {2, 8, 32}) {
    // Additive-bias start.
    {
      const pp::Count beta = bench::additive_beta(n, 2.0);
      const auto x0 = pp::Configuration::with_additive_bias(n, k, 0, beta);
      const auto rows = runner::run_trials<AtT1>(
          trials, 0xE6000 + static_cast<std::uint64_t>(k),
          [&x0](std::uint64_t seed) { return measure(x0, seed); });
      stats::Samples add, x1r;
      for (const auto& r : rows) {
        add.add(r.additive_ratio);
        x1r.add(r.x1_ratio);
      }
      table.add_row({"additive 2*sqrt(n ln n)", std::to_string(k),
                     "gap(T1)/gap(0)", runner::fmt(add.mean(), 3),
                     runner::fmt(add.min(), 3), "1/3"});
      table.add_row({"additive 2*sqrt(n ln n)", std::to_string(k),
                     "x1(T1)/x1(0)", runner::fmt(x1r.mean(), 3),
                     runner::fmt(x1r.min(), 3), "1/3"});
    }
    // Multiplicative-bias start (eps = 1 => floor 1 + 1/11 ~ 1.091).
    {
      const auto x0 =
          pp::Configuration::with_multiplicative_bias(n, k, 0, 2.0);
      const auto rows = runner::run_trials<AtT1>(
          trials, 0xE6100 + static_cast<std::uint64_t>(k),
          [&x0](std::uint64_t seed) { return measure(x0, seed); });
      stats::Samples mult;
      for (const auto& r : rows) mult.add(r.multiplicative_at_t1);
      table.add_row({"multiplicative 2.0", std::to_string(k),
                     "x1(T1)/x2(T1)", runner::fmt(mult.mean(), 3),
                     runner::fmt(mult.min(), 3), "1.091"});
    }
  }
  table.print();
  std::printf("\nevery min must sit above its paper floor (Lemma 2 assumes\n"
              "k = O(sqrt(n)/log^2 n), so large-k rows at bench scale may\n"
              "sit closer to the floor).\n");
  return 0;
}
