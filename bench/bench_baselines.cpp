// E9 — Section 1.2: USD among its peers.
//
// The introduction situates the USD against the Voter process (slow:
// Theta(n) parallel time), TwoChoices / 3-Majority (fast: O(k log n)
// rounds under bias conditions), the MedianRule, and the synchronized USD
// variant (polylog, but protocol overhead). We race them from the same
// moderately biased start and report parallel time and plurality win rate.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dynamics.hpp"
#include "runner/run.hpp"
#include "core/sync_usd.hpp"
#include "pp/configuration.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct Outcome {
  double parallel_time = 0.0;
  bool plurality_won = false;
};

}  // namespace

int main() {
  bench::banner("E9", "related dynamics (Section 1.2)",
                "USD vs Voter / TwoChoices / 3-Majority / MedianRule / "
                "SyncUSD from the same multiplicative-bias start.");

  // Voter needs Theta(n^2) activations: keep n modest so the contrast is
  // visible without dominating the bench's runtime.
  const int trials = runner::scaled_trials(10);
  const pp::Count n = runner::scaled(4096);
  const int k = 6;
  const auto x0 = pp::Configuration::with_multiplicative_bias(n, k, 0, 1.5);

  runner::Table table(
      {"dynamics", "mean parallel time", "p95", "plurality wins"});
  runner::CsvWriter csv("bench_baselines.csv",
                        {"dynamics", "parallel_time", "win_rate"});

  const auto report = [&](const std::string& name,
                          const std::vector<Outcome>& rows) {
    stats::Samples t;
    int wins = 0;
    for (const auto& r : rows) {
      t.add(r.parallel_time);
      wins += r.plurality_won ? 1 : 0;
    }
    table.add_row({name, runner::fmt(t.mean(), 1),
                   runner::fmt(t.quantile(0.95), 1),
                   std::to_string(wins) + "/" + std::to_string(trials)});
    csv.write_row({name, runner::fmt(t.mean(), 3),
                   runner::fmt(static_cast<double>(wins) / trials, 3)});
  };

  report("USD (population)",
         runner::run_trials<Outcome>(
             trials, 0xE9000, [&x0](std::uint64_t seed) {
               runner::RunOptions opts;
               opts.track_phases = false;
               const auto r = runner::run_usd(x0, seed, opts);
               return Outcome{r.parallel_time, r.plurality_won};
             }));

  const core::VoterDynamics voter;
  const core::TwoChoicesDynamics two_choices;
  const core::JMajorityDynamics three_majority(3);
  const core::JMajorityDynamics five_majority(5);
  const core::MedianRuleDynamics median;
  const std::vector<const core::SamplingDynamics*> dynamics{
      &voter, &two_choices, &three_majority, &five_majority, &median};
  for (const auto* dyn : dynamics) {
    report(std::string(dyn->name()),
           runner::run_trials<Outcome>(
               trials, 0xE9100 + dyn->sample_size(),
               [&x0, dyn, n](std::uint64_t seed) {
                 core::DynamicsScheduler sched(*dyn, x0, rng::Rng(seed));
                 // Cap generous enough for the Voter's Theta(n^2) law.
                 const bool ok = sched.run_to_consensus(10ull * n * n);
                 return Outcome{static_cast<double>(sched.activations()) /
                                    static_cast<double>(n),
                                ok && sched.consensus_opinion() == 0};
               }));
  }

  report("SyncUSD (rounds)",
         runner::run_trials<Outcome>(
             trials, 0xE9200, [&x0](std::uint64_t seed) {
               core::SyncUsd sync(x0, rng::Rng(seed));
               const bool ok = sync.run_to_consensus(100000);
               return Outcome{static_cast<double>(sync.total_rounds()),
                              ok && sync.consensus_opinion() == 0};
             }));

  table.print();
  std::printf("\nexpected shape: Voter is orders of magnitude slower\n"
              "(Theta(n) parallel time) and wins only proportionally to\n"
              "initial support; USD and the majority dynamics finish in\n"
              "polylog-ish parallel time and the plurality nearly always\n"
              "wins; MedianRule converges fast but to the *median* opinion\n"
              "(it assumes an opinion ordering — Section 1.2), so its\n"
              "plurality-win column is expectedly ~0 for k > 2; SyncUSD is\n"
              "fastest in rounds but needs synchronization machinery the\n"
              "USD does not.\n");
  std::printf("wrote bench_baselines.csv\n");
  return 0;
}
