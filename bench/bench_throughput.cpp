// E10 — engineering ablation (google-benchmark): throughput of the
// simulation engines and the design choices DESIGN.md calls out:
//   * plain vs skip-unproductive stepping,
//   * linear vs Fenwick urn,
//   * count-based vs agent-based scheduling,
//   * gossip-model round cost.
//
// items_processed counts *simulated interactions*, so the skip engine's
// advantage (many interactions per productive step) shows up directly in
// items_per_second.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/usd.hpp"
#include "gossip/gossip_usd.hpp"
#include "pp/configuration.hpp"
#include "pp/scheduler.hpp"
#include "rng/rng.hpp"

namespace {

using namespace kusd;

// Step a UsdSimulator for the benchmark loop, transparently restarting
// (outside the timed region) whenever consensus is reached.
class UsdStepper {
 public:
  UsdStepper(pp::Configuration x0, core::UsdOptions options)
      : x0_(std::move(x0)), options_(options), sim_(make()) {}

  void step(benchmark::State& state) {
    if (sim_.is_consensus()) {
      state.PauseTiming();
      interactions_done_ += sim_.interactions();
      sim_ = make();
      state.ResumeTiming();
    }
    sim_.step();
  }

  [[nodiscard]] std::int64_t interactions() const {
    return static_cast<std::int64_t>(interactions_done_ +
                                     sim_.interactions());
  }

 private:
  core::UsdSimulator make() {
    return core::UsdSimulator(x0_, rng::Rng(++seed_), options_);
  }

  pp::Configuration x0_;
  core::UsdOptions options_;
  std::uint64_t seed_ = 0;
  std::uint64_t interactions_done_ = 0;
  core::UsdSimulator sim_;
};

void BM_UsdPlainStep(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  UsdStepper stepper(pp::Configuration::uniform(100000, k, 25000),
                     core::UsdOptions{core::StepMode::kEveryInteraction});
  for (auto _ : state) stepper.step(state);
  state.SetItemsProcessed(stepper.interactions());
}
BENCHMARK(BM_UsdPlainStep)->Arg(2)->Arg(16)->Arg(128)->Arg(1024);

void BM_UsdSkipStep(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  UsdStepper stepper(pp::Configuration::uniform(100000, k, 25000),
                     core::UsdOptions{core::StepMode::kSkipUnproductive});
  for (auto _ : state) stepper.step(state);
  state.SetItemsProcessed(stepper.interactions());
}
BENCHMARK(BM_UsdSkipStep)->Arg(2)->Arg(16)->Arg(128)->Arg(1024);

void BM_UrnEngine(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const bool fenwick = state.range(1) != 0;
  UsdStepper stepper(
      pp::Configuration::uniform(100000, k, 25000),
      core::UsdOptions{core::StepMode::kEveryInteraction,
                       fenwick ? urn::UrnEngine::kFenwick
                               : urn::UrnEngine::kLinear});
  for (auto _ : state) stepper.step(state);
  state.SetItemsProcessed(stepper.interactions());
}
BENCHMARK(BM_UrnEngine)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_AgentScheduler(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  core::UsdProtocol usd(k);
  const auto counts =
      pp::Configuration::uniform(100000, k, 25000).state_counts();
  pp::AgentScheduler sched(usd, counts, rng::Rng(1));
  for (auto _ : state) sched.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sched.steps()));
}
BENCHMARK(BM_AgentScheduler)->Arg(2)->Arg(16)->Arg(128);

void BM_CountScheduler(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  core::UsdProtocol usd(k);
  const auto counts =
      pp::Configuration::uniform(100000, k, 25000).state_counts();
  pp::CountScheduler sched(usd, counts, rng::Rng(1));
  for (auto _ : state) sched.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sched.steps()));
}
BENCHMARK(BM_CountScheduler)->Arg(2)->Arg(16)->Arg(128);

void BM_GossipRound(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const auto x0 = pp::Configuration::uniform(1u << 20, k, 0);
  std::uint64_t seed = 0;
  std::uint64_t rounds = 0;
  gossip::GossipUsd g(x0, rng::Rng(++seed));
  for (auto _ : state) {
    if (g.is_consensus()) {
      state.PauseTiming();
      rounds += g.rounds();
      g = gossip::GossipUsd(x0, rng::Rng(++seed));
      state.ResumeTiming();
    }
    g.round();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>((rounds + g.rounds()) * (1u << 20)));
}
BENCHMARK(BM_GossipRound)->Arg(2)->Arg(16)->Arg(64);

}  // namespace
