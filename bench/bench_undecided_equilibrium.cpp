// E5 — Lemmas 1, 3, 4: the number of undecided agents.
//
// Three claims about u(t):
//   * (Lemma 1) u rises to at least (n - xmax)/2 within 7 n ln n
//     interactions;
//   * (Lemma 3) u stays below n/2 - Omega(sqrt(n log n)) forever after;
//   * (Lemma 4) u stays above (n - xmax)/2 - 8 sqrt(n ln n) after T1.
// The equilibrium u* = n(k-1)/(2k-1) is where the up/down drift of u
// balances; we print the observed u-band against u* and the two bounds.
#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/transition_probs.hpp"
#include "bench_common.hpp"
#include "core/budget.hpp"
#include "runner/run.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct Band {
  double t1 = 0.0;               // first time 2u >= n - xmax
  double min_after = 0.0;        // min of u - (n - xmax)/2 after T1
  double max_u = 0.0;            // max u over the whole run
  bool upper_ok = false;         // u < n/2 throughout
  bool lower_ok = false;         // u >= (n-xmax)/2 - 8 sqrt(n ln n) after T1
};

Band measure(pp::Count n, int k, std::uint64_t seed) {
  const auto x0 = pp::Configuration::uniform(n, k, 0);
  core::UsdSimulator sim(x0, rng::Rng(seed),
                         core::UsdOptions{core::StepMode::kSkipUnproductive});
  Band band;
  band.upper_ok = true;
  band.lower_ok = true;
  band.min_after = static_cast<double>(n);
  bool reached_t1 = false;
  const double slack = 8.0 * std::sqrt(static_cast<double>(n) *
                                       std::log(static_cast<double>(n)));
  sim.run_observed(
      core::default_interaction_cap(n, k),
      std::max<pp::Count>(1, n / 64),
      [&](std::uint64_t t, std::span<const pp::Count> opinions,
          pp::Count u) {
        const pp::Count xmax =
            *std::max_element(opinions.begin(), opinions.end());
        const double du = static_cast<double>(u);
        band.max_u = std::max(band.max_u, du);
        if (2 * u >= n) band.upper_ok = false;
        const double floor_level =
            (static_cast<double>(n) - static_cast<double>(xmax)) / 2.0;
        if (!reached_t1 && du >= floor_level) {
          reached_t1 = true;
          band.t1 = static_cast<double>(t);
        }
        if (reached_t1 && xmax < n) {
          band.min_after = std::min(band.min_after, du - floor_level);
          if (du < floor_level - slack) band.lower_ok = false;
        }
      });
  return band;
}

}  // namespace

int main() {
  bench::banner("E5", "Lemmas 1, 3, 4 (+ u* equilibrium)",
                "u(t) rises within 7 n ln n, then stays in "
                "[(n-xmax)/2 - 8 sqrt(n ln n), n/2).");

  const int trials = runner::scaled_trials(8);
  const pp::Count n = runner::scaled(65536);
  runner::Table table({"k", "in regime?", "u*/n", "mean T1", "7 n ln n",
                       "max u/n", "u<n/2", "lower bound held"});
  runner::CsvWriter csv("bench_undecided_equilibrium.csv",
                        {"k", "u_star", "mean_t1", "max_u"});

  for (int k : {2, 4, 8, 16, 32, 64}) {
    const auto rows = runner::run_trials<Band>(
        trials, 0xE5000 + static_cast<std::uint64_t>(k),
        [n, k](std::uint64_t seed) { return measure(n, k, seed); });
    stats::Samples t1, max_u;
    int upper = 0, lower = 0;
    for (const auto& row : rows) {
      t1.add(row.t1);
      max_u.add(row.max_u);
      upper += row.upper_ok ? 1 : 0;
      lower += row.lower_ok ? 1 : 0;
    }
    const double ustar = analysis::u_star(n, k);
    // Lemma 3 needs k <= c sqrt(n)/log^2 n; report how far each k sits
    // from that regime (the n/2 ceiling is only promised inside it).
    const double dn = static_cast<double>(n);
    const double regime_c =
        static_cast<double>(k) * std::log(dn) * std::log(dn) / std::sqrt(dn);
    table.add_row(
        {std::to_string(k),
         regime_c <= 4.0 ? "yes (c<=4)" : "no (c=" + runner::fmt(regime_c, 0) + ")",
         runner::fmt(ustar / static_cast<double>(n), 3),
         runner::fmt_compact(t1.mean()),
         runner::fmt_compact(7.0 * bench::n_log_n(n)),
         runner::fmt(max_u.mean() / static_cast<double>(n), 3),
         std::to_string(upper) + "/" + std::to_string(trials),
         std::to_string(lower) + "/" + std::to_string(trials)});
    csv.write_row({std::to_string(k), runner::fmt(ustar, 1),
                   runner::fmt(t1.mean(), 1), runner::fmt(max_u.mean(), 1)});
  }
  table.print();
  std::printf("\nexpected shape: T1 well below 7 n ln n; max u/n below but\n"
              "approaching u*/n -> 1/2 as k grows. The u < n/2 ceiling is\n"
              "promised only for k = O(sqrt(n)/log^2 n) (the 'in regime'\n"
              "column); out-of-regime k may brush past n/2, exactly as the\n"
              "k-range condition in Theorem 2 predicts. The Lemma 4 floor\n"
              "holds everywhere.\n");
  std::printf("wrote bench_undecided_equilibrium.csv\n");
  return 0;
}
