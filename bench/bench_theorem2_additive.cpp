// E3 — Theorem 2(2): additive bias.
//
// With an initial additive bias of Omega(sqrt(n log n)) the USD reaches
// plurality consensus within O(n^2 log n / x1(0)) = O(k n log n)
// interactions. Shape checks:
//   * win rate ~ 1;
//   * interactions / (k n log n) bounded by a constant across n and k;
//   * log-log slope in n close to 1 (n log n growth), in k close to 1.
#include <vector>

#include "bench_common.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct Outcome {
  double interactions = 0.0;
  bool plurality_won = false;
};

Outcome measure(const pp::Configuration& x0, std::uint64_t seed) {
  runner::RunOptions opts;
  opts.track_phases = false;
  const auto r = runner::run_usd(x0, seed, opts);
  return {static_cast<double>(r.interactions),
          r.converged && r.plurality_won};
}

}  // namespace

int main() {
  bench::banner("E3", "Theorem 2(2)",
                "Additive bias 4*sqrt(n log n): plurality consensus within "
                "O(k n log n) interactions, plurality wins w.h.p.");

  const int trials = runner::scaled_trials(12);
  runner::Table table({"n", "k", "beta", "mean interactions", "wins",
                       "T / (k n ln n)", "T / (n^2 ln n / x1)"});
  runner::CsvWriter csv("bench_theorem2_additive.csv",
                        {"n", "k", "beta", "mean_interactions", "win_rate"});

  std::vector<double> ns_fit, tn_fit, bound_fit, t_all_fit;

  const auto run_cell = [&](pp::Count n, int k) {
    const pp::Count beta = bench::additive_beta(n, 4.0);
    const auto x0 = pp::Configuration::with_additive_bias(n, k, 0, beta);
    const auto rows = runner::run_trials<Outcome>(
        trials, 0xE3000 + n * 131 + static_cast<pp::Count>(k),
        [&x0](std::uint64_t seed) { return measure(x0, seed); });
    stats::Samples t;
    int wins = 0;
    for (const auto& row : rows) {
      t.add(row.interactions);
      wins += row.plurality_won ? 1 : 0;
    }
    // The paper's precise bound is n^2 log n / x1(0); the k n log n form
    // follows from x1(0) >= n/(2k).
    const double precise = static_cast<double>(n) * bench::n_log_n(n) /
                           static_cast<double>(x0.opinion(0));
    table.add_row({runner::fmt_int(n), std::to_string(k),
                   runner::fmt_int(beta), runner::fmt_compact(t.mean()),
                   std::to_string(wins) + "/" + std::to_string(trials),
                   runner::fmt(t.mean() / (k * bench::n_log_n(n)), 3),
                   runner::fmt(t.mean() / precise, 3)});
    bound_fit.push_back(precise);
    t_all_fit.push_back(t.mean());
    csv.write_row({std::to_string(n), std::to_string(k),
                   std::to_string(beta), runner::fmt(t.mean(), 1),
                   runner::fmt(static_cast<double>(wins) / trials, 3)});
    return t.mean();
  };

  // Sweep n at k = 8.
  for (pp::Count n : {runner::scaled(8192), runner::scaled(32768),
                      runner::scaled(131072)}) {
    const double t = run_cell(n, 8);
    ns_fit.push_back(static_cast<double>(n));
    tn_fit.push_back(t);
  }
  // Sweep k at fixed n.
  const pp::Count n_fix = runner::scaled(32768);
  for (int k : {2, 4, 16, 32}) {
    run_cell(n_fix, k);
  }
  table.print();

  std::printf("\nscaling: slope in n = %.2f (n log n on log-log ~ 1.1);\n"
              "T vs the paper's predictor n^2 log n / x1(0) across all\n"
              "cells: slope = %.2f (paper: 1)\n",
              stats::loglog_fit(ns_fit, tn_fit).slope,
              stats::loglog_fit(bound_fit, t_all_fit).slope);
  std::printf("wrote bench_theorem2_additive.csv\n");
  return 0;
}
