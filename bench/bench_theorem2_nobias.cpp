// E4 — Theorem 2(3): no initial bias.
//
// From a perfectly uniform start (x_i = n/k for all i) the USD still
// reaches consensus within O(k n log n) interactions w.h.p., and the
// winner is a *significant* opinion of the initial configuration (with a
// uniform start, every opinion is significant — so we additionally verify
// the winner distribution is roughly uniform over the opinions, the
// symmetry the paper's anti-concentration argument starts from).
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "runner/csv.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

using namespace kusd;

namespace {

struct Outcome {
  double interactions = 0.0;
  int winner = -1;
  bool significant = false;
};

}  // namespace

int main() {
  bench::banner("E4", "Theorem 2(3)",
                "No bias: consensus on a significant opinion within "
                "O(k n log n) interactions.");

  const int trials = runner::scaled_trials(16);
  runner::Table table({"n", "k", "mean interactions", "max interactions",
                       "T_mean/(k n ln n)", "winner significant",
                       "max winner share"});
  runner::CsvWriter csv("bench_theorem2_nobias.csv",
                        {"n", "k", "mean_interactions", "significant_rate"});

  for (pp::Count n : {runner::scaled(16384), runner::scaled(65536)}) {
    for (int k : {2, 8, 32}) {
      const auto x0 = pp::Configuration::uniform(n, k, 0);
      const auto rows = runner::run_trials<Outcome>(
          trials, 0xE4000 + n * 7 + static_cast<pp::Count>(k),
          [&x0](std::uint64_t seed) {
            runner::RunOptions opts;
            opts.track_phases = false;
            const auto r = runner::run_usd(x0, seed, opts);
            return Outcome{static_cast<double>(r.interactions), r.winner,
                           r.converged && r.winner_initially_significant};
          });
      stats::Samples t;
      int significant = 0;
      std::vector<int> winner_hits(static_cast<std::size_t>(k), 0);
      for (const auto& row : rows) {
        t.add(row.interactions);
        significant += row.significant ? 1 : 0;
        if (row.winner >= 0) {
          ++winner_hits[static_cast<std::size_t>(row.winner)];
        }
      }
      const int max_hits =
          *std::max_element(winner_hits.begin(), winner_hits.end());
      table.add_row(
          {runner::fmt_int(n), std::to_string(k),
           runner::fmt_compact(t.mean()), runner::fmt_compact(t.max()),
           runner::fmt(t.mean() / (k * bench::n_log_n(n)), 3),
           std::to_string(significant) + "/" + std::to_string(trials),
           runner::fmt(static_cast<double>(max_hits) / trials, 2)});
      csv.write_row({std::to_string(n), std::to_string(k),
                     runner::fmt(t.mean(), 1),
                     runner::fmt(static_cast<double>(significant) / trials,
                                 3)});
    }
  }
  table.print();
  std::printf("\nwith a uniform start every opinion is significant, so the\n"
              "winner-significance column must be trials/trials; the max\n"
              "winner share stays well below 1 (no deterministic winner).\n");
  std::printf("wrote bench_theorem2_nobias.csv\n");
  return 0;
}
