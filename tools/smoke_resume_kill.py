#!/usr/bin/env python3
"""Resume-after-SIGKILL smoke: kill a journaled sweep mid-grid, resume,
diff against golden.

The sweep service promises that a killed run loses at most the cell in
flight and that `--resume` reproduces the uninterrupted output byte for
byte (docs/sweep.md). The unit suite pins this at the library level at
every cell boundary (tests/test_sweep_service.cpp); this smoke pins the
*process* level: a real SIGKILL delivered from inside the run (the
KUSD_SWEEP_TRIP_CELLS hook raises it after N journaled cells), a real
resume invocation, and a byte diff of the CSV/JSONL artifacts against a
golden uninterrupted run. A single-journal `kusd merge` is diffed too.

Usage: smoke_resume_kill.py /path/to/kusd [workdir]
Exit 0 on success; 1 with a diagnostic on any contract violation.
"""

import os
import pathlib
import signal
import subprocess
import sys
import tempfile

SWEEP_ARGS = [
    "sweep", "--n", "400,800", "--k", "2,3", "--engine", "skip,gossip",
    "--trials", "3", "--seed", "11", "--threads", "2",
]
GRID_CELLS = 8  # 2 engines x 2 n x 2 k
TRIP_CELLS = 3  # SIGKILL after this many journaled cells


def run(cmd, **kwargs):
    return subprocess.run(cmd, capture_output=True, text=True, **kwargs)


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_same(actual: pathlib.Path, golden: pathlib.Path, what: str):
    if actual.read_bytes() != golden.read_bytes():
        fail(f"{what}: {actual} differs from golden {golden}")
    print(f"ok: {what} byte-identical to golden")


def main():
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} /path/to/kusd [workdir]")
    kusd = pathlib.Path(sys.argv[1]).resolve()
    if not kusd.is_file():
        fail(f"kusd binary not found: {kusd}")
    if len(sys.argv) > 2:
        work = pathlib.Path(sys.argv[2]).resolve()
        work.mkdir(parents=True, exist_ok=True)
    else:
        work = pathlib.Path(tempfile.mkdtemp(prefix="kusd_resume_kill_"))

    golden_csv = work / "golden.csv"
    golden_jsonl = work / "golden.jsonl"
    journal = work / "journal.jsonl"
    out_csv = work / "out.csv"
    out_jsonl = work / "out.jsonl"
    merged_csv = work / "merged.csv"
    for path in (golden_csv, golden_jsonl, journal, out_csv, out_jsonl,
                 merged_csv):
        path.unlink(missing_ok=True)

    # 1. Golden: the uninterrupted run.
    result = run([str(kusd), *SWEEP_ARGS,
                  "--out", str(golden_csv), "--json", str(golden_jsonl)])
    if result.returncode != 0:
        fail(f"golden run failed ({result.returncode}):\n{result.stderr}")
    print("ok: golden run complete")

    # 2. Kill: same sweep, journaled, SIGKILL after TRIP_CELLS cells.
    env = dict(os.environ, KUSD_SWEEP_TRIP_CELLS=str(TRIP_CELLS))
    result = run([str(kusd), *SWEEP_ARGS, "--journal", str(journal),
                  "--out", str(out_csv), "--json", str(out_jsonl)],
                 env=env)
    if result.returncode != -signal.SIGKILL:
        fail(f"expected the tripped run to die by SIGKILL, got "
             f"{result.returncode}:\n{result.stderr}")
    lines = journal.read_text(encoding="utf-8").splitlines()
    recorded = len(lines) - 1  # header + one line per cell
    if recorded != TRIP_CELLS:
        fail(f"journal holds {recorded} cells after the kill, "
             f"expected {TRIP_CELLS}")
    print(f"ok: SIGKILL mid-grid, journal holds {recorded}/{GRID_CELLS} "
          f"cells")

    # 3. Resume: replay the journal, compute the rest, same artifacts.
    result = run([str(kusd), *SWEEP_ARGS, "--resume", str(journal),
                  "--out", str(out_csv), "--json", str(out_jsonl)])
    if result.returncode != 0:
        fail(f"resume failed ({result.returncode}):\n{result.stderr}")
    expect_same(out_csv, golden_csv, "resumed CSV")
    expect_same(out_jsonl, golden_jsonl, "resumed JSONL")
    lines = journal.read_text(encoding="utf-8").splitlines()
    if len(lines) - 1 != GRID_CELLS:
        fail(f"resumed journal holds {len(lines) - 1} cells, expected "
             f"{GRID_CELLS}")

    # 4. The completed journal merges back to the golden bytes too.
    result = run([str(kusd), "merge", "--inputs", str(journal),
                  "--out", str(merged_csv)])
    if result.returncode != 0:
        fail(f"merge failed ({result.returncode}):\n{result.stderr}")
    expect_same(merged_csv, golden_csv, "merged CSV")

    print("resume-kill smoke: PASS")


if __name__ == "__main__":
    main()
