#!/usr/bin/env python3
"""clang-tidy driver with a checked-in findings baseline.

Runs clang-tidy (profile: the repo's .clang-tidy) over every first-party
translation unit in compile_commands.json and diffs the findings against
tools/tidy_baseline.json, so CI fails only on NEW findings — the baseline
holds the individually justified remainder (each entry is argued in
docs/verification.md) and is expected to stay at or near empty.

Findings are normalized to (file, check, message) — deliberately NOT line
numbers, so unrelated edits above a baselined finding do not churn the
baseline. Two otherwise-identical findings on different lines of the same
file collapse into one entry with a count.

Usage:
  tools/run_tidy.py --check-baseline [--build-dir DIR]   # CI / ctest mode
  tools/run_tidy.py --update-baseline [--build-dir DIR]  # after a fix pass
  tools/run_tidy.py [--build-dir DIR]                    # print findings

Dependency gating: clang-tidy is not part of the pinned dev container, so
by default a missing clang-tidy (or missing compile_commands.json) SKIPS
with exit 0 and a loud message — the tier-1 lanes stay hermetic, and the
CI tidy job passes --require to turn either absence into a hard failure.

Exit status: 0 clean/skipped, 1 new findings, 2 environment/usage error.
stdlib-only, in the style of check_doc_links.py / lint_determinism.py.
"""

import argparse
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "tools" / "tidy_baseline.json"
# First-party directories whose TUs are tidied and whose headers count.
SOURCE_DIRS = ("src", "tests", "bench", "tools", "examples")
# warning/error lines: <abs-path>:<line>:<col>: warning: <msg> [<check>]
FINDING = re.compile(
    r"^(?P<file>/[^:]+):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<message>.*?)\s+\[(?P<check>[\w.,-]+)\]$")

SKIP_NOTE = ("SKIPPED (not a failure): install clang-tidy and configure "
             "with CMAKE_EXPORT_COMPILE_COMMANDS=ON to run this check; "
             "CI runs it with --require")


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in
                                   range(21, 13, -1)]
    for name in candidates:
        if shutil.which(name):
            return name
    return None


def find_build_dir(explicit: str | None) -> Path | None:
    if explicit:
        path = Path(explicit)
        return path if (path / "compile_commands.json").exists() else None
    for name in ("build", "build-release", "build-debug", "build-asan",
                 "build-tsan"):
        if (ROOT / name / "compile_commands.json").exists():
            return ROOT / name
    return None


def first_party_sources(build_dir: Path) -> list[Path]:
    with open(build_dir / "compile_commands.json", encoding="utf-8") as fh:
        entries = json.load(fh)
    files = set()
    for entry in entries:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = (Path(entry["directory"]) / path).resolve()
        try:
            rel = path.relative_to(ROOT)
        except ValueError:
            continue  # fetched third-party TU (e.g. googletest)
        if rel.parts and rel.parts[0] in SOURCE_DIRS:
            files.add(path)
    return sorted(files)


def run_clang_tidy(tidy: str, build_dir: Path,
                   sources: list[Path]) -> dict[tuple[str, str, str], int]:
    header_filter = "^" + re.escape(str(ROOT)) + \
        "/(" + "|".join(SOURCE_DIRS) + ")/"
    findings: dict[tuple[str, str, str], int] = {}
    for source in sources:
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "-quiet",
             f"--header-filter={header_filter}", str(source)],
            capture_output=True, text=True, check=False)
        # clang-tidy exits non-zero on hard compile errors; surface those
        # instead of silently reporting a clean file.
        hard_error = "error: " in proc.stderr and proc.returncode != 0
        if hard_error:
            print(proc.stderr, file=sys.stderr)
            print(f"clang-tidy could not compile {source}", file=sys.stderr)
            sys.exit(2)
        for line in proc.stdout.splitlines():
            match = FINDING.match(line)
            if not match:
                continue
            try:
                rel = Path(match["file"]).resolve().relative_to(ROOT)
            except ValueError:
                continue
            if not rel.parts or rel.parts[0] not in SOURCE_DIRS:
                continue
            key = (rel.as_posix(), match["check"], match["message"])
            findings[key] = findings.get(key, 0) + 1
    return findings


def load_baseline() -> dict[tuple[str, str, str], int]:
    if not BASELINE.exists():
        return {}
    with open(BASELINE, encoding="utf-8") as fh:
        data = json.load(fh)
    return {(e["file"], e["check"], e["message"]): e.get("count", 1)
            for e in data.get("findings", [])}


def save_baseline(findings: dict[tuple[str, str, str], int]) -> None:
    data = {
        "comment": "clang-tidy findings accepted as baseline; every entry "
                   "must be justified in docs/verification.md. Regenerate "
                   "with tools/run_tidy.py --update-baseline.",
        "findings": [
            {"file": file, "check": check, "message": message, "count": count}
            for (file, check, message), count in sorted(findings.items())
        ],
    }
    BASELINE.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def describe(key: tuple[str, str, str], count: int) -> str:
    file, check, message = key
    times = f" (x{count})" if count > 1 else ""
    return f"  {file}: [{check}] {message}{times}"


def main() -> int:
    parser = argparse.ArgumentParser(
        description="clang-tidy with a findings baseline (module docstring)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check-baseline", action="store_true",
                      help="fail (exit 1) on findings not in the baseline")
    mode.add_argument("--update-baseline", action="store_true",
                      help="rewrite tools/tidy_baseline.json from this run")
    parser.add_argument("--build-dir", default=None,
                        help="build dir containing compile_commands.json "
                             "(default: first of build*/ that has one)")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy executable to use")
    parser.add_argument("--require", action="store_true",
                        help="treat missing clang-tidy/compile database as "
                             "an error instead of skipping (CI mode)")
    args = parser.parse_args()

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        print("clang-tidy not found. " + SKIP_NOTE,
              file=sys.stderr if args.require else sys.stdout)
        return 2 if args.require else 0
    build_dir = find_build_dir(args.build_dir)
    if build_dir is None:
        print("no compile_commands.json found. " + SKIP_NOTE,
              file=sys.stderr if args.require else sys.stdout)
        return 2 if args.require else 0

    sources = first_party_sources(build_dir)
    if not sources:
        print("compile database has no first-party sources", file=sys.stderr)
        return 2
    version = subprocess.run([tidy, "--version"], capture_output=True,
                             text=True, check=False).stdout.strip()
    print(f"{tidy} over {len(sources)} TUs (build dir {build_dir.name})")
    print(version.splitlines()[-1] if version else "")
    findings = run_clang_tidy(tidy, build_dir, sources)

    if args.update_baseline:
        save_baseline(findings)
        total = sum(findings.values())
        print(f"baseline updated: {len(findings)} distinct finding(s), "
              f"{total} total — justify each in docs/verification.md")
        return 0

    baseline = load_baseline()
    new = {k: c for k, c in findings.items() if k not in baseline}
    resolved = {k: c for k, c in baseline.items() if k not in findings}

    if not args.check_baseline:
        for key, count in sorted(findings.items()):
            print(describe(key, count))
        print(f"{sum(findings.values())} finding(s), "
              f"{len(new)} not in baseline")
        return 0

    if resolved:
        print("baseline entries no longer reported (stale — run "
              "--update-baseline to shrink the baseline):")
        for key, count in sorted(resolved.items()):
            print(describe(key, count))
    if new:
        print("NEW clang-tidy findings (not in tools/tidy_baseline.json):",
              file=sys.stderr)
        for key, count in sorted(new.items()):
            print(describe(key, count), file=sys.stderr)
        print(f"{len(new)} new finding(s). Fix them, or if a finding is a "
              f"justified false positive, add it to the baseline with "
              f"--update-baseline AND document it in docs/verification.md.",
              file=sys.stderr)
        return 1
    print(f"clang-tidy clean vs baseline "
          f"({len(baseline)} baselined finding(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
