#!/usr/bin/env python3
"""Unit tests for the kusdlint framework and its passes (fixture trees).

Each test builds a minimal repo in a tempdir and runs lint_all.py on it
as a subprocess — the same entrypoint CI and the smoke ctests use — so
exit codes, allowlist semantics and output format are all covered end to
end. Run directly or via the smoke_kusdlint_selftest ctest:

  python3 tools/test_kusdlint.py
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

LINT_ALL = Path(__file__).resolve().parent / "lint_all.py"

# A minimal, fully *consistent* contract-sync fixture: two registered
# engines, a matching catalog table, matching sweep doc rows and CSV
# schema, and a CLI usage string naming the graph-axis engine. Tests
# mutate one surface at a time and assert the drift is caught.
CONTRACT_FIXTURE = {
    "src/sim/engines.cpp": """\
#include "sim/engines.hpp"
namespace kusd::sim {
void register_builtin_engines(Registry& registry) {
  registry.add("alpha",
               {.factory = nullptr,
                .description = "first test engine"});
  registry.add("beta",
               {.factory = nullptr,
                .description = "graph test engine",
                .uses_graph_axis = true,
                .uses_chunk_options = true});
}
}  // namespace kusd::sim
""",
    "docs/architecture.md": """\
# Architecture

## Engine catalog

| engine | description | graph axis | chunked | decided start | aggregated |
|--------|-------------|------------|---------|---------------|------------|
| `alpha` | first test engine | | | | |
| `beta` | graph test engine | yes | yes | | |
""",
    "docs/sweep.md": """\
# Sweep

| option | values | meaning |
|--------|--------|---------|
| `--engine` | registry names | `alpha`, `beta` |
| `--graph` | specs | topology axis; only `beta` |
| `--trials` | 25 | Monte-Carlo trials per point |
| `--inputs` | journals | merge: shard journals to combine |
| `--out` | file | merge: CSV destination |

CSV header = JSONL keys:

```
engine,n,k
```
""",
    "src/runner/sweep.cpp": """\
#include "runner/sweep.hpp"
namespace kusd::runner {
std::vector<std::string> Sweep::csv_header() {
  return {"engine", "n", "k"};
}
}  // namespace kusd::runner
""",
    "tools/kusd_cli.cpp": """\
static const char kUsage[] =
    "kusd sweep --engine alpha,beta --graph SPEC (beta only)\\n";
int cmd_sweep(int argc, char** argv) {
  static const std::set<std::string> known = {
      "engine", "graph", "trials"};
  return 0;
}
int cmd_merge(int argc, char** argv) {
  static const std::set<std::string> known = {
      "inputs", "out"};
  return 0;
}
""",
}


def run_lint(root: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT_ALL), str(root), *extra],
        capture_output=True, text=True, check=False)


class FixtureTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel: str, text: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    def write_contract_fixture(self, **overrides: str) -> None:
        for rel, text in {**CONTRACT_FIXTURE, **overrides}.items():
            self.write(rel, text)


class LintAllCliTest(FixtureTest):
    def test_list_exits_zero_and_names_all_passes(self):
        result = run_lint(self.root, "--list")
        self.assertEqual(result.returncode, 0, result.stderr)
        for name in ("layering", "header-self", "rng-discipline",
                     "contract-sync", "determinism", "doc-links"):
            self.assertIn(name, result.stdout)

    def test_unknown_pass_is_a_usage_error(self):
        result = run_lint(self.root, "--pass", "no-such-pass")
        self.assertEqual(result.returncode, 2)
        self.assertIn("unknown pass", result.stderr)

    def test_json_report_is_written(self):
        self.write("src/pp/x.cpp", '#include "runner/sweep.hpp"\n')
        report = self.root / "report.json"
        result = run_lint(self.root, "--pass", "layering",
                          "--json", str(report))
        self.assertEqual(result.returncode, 1)
        data = json.loads(report.read_text())
        self.assertEqual(data["passes"], ["layering"])
        self.assertEqual(data["findings"][0]["code"], "forbidden-dep")
        self.assertEqual(data["findings"][0]["file"], "src/pp/x.cpp")


class LayeringTest(FixtureTest):
    def test_upward_include_is_forbidden(self):
        self.write("src/pp/x.cpp", '#include "runner/sweep.hpp"\n')
        result = run_lint(self.root, "--pass", "layering")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[forbidden-dep]", result.stderr)

    def test_declared_downward_include_passes(self):
        self.write("src/runner/x.cpp", '#include "sim/registry.hpp"\n'
                                       '#include "pp/configuration.hpp"\n')
        self.write("src/pp/configuration.hpp", "#pragma once\n")
        self.write("src/sim/registry.hpp", "#pragma once\n")
        result = run_lint(self.root, "--pass", "layering")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_consumers_may_include_anything(self):
        self.write("tests/t.cpp", '#include "runner/sweep.hpp"\n'
                                  '#include "util/check.hpp"\n')
        result = run_lint(self.root, "--pass", "layering")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_undeclared_module_directory_is_flagged(self):
        self.write("src/mystery/x.cpp", "int x;\n")
        result = run_lint(self.root, "--pass", "layering")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[unknown-module]", result.stderr)

    def test_unresolvable_quoted_include_is_flagged(self):
        self.write("src/util/x.cpp", '#include "nonexistent_file.hpp"\n')
        result = run_lint(self.root, "--pass", "layering")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[unresolved-include]", result.stderr)

    def test_sibling_include_resolves(self):
        self.write("bench/bench_x.cpp", '#include "bench_common.hpp"\n')
        self.write("bench/bench_common.hpp", "#pragma once\n")
        result = run_lint(self.root, "--pass", "layering")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_allowlist_suppresses_and_stale_entry_fails(self):
        self.write("src/pp/x.cpp", '#include "runner/sweep.hpp"\n')
        self.write("tools/layering_allowlist.txt",
                   "src/pp/x.cpp:forbidden-dep\n")
        self.assertEqual(
            run_lint(self.root, "--pass", "layering").returncode, 0)
        # Fix the violation but keep the entry: now it is stale.
        self.write("src/pp/x.cpp", "int x;\n")
        result = run_lint(self.root, "--pass", "layering")
        self.assertEqual(result.returncode, 1)
        self.assertIn("stale allowlist entry", result.stderr)


class HeaderSelfTest(FixtureTest):
    def test_transitive_use_needs_direct_include(self):
        self.write("src/core/a.cpp", '#include "core/a.hpp"\n'
                                     "int f() { return pp::magic(); }\n")
        self.write("src/core/a.hpp", "#pragma once\n")
        result = run_lint(self.root, "--pass", "header-self")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[missing-include]", result.stderr)

    def test_direct_include_satisfies_use(self):
        self.write("src/core/a.cpp",
                   '#include "pp/configuration.hpp"\n'
                   "int f() { return pp::magic(); }\n")
        result = run_lint(self.root, "--pass", "header-self")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_unused_module_include_is_dead(self):
        self.write("src/core/a.cpp", '#include "rng/rng.hpp"\n'
                                     "int f() { return 1; }\n")
        result = run_lint(self.root, "--pass", "header-self")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[dead-include]", result.stderr)

    def test_macro_use_counts_as_module_use(self):
        self.write("src/core/a.cpp", '#include "util/check.hpp"\n'
                                     "void f() { KUSD_DCHECK(true); }\n")
        result = run_lint(self.root, "--pass", "header-self")
        self.assertEqual(result.returncode, 0, result.stderr)


class RngDisciplineTest(FixtureTest):
    def test_std_distribution_outside_rng_is_flagged(self):
        self.write("src/core/a.cpp",
                   "std::uniform_int_distribution<int> d(0, 5);\n")
        result = run_lint(self.root, "--pass", "rng-discipline")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[std-distribution]", result.stderr)

    def test_src_rng_is_exempt(self):
        self.write("src/rng/rng.cpp",
                   "std::uniform_int_distribution<int> d(0, 5);\n"
                   "rng::Rng r(12345);\n")
        result = run_lint(self.root, "--pass", "rng-discipline")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_literal_seed_is_flagged(self):
        for line in ("rng::Rng r(42);", "rng::Rng r{0xDEADBEEF};",
                     "r.reseed(7);", "auto s = stream_seed(1, i);"):
            with self.subTest(line=line):
                self.write("src/core/a.cpp", line + "\n")
                result = run_lint(self.root, "--pass", "rng-discipline")
                self.assertEqual(result.returncode, 1, line)
                self.assertIn("[raw-seed]", result.stderr)

    def test_threaded_seed_passes(self):
        self.write("src/core/a.cpp",
                   "rng::Rng r(rng::stream_seed(seed, trial));\n")
        result = run_lint(self.root, "--pass", "rng-discipline")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_rng_copy_inside_loop_is_flagged(self):
        self.write("src/core/a.cpp",
                   "void f(rng::Rng& base) {\n"
                   "  for (int i = 0; i < 10; ++i) {\n"
                   "    rng::Rng fork = base;\n"
                   "  }\n"
                   "}\n")
        result = run_lint(self.root, "--pass", "rng-discipline")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[rng-copy-in-loop]", result.stderr)

    def test_rng_copy_outside_loop_passes(self):
        self.write("src/core/a.cpp",
                   "void f(rng::Rng& base) {\n"
                   "  rng::Rng fork = base;\n"
                   "}\n")
        result = run_lint(self.root, "--pass", "rng-discipline")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_raw_intrinsics_outside_rng_are_flagged(self):
        for line in ("#include <immintrin.h>",
                     "#include <emmintrin.h>",
                     "__m256i x = _mm256_set1_epi64x(1);",
                     "__m128d d = _mm_set1_pd(0.5);"):
            with self.subTest(line=line):
                self.write("src/core/a.cpp", line + "\n")
                result = run_lint(self.root, "--pass", "rng-discipline")
                self.assertEqual(result.returncode, 1, line)
                self.assertIn("[raw-intrinsics]", result.stderr)

    def test_raw_intrinsics_inside_src_rng_are_exempt(self):
        self.write("src/rng/uniform_block_avx2.cpp",
                   "#include <immintrin.h>\n"
                   "__m256i x = _mm256_set1_epi64x(1);\n")
        result = run_lint(self.root, "--pass", "rng-discipline")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_tier_dispatch_api_use_passes(self):
        # Consuming the dispatched API (rng/simd.hpp names, no
        # intrinsics) is exactly what the pass wants to see.
        self.write("src/core/a.cpp",
                   '#include "rng/simd.hpp"\n'
                   "auto t = rng::simd::active_tier();\n")
        result = run_lint(self.root, "--pass", "rng-discipline")
        self.assertEqual(result.returncode, 0, result.stderr)


class ContractSyncTest(FixtureTest):
    def test_consistent_fixture_passes(self):
        self.write_contract_fixture()
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_registered_engine_without_doc_row_fails(self):
        # The acceptance case: adding an engine registration without its
        # architecture.md catalog row must fail the lint.
        self.write_contract_fixture(**{
            "docs/architecture.md": """\
# Architecture

## Engine catalog

| engine | description | graph axis | chunked | decided start | aggregated |
|--------|-------------|------------|---------|---------------|------------|
| `alpha` | first test engine | | | | |
"""})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[missing-doc-row]", result.stderr)
        self.assertIn("beta", result.stderr)

    def test_ghost_doc_row_fails(self):
        self.write_contract_fixture(**{
            "docs/architecture.md": CONTRACT_FIXTURE["docs/architecture.md"]
            + "| `gamma` | never registered | | | | |\n"})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[ghost-doc-row]", result.stderr)

    def test_description_drift_fails(self):
        self.write_contract_fixture(**{
            "docs/architecture.md": CONTRACT_FIXTURE[
                "docs/architecture.md"].replace(
                "first test engine", "stale description")})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[doc-desc-drift]", result.stderr)

    def test_flag_drift_fails(self):
        self.write_contract_fixture(**{
            "docs/architecture.md": CONTRACT_FIXTURE[
                "docs/architecture.md"].replace(
                "| `beta` | graph test engine | yes | yes | | |",
                "| `beta` | graph test engine | | yes | | |")})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[doc-flag-drift]", result.stderr)

    def test_lockstep_flag_is_checked_in_the_catalog(self):
        # supports_lockstep mirrors a `lockstep` catalog column exactly
        # like the other EngineInfo flags: a matching cell passes, a
        # stale one is doc-flag-drift.
        engines = CONTRACT_FIXTURE["src/sim/engines.cpp"].replace(
            '.description = "first test engine"',
            '.description = "first test engine",\n'
            '                .supports_lockstep = true')
        catalog = """\
# Architecture

## Engine catalog

| engine | description | graph axis | chunked | decided start | aggregated | lockstep |
|--------|-------------|------------|---------|---------------|------------|----------|
| `alpha` | first test engine | | | | | yes |
| `beta` | graph test engine | yes | yes | | | |
"""
        self.write_contract_fixture(**{
            "src/sim/engines.cpp": engines,
            "docs/architecture.md": catalog})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 0, result.stderr)

        self.write("docs/architecture.md", catalog.replace(
            "| `alpha` | first test engine | | | | | yes |",
            "| `alpha` | first test engine | | | | | |"))
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[doc-flag-drift]", result.stderr)
        self.assertIn("supports_lockstep", result.stderr)

    def test_missing_catalog_section_fails(self):
        self.write_contract_fixture(**{
            "docs/architecture.md": "# Architecture\n\nno catalog here\n"})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[missing-doc-section]", result.stderr)

    def test_schema_drift_fails(self):
        self.write_contract_fixture(**{
            "src/runner/sweep.cpp": CONTRACT_FIXTURE[
                "src/runner/sweep.cpp"].replace(
                '"engine", "n", "k"', '"engine", "n", "k", "extra"')})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[schema-drift]", result.stderr)

    def test_sweep_doc_missing_engine_fails(self):
        self.write_contract_fixture(**{
            "docs/sweep.md": CONTRACT_FIXTURE["docs/sweep.md"].replace(
                "`alpha`, `beta`", "`alpha`")})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[sweep-doc-drift]", result.stderr)

    def test_cli_usage_missing_graph_engine_fails(self):
        self.write_contract_fixture(**{
            "tools/kusd_cli.cpp":
                'static const char kUsage[] = "kusd sweep --engine '
                'alpha --graph SPEC\\n";\n'
                'static const std::set<std::string> known = {\n'
                '    "engine", "graph", "trials"};\n'})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[cli-help-drift]", result.stderr)

    def test_missing_input_file_is_a_usage_error(self):
        self.write_contract_fixture()
        (self.root / "docs/sweep.md").unlink()
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 2)

    def test_accepted_flag_without_doc_row_fails(self):
        # The acceptance case for the flag contract: teaching cmd_sweep a
        # new flag without its docs/sweep.md row must fail the lint.
        self.write_contract_fixture(**{
            "tools/kusd_cli.cpp": CONTRACT_FIXTURE[
                "tools/kusd_cli.cpp"].replace(
                '"engine", "graph", "trials"',
                '"engine", "graph", "trials", "lockstep-schedule"')})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[flag-doc-drift]", result.stderr)
        self.assertIn("lockstep-schedule", result.stderr)

    def test_merge_flag_without_doc_row_fails(self):
        # Every subcommand's known-set is covered, not just cmd_sweep's:
        # a new merge flag without a doc row must fail too, attributed to
        # the right subcommand.
        self.write_contract_fixture(**{
            "tools/kusd_cli.cpp": CONTRACT_FIXTURE[
                "tools/kusd_cli.cpp"].replace(
                '"inputs", "out"', '"inputs", "out", "strict"')})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[flag-doc-drift]", result.stderr)
        self.assertIn("merge flag '--strict'", result.stderr)

    def test_ghost_flag_row_fails(self):
        self.write_contract_fixture(**{
            "docs/sweep.md": CONTRACT_FIXTURE["docs/sweep.md"].replace(
                "| `--trials` | 25 | Monte-Carlo trials per point |",
                "| `--trials` | 25 | Monte-Carlo trials per point |\n"
                "| `--retired` | — | no longer accepted |")})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[flag-doc-drift]", result.stderr)
        self.assertIn("retired", result.stderr)

    def test_missing_known_flags_set_is_a_usage_error(self):
        self.write_contract_fixture(**{
            "tools/kusd_cli.cpp":
                'static const char kUsage[] = "kusd sweep --engine '
                'alpha,beta --graph SPEC (beta only)\\n";\n'})
        result = run_lint(self.root, "--pass", "contract-sync")
        self.assertEqual(result.returncode, 2)
        self.assertIn("known-flags", result.stderr)


if __name__ == "__main__":
    unittest.main()
