#!/usr/bin/env python3
"""Run every kusdlint pass (or a selection) over the repo.

The single lint entrypoint: CI runs `lint_all.py --json lint-report.json .`
and the smoke ctests run individual passes via `--pass`. Each pass's
allowlist (tools/<name>_allowlist.txt) is applied by the framework —
suppressed findings disappear, unused entries surface as stale-allowlist
findings — so the gate can only loosen through a reviewed allowlist edit.

Usage:
  lint_all.py [root] [--pass NAME]... [--list] [--json FILE]

Exit status: 0 all selected passes clean, 1 findings, 2 usage/config
error (unknown pass, malformed allowlist, missing inputs).
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from kusdlint import base  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(
        description="run kusdlint passes (see module docstring)")
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--pass", dest="passes", action="append",
                        metavar="NAME", default=[],
                        help="run only this pass (repeatable; default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write findings as a JSON report")
    args = parser.parse_args()

    try:
        if args.list:
            for p in base.all_passes():
                print(f"{p.name:18s} {p.description}")
            return 0

        ctx = base.Context(Path(args.root))
        passes = ([base.get_pass(name) for name in args.passes]
                  if args.passes else base.all_passes())

        all_findings = []
        summary = []
        for p in passes:
            findings = base.run_pass(p, ctx)
            all_findings += findings
            checked = getattr(p, "checked", None)
            scope = f" ({checked} inputs)" if checked is not None else ""
            status = (f"{len(findings)} finding(s)" if findings
                      else "clean")
            summary.append(f"  {p.name:18s} {status}{scope}")
    except base.UsageError as err:
        print(err, file=sys.stderr)
        return 2

    if args.json:
        report = {
            "root": str(ctx.root),
            "passes": [p.name for p in passes],
            "findings": [f.to_json() for f in all_findings],
        }
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n",
                                   encoding="utf-8")

    if all_findings:
        base.print_findings(all_findings)
        print(f"{len(all_findings)} finding(s) across "
              f"{len(passes)} pass(es); audited exceptions go in "
              f"tools/<pass>_allowlist.txt (see docs/verification.md)",
              file=sys.stderr)
        print("\n".join(summary), file=sys.stderr)
        return 1
    print(f"kusdlint: {len(passes)} pass(es) clean")
    print("\n".join(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
