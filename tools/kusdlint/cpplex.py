"""Shared C++ lexing for the kusdlint passes.

Promoted from the original lint_determinism.py and hardened: raw string
literals (R"delim(...)delim") are now blanked too, so a regex pass can no
longer be confused by an unescaped quote inside one. Everything is
line-preserving — blanked regions are replaced character-for-character
with spaces (newlines kept) so finding line numbers stay exact.
"""

import re

# Order matters: raw strings first (their bodies may contain quotes and
# comment markers), then ordinary string/char literals, then comments.
RAW_STRING = re.compile(r'R"([^()\\ \t\n]{0,16})\(.*?\)\1"', re.DOTALL)
STRING_LITERAL = re.compile(r'"(?:[^"\\\n]|\\.)*"')
CHAR_LITERAL = re.compile(r"'(?:[^'\\\n]|\\.)*'")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT = re.compile(r"//[^\n]*")

INCLUDE_DIRECTIVE = re.compile(r'^\s*#\s*include\s*(["<])([^">]+)[">]')


def _blank(match: re.Match) -> str:
    return re.sub(r"[^\n]", " ", match.group(0))


def strip_comments(text: str) -> str:
    """Blank comments only, preserving line numbers and string literals.

    For passes that need the strings (e.g. contract-sync reads registered
    engine names out of C++ string literals). Raw strings are blanked
    first so a `//` inside one does not eat the rest of the line.
    """
    text = RAW_STRING.sub(_blank, text)
    text = BLOCK_COMMENT.sub(_blank, text)
    return LINE_COMMENT.sub(_blank, text)


def strip_noise(text: str) -> str:
    """Blank comments and string/char literals, preserving line numbers."""
    text = RAW_STRING.sub(_blank, text)
    text = STRING_LITERAL.sub(_blank, text)
    text = CHAR_LITERAL.sub(_blank, text)
    text = BLOCK_COMMENT.sub(_blank, text)
    return LINE_COMMENT.sub(_blank, text)


def parse_includes(text: str) -> list[tuple[int, str, bool]]:
    """(line, target, quoted) for every #include in comment-stripped text.

    Pass the raw file text; comments are stripped here so a commented-out
    include does not count.
    """
    out = []
    for lineno, line in enumerate(strip_comments(text).splitlines(), start=1):
        match = INCLUDE_DIRECTIVE.match(line)
        if match:
            out.append((lineno, match.group(2), match.group(1) == '"'))
    return out


def extract_string_literals(text: str) -> list[tuple[int, str]]:
    """(line, value) for every ordinary string literal, comments stripped.

    Escape sequences are left verbatim (the passes only substring-match);
    raw strings are blanked (none of the checked sources use them).
    """
    stripped = strip_comments(text)
    out = []
    for match in STRING_LITERAL.finditer(stripped):
        lineno = stripped.count("\n", 0, match.start()) + 1
        out.append((lineno, match.group(0)[1:-1]))
    return out
