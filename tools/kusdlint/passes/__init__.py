"""Import every pass module so the @register decorators run."""

from kusdlint.passes import (  # noqa: F401
    contract_sync,
    determinism,
    doc_links,
    header_self,
    layering,
    rng_discipline,
)
