"""Header/module include hygiene: spell what you use, drop what you don't.

The compile-level half of this contract is the `kusd_header_check` CMake
target (one generated TU per public header — a header that relies on a
transitive include fails to build). This pass is the static half, at
module granularity, and also covers .cpp files:

  missing-include   the file spells `mod::` (or `kusd::mod::`) for some
                    other module but never directly includes a `mod/...`
                    header — it compiles only through a transitive
                    include, so an unrelated cleanup can break it
  dead-include      the file directly includes `mod/...` but never
                    spells `mod::` (nor a macro that module provides) —
                    a stale edge that widens rebuilds and muddies the
                    layering graph

A file that *declares* `namespace kusd::mod` (a forward declaration)
provides mod to itself and is exempt from missing-include for it.
Macro-only uses are attributed via MACRO_MODULES (KUSD_CHECK* comes from
util/check.hpp without any `util::` spelling at the use site).
"""

import re

from kusdlint import base, cpplex
from kusdlint.passes.layering import DECLARED_DAG, module_of

MODULE_USE = re.compile(
    r"\b(" + "|".join(sorted(DECLARED_DAG)) + r")\s*::")
NAMESPACE_DECL = re.compile(
    r"\bnamespace\s+(?:kusd\s*::\s*)?(\w+)\s*(?:::\s*\w+\s*)*\{")

# Macro prefix -> providing module (macros leave no `mod::` spelling at
# the use site). The check macros come from util/check.hpp (KUSD_CHECK,
# KUSD_CHECK_MSG, KUSD_DCHECK); the prefixes are deliberately that
# specific — build-system defines like KUSD_SIMD_ENABLED are not include
# obligations.
MACRO_MODULES = {
    "KUSD_CHECK": "util",
    "KUSD_DCHECK": "util",
}


@base.register
class HeaderSelfPass(base.Pass):
    name = "header-self"
    description = ("module-level include-what-you-use across src/ "
                   "(missing direct includes, dead includes)")

    def __init__(self):
        self.checked = 0

    def run(self, ctx):
        findings = []
        files = ctx.cpp_files("src")
        self.checked = len(files)
        for rel in files:
            own = module_of(rel)
            stripped = ctx.read_stripped(rel)

            declared = set(NAMESPACE_DECL.findall(stripped))
            used: dict[str, int] = {}
            for lineno, line in enumerate(stripped.splitlines(), start=1):
                for match in MODULE_USE.finditer(line):
                    used.setdefault(match.group(1), lineno)
                for prefix, mod in MACRO_MODULES.items():
                    if re.search(r"\b" + prefix, line):
                        used.setdefault(mod, lineno)

            included: dict[str, int] = {}
            for lineno, target, quoted in cpplex.parse_includes(
                    ctx.read(rel)):
                head = target.split("/", 1)[0] if quoted and "/" in target \
                    else None
                if head in DECLARED_DAG:
                    included.setdefault(head, lineno)

            for mod, first_use in sorted(used.items()):
                if mod == own or mod in declared or mod in included:
                    continue
                findings.append(base.Finding(
                    file=rel, line=first_use, code="missing-include",
                    message=f"uses {mod}:: but has no direct #include of a "
                            f"{mod}/ header — relies on a transitive "
                            f"include"))
            for mod, inc_line in sorted(included.items()):
                if mod == own or mod in used:
                    continue
                findings.append(base.Finding(
                    file=rel, line=inc_line, code="dead-include",
                    message=f"includes {mod}/ but never uses {mod}:: — "
                            f"dead include"))
        return findings
