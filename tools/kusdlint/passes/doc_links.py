"""Dead intra-repo links in the repo's markdown files.

Scans README.md and every *.md under docs/ (plus the other root-level
markdown files) for inline markdown links and bare reference
definitions, and checks that every relative target resolves to an
existing file or directory. External links (http/https/mailto) and pure
in-page anchors are skipped — this is a link-rot check for the repo's
own docs, meant to run offline in CI, not a crawler.
"""

import re

from kusdlint import base

# Inline links/images: [text](target) / ![alt](target), plus reference
# definitions: [label]: target
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks: CLI examples are not links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


@base.register
class DocLinksPass(base.Pass):
    name = "doc-links"
    description = "dead intra-repo links in README.md and docs/*.md"

    def __init__(self):
        self.checked = 0

    def markdown_files(self, ctx) -> list[str]:
        files = sorted(p.relative_to(ctx.root).as_posix()
                       for p in ctx.root.glob("*.md"))
        docs = ctx.root / "docs"
        if docs.is_dir():
            files += sorted(p.relative_to(ctx.root).as_posix()
                            for p in docs.rglob("*.md"))
        return files

    def run(self, ctx):
        files = self.markdown_files(ctx)
        self.checked = len(files)
        if not files:
            raise base.UsageError(f"no markdown files found under {ctx.root}")
        findings = []
        for rel in files:
            text = strip_code_blocks(ctx.read(rel))
            targets = INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)
            for target in targets:
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                base_dir = (ctx.root if relative.startswith("/")
                            else (ctx.root / rel).parent)
                if not (base_dir / relative.lstrip("/")).exists():
                    findings.append(base.Finding(
                        file=rel, line=0, code="dead-link",
                        message=f"dead link '{target}'"))
        return findings
