"""RNG stream discipline in src/ (provenance, not just hazard classes).

The determinism pass bans the stdlib engines outright; this pass goes
one level deeper and checks *provenance*: randomness in the library must
flow from `rng::stream_seed(master_seed, stream_id)` into an `rng::Rng`,
because that is the only construction whose streams are independent by
the Philox argument (see src/rng/rng.hpp). Everything is scoped outside
src/rng/ — the substrate itself is where the primitives legitimately
live.

Codes:
  std-distribution   std::*_distribution constructed outside src/rng/ —
                     distribution sampling must go through rng::Rng's
                     samplers (cross-platform stream stability)
  raw-seed           an rng::Rng constructed (or reseeded) from an
                     integer literal, or stream_seed() called with a
                     literal master seed — library code must thread the
                     caller's seed, never pin one
  rng-copy-in-loop   `Rng x = y;` inside a loop body — each iteration
                     forks the *same* stream state, so "independent"
                     draws are perfectly correlated across iterations;
                     derive a per-iteration stream with stream_seed
                     instead
  raw-intrinsics     x86 vector intrinsics (`_mm*_...`, `__m128/256/512`,
                     `<*intrin.h>`) outside src/rng/ — SIMD lives behind
                     the tier dispatch (rng/simd.hpp) so every tier stays
                     bit-identical and the KUSD_SIMD=OFF build stays
                     complete; hand-rolled intrinsics elsewhere would
                     fork results by instruction set
"""

import re

from kusdlint import base

STD_DISTRIBUTION = re.compile(
    r"std\s*::\s*\w+_distribution")
INT_LITERAL = r"(?:0[xX][0-9a-fA-F']+|\d[\d']*)(?:[uUlL]{0,4})"
RAW_SEED_CTOR = re.compile(
    r"\bRng\s+\w+\s*(?:\(|\{)\s*" + INT_LITERAL + r"\s*(?:\)|\})")
RAW_SEED_TEMP = re.compile(r"\bRng\s*(?:\(|\{)\s*" + INT_LITERAL +
                           r"\s*(?:\)|\})")
RAW_RESEED = re.compile(r"\breseed\s*\(\s*" + INT_LITERAL + r"\s*\)")
RAW_STREAM_SEED = re.compile(r"\bstream_seed\s*\(\s*" + INT_LITERAL +
                             r"\s*[,)]")
# Copy-initialization of an Rng from a plain identifier. Rng's uint64
# constructor is `explicit`, so `Rng x = some_identifier;` can only be a
# copy (or move) of another Rng — never a seed conversion — which makes
# this form sound to flag without type information.
RNG_COPY = re.compile(r"\b(?:rng\s*::\s*)?Rng\s+\w+\s*=\s*\w+\s*;")
LOOP_HEADER = re.compile(r"\b(for|while)\s*\(")
RAW_INTRINSIC = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)[id]?\b|"
    r"#\s*include\s*<\w*intrin\.h>")


def loop_depth_by_line(stripped: str) -> list[int]:
    """For each line (0-based), how many enclosing loop bodies it is in.

    A lightweight brace tracker over comment/string-stripped text: a
    `for(`/`while(` arms the next `{` to open a loop scope. do-while
    bodies count via the `do {` keyword too.
    """
    depths = []
    stack = []  # True where the scope is a loop body
    pending_loop = False
    for line in stripped.splitlines():
        depths.append(sum(stack))
        if re.search(r"\bdo\s*\{", line):
            pending_loop = True
        if LOOP_HEADER.search(line):
            pending_loop = True
        for ch in line:
            if ch == "{":
                stack.append(pending_loop)
                pending_loop = False
            elif ch == "}" and stack:
                stack.pop()
        # Re-evaluate the depth the *next* line starts at; the recorded
        # value above is the depth at the line's start, which is the
        # conservative choice for single-line `for (...) stmt;` bodies.
    return depths


@base.register
class RngDisciplinePass(base.Pass):
    name = "rng-discipline"
    description = ("randomness provenance outside src/rng/: stream_seed "
                   "flow, no literal seeds, no Rng copies in loops, no "
                   "raw vector intrinsics")

    def __init__(self):
        self.checked = 0

    def run(self, ctx):
        findings = []
        files = [f for f in ctx.cpp_files("src")
                 if not f.startswith("src/rng/")]
        self.checked = len(files)
        for rel in files:
            stripped = ctx.read_stripped(rel)
            lines = stripped.splitlines()
            depths = loop_depth_by_line(stripped)
            for idx, line in enumerate(lines):
                lineno = idx + 1
                if STD_DISTRIBUTION.search(line):
                    findings.append(base.Finding(
                        file=rel, line=lineno, code="std-distribution",
                        message="std::*_distribution outside src/rng/ — "
                                "sample through rng::Rng so the stream is "
                                "platform-stable"))
                if (RAW_SEED_CTOR.search(line) or RAW_RESEED.search(line)
                        or RAW_SEED_TEMP.search(line)):
                    findings.append(base.Finding(
                        file=rel, line=lineno, code="raw-seed",
                        message="rng::Rng seeded from an integer literal — "
                                "library code must thread the caller's "
                                "seed through rng::stream_seed"))
                elif RAW_STREAM_SEED.search(line):
                    findings.append(base.Finding(
                        file=rel, line=lineno, code="raw-seed",
                        message="stream_seed() with a literal master seed "
                                "pins the stream — the master seed must "
                                "come from the caller"))
                if RAW_INTRINSIC.search(line):
                    findings.append(base.Finding(
                        file=rel, line=lineno, code="raw-intrinsics",
                        message="raw vector intrinsics outside src/rng/ — "
                                "vector code belongs behind the tier "
                                "dispatch in rng/simd.hpp so results "
                                "never depend on the instruction set"))
                if RNG_COPY.search(line) and depths[idx] > 0:
                    findings.append(base.Finding(
                        file=rel, line=lineno, code="rng-copy-in-loop",
                        message="copying an Rng inside a loop body replays "
                                "the same stream every iteration — derive "
                                "a per-iteration stream via "
                                "rng::stream_seed"))
        return findings
