"""Module layering: the #include graph must match the declared DAG.

The engine stack is layered — util/rng/stats/urn at the bottom, then the
model layer (pp, protocols, core, gossip, analysis), then sim (the
engine roster), then runner (drivers), with tools/bench/tests/examples
on top — and the whole architecture rests on includes only pointing
*down* that order (see docs/architecture.md, "Module layering"). The
compiler cannot tell an upward include from a downward one, so this pass
re-derives the include graph on every run and diffs it against
DECLARED_DAG below.

Adding a genuinely new downward dependency means editing DECLARED_DAG —
a one-line, reviewable, conscious act. An upward include has no such
spelling: it is always a finding.

Codes:
  forbidden-dep     include edge not in the declared DAG
  unknown-module    file or include target in a src/ directory the DAG
                    does not declare
  unresolved-include quoted include that is neither a declared module
                    path nor a sibling file of the includer
"""

from kusdlint import base, cpplex

# Module -> the modules it may include. Exactly today's downward edges:
# extending it is a deliberate, reviewed edit, and the derived graph is
# checked for cycles on every run so the declaration cannot rot into one.
DECLARED_DAG = {
    "util": set(),
    "rng": {"util"},
    "stats": {"util"},
    "urn": {"rng", "util"},
    "pp": {"rng", "urn", "util"},
    "protocols": {"pp"},
    "core": {"pp", "rng", "urn", "util"},
    "gossip": {"core", "pp", "rng", "util"},
    "analysis": {"pp", "rng", "util"},
    "sim": {"core", "gossip", "pp", "rng", "urn", "util"},
    "runner": {"core", "pp", "rng", "sim", "stats", "urn", "util"},
}

# Top-of-stack consumers: may include any src module (they are the "cli"
# layer of the DAG; nothing may include *them*, which holds trivially
# because they are not on the kusd include path).
CONSUMER_DIRS = ("tools", "bench", "tests", "examples")


def find_cycle(dag: dict) -> list | None:
    """A cycle in the declared DAG as [a, b, ..., a], or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in dag}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for dep in sorted(dag.get(node, ())):
            if dep not in dag:
                continue
            if color[dep] == GRAY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                cycle = visit(dep)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(dag):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


def module_of(rel: str) -> str | None:
    """src/<mod>/... -> mod; tools|bench|tests|examples/... -> dir name."""
    parts = rel.split("/")
    if parts[0] == "src" and len(parts) >= 3:
        return parts[1]
    if parts[0] in CONSUMER_DIRS:
        return parts[0]
    return None


@base.register
class LayeringPass(base.Pass):
    name = "layering"
    description = ("#include graph under src/, bench/, tests/, tools/, "
                   "examples/ vs the declared module DAG")

    def __init__(self):
        self.checked = 0

    def run(self, ctx):
        findings = []
        cycle = find_cycle(DECLARED_DAG)
        if cycle:
            findings.append(base.Finding(
                file="", line=0, code="dag-cycle",
                message="DECLARED_DAG is cyclic: " + " -> ".join(cycle)))

        files = ctx.cpp_files("src", *CONSUMER_DIRS)
        self.checked = len(files)
        for rel in files:
            mod = module_of(rel)
            if mod is None:
                findings.append(base.Finding(
                    file=rel, line=0, code="unknown-module",
                    message="file is outside every declared module "
                            "directory"))
                continue
            if mod not in DECLARED_DAG and mod not in CONSUMER_DIRS:
                findings.append(base.Finding(
                    file=rel, line=0, code="unknown-module",
                    message=f"module '{mod}' is not in the declared DAG — "
                            f"declare its dependencies in "
                            f"tools/kusdlint/passes/layering.py"))
                continue
            for lineno, target, quoted in cpplex.parse_includes(
                    ctx.read(rel)):
                if not quoted:
                    continue  # angle includes are system/third-party
                head = target.split("/", 1)[0] if "/" in target else None
                if head in DECLARED_DAG:
                    if mod in CONSUMER_DIRS or head == mod:
                        continue
                    if head not in DECLARED_DAG.get(mod, set()):
                        allowed = ", ".join(
                            sorted(DECLARED_DAG.get(mod, set()))) or "nothing"
                        findings.append(base.Finding(
                            file=rel, line=lineno, code="forbidden-dep",
                            message=f"includes {target}: module '{mod}' may "
                                    f"only depend on {allowed} (see "
                                    f"DECLARED_DAG)"))
                    continue
                # Not a module path: accept a file that resolves next to
                # the includer (bench_common.hpp style) or relative to the
                # repo root (tools/ sources are compiled with -I src).
                parent = (ctx.root / rel).parent
                if (parent / target).exists() or \
                        (ctx.root / "src" / target).exists():
                    continue
                findings.append(base.Finding(
                    file=rel, line=lineno, code="unresolved-include",
                    message=f"quoted include '{target}' is neither a "
                            f"declared module path nor a sibling file"))
        return findings
