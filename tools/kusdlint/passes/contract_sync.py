"""Registry/docs/CLI contract sync.

The engine roster lives in exactly one authoritative place —
`register_builtin_engines` in src/sim/engines.cpp — but it is *described*
in three more: the engine catalog table in docs/architecture.md, the
`--engine`/`--graph` rows of docs/sweep.md, and the kusd CLI usage text.
Nothing at compile time ties those together, so a new engine (or a
renamed flag) silently rots the docs. This pass re-parses the C++
registrations (comment-stripped, string literals kept) and diffs them
against each prose surface, plus the sweep CSV schema against the
header list in Sweep::csv_header().

Codes:
  missing-doc-row      registered engine absent from the architecture.md
                       engine catalog table
  ghost-doc-row        catalog row for an engine that is not registered
  doc-desc-drift       catalog description differs from the registered
                       .description string
  doc-flag-drift       catalog flag cell disagrees with the registered
                       EngineInfo flag
  missing-doc-section  architecture.md has no "## Engine catalog" table
  sweep-doc-drift      docs/sweep.md --engine/--graph rows miss a
                       registered (graph-axis) engine name
  cli-help-drift       kusd CLI usage text never mentions a graph-axis
                       engine name
  schema-drift         docs/sweep.md CSV schema block differs from
                       Sweep::csv_header()
  flag-doc-drift       a flag accepted by any subcommand's known-flags
                       set has no `--flag` row in docs/sweep.md, or a
                       documented row names a flag no subcommand accepts
"""

import re

from kusdlint import base, cpplex

ADD_CALL = re.compile(r"registry\s*\.\s*add\s*\(")
STRING = re.compile(r'"((?:[^"\\]|\\.)*)"')
DESCRIPTION = re.compile(
    r'\.description\s*=\s*((?:"(?:[^"\\]|\\.)*"\s*)+)')
FLAG = re.compile(
    r"\.(requires_decided_start|uses_graph_axis|uses_chunk_options|"
    r"aggregated_topology|supports_lockstep)\s*=\s*(true|false)")
FLAGS = ("requires_decided_start", "uses_graph_axis",
         "uses_chunk_options", "aggregated_topology", "supports_lockstep")

# Catalog column header -> EngineInfo flag it mirrors.
CATALOG_FLAG_COLUMNS = {
    "graph axis": "uses_graph_axis",
    "chunked": "uses_chunk_options",
    "decided start": "requires_decided_start",
    "aggregated": "aggregated_topology",
    "lockstep": "supports_lockstep",
}

# Each subcommand's accepted-flag set (the reject-unknown-keys literal)
# and the `| `--flag` | ...` option rows of docs/sweep.md. Several
# subcommands (sweep, merge) carry their own set; all are checked.
KNOWN_FLAGS_SET = re.compile(
    r"std\s*::\s*set\s*<\s*std\s*::\s*string\s*>\s*known\s*=\s*\{")
COMMAND_FN = re.compile(r"\bcmd_(\w+)\s*\(")
FLAG_ROW = re.compile(r"^\s*\|\s*`--([\w-]+)`", re.MULTILINE)


def span(text: str, start: int, open_ch: str = "(",
         close_ch: str = ")") -> str:
    """Text inside the balanced pair whose opener is at text[start]."""
    depth = 0
    for idx in range(start, len(text)):
        if text[idx] == open_ch:
            depth += 1
        elif text[idx] == close_ch:
            depth -= 1
            if depth == 0:
                return text[start + 1:idx]
    return text[start + 1:]


def paren_span(text: str, start: int) -> str:
    return span(text, start)


def parse_registrations(text: str) -> list[dict]:
    """Engine registrations from comment-stripped engines.cpp text.

    Each is {name, line, description, <flag>: bool...}; the name is the
    first string literal inside the add(...) call, the description the
    concatenation of adjacent literals after `.description =`.
    """
    engines = []
    for match in ADD_CALL.finditer(text):
        call = paren_span(text, match.end() - 1)
        name_match = STRING.search(call)
        if not name_match:
            continue
        entry = {
            "name": name_match.group(1),
            "line": text.count("\n", 0, match.start()) + 1,
            "description": "",
        }
        desc = DESCRIPTION.search(call)
        if desc:
            entry["description"] = "".join(STRING.findall(desc.group(1)))
        for flag in FLAGS:
            entry[flag] = False
        for flag_match in FLAG.finditer(call):
            entry[flag_match.group(1)] = flag_match.group(2) == "true"
        engines.append(entry)
    return engines


def parse_catalog(text: str) -> tuple[dict | None, int]:
    """The "## Engine catalog" table as {name: {line, description,
    <column>: bool}}, plus the section's line number (None, 0 if the
    section or its table is missing)."""
    section = re.search(r"^##\s+Engine catalog\s*$", text, re.MULTILINE)
    if not section:
        return None, 0
    section_line = text.count("\n", 0, section.start()) + 1
    rows = {}
    columns: list[str] = []
    for offset, line in enumerate(
            text[section.end():].splitlines(), start=section_line + 1):
        if line.startswith("## "):
            break
        if not line.lstrip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if not columns:
            columns = [c.lower() for c in cells]
            continue
        if set(cells[0]) <= {"-", ":", " "}:
            continue  # separator row
        name = cells[0].strip("`")
        row = {"line": offset, "description": ""}
        for header, cell in zip(columns[1:], cells[1:]):
            if header == "description":
                row["description"] = cell
            elif header in CATALOG_FLAG_COLUMNS:
                row[CATALOG_FLAG_COLUMNS[header]] = cell != ""
        rows[name] = row
    return (rows if columns else None), section_line


def mentions(name: str, text: str) -> bool:
    """Word-boundary mention ('graph' must not match 'graph-batched')."""
    return re.search(r"(?<![\w-])" + re.escape(name) + r"(?![\w-])",
                     text) is not None


@base.register
class ContractSyncPass(base.Pass):
    name = "contract-sync"
    description = ("sim::Registry registrations vs the architecture.md "
                   "engine catalog, sweep.md axes/schema, and CLI help")

    # Overridable so self-tests can point at a fixture tree.
    engines_file = "src/sim/engines.cpp"
    architecture_file = "docs/architecture.md"
    sweep_doc = "docs/sweep.md"
    sweep_source = "src/runner/sweep.cpp"
    cli_file = "tools/kusd_cli.cpp"

    def __init__(self):
        self.checked = 0

    def run(self, ctx):
        for rel in (self.engines_file, self.architecture_file,
                    self.sweep_doc, self.sweep_source, self.cli_file):
            if not (ctx.root / rel).is_file():
                raise base.UsageError(f"contract-sync: {rel} not found "
                                      f"under {ctx.root}")
        findings = []
        engines = parse_registrations(
            cpplex.strip_comments(ctx.read(self.engines_file)))
        self.checked = len(engines)
        if not engines:
            raise base.UsageError(
                f"contract-sync: no registry.add() calls parsed from "
                f"{self.engines_file}")
        by_name = {e["name"]: e for e in engines}

        findings += self.check_catalog(ctx, by_name)
        findings += self.check_sweep_doc(ctx, by_name)
        findings += self.check_cli(ctx, by_name)
        findings += self.check_schema(ctx)
        findings += self.check_sweep_flags(ctx)
        return findings

    def check_catalog(self, ctx, by_name):
        findings = []
        catalog, section_line = parse_catalog(
            ctx.read(self.architecture_file))
        if catalog is None:
            return [base.Finding(
                file=self.architecture_file, line=0,
                code="missing-doc-section",
                message="no '## Engine catalog' table — every registered "
                        "engine must be documented there")]
        for name, engine in sorted(by_name.items()):
            row = catalog.get(name)
            if row is None:
                findings.append(base.Finding(
                    file=self.architecture_file, line=section_line,
                    code="missing-doc-row",
                    message=f"engine '{name}' is registered in "
                            f"{self.engines_file} but has no engine "
                            f"catalog row"))
                continue
            if row["description"] != engine["description"]:
                findings.append(base.Finding(
                    file=self.architecture_file, line=row["line"],
                    code="doc-desc-drift",
                    message=f"engine '{name}': catalog says "
                            f"'{row['description']}' but the registration "
                            f"says '{engine['description']}'"))
            for flag in FLAGS:
                if flag in row and row[flag] != engine[flag]:
                    findings.append(base.Finding(
                        file=self.architecture_file, line=row["line"],
                        code="doc-flag-drift",
                        message=f"engine '{name}': catalog marks {flag}="
                                f"{row[flag]} but the registration says "
                                f"{engine[flag]}"))
        for name, row in sorted(catalog.items()):
            if name not in by_name:
                findings.append(base.Finding(
                    file=self.architecture_file, line=row["line"],
                    code="ghost-doc-row",
                    message=f"catalog row for '{name}' but no such engine "
                            f"is registered"))
        return findings

    def check_sweep_doc(self, ctx, by_name):
        findings = []
        text = ctx.read(self.sweep_doc)
        engine_row = graph_row = None
        for lineno, line in enumerate(text.splitlines(), start=1):
            if re.match(r"\s*\|\s*`--engine`", line):
                engine_row = (lineno, line)
            elif re.match(r"\s*\|\s*`--graph`", line):
                graph_row = (lineno, line)
        for name in sorted(by_name):
            if engine_row and not mentions(name, engine_row[1]):
                findings.append(base.Finding(
                    file=self.sweep_doc, line=engine_row[0],
                    code="sweep-doc-drift",
                    message=f"--engine row does not list registered "
                            f"engine '{name}'"))
            if by_name[name]["uses_graph_axis"] and graph_row and \
                    not mentions(name, graph_row[1]):
                findings.append(base.Finding(
                    file=self.sweep_doc, line=graph_row[0],
                    code="sweep-doc-drift",
                    message=f"--graph row does not mention graph-axis "
                            f"engine '{name}'"))
        return findings

    def check_cli(self, ctx, by_name):
        findings = []
        literals = cpplex.extract_string_literals(ctx.read(self.cli_file))
        usage = " ".join(value for _, value in literals)
        for name in sorted(by_name):
            if by_name[name]["uses_graph_axis"] and \
                    not mentions(name, usage):
                findings.append(base.Finding(
                    file=self.cli_file, line=0, code="cli-help-drift",
                    message=f"usage text never mentions graph-axis "
                            f"engine '{name}'"))
        return findings

    def check_sweep_flags(self, ctx):
        """Every subcommand's accepted flags vs docs/sweep.md option rows.

        Each subcommand rejects unknown keys against its own set literal
        (cmd_sweep, cmd_merge, ...); every member of every set must have
        a `--flag` table row in docs/sweep.md and every documented row
        must name a flag some subcommand accepts, so a new flag (e.g.
        --shard or merge's --inputs) cannot land without its
        documentation — and a removed one cannot leave a ghost row
        behind. Flags are attributed to the nearest enclosing cmd_*
        function for the diagnostic.
        """
        source = cpplex.strip_comments(ctx.read(self.cli_file))
        matches = list(KNOWN_FLAGS_SET.finditer(source))
        if not matches:
            raise base.UsageError(
                f"contract-sync: no known-flags set literal "
                f"(std::set<std::string> known = {{...}}) parsed from "
                f"{self.cli_file}")
        accepted = {}  # flag -> subcommand name, first set wins
        for match in matches:
            command = "sweep"
            for fn in COMMAND_FN.finditer(source, 0, match.start()):
                command = fn.group(1)
            flags = STRING.findall(span(source, match.end() - 1, "{", "}"))
            for flag in flags:
                accepted.setdefault(flag, command)
        doc = ctx.read(self.sweep_doc)
        documented = {}
        for row in FLAG_ROW.finditer(doc):
            documented.setdefault(row.group(1),
                                  doc.count("\n", 0, row.start()) + 1)
        findings = []
        for flag in sorted(set(accepted) - set(documented)):
            findings.append(base.Finding(
                file=self.sweep_doc, line=0, code="flag-doc-drift",
                message=f"{accepted[flag]} flag '--{flag}' is accepted "
                        f"by {self.cli_file} but has no option row in "
                        f"{self.sweep_doc}"))
        for flag in sorted(set(documented) - set(accepted)):
            findings.append(base.Finding(
                file=self.sweep_doc, line=documented[flag],
                code="flag-doc-drift",
                message=f"option row documents '--{flag}' but no kusd "
                        f"subcommand accepts it"))
        return findings

    def check_schema(self, ctx):
        source = cpplex.strip_comments(ctx.read(self.sweep_source))
        header_match = re.search(r"csv_header\s*\(\s*\)\s*\{", source)
        if not header_match:
            return [base.Finding(
                file=self.sweep_source, line=0, code="schema-drift",
                message="could not locate Sweep::csv_header()")]
        body = source[header_match.end():
                      source.index(";", header_match.end())]
        columns = STRING.findall(body)

        doc = ctx.read(self.sweep_doc)
        anchor = re.search(r"CSV header = JSONL keys:", doc)
        if not anchor:
            return [base.Finding(
                file=self.sweep_doc, line=0, code="schema-drift",
                message="no 'CSV header = JSONL keys:' schema block")]
        anchor_line = doc.count("\n", 0, anchor.start()) + 1
        fence = re.search(r"```\n(.*?)```", doc[anchor.end():], re.DOTALL)
        if not fence:
            return [base.Finding(
                file=self.sweep_doc, line=anchor_line, code="schema-drift",
                message="no fenced schema block after 'CSV header = "
                        "JSONL keys:'")]
        documented = [c.strip() for c in
                      fence.group(1).replace("\n", "").split(",")
                      if c.strip()]
        if documented != columns:
            return [base.Finding(
                file=self.sweep_doc, line=anchor_line, code="schema-drift",
                message=f"documented schema {documented} != "
                        f"Sweep::csv_header() {columns}")]
        return []
