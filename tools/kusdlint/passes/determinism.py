"""Determinism hazards in the library sources.

The repo's core contract is bit-reproducibility: every CSV/JSONL byte is
a pure function of (spec, master_seed), independent of wall clock, host,
thread count and scheduling. That only stays true if nothing in src/
smuggles in an unseeded or platform-dependent source of variation. This
pass scans src/ (the library — bench/, tests/ and tools/ may time
things) for the specific hazards the contract forbids:

  random-device          std::random_device — nondeterministically seeded
  c-rand                 rand()/srand() — global hidden state, no streams
  wall-clock             std::chrono::{system,steady,high_resolution}_clock
                         or time(...) — wall-clock values feeding logic
  std-shuffle            std::shuffle/std::sample — an unpinned URBG and a
                         libstdc++-specific consumption order; use
                         rng::Rng::shuffle (fixed Fisher-Yates)
  unordered-container    std::unordered_map/set — iteration order is
                         unspecified and can differ across libstdc++
                         versions; use std::map/std::set in the library
  hardware-concurrency   std::thread::hardware_concurrency — host-shaped;
                         fine for sizing a worker pool, forbidden for
                         anything that feeds an output value
  std-engine             std::mt19937/std::minstd_rand & friends — legal
                         only as a local detail behind rng::Rng; new uses
                         need an allowlist entry arguing the stream is
                         seeded

Audited exceptions live in tools/determinism_allowlist.txt (the
historical name, kept); see that file for the policy.
"""

import re

from kusdlint import base

# (code, regex, message). Matched against comment- and string-stripped
# source lines.
CHECKS = [
    (
        "random-device",
        re.compile(r"std\s*::\s*random_device"),
        "std::random_device is nondeterministic; derive seeds via "
        "rng::stream_seed",
    ),
    (
        "c-rand",
        re.compile(r"(?<![\w:])s?rand\s*\("),
        "rand()/srand() use hidden global state; use a seeded rng::Rng",
    ),
    (
        "wall-clock",
        re.compile(
            r"std\s*::\s*chrono\s*::\s*"
            r"(system_clock|steady_clock|high_resolution_clock)"
        ),
        "wall-clock reads must not influence simulation state or output "
        "(timing utilities need an allowlist entry)",
    ),
    (
        "wall-clock",
        re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0|&\w+)?\s*\)"),
        "time() is a wall-clock seed; derive seeds via rng::stream_seed",
    ),
    (
        "std-shuffle",
        re.compile(r"std\s*::\s*(shuffle|random_shuffle|sample)\s*[(<]"),
        "std::shuffle/std::sample consume an URBG in a "
        "library-implementation-defined order; use rng::Rng::shuffle",
    ),
    (
        "unordered-container",
        re.compile(r"std\s*::\s*unordered_(map|set|multimap|multiset)"),
        "unordered container iteration order is unspecified; anything "
        "feeding output or seeds must use std::map/std::set",
    ),
    (
        "hardware-concurrency",
        re.compile(r"hardware_concurrency\s*\("),
        "host-dependent value; legal only for worker-pool sizing that "
        "cannot reach output values (allowlist entry required)",
    ),
    (
        "std-engine",
        re.compile(
            r"std\s*::\s*(mt19937(_64)?|minstd_rand0?|ranlux\w+|"
            r"default_random_engine|knuth_b)"
        ),
        "standard library engines are legal only as an explicitly seeded "
        "implementation detail behind rng::Rng (allowlist entry required)",
    ),
]


@base.register
class DeterminismPass(base.Pass):
    name = "determinism"
    description = ("nondeterminism hazards in src/ (clocks, unseeded "
                   "engines, unordered iteration)")

    def __init__(self, src_dir: str = "src"):
        self.src_dir = src_dir
        self.checked = 0

    def allowlist_path(self, ctx):
        # Historical name, predating the framework; kept so existing
        # audit entries and docs stay valid.
        return ctx.root / "tools" / "determinism_allowlist.txt"

    def run(self, ctx):
        if not (ctx.root / self.src_dir).is_dir():
            raise base.UsageError(
                f"no such source directory: {ctx.root / self.src_dir}")
        findings = []
        files = ctx.cpp_files(self.src_dir)
        self.checked = len(files)
        for rel in files:
            for lineno, line in enumerate(
                    ctx.read_stripped(rel).splitlines(), start=1):
                for code, pattern, message in CHECKS:
                    if pattern.search(line):
                        findings.append(base.Finding(
                            file=rel, line=lineno, code=code,
                            message=message))
        return findings
