"""Framework core: findings, allowlists, pass registry, run context.

A pass is a class with a `name`, a one-line `description`, and a
`run(ctx) -> list[Finding]`. The framework — not the pass — applies the
pass's allowlist (`tools/<name>_allowlist.txt` by default): a finding
whose `(file, code)` pair is listed is suppressed, and a listed pair that
suppressed nothing becomes a *stale-entry* finding, so the allowlist can
only shrink when the code is cleaned up. That is the same contract the
original determinism linter shipped with, promoted to every pass.
"""

import dataclasses
import sys
from pathlib import Path

from kusdlint import cpplex


class UsageError(Exception):
    """Bad invocation or malformed config — exit 2, not a lint finding."""


@dataclasses.dataclass
class Finding:
    file: str  # repo-relative posix path ("" for repo-level findings)
    line: int  # 1-based; 0 when the finding is file- or repo-level
    code: str  # per-pass finding class, used in allowlist entries
    message: str
    pass_name: str = ""

    def render(self) -> str:
        where = f"{self.file}:{self.line}" if self.line else (self.file or ".")
        return f"{where}: [{self.code}] {self.message}"

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


class Allowlist:
    """`<path>:<code>` entries, one per line; `#` starts a comment.

    Matching marks the entry used; unused entries are stale. A malformed
    line raises UsageError (a broken allowlist must not silently allow
    nothing — or everything).
    """

    def __init__(self, path: Path):
        self.path = path
        self.entries: dict[tuple[str, str], dict] = {}
        if not path.exists():
            return
        lines = path.read_text(encoding="utf-8").splitlines()
        for lineno, raw in enumerate(lines, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            file_part, sep, code = line.rpartition(":")
            if not sep or not file_part:
                raise UsageError(
                    f"{path}:{lineno}: malformed allowlist entry '{line}' "
                    f"(expected <path>:<code>)")
            self.entries[(file_part, code)] = {"line": lineno, "used": False}

    def allows(self, file: str, code: str) -> bool:
        entry = self.entries.get((file, code))
        if entry is None:
            return False
        entry["used"] = True
        return True

    def stale_findings(self, root: Path, pass_name: str) -> list[Finding]:
        try:
            rel = self.path.relative_to(root).as_posix()
        except ValueError:
            rel = self.path.as_posix()
        out = []
        for (file_part, code), entry in self.entries.items():
            if entry["used"]:
                continue
            out.append(Finding(
                file=rel, line=entry["line"], code="stale-allowlist",
                message=f"stale allowlist entry '{file_part}:{code}' "
                        f"matches nothing — remove it",
                pass_name=pass_name))
        return out


CPP_SUFFIXES = (".hpp", ".cpp", ".h", ".cc")


class Context:
    """Repo handle shared by the passes: root path plus cached file reads."""

    def __init__(self, root: Path):
        self.root = Path(root).resolve()
        self._text_cache: dict[str, str] = {}

    def exists(self, rel: str) -> bool:
        return (self.root / rel).exists()

    def read(self, rel: str) -> str:
        if rel not in self._text_cache:
            self._text_cache[rel] = (self.root / rel).read_text(
                encoding="utf-8")
        return self._text_cache[rel]

    def read_stripped(self, rel: str) -> str:
        return cpplex.strip_noise(self.read(rel))

    def cpp_files(self, *dirs: str) -> list[str]:
        """Sorted repo-relative paths of C++ sources under the given dirs."""
        out = []
        for d in dirs:
            base = self.root / d
            if not base.is_dir():
                continue
            out += sorted(
                p.relative_to(self.root).as_posix()
                for p in base.rglob("*") if p.suffix in CPP_SUFFIXES)
        return out


class Pass:
    """Base class; subclasses set `name`/`description` and implement run."""

    name = ""
    description = ""

    def allowlist_path(self, ctx: Context) -> Path:
        return ctx.root / "tools" / f"{self.name}_allowlist.txt"

    def run(self, ctx: Context) -> list[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a Pass to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} needs a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate pass name '{cls.name}'")
    _REGISTRY[cls.name] = cls
    return cls


def all_passes() -> list[Pass]:
    import kusdlint.passes  # noqa: F401  (registers on import)
    return [cls() for _, cls in sorted(_REGISTRY.items())]


def get_pass(name: str) -> Pass:
    import kusdlint.passes  # noqa: F401
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise UsageError(f"unknown pass '{name}' (registered: {known})")
    return _REGISTRY[name]()


def run_pass(p: Pass, ctx: Context,
             allowlist_path: Path | None = None) -> list[Finding]:
    """Run one pass and apply its allowlist (suppression + stale entries)."""
    allowlist = Allowlist(allowlist_path or p.allowlist_path(ctx))
    findings = []
    for f in p.run(ctx):
        f.pass_name = p.name
        if allowlist.allows(f.file, f.code):
            continue
        findings.append(f)
    findings += allowlist.stale_findings(ctx.root, p.name)
    return findings


def print_findings(findings: list[Finding], stream=None) -> None:
    stream = stream or sys.stderr
    for f in findings:
        print(f.render(), file=stream)
