"""kusdlint — architecture-aware static analysis for the kusd tree.

A small, stdlib-only pass framework: each pass encodes one convention the
compiler cannot check (layer ordering, header self-sufficiency, RNG
stream discipline, registry/docs contract sync, determinism hazards, doc
link rot). Passes share the C++ lexing in `cpplex`, report uniform
`Finding`s, and get per-pass allowlists with stale-entry failure from the
framework, so an audited exception can never rot into a blanket waiver.

Entry points:
  tools/lint_all.py           run every pass (or a subset) over the repo
  tools/lint_determinism.py   compat shim for the determinism pass
  tools/check_doc_links.py    compat shim for the doc-links pass

See docs/verification.md for the pass table and allowlist policy.
"""

from kusdlint.base import (  # noqa: F401
    Allowlist,
    Context,
    Finding,
    Pass,
    UsageError,
    all_passes,
    get_pass,
    register,
)
