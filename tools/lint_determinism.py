#!/usr/bin/env python3
"""Static determinism lint for the simulation library.

The repo's core contract is bit-reproducibility: every CSV/JSONL byte is a
pure function of (spec, master_seed), independent of wall clock, host,
thread count and scheduling. That only stays true if nothing in src/
smuggles in an unseeded or platform-dependent source of variation. This
linter scans src/ (the library — bench/, tests/ and tools/ may time
things) for the specific hazards the contract forbids:

  random-device          std::random_device — nondeterministically seeded
  c-rand                 rand()/srand() — global hidden state, no streams
  wall-clock             std::chrono::{system,steady,high_resolution}_clock
                         or time(...) — wall-clock values feeding logic
  std-shuffle            std::shuffle/std::sample — an unpinned URBG and a
                         libstdc++-specific consumption order; use
                         rng::Rng::shuffle (fixed Fisher-Yates)
  unordered-container    std::unordered_map/set — iteration order is
                         unspecified and can differ across libstdc++
                         versions; anything iterating one into output or
                         seed derivation breaks byte-identity. Use
                         std::map/std::set in the library.
  hardware-concurrency   std::thread::hardware_concurrency — host-shaped;
                         fine for sizing a worker pool, forbidden for
                         anything that feeds an output value
  default-seeded-engine  std::mt19937/minstd_rand constructed without an
                         explicit seed expression is flagged via the
                         std-engine code below
  std-engine             std::mt19937/std::minstd_rand & friends — legal
                         only as a local detail behind rng::Rng (the
                         binomial sampler does this); new uses need an
                         allowlist entry arguing the stream is seeded

Audited, legitimate uses are recorded in an allowlist file (default:
tools/determinism_allowlist.txt) as `<path>:<code>` lines; see that file
for the policy. Stale allowlist entries (matching nothing) fail the lint
too, so the allowlist cannot rot into a blanket waiver.

Usage:
  lint_determinism.py [repo_root] [--allowlist FILE] [--src-dir DIR]

Exit status: 0 clean, 1 findings (or stale allowlist entries), 2 usage.
Line-based and stdlib-only, in the style of check_doc_links.py; comments
and string literals are stripped before matching, so prose mentioning a
hazard does not trip it.
"""

import argparse
import re
import sys
from pathlib import Path

# (code, regex, message). Matched against comment- and string-stripped
# source lines.
CHECKS = [
    (
        "random-device",
        re.compile(r"std\s*::\s*random_device"),
        "std::random_device is nondeterministic; derive seeds via "
        "rng::stream_seed",
    ),
    (
        "c-rand",
        re.compile(r"(?<![\w:])s?rand\s*\("),
        "rand()/srand() use hidden global state; use a seeded rng::Rng",
    ),
    (
        "wall-clock",
        re.compile(
            r"std\s*::\s*chrono\s*::\s*"
            r"(system_clock|steady_clock|high_resolution_clock)"
        ),
        "wall-clock reads must not influence simulation state or output "
        "(timing utilities need an allowlist entry)",
    ),
    (
        "wall-clock",
        re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0|&\w+)?\s*\)"),
        "time() is a wall-clock seed; derive seeds via rng::stream_seed",
    ),
    (
        "std-shuffle",
        re.compile(r"std\s*::\s*(shuffle|random_shuffle|sample)\s*[(<]"),
        "std::shuffle/std::sample consume an URBG in a "
        "library-implementation-defined order; use rng::Rng::shuffle",
    ),
    (
        "unordered-container",
        re.compile(r"std\s*::\s*unordered_(map|set|multimap|multiset)"),
        "unordered container iteration order is unspecified; anything "
        "feeding output or seeds must use std::map/std::set",
    ),
    (
        "hardware-concurrency",
        re.compile(r"hardware_concurrency\s*\("),
        "host-dependent value; legal only for worker-pool sizing that "
        "cannot reach output values (allowlist entry required)",
    ),
    (
        "std-engine",
        re.compile(
            r"std\s*::\s*(mt19937(_64)?|minstd_rand0?|ranlux\w+|"
            r"default_random_engine|knuth_b)"
        ),
        "standard library engines are legal only as an explicitly seeded "
        "implementation detail behind rng::Rng (allowlist entry required)",
    ),
]

BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT = re.compile(r"//[^\n]*")
STRING_LITERAL = re.compile(r'"(?:[^"\\\n]|\\.)*"')
CHAR_LITERAL = re.compile(r"'(?:[^'\\\n]|\\.)*'")


def strip_noise(text: str) -> str:
    """Blank comments and literals, preserving line numbers."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = STRING_LITERAL.sub(blank, text)
    text = CHAR_LITERAL.sub(blank, text)
    text = BLOCK_COMMENT.sub(blank, text)
    return LINE_COMMENT.sub(blank, text)


def load_allowlist(path: Path):
    """Parse `<path>:<code>` lines; '#' starts a comment."""
    entries = {}
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                 start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        file_part, sep, code = line.rpartition(":")
        if not sep or not file_part:
            print(f"{path}:{lineno}: malformed allowlist entry '{line}' "
                  f"(expected <path>:<code>)", file=sys.stderr)
            sys.exit(2)
        entries[(file_part, code)] = {"line": lineno, "used": False}
    return entries


def lint_file(path: Path, rel: str, allowlist) -> list[str]:
    lines = strip_noise(path.read_text(encoding="utf-8")).splitlines()
    findings = []
    for lineno, line in enumerate(lines, start=1):
        for code, pattern, message in CHECKS:
            if not pattern.search(line):
                continue
            entry = allowlist.get((rel, code))
            if entry is not None:
                entry["used"] = True
                continue
            findings.append(f"{rel}:{lineno}: [{code}] {message}")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(
        description="determinism lint for src/ (see module docstring)")
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "<root>/tools/determinism_allowlist.txt)")
    parser.add_argument("--src-dir", default="src",
                        help="directory to scan, relative to root "
                             "(default: src)")
    args = parser.parse_args()

    root = Path(args.root).resolve()
    src = root / args.src_dir
    if not src.is_dir():
        print(f"no such source directory: {src}", file=sys.stderr)
        return 2
    allowlist_path = (Path(args.allowlist) if args.allowlist
                      else root / "tools" / "determinism_allowlist.txt")
    allowlist = load_allowlist(allowlist_path)

    files = sorted(p for p in src.rglob("*")
                   if p.suffix in (".hpp", ".cpp", ".h", ".cc"))
    findings = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        findings += lint_file(path, rel, allowlist)

    stale = [(key, entry) for key, entry in allowlist.items()
             if not entry["used"]]
    for (file_part, code), entry in stale:
        findings.append(
            f"{allowlist_path.relative_to(root).as_posix()}:{entry['line']}: "
            f"stale allowlist entry '{file_part}:{code}' matches nothing — "
            f"remove it")

    if findings:
        print("\n".join(findings), file=sys.stderr)
        print(f"{len(findings)} determinism finding(s); audited exceptions "
              f"go in {allowlist_path.name} (see docs/verification.md)",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} files under {src.relative_to(root)}: "
          f"no determinism hazards")
    return 0


if __name__ == "__main__":
    sys.exit(main())
