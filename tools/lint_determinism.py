#!/usr/bin/env python3
"""Static determinism lint for the simulation library (compat shim).

The checks now live in the kusdlint framework
(tools/kusdlint/passes/determinism.py) so they share lexing, allowlist
and stale-entry semantics with the other passes; this wrapper keeps the
historical command-line surface — same flags, same output strings, same
exit codes — for scripts and muscle memory. New callers should prefer:

  lint_all.py --pass determinism [root]

Usage:
  lint_determinism.py [repo_root] [--allowlist FILE] [--src-dir DIR]

Exit status: 0 clean, 1 findings (or stale allowlist entries), 2 usage.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from kusdlint import base  # noqa: E402
from kusdlint.passes.determinism import DeterminismPass  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(
        description="determinism lint for src/ (see module docstring)")
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "<root>/tools/determinism_allowlist.txt)")
    parser.add_argument("--src-dir", default="src",
                        help="directory to scan, relative to root "
                             "(default: src)")
    args = parser.parse_args()

    ctx = base.Context(Path(args.root))
    lint = DeterminismPass(src_dir=args.src_dir)
    allowlist_path = (Path(args.allowlist) if args.allowlist
                      else lint.allowlist_path(ctx))
    try:
        findings = base.run_pass(lint, ctx, allowlist_path=allowlist_path)
    except base.UsageError as err:
        print(err, file=sys.stderr)
        return 2

    if findings:
        base.print_findings(findings)
        print(f"{len(findings)} determinism finding(s); audited exceptions "
              f"go in {allowlist_path.name} (see docs/verification.md)",
              file=sys.stderr)
        return 1
    print(f"checked {lint.checked} files under {args.src_dir}: "
          f"no determinism hazards")
    return 0


if __name__ == "__main__":
    sys.exit(main())
