#!/usr/bin/env python3
"""Fail on dead intra-repo links in the repo's markdown files (shim).

The check now lives in the kusdlint framework
(tools/kusdlint/passes/doc_links.py); this wrapper keeps the historical
command-line surface and output format. New callers should prefer:

  lint_all.py --pass doc-links [root]

Usage: check_doc_links.py [repo_root]     (exit 1 and list dead links)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from kusdlint import base  # noqa: E402
from kusdlint.passes.doc_links import DocLinksPass  # noqa: E402


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    ctx = base.Context(root)
    lint = DocLinksPass()
    try:
        findings = base.run_pass(lint, ctx)
    except base.UsageError as err:
        print(err, file=sys.stderr)
        return 1
    if findings:
        for f in findings:
            print(f"{f.file}: {f.message}", file=sys.stderr)
        print(f"{len(findings)} dead link(s)", file=sys.stderr)
        return 1
    print(f"checked {lint.checked} markdown files: "
          f"all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
