#!/usr/bin/env python3
"""Fail on dead intra-repo links in the repo's markdown files.

Scans README.md and every *.md under docs/ (plus the other root-level
markdown files) for inline markdown links and bare reference definitions,
and checks that every relative target resolves to an existing file or
directory. External links (http/https/mailto) and pure in-page anchors
are skipped — this is a link-rot check for the repo's own docs, meant to
run offline in CI, not a crawler.

Usage: check_doc_links.py [repo_root]     (exit 1 and list dead links)
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target), plus reference
# definitions: [label]: target
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks: CLI examples are not links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_file(path: Path, root: Path) -> list[str]:
    text = strip_code_blocks(path.read_text(encoding="utf-8"))
    targets = INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)
    errors = []
    for target in targets:
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (root if relative.startswith("/") else path.parent) / \
            relative.lstrip("/")
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}: dead link '{target}'")
    return errors


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    files = markdown_files(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        errors += check_file(path, root)
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"{len(errors)} dead link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
