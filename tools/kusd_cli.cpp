// kusd — command-line front end for the library.
//
// Subcommands:
//   run       one USD run, printed phases and outcome
//   sweep     Monte-Carlo sweep over trials, summary statistics
//   trace     record a trajectory CSV for plotting
//   exact     exact win probability / expected time (small n, k)
//
// Examples:
//   kusd run --n 100000 --k 8
//   kusd run --n 65536 --k 4 --bias additive --beta 3000 --seed 7
//   kusd sweep --n 32768 --k 8 --bias multiplicative --alpha 2 --trials 50
//   kusd trace --n 100000 --k 8 --out trace.csv
//   kusd exact --n 12 --k 3 --support 6,4,2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/usd_exact.hpp"
#include "core/run.hpp"
#include "pp/configuration.hpp"
#include "pp/trajectory.hpp"
#include "runner/table.hpp"
#include "runner/trials.hpp"
#include "stats/summary.hpp"

namespace {

using namespace kusd;

[[noreturn]] void usage(int exit_code = 2) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "usage: kusd <run|sweep|trace|exact> [options]\n"
      "  common:  --n N --k K --undecided U --seed S\n"
      "  bias:    --bias none|additive|multiplicative [--beta B | --alpha A]\n"
      "  sweep:   --trials T\n"
      "  trace:   --out FILE.csv\n"
      "  exact:   --support x1,x2,...  (n <= ~20, small k)\n");
  std::exit(exit_code);
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr,
                                               10);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  if (args.command == "--help" || args.command == "-h" ||
      args.command == "help") {
    usage(0);
  }
  const auto is_help = [](const char* arg) {
    return std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0;
  };
  for (int i = 2; i < argc; i += 2) {
    if (is_help(argv[i])) usage(0);
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) usage();
    if (is_help(argv[i + 1])) usage(0);
    args.options[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

pp::Configuration build_config(const Args& args) {
  const pp::Count n = args.get_u64("n", 100000);
  const int k = static_cast<int>(args.get_u64("k", 8));
  const pp::Count u = args.get_u64("undecided", 0);
  const std::string bias = args.get_string("bias", "none");
  if (bias == "none") return pp::Configuration::uniform(n, k, u);
  if (bias == "additive") {
    const pp::Count beta = args.get_u64("beta", n / 100);
    return pp::Configuration::with_additive_bias(n, k, u, beta);
  }
  if (bias == "multiplicative") {
    const double alpha = args.get_double("alpha", 2.0);
    return pp::Configuration::with_multiplicative_bias(n, k, u, alpha);
  }
  usage();
}

int cmd_run(const Args& args) {
  const auto x0 = build_config(args);
  const auto result = core::run_usd(x0, args.get_u64("seed", 1));
  if (!result.converged) {
    std::printf("no consensus within the interaction cap\n");
    return 1;
  }
  std::printf("consensus on opinion %d after %llu interactions "
              "(parallel time %.1f)\n",
              result.winner,
              static_cast<unsigned long long>(result.interactions),
              result.parallel_time);
  std::printf("initial plurality %s; winner %s initially significant\n",
              result.plurality_won ? "won" : "lost",
              result.winner_initially_significant ? "was" : "was not");
  const auto& ph = result.phases;
  const auto show = [](const char* name,
                       const std::optional<std::uint64_t>& t) {
    if (t) {
      std::printf("  %-3s %llu\n", name,
                  static_cast<unsigned long long>(*t));
    }
  };
  show("T1", ph.t1);
  show("T2", ph.t2);
  show("T3", ph.t3);
  show("T4", ph.t4);
  show("T5", ph.t5);
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto x0 = build_config(args);
  const int trials = static_cast<int>(args.get_u64("trials", 25));
  struct Row {
    double interactions;
    bool won;
  };
  const auto rows = runner::run_trials<Row>(
      trials, args.get_u64("seed", 1), [&x0](std::uint64_t seed) {
        core::RunOptions opts;
        opts.track_phases = false;
        const auto r = core::run_usd(x0, seed, opts);
        return Row{static_cast<double>(r.interactions), r.plurality_won};
      });
  stats::Samples t;
  int wins = 0;
  for (const auto& row : rows) {
    t.add(row.interactions);
    wins += row.won ? 1 : 0;
  }
  runner::Table table({"metric", "value"});
  table.add_row({"trials", std::to_string(trials)});
  table.add_row({"mean interactions", runner::fmt(t.mean(), 1)});
  table.add_row({"std dev", runner::fmt(t.stddev(), 1)});
  table.add_row({"median", runner::fmt(t.median(), 1)});
  table.add_row({"p95", runner::fmt(t.quantile(0.95), 1)});
  table.add_row({"plurality win rate",
                 runner::fmt(static_cast<double>(wins) / trials, 3)});
  table.print();
  return 0;
}

int cmd_trace(const Args& args) {
  const auto x0 = build_config(args);
  const std::string out = args.get_string("out", "kusd_trace.csv");
  core::UsdSimulator sim(x0, rng::Rng(args.get_u64("seed", 1)),
                         core::UsdOptions{core::StepMode::kSkipUnproductive});
  pp::Trajectory trajectory;
  sim.run_observed(core::default_interaction_cap(x0.n(), x0.k()),
                   std::max<pp::Count>(1, x0.n() / 64),
                   [&trajectory](std::uint64_t t,
                                 std::span<const pp::Count> opinions,
                                 pp::Count u) {
                     trajectory.record(t, opinions, u);
                   });
  trajectory.write_csv(out);
  std::printf("wrote %zu snapshots to %s (consensus: %s)\n",
              trajectory.size(), out.c_str(),
              sim.is_consensus() ? "yes" : "no");
  return 0;
}

int cmd_exact(const Args& args) {
  const pp::Count n = args.get_u64("n", 12);
  const int k = static_cast<int>(args.get_u64("k", 2));
  std::vector<pp::Count> support;
  const std::string spec = args.get_string("support", "");
  if (spec.empty()) {
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    support.assign(x0.opinions().begin(), x0.opinions().end());
  } else {
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t next = spec.find(',', pos);
      if (next == std::string::npos) next = spec.size();
      support.push_back(
          std::strtoull(spec.substr(pos, next - pos).c_str(), nullptr, 10));
      pos = next + 1;
    }
    if (static_cast<int>(support.size()) != k) {
      std::fprintf(stderr, "--support must list exactly k values\n");
      return 2;
    }
  }
  analysis::UsdExactSolver solver(n, k);
  std::printf("exact analysis: n=%llu k=%d (%zu states)\n",
              static_cast<unsigned long long>(n), k, solver.num_states());
  std::printf("expected interactions to consensus: %.3f\n",
              solver.expected_consensus_time(support));
  for (int i = 0; i < k; ++i) {
    std::printf("P[opinion %d wins] = %.6f\n", i,
                solver.win_probability(support, i));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "run") return cmd_run(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "trace") return cmd_trace(args);
    if (args.command == "exact") return cmd_exact(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
