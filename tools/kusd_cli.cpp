// kusd — command-line front end for the library.
//
// Subcommands:
//   run       one USD run, printed phases and outcome
//   sweep     grid sweep over (engine, n, k, bias) with parallel trials,
//             streamed to a table and optionally CSV / JSONL; supports
//             deterministic sharding (--shard i/N), cell-granular
//             checkpoints (--journal) and crash resume (--resume)
//   merge     validate shard journals (same sweep, complete, gap-free)
//             and concatenate them into the unsharded CSV / JSONL
//   trace     record a trajectory CSV for plotting
//   exact     exact win probability / expected time (small n, k)
//
// Examples:
//   kusd run --n 100000 --k 8
//   kusd run --n 65536 --k 4 --bias additive --beta 3000 --seed 7
//   kusd sweep --n 32768 --k 8 --bias multiplicative --alpha 2 --trials 50
//   kusd sweep --n 1e5,1e6 --k 8,32 --engine skip,batched,gossip
//        --trials 20 --out sweep.csv --json sweep.jsonl
//   kusd sweep --n 1e5 --k 2,4,8 --shard 0/3 --journal shard0.journal
//        --out shard0.csv
//   kusd sweep --resume shard0.journal --n 1e5 --k 2,4,8 --shard 0/3
//        --out shard0.csv
//   kusd merge --inputs shard0.journal,shard1.journal,shard2.journal
//        --out sweep.csv
//   kusd trace --n 100000 --k 8 --out trace.csv
//   kusd exact --n 12 --k 3 --support 6,4,2
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/usd_exact.hpp"
#include "core/budget.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "pp/trajectory.hpp"
#include "runner/csv.hpp"
#include "runner/sweep.hpp"
#include "runner/sweep_service.hpp"
#include "runner/table.hpp"
#include "sim/registry.hpp"

namespace {

using namespace kusd;

// The registry names whose engines take a `--graph` topology, joined for
// error messages ("graph, graph-batched" with the builtins).
std::string graph_engine_names() {
  const auto& registry = sim::Registry::instance();
  std::string names;
  for (const auto& name : registry.names()) {
    if (!registry.find(name)->uses_graph_axis) continue;
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

[[noreturn]] void usage(int exit_code = 2) {
  // Engines come from the registry, so a newly registered engine shows up
  // here without touching the CLI.
  const std::string engines = sim::Registry::instance().names_joined();
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "usage: kusd <run|sweep|merge|trace|exact> [options]\n"
      "  common:  --n N --k K --undecided U --seed S\n"
      "  bias:    --bias none|additive|multiplicative [--beta B | --alpha A]\n"
      "  engines: %s\n"
      "  run:     --engine NAME [--graph SPEC]\n"
      "  sweep:   grid axes take comma lists (scientific notation ok):\n"
      "           --n N1,N2,... --k K1,... --engine NAME[,...]\n"
      "           --graph complete|cycle|regular:<d>|er:<p>|er:auto[,...]\n"
      "             (topology axis; requires a graph engine: graph = exact\n"
      "             per-edge, graph-batched = degree-aggregated for huge n)\n"
      "           --start uniform|geometric:<ratio>[,...]\n"
      "           [--beta B1,... | --alpha A1,...] --trials T --ufrac F\n"
      "           --budget B (per-trial native-time cap; 0 = engine default,\n"
      "             raise it for slow topologies like --graph cycle)\n"
      "           --threads W --chunk F --chunk-policy fixed|adaptive\n"
      "           --lockstep-schedule per-trial|shared (batched-lockstep:\n"
      "             shared = one chunk controller + uniform stream per\n"
      "             cell; faster, deterministic, not stream-identical)\n"
      "           --stripe-width T (trials per work-stealing unit)\n"
      "           --shuffle-points 0|1 (shuffled execution order;\n"
      "             output order and bytes are unaffected)\n"
      "           --shard I/N (run grid block I of N; shard outputs\n"
      "             concatenate to the unsharded output byte-for-byte)\n"
      "           --journal FILE (checkpoint each cell; survives kills)\n"
      "           --resume FILE (replay a journal's cells, compute the\n"
      "             rest, append to the same journal; same flags required)\n"
      "           --out FILE.csv --json FILE.jsonl\n"
      "  merge:   --inputs J1,J2,... (shard journals; validated: same\n"
      "             sweep digest, every shard once, complete, no gaps)\n"
      "           --out FILE.csv --json FILE.jsonl\n"
      "  trace:   --out FILE.csv\n"
      "  exact:   --support x1,x2,...  (n <= ~20, small k)\n",
      engines.c_str());
  std::exit(exit_code);
}

// Strict number parsing for every subcommand: a typo'd value must fail
// loudly, not run a different experiment.
double parse_number_or_usage(const std::string& item) {
  char* end = nullptr;
  const double value = std::strtod(item.c_str(), &end);
  if (end == item.c_str() || *end != '\0') {
    std::fprintf(stderr, "cannot parse number '%s'\n", item.c_str());
    usage();
  }
  return value;
}

std::uint64_t parse_u64_or_usage(const std::string& item) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value =
      item.empty() || item[0] == '-'
          ? 0
          : std::strtoull(item.c_str(), &end, 10);
  if (end == nullptr || end == item.c_str() || *end != '\0' ||
      errno == ERANGE) {
    std::fprintf(stderr, "cannot parse integer '%s'\n", item.c_str());
    usage();
  }
  return value;
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : parse_u64_or_usage(it->second);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : parse_number_or_usage(it->second);
  }
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    const std::string& v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
    if (v == "0" || v == "false" || v == "no" || v == "off") return false;
    std::fprintf(stderr, "cannot parse boolean '%s' for --%s\n", v.c_str(),
                 key.c_str());
    usage();
  }
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  if (args.command == "--help" || args.command == "-h" ||
      args.command == "help") {
    usage(0);
  }
  const auto is_help = [](const char* arg) {
    return std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0;
  };
  for (int i = 2; i < argc; i += 2) {
    if (is_help(argv[i])) usage(0);
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) usage();
    if (is_help(argv[i + 1])) usage(0);
    args.options[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

pp::Configuration build_config(const Args& args) {
  const pp::Count n = args.get_u64("n", 100000);
  const int k = static_cast<int>(args.get_u64("k", 8));
  const pp::Count u = args.get_u64("undecided", 0);
  const std::string bias = args.get_string("bias", "none");
  if (bias == "none") return pp::Configuration::uniform(n, k, u);
  if (bias == "additive") {
    const pp::Count beta = args.get_u64("beta", n / 100);
    return pp::Configuration::with_additive_bias(n, k, u, beta);
  }
  if (bias == "multiplicative") {
    const double alpha = args.get_double("alpha", 2.0);
    return pp::Configuration::with_multiplicative_bias(n, k, u, alpha);
  }
  usage();
}

int cmd_run(const Args& args) {
  const auto x0 = build_config(args);
  runner::RunOptions opts;
  opts.engine = args.get_string("engine", "");
  if (!opts.engine.empty() &&
      !sim::Registry::instance().contains(opts.engine)) {
    std::fprintf(stderr, "unknown engine '%s'\n", opts.engine.c_str());
    usage();
  }
  const std::string graph_name = args.get_string("graph", "");
  if (!graph_name.empty()) {
    // Same contract as sweep: a --graph that no chosen engine reads is a
    // mistaken experiment, not a default to ignore silently.
    const auto* info = opts.engine.empty()
                           ? nullptr
                           : sim::Registry::instance().find(opts.engine);
    if (info == nullptr || !info->uses_graph_axis) {
      std::fprintf(stderr, "--graph requires a topology-taking engine (%s)\n",
                   graph_engine_names().c_str());
      usage();
    }
    const auto graph = sim::parse_graph_spec(graph_name);
    if (!graph) {
      std::fprintf(stderr,
                   "bad graph spec '%s' (want complete, cycle, "
                   "regular:<d>, er:<p> or er:auto)\n",
                   graph_name.c_str());
      usage();
    }
    opts.graph = *graph;
  }
  const auto result = runner::run_usd(x0, args.get_u64("seed", 1), opts);
  if (!result.converged) {
    std::printf("no consensus within the time cap\n");
    return 1;
  }
  std::printf("consensus on opinion %d after %llu native time units "
              "(parallel time %.1f)\n",
              result.winner,
              static_cast<unsigned long long>(result.interactions),
              result.parallel_time);
  std::printf("initial plurality %s; winner %s initially significant\n",
              result.plurality_won ? "won" : "lost",
              result.winner_initially_significant ? "was" : "was not");
  const auto& ph = result.phases;
  const auto show = [](const char* name,
                       const std::optional<std::uint64_t>& t) {
    if (t) {
      std::printf("  %-3s %llu\n", name,
                  static_cast<unsigned long long>(*t));
    }
  };
  show("T1", ph.t1);
  show("T2", ph.t2);
  show("T3", ph.t3);
  show("T4", ph.t4);
  show("T5", ph.t5);
  return 0;
}

std::vector<std::string> split_list(const std::string& spec) {
  std::vector<std::string> items;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    if (next > pos) items.push_back(spec.substr(pos, next - pos));
    pos = next + 1;
  }
  return items;
}

// Counts accept scientific notation ("1e6") for ergonomic large-n sweeps.
std::vector<pp::Count> parse_count_list(const std::string& spec) {
  std::vector<pp::Count> out;
  for (const auto& item : split_list(spec)) {
    const double value = parse_number_or_usage(item);
    // Cap at 2^53: beyond that the double round-trip silently rounds the
    // literal, which is exactly the quiet size drift this parser rejects.
    if (!(value >= 1.0 && value <= 9007199254740992.0) ||
        value != std::floor(value)) {
      std::fprintf(stderr, "count '%s' out of range or not an integer\n",
                   item.c_str());
      usage();
    }
    out.push_back(static_cast<pp::Count>(value));
  }
  return out;
}

std::vector<double> parse_double_list(const std::string& spec) {
  std::vector<double> out;
  for (const auto& item : split_list(spec)) {
    out.push_back(parse_number_or_usage(item));
  }
  return out;
}

int cmd_sweep(const Args& args) {
  // Unknown keys must fail, not be dropped: `--trails 500` running the
  // default 25 trials for hours is worse than an error. The bias-value
  // flag must also match the bias kind.
  const std::string bias_kind = args.get_string("bias", "none");
  for (const auto& [key, value] : args.options) {
    static const std::set<std::string> known = {
        "n",      "k",     "engine", "graph",   "bias", "beta", "alpha",
        "undecided", "ufrac", "budget", "trials", "seed", "threads",
        "chunk", "chunk-policy", "lockstep-schedule", "start", "stripe-width",
        "shuffle-points", "shard", "journal", "resume", "out", "json"};
    if (known.count(key) == 0) {
      std::fprintf(stderr, "unknown sweep option --%s\n", key.c_str());
      usage();
    }
    if ((key == "beta" && bias_kind != "additive") ||
        (key == "alpha" && bias_kind != "multiplicative")) {
      std::fprintf(stderr, "--%s requires --bias %s\n", key.c_str(),
                   key == "beta" ? "additive" : "multiplicative");
      usage();
    }
  }

  runner::SweepSpec spec;
  spec.ns = parse_count_list(args.get_string("n", "100000"));
  std::vector<int> ks;
  for (const auto n : parse_count_list(args.get_string("k", "8"))) {
    if (n > (std::uint64_t{1} << 30)) {
      std::fprintf(stderr, "--k value too large\n");
      usage();
    }
    ks.push_back(static_cast<int>(n));
  }
  spec.ks = ks;
  if (spec.ns.empty() || spec.ks.empty()) usage();

  if (bias_kind == "additive") {
    spec.bias_kind = runner::BiasKind::kAdditive;
    spec.bias_values = parse_double_list(
        args.get_string("beta", std::to_string(spec.ns.front() / 100)));
  } else if (bias_kind == "multiplicative") {
    spec.bias_kind = runner::BiasKind::kMultiplicative;
    spec.bias_values = parse_double_list(args.get_string("alpha", "2"));
  } else if (bias_kind != "none") {
    usage();
  }

  const auto& registry = sim::Registry::instance();
  spec.engines.clear();
  bool any_graph_engine = false;
  for (const auto& name : split_list(args.get_string("engine", "skip"))) {
    const sim::EngineInfo* info = registry.find(name);
    if (info == nullptr) {
      std::fprintf(stderr, "unknown engine '%s' (registered: %s)\n",
                   name.c_str(), registry.names_joined().c_str());
      usage();
    }
    any_graph_engine = any_graph_engine || info->uses_graph_axis;
    spec.engines.push_back(name);
  }
  if (spec.engines.empty()) usage();

  if (args.options.count("graph") != 0) {
    if (!any_graph_engine) {
      std::fprintf(stderr, "--graph requires a topology-taking engine (%s)\n",
                   graph_engine_names().c_str());
      usage();
    }
    spec.graphs.clear();
    for (const auto& name : split_list(args.get_string("graph", ""))) {
      const auto graph = sim::parse_graph_spec(name);
      if (!graph) {
        std::fprintf(stderr,
                     "bad graph spec '%s' (want complete, cycle, "
                     "regular:<d>, er:<p> or er:auto)\n",
                     name.c_str());
        usage();
      }
      spec.graphs.push_back(*graph);
    }
    if (spec.graphs.empty()) usage();
  }

  spec.starts.clear();
  for (const auto& name : split_list(args.get_string("start", "uniform"))) {
    const auto start = runner::parse_start_profile(name);
    if (!start) {
      std::fprintf(stderr,
                   "bad start profile '%s' (want uniform or "
                   "geometric:<ratio> with ratio in (0,1])\n",
                   name.c_str());
      usage();
    }
    spec.starts.push_back(*start);
  }
  if (spec.starts.empty()) usage();

  {
    // Budgets are as large as populations; accept scientific notation
    // with the same exact-integer rule as the count axes.
    const double budget = args.get_double("budget", 0.0);
    if (!(budget >= 0.0 && budget <= 9007199254740992.0) ||
        budget != std::floor(budget)) {
      std::fprintf(stderr, "--budget out of range or not an integer\n");
      usage();
    }
    spec.max_time = static_cast<std::uint64_t>(budget);
  }
  spec.undecided_fraction = args.get_double("ufrac", 0.0);
  // --undecided (absolute count, shared with `run`) is honored for
  // single-n sweeps; a count is ambiguous across an n grid.
  if (args.options.count("undecided") != 0) {
    if (args.options.count("ufrac") != 0 || spec.ns.size() != 1) {
      std::fprintf(stderr,
                   "--undecided needs a single --n and excludes --ufrac; "
                   "use --ufrac for n grids\n");
      usage();
    }
    spec.undecided_fraction =
        static_cast<double>(args.get_u64("undecided", 0)) /
        static_cast<double>(spec.ns.front());
  }
  const std::uint64_t trials = args.get_u64("trials", 25);
  if (trials > 1'000'000'000) {
    std::fprintf(stderr, "--trials too large\n");
    usage();
  }
  spec.trials = static_cast<int>(trials);
  spec.master_seed = args.get_u64("seed", 1);
  const std::uint64_t threads = args.get_u64("threads", 0);
  if (threads > 65536) {
    std::fprintf(stderr, "--threads too large\n");
    usage();
  }
  spec.threads = static_cast<std::size_t>(threads);
  spec.batch_chunk_fraction =
      args.get_double("chunk", spec.batch_chunk_fraction);
  {
    const std::string policy_name =
        args.get_string("chunk-policy", "fixed");
    const auto policy = core::parse_chunk_policy(policy_name);
    if (!policy) {
      std::fprintf(stderr, "unknown chunk policy '%s'\n",
                   policy_name.c_str());
      usage();
    }
    spec.batch_policy = *policy;
  }
  {
    const std::string schedule_name =
        args.get_string("lockstep-schedule", "per-trial");
    const auto schedule = core::parse_lockstep_schedule(schedule_name);
    if (!schedule) {
      std::fprintf(stderr, "unknown lockstep schedule '%s'\n",
                   schedule_name.c_str());
      usage();
    }
    spec.lockstep_schedule = *schedule;
  }
  {
    const std::uint64_t width =
        args.get_u64("stripe-width", runner::SweepSpec{}.stripe_width);
    if (width < 1 || width > 1'000'000'000) {
      std::fprintf(stderr, "--stripe-width must be in [1, 1e9]\n");
      usage();
    }
    spec.stripe_width = static_cast<std::size_t>(width);
  }
  spec.shuffle_points = args.get_bool("shuffle-points", false);

  runner::SweepServiceOptions service;
  {
    const std::string shard_text = args.get_string("shard", "0/1");
    const auto shard = runner::parse_shard(shard_text);
    if (!shard) {
      std::fprintf(stderr,
                   "bad shard '%s' (want I/N with 0 <= I < N)\n",
                   shard_text.c_str());
      usage();
    }
    service.shard = *shard;
  }
  service.journal_path = args.get_string("journal", "");
  service.resume_path = args.get_string("resume", "");
  // Fault-injection switch for the CI resume-kill leg: after this many
  // computed cells (each already journaled and flushed), die the way a
  // crashed production run does — no destructors, no buffered goodbye.
  if (const char* trip_env = std::getenv("KUSD_SWEEP_TRIP_CELLS")) {
    const std::uint64_t trip = parse_u64_or_usage(trip_env);
    if (trip > 0) {
      service.after_cell = [trip](std::size_t computed) {
        if (computed >= trip) std::raise(SIGKILL);
      };
    }
  }

  const runner::Sweep sweep(std::move(spec));
  const std::string csv_path = args.get_string("out", "");
  const std::string json_path = args.get_string("json", "");
  std::optional<runner::CsvWriter> csv;
  if (!csv_path.empty()) csv.emplace(csv_path, runner::Sweep::csv_header());
  std::FILE* json = nullptr;
  if (!json_path.empty()) {
    json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }

  runner::Table table(runner::Sweep::csv_header());
  const auto shard_block =
      runner::shard_range(sweep.grid().size(), service.shard);
  const std::size_t total = shard_block.end - shard_block.begin;
  std::size_t cells = 0;
  runner::run_sweep_service(
      sweep, service, [&](const runner::SweepRowEvent& event) {
        table.add_row(*event.row);
        if (csv) {
          csv->write_row(*event.row);
          csv->flush();
        }
        if (json != nullptr) {
          std::fprintf(json, "%s\n",
                       runner::Sweep::json_line(*event.row).c_str());
          std::fflush(json);
        }
        ++cells;
        // Live progress on stderr; the aligned table needs all rows for
        // its column widths and is printed to stdout at the end.
        if (event.cell == nullptr) {
          std::fprintf(stderr, "[%zu/%zu] cell %zu replayed from journal\n",
                       cells, total, event.index);
          return;
        }
        const runner::SweepCell& cell = *event.cell;
        std::fprintf(stderr, "[%zu/%zu] %s%s%s n=%llu k=%d done in %.2fs\n",
                     cells, total, cell.point.engine.c_str(),
                     cell.point.graph.has_value() ? " " : "",
                     cell.point.graph.has_value()
                         ? sim::to_string(*cell.point.graph).c_str()
                         : "",
                     static_cast<unsigned long long>(cell.point.n),
                     cell.point.k, cell.wall_seconds);
      });
  table.print();
  int rc = 0;
  if (csv && !csv->ok()) {
    // A disk-full/I/O failure mid-sweep must not exit 0 advertising a
    // truncated file as complete output.
    std::fprintf(stderr, "error: writing %s failed\n", csv_path.c_str());
    rc = 1;
  }
  if (json != nullptr && std::fclose(json) != 0) {
    std::fprintf(stderr, "error: writing %s failed\n", json_path.c_str());
    rc = 1;
  }
  std::printf("%zu grid cells x %d trials\n", cells, sweep.spec().trials);
  if (!csv_path.empty()) std::printf("csv: %s\n", csv_path.c_str());
  if (!json_path.empty()) std::printf("jsonl: %s\n", json_path.c_str());
  return rc;
}

int cmd_merge(const Args& args) {
  for (const auto& [key, value] : args.options) {
    static const std::set<std::string> known = {"inputs", "out", "json"};
    if (known.count(key) == 0) {
      std::fprintf(stderr, "unknown merge option --%s\n", key.c_str());
      usage();
    }
  }
  const auto inputs = split_list(args.get_string("inputs", ""));
  if (inputs.empty()) {
    std::fprintf(stderr, "--inputs must list at least one shard journal\n");
    usage();
  }
  const std::string csv_path = args.get_string("out", "");
  const std::string json_path = args.get_string("json", "");
  if (csv_path.empty() && json_path.empty()) {
    std::fprintf(stderr, "merge needs --out and/or --json\n");
    usage();
  }

  // Output files are opened lazily on the first validated row:
  // merge_journals validates every journal before emitting anything, so
  // a failed merge leaves no output file behind — not even an empty one.
  std::optional<runner::CsvWriter> csv;
  std::FILE* json = nullptr;
  std::size_t rows = 0;
  runner::merge_journals(
      inputs, [&](std::size_t /*index*/, const std::vector<std::string>& row) {
        if (!csv_path.empty() && !csv) {
          csv.emplace(csv_path, runner::Sweep::csv_header());
        }
        if (!json_path.empty() && json == nullptr) {
          json = std::fopen(json_path.c_str(), "w");
          if (json == nullptr) {
            throw std::runtime_error("cannot open " + json_path);
          }
        }
        if (csv) csv->write_row(row);
        if (json != nullptr) {
          std::fprintf(json, "%s\n", runner::Sweep::json_line(row).c_str());
        }
        ++rows;
      });
  int rc = 0;
  if (csv && !csv->ok()) {
    std::fprintf(stderr, "error: writing %s failed\n", csv_path.c_str());
    rc = 1;
  }
  if (json != nullptr && std::fclose(json) != 0) {
    std::fprintf(stderr, "error: writing %s failed\n", json_path.c_str());
    rc = 1;
  }
  std::printf("merged %zu cells from %zu shard journals\n", rows,
              inputs.size());
  if (!csv_path.empty()) std::printf("csv: %s\n", csv_path.c_str());
  if (!json_path.empty()) std::printf("jsonl: %s\n", json_path.c_str());
  return rc;
}

int cmd_trace(const Args& args) {
  const auto x0 = build_config(args);
  const std::string out = args.get_string("out", "kusd_trace.csv");
  core::UsdSimulator sim(x0, rng::Rng(args.get_u64("seed", 1)),
                         core::UsdOptions{core::StepMode::kSkipUnproductive});
  pp::Trajectory trajectory;
  sim.run_observed(core::default_interaction_cap(x0.n(), x0.k()),
                   std::max<pp::Count>(1, x0.n() / 64),
                   [&trajectory](std::uint64_t t,
                                 std::span<const pp::Count> opinions,
                                 pp::Count u) {
                     trajectory.record(t, opinions, u);
                   });
  runner::write_trajectory_csv(trajectory, out);
  std::printf("wrote %zu snapshots to %s (consensus: %s)\n",
              trajectory.size(), out.c_str(),
              sim.is_consensus() ? "yes" : "no");
  return 0;
}

int cmd_exact(const Args& args) {
  const pp::Count n = args.get_u64("n", 12);
  const int k = static_cast<int>(args.get_u64("k", 2));
  std::vector<pp::Count> support;
  const std::string spec = args.get_string("support", "");
  if (spec.empty()) {
    const auto x0 = pp::Configuration::uniform(n, k, 0);
    support.assign(x0.opinions().begin(), x0.opinions().end());
  } else {
    for (const auto& item : split_list(spec)) {
      support.push_back(parse_u64_or_usage(item));
    }
    if (static_cast<int>(support.size()) != k) {
      std::fprintf(stderr, "--support must list exactly k values\n");
      return 2;
    }
  }
  analysis::UsdExactSolver solver(n, k);
  std::printf("exact analysis: n=%llu k=%d (%zu states)\n",
              static_cast<unsigned long long>(n), k, solver.num_states());
  std::printf("expected interactions to consensus: %.3f\n",
              solver.expected_consensus_time(support));
  for (int i = 0; i < k; ++i) {
    std::printf("P[opinion %d wins] = %.6f\n", i,
                solver.win_probability(support, i));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "run") return cmd_run(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "merge") return cmd_merge(args);
    if (args.command == "trace") return cmd_trace(args);
    if (args.command == "exact") return cmd_exact(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
