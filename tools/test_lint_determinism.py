#!/usr/bin/env python3
"""Unit tests for lint_determinism.py (fixture trees in a tempdir).

Run directly or via the smoke_lint_determinism_selftest ctest:
  python3 tools/test_lint_determinism.py
"""

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

LINTER = Path(__file__).resolve().parent / "lint_determinism.py"

# One line per hazard class the linter must catch.
HAZARDS = {
    "random-device": "std::random_device dev;",
    "c-rand": "int x = rand() % 6;",
    "wall-clock": "auto t = std::chrono::steady_clock::now();",
    "std-shuffle": "std::shuffle(v.begin(), v.end(), gen);",
    "unordered-container": "std::unordered_map<int, int> counts;",
    "hardware-concurrency":
        "auto n = std::thread::hardware_concurrency();",
    "std-engine": "std::mt19937 gen;",
}


def run_linter(root: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), str(root), *extra],
        capture_output=True, text=True, check=False)


class LintDeterminismTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        (self.root / "src").mkdir()
        (self.root / "tools").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel: str, text: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    def test_clean_tree_passes(self):
        self.write("src/ok.cpp", "int add(int a, int b) { return a + b; }\n")
        result = run_linter(self.root)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("no determinism hazards", result.stdout)

    def test_every_hazard_class_is_caught(self):
        for code, line in HAZARDS.items():
            with self.subTest(code=code):
                self.write("src/bad.cpp", line + "\n")
                result = run_linter(self.root)
                self.assertEqual(result.returncode, 1,
                                 f"{code} not caught: {result.stdout}")
                self.assertIn(f"[{code}]", result.stderr)
                self.assertIn("src/bad.cpp:1", result.stderr)

    def test_time_call_is_wall_clock_but_names_are_not(self):
        self.write("src/bad.cpp", "auto seed = time(nullptr);\n")
        self.assertEqual(run_linter(self.root).returncode, 1)
        # Identifiers merely containing 'time(' must not trip the check.
        self.write("src/bad.cpp",
                   "double parallel_time() const; double t = run_time(x);\n")
        self.assertEqual(run_linter(self.root).returncode, 0)

    def test_comments_and_strings_do_not_trip(self):
        self.write("src/doc.cpp",
                   "// never use std::random_device here\n"
                   "/* std::shuffle is forbidden\n   rand() too */\n"
                   'const char* msg = "std::unordered_map is banned";\n')
        result = run_linter(self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_allowlist_suppresses_audited_entry(self):
        self.write("src/pool.cpp",
                   "auto n = std::thread::hardware_concurrency();\n")
        self.write("tools/determinism_allowlist.txt",
                   "# audited: sizing only\n"
                   "src/pool.cpp:hardware-concurrency\n")
        result = run_linter(self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_allowlist_is_per_hazard_not_per_file(self):
        self.write("src/pool.cpp",
                   "auto n = std::thread::hardware_concurrency();\n"
                   "std::random_device dev;\n")
        self.write("tools/determinism_allowlist.txt",
                   "src/pool.cpp:hardware-concurrency\n")
        result = run_linter(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("[random-device]", result.stderr)
        self.assertNotIn("[hardware-concurrency]", result.stderr)

    def test_stale_allowlist_entry_fails(self):
        self.write("src/ok.cpp", "int x = 0;\n")
        self.write("tools/determinism_allowlist.txt",
                   "src/ok.cpp:wall-clock\n")
        result = run_linter(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("stale allowlist entry", result.stderr)

    def test_malformed_allowlist_is_a_usage_error(self):
        self.write("src/ok.cpp", "int x = 0;\n")
        self.write("tools/determinism_allowlist.txt", "not-an-entry\n")
        self.assertEqual(run_linter(self.root).returncode, 2)

    def test_missing_src_dir_is_a_usage_error(self):
        result = run_linter(self.root / "nowhere")
        self.assertEqual(result.returncode, 2)

    def test_findings_name_file_line_and_code(self):
        self.write("src/deep/nested.hpp",
                   "int a;\nint b;\nstd::mt19937 gen;\n")
        result = run_linter(self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("src/deep/nested.hpp:3: [std-engine]", result.stderr)


if __name__ == "__main__":
    unittest.main()
