// The approximate-vs-exact majority trade-off, executable.
//
// The USD solves approximate majority in O(n log n) interactions but can
// elect the minority when the initial margin is below Theta(sqrt(n log n));
// the 4-state exact majority protocol is always correct yet needs
// Theta(n^2 log n)-ish interactions when the margin is tiny. This example
// runs both on shrinking margins and prints accuracy and cost side by
// side — the design space the paper's Section 1.2 describes.
//
//   $ ./majority_tradeoff [n] [trials]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "pp/scheduler.hpp"
#include "protocols/classic.hpp"
#include "runner/table.hpp"
#include "rng/rng.hpp"

int main(int argc, char** argv) {
  using namespace kusd;

  const pp::Count n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 30;

  std::printf("approximate (USD) vs exact majority, n=%llu, %d trials "
              "per margin\n\n",
              static_cast<unsigned long long>(n), trials);

  runner::Table table({"margin", "USD correct", "USD mean interactions",
                       "exact correct", "exact mean interactions"});

  for (const pp::Count margin :
       {pp::Count{2}, n / 100 + 1, n / 20, n / 4}) {
    const pp::Count a = n / 2 + margin / 2 + 1;
    const pp::Count b = n - a;

    int usd_correct = 0;
    double usd_cost = 0.0;
    for (int t = 0; t < trials; ++t) {
      core::UsdSimulator sim(
          pp::Configuration({a, b}, 0),
          rng::Rng(rng::stream_seed(10, static_cast<std::uint64_t>(t))),
          core::UsdOptions{core::StepMode::kSkipUnproductive});
      sim.run_to_consensus(1ull << 40);
      usd_correct += sim.consensus_opinion() == 0 ? 1 : 0;
      usd_cost += static_cast<double>(sim.interactions());
    }

    protocols::ExactMajorityProtocol exact;
    int exact_correct = 0;
    double exact_cost = 0.0;
    for (int t = 0; t < trials; ++t) {
      const std::vector<std::uint64_t> init{a, b, 0, 0};
      pp::CountScheduler sched(
          exact, init,
          rng::Rng(rng::stream_seed(20, static_cast<std::uint64_t>(t))));
      sched.run_until(
          [](std::span<const std::uint64_t> c) {
            return (c[1] == 0 && c[3] == 0) || (c[0] == 0 && c[2] == 0);
          },
          1ull << 40);
      // Correct iff everyone believes A (the true majority).
      exact_correct +=
          (sched.counts()[1] == 0 && sched.counts()[3] == 0) ? 1 : 0;
      exact_cost += static_cast<double>(sched.steps());
    }

    table.add_row({std::to_string(margin),
                   std::to_string(usd_correct) + "/" +
                       std::to_string(trials),
                   runner::fmt_compact(usd_cost / trials),
                   std::to_string(exact_correct) + "/" +
                       std::to_string(trials),
                   runner::fmt_compact(exact_cost / trials)});
  }
  table.print();
  std::printf("\nUSD: cheap, but below the Theta(sqrt(n log n)) margin it\n"
              "sometimes elects the minority. Exact majority: always\n"
              "correct, but pays ~n^2 interactions on knife-edge margins.\n");
  return 0;
}
