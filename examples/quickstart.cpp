// Quickstart: run the k-opinion Undecided State Dynamics once and print
// what happened.
//
//   $ ./quickstart [n] [k]
//
// Demonstrates the three core API calls: build a Configuration, call
// run_usd, and read the RunResult (winner, interaction count, phase times).
#include <cstdio>
#include <cstdlib>

#include "runner/run.hpp"
#include "pp/configuration.hpp"

int main(int argc, char** argv) {
  using namespace kusd;

  const pp::Count n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 8;

  // Every opinion starts with n/k supporters: no initial bias at all.
  const auto initial = pp::Configuration::uniform(n, k, /*undecided=*/0);

  std::printf("USD with n = %llu agents, k = %d opinions, unbiased start\n",
              static_cast<unsigned long long>(n), k);

  const auto result = runner::run_usd(initial, /*seed=*/2023);

  if (!result.converged) {
    std::printf("did not converge within the interaction cap\n");
    return 1;
  }
  std::printf("consensus on opinion %d after %llu interactions "
              "(%.1f parallel time)\n",
              result.winner,
              static_cast<unsigned long long>(result.interactions),
              result.parallel_time);
  std::printf("the winner %s initially significant "
              "(Theorem 2, no-bias clause)\n",
              result.winner_initially_significant ? "was" : "was NOT");

  const auto& ph = result.phases;
  if (ph.complete()) {
    std::printf("phase ends (interactions): T1=%llu T2=%llu T3=%llu "
                "T4=%llu T5=%llu\n",
                static_cast<unsigned long long>(*ph.t1),
                static_cast<unsigned long long>(*ph.t2),
                static_cast<unsigned long long>(*ph.t3),
                static_cast<unsigned long long>(*ph.t4),
                static_cast<unsigned long long>(*ph.t5));
  }
  return 0;
}
