// Domain scenario: plurality voting in a sensor swarm.
//
// n cheap sensors each classify a phenomenon into one of k classes. Each
// sensor's reading is noisy: it reports the true class with probability
// `accuracy`, otherwise a uniformly random wrong class. The swarm has no
// coordinator and only pairwise random gossip — the population protocol
// model. Running the USD lets the swarm converge to one answer; by
// Theorem 2 the initial plurality (the true class, when accuracy makes it
// the plurality with an Omega(sqrt(n log n)) margin) wins w.h.p.
//
//   $ ./sensor_vote [n] [k] [accuracy] [trials]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/bias.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "runner/trials.hpp"

int main(int argc, char** argv) {
  using namespace kusd;

  const pp::Count n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 10;
  const double accuracy = argc > 3 ? std::atof(argv[3]) : 0.2;
  const int trials = argc > 4 ? std::atoi(argv[4]) : 25;
  const int true_class = 0;

  std::printf("sensor swarm: n=%llu sensors, k=%d classes, per-sensor "
              "accuracy %.2f (chance level %.2f)\n",
              static_cast<unsigned long long>(n), k, accuracy, 1.0 / k);

  const auto outcome = runner::run_trials<int>(
      trials, /*master_seed=*/7,
      [&](std::uint64_t seed) {
        rng::Rng rng(seed);
        // Generate the noisy initial readings.
        std::vector<pp::Count> votes(static_cast<std::size_t>(k), 0);
        for (pp::Count s = 0; s < n; ++s) {
          int reading = true_class;
          if (!rng.bernoulli(accuracy)) {
            reading = 1 + static_cast<int>(rng.bounded(
                              static_cast<std::uint64_t>(k - 1)));
          }
          ++votes[static_cast<std::size_t>(reading)];
        }
        const pp::Configuration initial(votes, 0);
        runner::RunOptions opts;
        opts.track_phases = false;
        const auto result = runner::run_usd(initial, rng.next_u64(), opts);
        return result.converged && result.winner == true_class ? 1 : 0;
      });

  int correct = 0;
  for (int c : outcome) correct += c;
  std::printf("swarm agreed on the true class in %d / %d trials (%.1f%%)\n",
              correct, trials, 100.0 * correct / trials);

  // Show the margin the USD had to work with in one instance.
  rng::Rng rng(1);
  std::vector<pp::Count> votes(static_cast<std::size_t>(k), 0);
  for (pp::Count s = 0; s < n; ++s) {
    int reading = true_class;
    if (!rng.bernoulli(accuracy)) {
      reading = 1 + static_cast<int>(rng.bounded(
                        static_cast<std::uint64_t>(k - 1)));
    }
    ++votes[static_cast<std::size_t>(reading)];
  }
  const pp::Configuration sample(votes, 0);
  std::printf("example initial margin: additive bias %llu vs significance "
              "threshold %.0f\n",
              static_cast<unsigned long long>(core::additive_bias(sample)),
              core::significance_threshold(n, 1.0));
  return 0;
}
