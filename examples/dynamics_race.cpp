// Race the USD against the related consensus dynamics from Section 1.2:
// Voter, TwoChoices, 3-Majority, MedianRule, and the synchronized USD
// variant, all from the same mildly biased start. Reports interactions
// (resp. activations / rounds) and whether the initial plurality won.
//
//   $ ./dynamics_race [n] [k] [trials]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dynamics.hpp"
#include "runner/run.hpp"
#include "core/sync_usd.hpp"
#include "pp/configuration.hpp"
#include "runner/table.hpp"
#include "runner/trials.hpp"

int main(int argc, char** argv) {
  using namespace kusd;

  // Default n stays modest because the Voter baseline needs Theta(n^2)
  // activations to coalesce — that contrast is the point of the race.
  const pp::Count n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 6;
  const int trials = argc > 3 ? std::atoi(argv[3]) : 10;

  const auto initial =
      pp::Configuration::with_multiplicative_bias(n, k, 0, 1.3);
  std::printf("dynamics race: n=%llu k=%d, multiplicative bias 1.3, "
              "%d trials each\n\n",
              static_cast<unsigned long long>(n), k, trials);

  runner::Table table({"dynamics", "mean parallel time", "plurality wins"});

  // --- USD (population protocol model) ---
  {
    double total = 0.0;
    int wins = 0;
    for (int t = 0; t < trials; ++t) {
      runner::RunOptions opts;
      opts.track_phases = false;
      const auto r = runner::run_usd(
          initial, rng::stream_seed(1, static_cast<std::uint64_t>(t)),
          opts);
      total += r.parallel_time;
      wins += r.plurality_won ? 1 : 0;
    }
    table.add_row({"USD", runner::fmt(total / trials, 1),
                   std::to_string(wins) + "/" + std::to_string(trials)});
  }

  // --- Sampling dynamics (no undecided state) ---
  const core::VoterDynamics voter;
  const core::TwoChoicesDynamics two_choices;
  const core::JMajorityDynamics three_majority(3);
  const core::MedianRuleDynamics median;
  const std::vector<const core::SamplingDynamics*> all_dynamics{
      &voter, &two_choices, &three_majority, &median};
  for (const core::SamplingDynamics* dyn : all_dynamics) {
    double total = 0.0;
    int wins = 0;
    for (int t = 0; t < trials; ++t) {
      core::DynamicsScheduler sched(
          *dyn, initial,
          rng::Rng(rng::stream_seed(2, static_cast<std::uint64_t>(t))));
      const bool ok = sched.run_to_consensus(
          400ull * n * static_cast<std::uint64_t>(k) * 20ull);
      total += static_cast<double>(sched.activations()) /
               static_cast<double>(n);
      wins += ok && sched.consensus_opinion() == 0 ? 1 : 0;
    }
    table.add_row({std::string(dyn->name()),
                   runner::fmt(total / trials, 1),
                   std::to_string(wins) + "/" + std::to_string(trials)});
  }

  // --- Synchronized USD (gossip-style rounds; parallel time = rounds) ---
  {
    double total = 0.0;
    int wins = 0;
    for (int t = 0; t < trials; ++t) {
      core::SyncUsd sync(initial, rng::Rng(rng::stream_seed(
                                      3, static_cast<std::uint64_t>(t))));
      const bool ok = sync.run_to_consensus(100000);
      total += static_cast<double>(sync.total_rounds());
      wins += ok && sync.consensus_opinion() == 0 ? 1 : 0;
    }
    table.add_row({"SyncUSD (rounds)", runner::fmt(total / trials, 1),
                   std::to_string(wins) + "/" + std::to_string(trials)});
  }

  table.print();
  std::printf("\nNote: parallel time = interactions / n for sequential\n"
              "dynamics and synchronous rounds for SyncUSD. The Voter\n"
              "needs Theta(n) parallel time; USD and the majority\n"
              "dynamics are polylogarithmic per Section 1.2.\n");
  return 0;
}
