// Visualize one USD run: the rise of the undecided agents toward the
// unstable equilibrium u* = n(k-1)/(2k-1) (Lemma 3), the growth of the
// plurality opinion, and the five phase boundaries of the paper's analysis.
//
//   $ ./phase_trace [n] [k] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/transition_probs.hpp"
#include "core/bias.hpp"
#include "core/budget.hpp"
#include "runner/run.hpp"
#include "core/phase_tracker.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"

int main(int argc, char** argv) {
  using namespace kusd;

  const pp::Count n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 42;

  const auto initial = pp::Configuration::uniform(n, k, 0);
  core::UsdSimulator sim(initial, rng::Rng(seed),
                         core::UsdOptions{core::StepMode::kSkipUnproductive});
  core::PhaseTracker tracker(n, 1.0);

  std::printf("USD trace: n=%llu k=%d  (u* = %.0f)\n",
              static_cast<unsigned long long>(n), k,
              analysis::u_star(n, k));
  std::printf("%12s %10s %10s %8s  %s\n", "interactions", "undecided",
              "xmax", "#signif", "support bar (plurality share)");

  const std::uint64_t interval = std::max<std::uint64_t>(1, n / 2);
  std::uint64_t next_print = 0;
  sim.run_observed(
      core::default_interaction_cap(n, k), std::max<std::uint64_t>(1, n / 8),
      [&](std::uint64_t t, std::span<const pp::Count> opinions,
          pp::Count undecided) {
        tracker.observe(t, opinions, undecided);
        if (t < next_print) return;
        next_print = t + interval;
        const pp::Count xmax = *std::max_element(opinions.begin(),
                                                 opinions.end());
        int significant = 0;
        const double threshold =
            core::significance_threshold(n, 1.0);
        for (pp::Count c : opinions) {
          if (static_cast<double>(c) >
              static_cast<double>(xmax) - threshold) {
            ++significant;
          }
        }
        const auto share = static_cast<std::size_t>(
            40.0 * static_cast<double>(xmax) / static_cast<double>(n));
        std::printf("%12llu %10llu %10llu %8d  %s\n",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(undecided),
                    static_cast<unsigned long long>(xmax), significant,
                    std::string(share, '#').c_str());
      });

  const auto& ph = tracker.times();
  std::printf("\nphase boundaries (first observation at/after condition):\n");
  const auto show = [](const char* name,
                       const std::optional<std::uint64_t>& t) {
    if (t) {
      std::printf("  %s = %llu\n", name,
                  static_cast<unsigned long long>(*t));
    } else {
      std::printf("  %s = (not reached)\n", name);
    }
  };
  show("T1 (undecided risen)", ph.t1);
  show("T2 (unique significant opinion)", ph.t2);
  show("T3 (multiplicative bias >= 2)", ph.t3);
  show("T4 (2/3 supermajority)", ph.t4);
  show("T5 (consensus)", ph.t5);
  if (sim.is_consensus()) {
    std::printf("winner: opinion %d\n", sim.consensus_opinion());
  }
  return 0;
}
