// Fault-injection suite for the sweep service: deterministic sharding,
// the checkpoint/resume journal, and `merge` provenance validation. The
// contract under test is byte-identity — shard concatenation, a merge of
// shard journals, and a resume after a kill at ANY cell boundary must
// all reproduce the unsharded, uninterrupted output exactly — plus the
// strict negative space: a mismatched digest, overlapping or missing
// shards, and truncated or corrupt journal lines fail loudly before any
// output is produced.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "runner/sweep_service.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using runner::Journal;
using runner::merge_journals;
using runner::parse_shard;
using runner::read_journal;
using runner::run_sweep_service;
using runner::shard_range;
using runner::ShardSpec;
using runner::Sweep;
using runner::SweepRowEvent;
using runner::SweepServiceOptions;
using runner::SweepSpec;
using runner::sweep_digest;

/// A small real grid: 2 engines x 2 n x 2 k = 8 points, cheap trials.
SweepSpec service_spec(std::uint64_t seed = 123) {
  SweepSpec spec;
  spec.engines = {"skip", "gossip"};
  spec.ns = {300, 600};
  spec.ks = {2, 3};
  spec.trials = 3;
  spec.master_seed = seed;
  spec.threads = 1;
  return spec;
}

std::string temp_path(const std::string& name) {
  const auto path = std::filesystem::path(testing::TempDir()) /
                    ("kusd_sweep_service_" + name);
  std::filesystem::remove(path);
  return path.string();
}

std::string render_row(const std::vector<std::string>& row) {
  std::string out;
  for (const auto& field : row) {
    out += field;
    out += ',';
  }
  out += '\n';
  return out;
}

/// Byte-identity witness for the whole service path: every emitted row,
/// rendered in emission order.
std::string render_service(const Sweep& sweep,
                           const SweepServiceOptions& options) {
  std::string out;
  run_sweep_service(sweep, options, [&out](const SweepRowEvent& event) {
    out += render_row(*event.row);
  });
  return out;
}

/// The reference: the plain unsharded, unjournaled sweep.
std::string render_reference(const Sweep& sweep) {
  std::string out;
  sweep.run([&out](const runner::SweepCell& cell) {
    out += render_row(Sweep::csv_row(cell));
  });
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good());
}

TEST(ShardSpecParse, AcceptsWellFormedRejectsEverythingElse) {
  const auto ok = parse_shard("2/7");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->index, 2u);
  EXPECT_EQ(ok->count, 7u);
  EXPECT_TRUE(parse_shard("0/1").has_value());
  // Index must be strictly below count; count must be positive.
  EXPECT_FALSE(parse_shard("2/2").has_value());
  EXPECT_FALSE(parse_shard("0/0").has_value());
  EXPECT_FALSE(parse_shard("").has_value());
  EXPECT_FALSE(parse_shard("3").has_value());
  EXPECT_FALSE(parse_shard("/3").has_value());
  EXPECT_FALSE(parse_shard("3/").has_value());
  EXPECT_FALSE(parse_shard("a/b").has_value());
  EXPECT_FALSE(parse_shard("-1/2").has_value());
  EXPECT_FALSE(parse_shard("1/2/3").has_value());
  EXPECT_FALSE(parse_shard("1 /2").has_value());
}

TEST(ShardRange, BlocksTileTheGridForAnyCount) {
  for (const std::size_t total : {0u, 1u, 5u, 8u, 12u, 97u}) {
    for (const std::size_t count : {1u, 2u, 3u, 7u, 13u}) {
      std::size_t expected_begin = 0;
      for (std::size_t index = 0; index < count; ++index) {
        const auto range = shard_range(total, ShardSpec{index, count});
        EXPECT_EQ(range.begin, expected_begin)
            << "shard " << index << "/" << count << " of " << total;
        EXPECT_LE(range.begin, range.end);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, total) << count << "-way split of " << total;
    }
  }
}

TEST(SweepService, ShardConcatenationIsByteIdenticalToUnsharded) {
  const Sweep sweep(service_spec());
  const std::string reference = render_reference(sweep);
  for (const std::size_t count : {1u, 2u, 3u, 7u}) {
    std::string concatenated;
    for (std::size_t index = 0; index < count; ++index) {
      SweepServiceOptions options;
      options.shard = ShardSpec{index, count};
      concatenated += render_service(sweep, options);
    }
    EXPECT_EQ(concatenated, reference) << count << "-way sharding";
  }
}

TEST(SweepService, MergedShardJournalsAreByteIdenticalToUnsharded) {
  const Sweep sweep(service_spec());
  const std::string reference = render_reference(sweep);
  for (const std::size_t count : {1u, 2u, 3u, 7u}) {
    std::vector<std::string> paths;
    for (std::size_t index = 0; index < count; ++index) {
      SweepServiceOptions options;
      options.shard = ShardSpec{index, count};
      options.journal_path = temp_path("merge_" + std::to_string(count) +
                                       "_" + std::to_string(index) +
                                       ".jsonl");
      paths.push_back(options.journal_path);
      render_service(sweep, options);
    }
    // Merge must reorder by block start, so hand it the paths reversed.
    std::vector<std::string> shuffled(paths.rbegin(), paths.rend());
    std::string merged;
    merge_journals(shuffled,
                   [&merged](std::size_t, const std::vector<std::string>& row) {
                     merged += render_row(row);
                   });
    EXPECT_EQ(merged, reference) << count << "-way merge";
  }
}

/// The fault injector: aborts the run (via an exception type nothing else
/// throws) once `stop_after` cells have been computed and journaled.
struct KillSwitch {};

/// Run with a journal, killing after `stop_after` computed cells; returns
/// the number of cells the journal holds afterwards. stop_after >= grid
/// size means the run completes. stop_after == 0 reproduces the kill
/// window between the header flush and the first cell line by truncating
/// the journal back to its header — after_cell cannot fire earlier.
std::size_t run_and_kill(const Sweep& sweep, const std::string& journal_path,
                         std::size_t stop_after) {
  SweepServiceOptions options;
  options.journal_path = journal_path;
  const std::size_t trip = stop_after == 0 ? 1 : stop_after;
  if (trip < sweep.grid().size()) {
    options.after_cell = [trip](std::size_t computed) {
      if (computed >= trip) throw KillSwitch{};
    };
  }
  bool killed = false;
  try {
    run_sweep_service(sweep, options, [](const SweepRowEvent&) {});
  } catch (const KillSwitch&) {
    killed = true;
  }
  EXPECT_EQ(killed, trip < sweep.grid().size());
  if (stop_after == 0) {
    const std::string content = slurp(journal_path);
    spit(journal_path, content.substr(0, content.find('\n') + 1));
  }
  return read_journal(journal_path).cells.size();
}

TEST(SweepService, ResumeAfterKillAtEveryCellBoundaryIsByteIdentical) {
  const Sweep sweep(service_spec());
  const std::string reference = render_reference(sweep);
  const std::size_t points = sweep.grid().size();
  ASSERT_EQ(points, 8u);
  for (std::size_t stop = 0; stop <= points; ++stop) {
    const std::string journal =
        temp_path("resume_" + std::to_string(stop) + ".jsonl");
    const std::size_t recorded = run_and_kill(sweep, journal, stop);
    ASSERT_EQ(recorded, stop) << "killed after " << stop << " cells";

    SweepServiceOptions options;
    options.resume_path = journal;
    std::string out;
    std::size_t replayed = 0;
    std::size_t computed = 0;
    std::size_t last_index = 0;
    run_sweep_service(sweep, options, [&](const SweepRowEvent& event) {
      out += render_row(*event.row);
      // Replayed rows carry no cell (nothing was recomputed); rows must
      // arrive in strict grid order regardless of provenance.
      (event.cell == nullptr ? replayed : computed) += 1;
      if (replayed + computed > 1) {
        EXPECT_GT(event.index, last_index);
      }
      last_index = event.index;
    });
    EXPECT_EQ(out, reference) << "resume after " << stop << " cells";
    EXPECT_EQ(replayed, stop);
    EXPECT_EQ(computed, points - stop);
    // The journal is now complete and merges cleanly on its own.
    EXPECT_EQ(read_journal(journal).cells.size(), points);
    std::string merged;
    merge_journals({journal},
                   [&merged](std::size_t, const std::vector<std::string>& row) {
                     merged += render_row(row);
                   });
    EXPECT_EQ(merged, reference);
  }
}

TEST(SweepService, EmittedRowsAreAlwaysCoveredByTheJournal) {
  // The durability contract: a cell's journal line is flushed before the
  // row reaches the consumer, so re-reading the journal from inside the
  // consumer must always find every row observed so far.
  const Sweep sweep(service_spec());
  SweepServiceOptions options;
  options.journal_path = temp_path("covered.jsonl");
  run_sweep_service(sweep, options, [&](const SweepRowEvent& event) {
    const Journal journal = read_journal(options.journal_path);
    const auto it = journal.cells.find(event.index);
    ASSERT_NE(it, journal.cells.end()) << "cell " << event.index;
    EXPECT_EQ(it->second, *event.row);
  });
}

TEST(SweepService, ResumeRejectsJournalFromDifferentSweep) {
  const Sweep sweep(service_spec(123));
  const Sweep other(service_spec(124));
  EXPECT_NE(sweep_digest(sweep), sweep_digest(other));
  const std::string journal = temp_path("digest.jsonl");
  SweepServiceOptions write;
  write.journal_path = journal;
  render_service(sweep, write);

  SweepServiceOptions resume;
  resume.resume_path = journal;
  EXPECT_THROW(render_service(other, resume), util::CheckError);
}

TEST(SweepService, ResumeRejectsJournalFromDifferentShard) {
  const Sweep sweep(service_spec());
  const std::string journal = temp_path("shard_mismatch.jsonl");
  SweepServiceOptions write;
  write.shard = ShardSpec{0, 2};
  write.journal_path = journal;
  render_service(sweep, write);

  SweepServiceOptions resume;
  resume.shard = ShardSpec{1, 2};
  resume.resume_path = journal;
  EXPECT_THROW(render_service(sweep, resume), util::CheckError);
}

TEST(SweepService, ResumeRejectsConflictingJournalPath) {
  const Sweep sweep(service_spec());
  const std::string journal = temp_path("conflict.jsonl");
  SweepServiceOptions write;
  write.journal_path = journal;
  render_service(sweep, write);

  SweepServiceOptions resume;
  resume.resume_path = journal;
  resume.journal_path = temp_path("conflict_other.jsonl");
  EXPECT_THROW(render_service(sweep, resume), util::CheckError);
}

TEST(SweepService, JournalReaderRejectsEveryCorruption) {
  const Sweep sweep(service_spec());
  const std::string journal = temp_path("corrupt.jsonl");
  SweepServiceOptions write;
  write.journal_path = journal;
  render_service(sweep, write);
  const std::string good = slurp(journal);
  ASSERT_FALSE(good.empty());
  ASSERT_EQ(good.back(), '\n');

  const auto expect_rejected = [&](const std::string& content,
                                   const std::string& what) {
    const std::string path = temp_path("corrupt_case.jsonl");
    spit(path, content);
    EXPECT_THROW((void)read_journal(path), util::CheckError) << what;
    // The same defect must also stop a resume cold.
    SweepServiceOptions resume;
    resume.resume_path = path;
    EXPECT_THROW(render_service(sweep, resume), util::CheckError) << what;
  };

  // Truncated mid-line (the classic kill-during-write artifact).
  expect_rejected(good.substr(0, good.size() - 3), "truncated tail");
  // Missing header.
  expect_rejected(good.substr(good.find('\n') + 1), "missing header");
  // Empty file.
  expect_rejected("", "empty file");
  // Garbage line appended.
  expect_rejected(good + "not json\n", "garbage line");
  // Corrupt checksum: flip one crc hex digit on the last cell line.
  {
    std::string bad = good;
    const std::size_t crc = bad.rfind("\"crc\":\"");
    ASSERT_NE(crc, std::string::npos);
    char& digit = bad[crc + 7];
    digit = digit == '0' ? '1' : '0';
    expect_rejected(bad, "crc flip");
  }
  // Duplicate cell line.
  {
    const std::size_t second_line = good.find('\n') + 1;
    const std::size_t third_line = good.find('\n', second_line) + 1;
    const std::string cell =
        good.substr(second_line, third_line - second_line);
    expect_rejected(good + cell, "duplicate cell");
  }
  // A cell outside the shard's block: graft an upper-half cell line onto
  // the lower-half shard's journal — read_journal must flag the index as
  // out of the journal's declared range.
  {
    SweepServiceOptions upper_options;
    upper_options.shard = ShardSpec{1, 2};
    upper_options.journal_path = temp_path("upper_half.jsonl");
    render_service(sweep, upper_options);
    const std::string upper = slurp(upper_options.journal_path);
    const std::size_t first_cell = upper.find('\n') + 1;
    const std::size_t next = upper.find('\n', first_cell) + 1;
    const std::string foreign = upper.substr(first_cell, next - first_cell);

    SweepServiceOptions lower_options;
    lower_options.shard = ShardSpec{0, 2};
    lower_options.journal_path = temp_path("lower_half.jsonl");
    render_service(sweep, lower_options);
    expect_rejected(slurp(lower_options.journal_path) + foreign,
                    "out-of-range cell");
  }
}

TEST(SweepMerge, RejectsMissingOverlappingAndForeignShards) {
  const Sweep sweep(service_spec());
  std::vector<std::string> paths;
  for (std::size_t index = 0; index < 3; ++index) {
    SweepServiceOptions options;
    options.shard = ShardSpec{index, 3};
    options.journal_path =
        temp_path("neg_merge_" + std::to_string(index) + ".jsonl");
    paths.push_back(options.journal_path);
    render_service(sweep, options);
  }
  const auto expect_merge_rejected = [](const std::vector<std::string>& set,
                                        const std::string& what) {
    bool emitted = false;
    EXPECT_THROW(
        merge_journals(set,
                       [&emitted](std::size_t,
                                  const std::vector<std::string>&) {
                         emitted = true;
                       }),
        util::CheckError)
        << what;
    // Never partial output: validation happens before the first row.
    EXPECT_FALSE(emitted) << what;
  };

  // Missing shard.
  expect_merge_rejected({paths[0], paths[2]}, "missing shard 1");
  // Duplicated shard (overlapping blocks).
  expect_merge_rejected({paths[0], paths[0], paths[2]}, "duplicate shard 0");
  // A journal from a different sweep mixed in.
  const Sweep other(service_spec(999));
  SweepServiceOptions foreign;
  foreign.shard = ShardSpec{1, 3};
  foreign.journal_path = temp_path("neg_merge_foreign.jsonl");
  render_service(other, foreign);
  expect_merge_rejected({paths[0], foreign.journal_path, paths[2]},
                        "foreign digest");
  // An incomplete journal (killed mid-shard) must be resumed first.
  const std::string partial = temp_path("neg_merge_partial.jsonl");
  {
    SweepServiceOptions options;
    options.shard = ShardSpec{1, 3};
    options.journal_path = partial;
    options.after_cell = [](std::size_t computed) {
      if (computed >= 1) throw KillSwitch{};
    };
    EXPECT_THROW(run_sweep_service(sweep, options,
                                   [](const SweepRowEvent&) {}),
                 KillSwitch);
  }
  expect_merge_rejected({paths[0], partial, paths[2]}, "incomplete shard 1");
  // No journals at all.
  expect_merge_rejected({}, "empty set");
}

TEST(SweepService, DigestIgnoresSchedulingKnobs) {
  auto spec = service_spec();
  const std::uint64_t base = sweep_digest(Sweep(spec));
  spec.threads = 7;
  spec.stripe_width = 64;
  spec.shuffle_points = true;
  EXPECT_EQ(sweep_digest(Sweep(spec)), base);
  // ...but anything that changes cell bytes changes the digest.
  spec.trials = 4;
  EXPECT_NE(sweep_digest(Sweep(spec)), base);
  spec = service_spec();
  spec.ns = {300, 601};
  EXPECT_NE(sweep_digest(Sweep(spec)), base);
  spec = service_spec();
  spec.engines = {"skip"};
  EXPECT_NE(sweep_digest(Sweep(spec)), base);
}

}  // namespace
}  // namespace kusd
