// ChunkController: fixed-policy bit-compatibility, adaptive step-size
// behaviour across regimes, and the property that the adaptive batched
// engine matches the exact asynchronous chain in distribution.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batched_usd.hpp"
#include "core/chunk_controller.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using core::AdaptiveChunkOptions;
using core::BatchedOptions;
using core::BatchedUsdSimulator;
using core::ChunkController;
using core::ChunkOptions;
using core::ChunkPolicy;
using core::StepMode;
using core::UsdOptions;
using core::UsdSimulator;
using pp::Configuration;

ChunkOptions adaptive_options() {
  ChunkOptions options;
  options.policy = ChunkPolicy::kAdaptive;
  return options;
}

TEST(ChunkController, FixedPolicyProposesTheConstantChunk) {
  // Bit-compat with the PR-2 engine: the same max(1, round(f * n)).
  ChunkController c(ChunkOptions{.chunk_fraction = 0.02}, 10000);
  const Configuration x0 = Configuration::uniform(10000, 4, 1000);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(c.propose(x0.opinions(), x0.undecided()), 200u);
  }
  ChunkController tiny(ChunkOptions{.chunk_fraction = 1e-9}, 100);
  EXPECT_EQ(tiny.propose(x0.opinions(), x0.undecided()), 1u);
}

TEST(ChunkController, FixedPolicyIgnoresRejectFeedback) {
  ChunkController c(ChunkOptions{.chunk_fraction = 0.1}, 1000);
  const Configuration x0 = Configuration::uniform(1000, 2, 0);
  c.on_reject();
  EXPECT_EQ(c.propose(x0.opinions(), x0.undecided()), 100u);
}

TEST(ChunkController, AdaptiveGrowsGeometricallyInAFlatRegime) {
  // In a balanced mid-run state the rates drift slowly: the proposal must
  // ramp up geometrically (at most grow_factor per step) from the floor
  // and plateau at an error bound far above the fixed 2% default.
  const pp::Count n = 1'000'000;
  ChunkController c(adaptive_options(), n);
  // Balanced two-opinion state with half the population undecided.
  const std::vector<pp::Count> opinions = {250000, 250000};
  const pp::Count undecided = 500000;
  std::uint64_t prev = c.propose(opinions, undecided);
  std::uint64_t plateau = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t next = c.propose(opinions, undecided);
    EXPECT_LE(next, c.max_chunk());
    EXPECT_LE(next, 2 * prev);  // default grow_factor
    EXPECT_GE(next, prev);      // the state never tightens mid-ramp
    if (next == prev) {
      plateau = next;
      break;
    }
    prev = next;
  }
  // For this state the tau bound is ~0.2 n — an order of magnitude above
  // the fixed default and below the 0.5 n ceiling.
  EXPECT_GT(plateau, n / 10);
  EXPECT_LT(plateau, c.max_chunk());
}

TEST(ChunkController, AdaptiveShrinksNearAbsorption) {
  // Near consensus the minority count is tiny and its relative drift per
  // interaction is large: the bound must fall well below the ceiling,
  // scaling like n / minority.
  const pp::Count n = 1'000'000;
  ChunkController warm(adaptive_options(), n);
  const std::vector<pp::Count> near_consensus = {999000, 1000};
  // Warm the controller up far from absorption so the growth rate-limit
  // is not what is being measured.
  const std::vector<pp::Count> flat = {250000, 250000};
  for (int i = 0; i < 64; ++i) (void)warm.propose(flat, 500000);
  const std::uint64_t proposal = warm.propose(near_consensus, 0);
  EXPECT_LT(proposal, warm.max_chunk() / 4);
}

TEST(ChunkController, AdaptiveTightensWithTolerance) {
  const pp::Count n = 100000;
  ChunkOptions loose = adaptive_options();
  loose.adaptive.drift_tolerance = 0.2;
  ChunkOptions tight = adaptive_options();
  tight.adaptive.drift_tolerance = 0.01;
  ChunkController a(loose, n), b(tight, n);
  const std::vector<pp::Count> opinions = {60000, 30000};
  const pp::Count undecided = 10000;
  // Warm both controllers past the growth ramp.
  std::uint64_t la = 0, lb = 0;
  for (int i = 0; i < 64; ++i) {
    la = a.propose(opinions, undecided);
    lb = b.propose(opinions, undecided);
  }
  EXPECT_GT(la, lb);
}

TEST(ChunkController, RejectHalvesTheAdaptiveBaseline) {
  const pp::Count n = 1'000'000;
  ChunkController c(adaptive_options(), n);
  const std::vector<pp::Count> flat = {250000, 250000};
  for (int i = 0; i < 64; ++i) (void)c.propose(flat, 500000);
  const std::uint64_t before = c.propose(flat, 500000);
  c.on_reject();
  const std::uint64_t after = c.propose(flat, 500000);
  EXPECT_LE(after, before);  // growth restarts from the halved baseline
  EXPECT_GE(after, before / 2);
}

TEST(ChunkController, RespectsMinAndMaxFractions) {
  ChunkOptions options = adaptive_options();
  options.adaptive.min_fraction = 0.01;
  options.adaptive.max_fraction = 0.05;
  const pp::Count n = 100000;
  ChunkController c(options, n);
  EXPECT_EQ(c.min_chunk(), 1000u);
  EXPECT_EQ(c.max_chunk(), 5000u);
  // Even a state demanding tiny chunks is floored at min_chunk...
  const std::vector<pp::Count> near_consensus = {99999, 1};
  EXPECT_GE(c.propose(near_consensus, 0), c.min_chunk());
  // ...and a flat state is capped at max_chunk.
  const std::vector<pp::Count> flat = {25000, 25000};
  for (int i = 0; i < 64; ++i) {
    EXPECT_LE(c.propose(flat, 50000), c.max_chunk());
  }
}

TEST(ChunkController, ProposalsAreDeterministic) {
  // Same options, same observation sequence -> same proposals (the
  // controller draws no randomness).
  const pp::Count n = 500000;
  ChunkController a(adaptive_options(), n), b(adaptive_options(), n);
  const std::vector<pp::Count> opinions = {200000, 100000, 50000};
  for (pp::Count u : {pp::Count{150000}, pp::Count{100000}, pp::Count{0}}) {
    EXPECT_EQ(a.propose(opinions, u), b.propose(opinions, u));
  }
}

TEST(ChunkController, TrendLookaheadShrinksBeforeATransition) {
  // The PI-style satellite: on a trajectory whose tau bound is falling
  // (a minority collapsing toward absorption), the smoothed controller
  // must propose smaller chunks than a purely instantaneous one fed the
  // same observations — it anticipates the next drop instead of reacting
  // one chunk late.
  const pp::Count n = 1'000'000;
  ChunkOptions smoothed = adaptive_options();  // default trend_alpha
  ChunkOptions instantaneous = adaptive_options();
  instantaneous.adaptive.trend_alpha = 0.0;
  ChunkController with_trend(smoothed, n), without_trend(instantaneous, n);
  // Warm both controllers in the same flat state.
  const std::vector<pp::Count> flat = {400000, 400000};
  for (int i = 0; i < 64; ++i) {
    (void)with_trend.propose(flat, 200000);
    (void)without_trend.propose(flat, 200000);
  }
  // Minority collapsing by 2x per observation: the bound falls every
  // step, so the EWMA trend turns negative and stays there.
  bool anticipated = false;
  for (pp::Count minority = 200000; minority >= 1000; minority /= 2) {
    const std::vector<pp::Count> state = {n - 2 * minority, minority};
    const std::uint64_t a = with_trend.propose(state, minority);
    const std::uint64_t b = without_trend.propose(state, minority);
    EXPECT_LE(a, b);
    anticipated = anticipated || a < b;
  }
  EXPECT_TRUE(anticipated);
}

TEST(ChunkController, TrendIsInertInFlatRegimes) {
  // A constant observation sequence has zero trend: the smoothed and
  // instantaneous controllers must agree exactly, so the lookahead costs
  // nothing where the PR-3 controller was already right.
  const pp::Count n = 500000;
  ChunkOptions instantaneous = adaptive_options();
  instantaneous.adaptive.trend_alpha = 0.0;
  ChunkController a(adaptive_options(), n), b(instantaneous, n);
  const std::vector<pp::Count> flat = {150000, 150000};
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.propose(flat, 200000), b.propose(flat, 200000));
  }
}

TEST(ChunkController, RejectsInvalidOptions) {
  const pp::Count n = 1000;
  EXPECT_THROW(ChunkController(ChunkOptions{.chunk_fraction = 0.0}, n),
               util::CheckError);
  EXPECT_THROW(ChunkController(ChunkOptions{.chunk_fraction = 1.5}, n),
               util::CheckError);
  ChunkOptions bad = adaptive_options();
  bad.adaptive.drift_tolerance = 0.0;
  EXPECT_THROW(ChunkController(bad, n), util::CheckError);
  bad = adaptive_options();
  bad.adaptive.min_fraction = 0.6;
  bad.adaptive.max_fraction = 0.5;
  EXPECT_THROW(ChunkController(bad, n), util::CheckError);
  bad = adaptive_options();
  bad.adaptive.max_fraction = 1.5;
  EXPECT_THROW(ChunkController(bad, n), util::CheckError);
  bad = adaptive_options();
  bad.adaptive.grow_factor = 1.0;
  EXPECT_THROW(ChunkController(bad, n), util::CheckError);
  bad = adaptive_options();
  bad.adaptive.trend_alpha = 1.0;
  EXPECT_THROW(ChunkController(bad, n), util::CheckError);
  bad.adaptive.trend_alpha = -0.1;
  EXPECT_THROW(ChunkController(bad, n), util::CheckError);
}

TEST(ChunkController, PolicyNamesRoundTrip) {
  for (const auto policy : {ChunkPolicy::kFixed, ChunkPolicy::kAdaptive}) {
    const auto parsed = core::parse_chunk_policy(core::to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(core::parse_chunk_policy("psychic").has_value());
}

TEST(ChunkController, LockstepScheduleNamesRoundTrip) {
  for (const auto schedule : {core::LockstepSchedule::kPerTrial,
                              core::LockstepSchedule::kShared}) {
    const auto parsed =
        core::parse_lockstep_schedule(core::to_string(schedule));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, schedule);
  }
  EXPECT_FALSE(core::parse_lockstep_schedule("psychic").has_value());
  EXPECT_FALSE(core::parse_lockstep_schedule("").has_value());
}

// ---- Adaptive engine behaviour end to end ----

TEST(AdaptiveBatched, DeterministicForSameSeed) {
  const auto x0 = Configuration::uniform(50000, 5, 500);
  BatchedUsdSimulator a(x0, rng::Rng(7), adaptive_options());
  BatchedUsdSimulator b(x0, rng::Rng(7), adaptive_options());
  a.run_to_consensus(~std::uint64_t{0});
  b.run_to_consensus(~std::uint64_t{0});
  EXPECT_EQ(a.interactions(), b.interactions());
  EXPECT_EQ(a.chunks(), b.chunks());
  EXPECT_EQ(a.consensus_opinion(), b.consensus_opinion());
}

TEST(AdaptiveBatched, TakesFewerChunksThanTheFixedDefault) {
  // The point of the controller: flat regimes take much larger chunks, so
  // a full run needs far fewer multinomial draws at the same accuracy.
  const auto x0 = Configuration::uniform(2'000'000, 8, 0);
  BatchedUsdSimulator fixed(x0, rng::Rng(11), ChunkOptions{});
  BatchedUsdSimulator adaptive(x0, rng::Rng(11), adaptive_options());
  ASSERT_TRUE(fixed.run_to_consensus(~std::uint64_t{0}));
  ASSERT_TRUE(adaptive.run_to_consensus(~std::uint64_t{0}));
  EXPECT_LT(adaptive.chunks(), fixed.chunks() / 2);
}

TEST(AdaptiveBatched, TinyPopulationsTerminate) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    BatchedUsdSimulator sim(Configuration({1, 1}, 0), rng::Rng(seed),
                            adaptive_options());
    ASSERT_TRUE(sim.run_to_consensus(~std::uint64_t{0}));
    EXPECT_EQ(sim.undecided(), 0u);
  }
}

// ---- KS property tests: adaptive vs the exact chain ----

std::vector<double> exact_times(const Configuration& x0, int trials,
                                std::uint64_t seed_base) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    UsdSimulator sim(
        x0, rng::Rng(rng::stream_seed(seed_base,
                                      static_cast<std::uint64_t>(t))),
        UsdOptions{StepMode::kEveryInteraction});
    EXPECT_TRUE(sim.run_to_consensus(100'000'000));
    out.push_back(static_cast<double>(sim.interactions()));
  }
  return out;
}

std::vector<double> adaptive_times(const Configuration& x0, int trials,
                                   std::uint64_t seed_base) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    BatchedUsdSimulator sim(
        x0, rng::Rng(rng::stream_seed(seed_base,
                                      static_cast<std::uint64_t>(t))),
        adaptive_options());
    EXPECT_TRUE(sim.run_to_consensus(100'000'000));
    out.push_back(static_cast<double>(sim.interactions()));
  }
  return out;
}

TEST(AdaptiveBatched, MatchesExactChainInAFlatRegime) {
  // Uniform start: the regime where the controller takes its largest
  // chunks, so this is the harshest accuracy check.
  const auto x0 = Configuration::uniform(400, 3, 0);
  const int trials = 350;
  const auto exact = exact_times(x0, trials, 3100);
  const auto adaptive = adaptive_times(x0, trials, 3101);
  EXPECT_LT(stats::ks_statistic(exact, adaptive),
            stats::ks_threshold(exact.size(), adaptive.size(), 0.001));
}

TEST(AdaptiveBatched, MatchesExactChainNearConsensus) {
  // Near-absorbing start (strong majority, small minority): chunks must
  // shrink toward the exact chain or the absorption-time tail distorts.
  const auto x0 = Configuration({440, 40}, 20);
  const int trials = 350;
  const auto exact = exact_times(x0, trials, 3200);
  const auto adaptive = adaptive_times(x0, trials, 3201);
  EXPECT_LT(stats::ks_statistic(exact, adaptive),
            stats::ks_threshold(exact.size(), adaptive.size(), 0.001));
}

TEST(AdaptiveBatched, WinnerFrequenciesMatchExactChain) {
  const auto x0 = Configuration::two_opinion(500, 260, 0);  // mild bias
  const int trials = 1000;
  int wins_exact = 0, wins_adaptive = 0;
  for (int t = 0; t < trials; ++t) {
    UsdSimulator a(x0, rng::Rng(rng::stream_seed(3300, t)),
                   UsdOptions{StepMode::kSkipUnproductive});
    ASSERT_TRUE(a.run_to_consensus(100'000'000));
    wins_exact += a.consensus_opinion() == 0 ? 1 : 0;
    BatchedUsdSimulator b(x0, rng::Rng(rng::stream_seed(3301, t)),
                          adaptive_options());
    ASSERT_TRUE(b.run_to_consensus(100'000'000));
    wins_adaptive += b.consensus_opinion() == 0 ? 1 : 0;
  }
  const double f_exact = static_cast<double>(wins_exact) / trials;
  const double f_adaptive = static_cast<double>(wins_adaptive) / trials;
  EXPECT_NEAR(f_exact, f_adaptive, 0.06);
}

}  // namespace
}  // namespace kusd
