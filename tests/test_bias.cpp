// Bias/significance measures (Section 2) and the Appendix D rate bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/bias.hpp"
#include "pp/configuration.hpp"

namespace kusd {
namespace {

using pp::Configuration;

TEST(Bias, AdditiveBias) {
  EXPECT_EQ(core::additive_bias(Configuration({50, 30, 20}, 0)), 20u);
  EXPECT_EQ(core::additive_bias(Configuration({40, 40, 20}, 0)), 0u);
}

TEST(Bias, MultiplicativeBias) {
  EXPECT_DOUBLE_EQ(core::multiplicative_bias(Configuration({60, 30, 10}, 0)),
                   2.0);
  EXPECT_TRUE(std::isinf(
      core::multiplicative_bias(Configuration({60, 0}, 40))));
}

TEST(Bias, SignificanceThresholdScales) {
  // threshold = alpha * sqrt(n ln n).
  const double t1 = core::significance_threshold(10000, 1.0);
  EXPECT_NEAR(t1, std::sqrt(10000.0 * std::log(10000.0)), 1e-9);
  EXPECT_NEAR(core::significance_threshold(10000, 2.0), 2.0 * t1, 1e-9);
}

TEST(Bias, SignificantCounting) {
  // n = 10000: threshold ~ 303.5 (alpha = 1).
  Configuration x({3000, 2900, 2600, 100}, 1400);
  EXPECT_TRUE(core::is_significant(x, 0, 1.0));
  EXPECT_TRUE(core::is_significant(x, 1, 1.0));   // gap 100 < 303
  EXPECT_FALSE(core::is_significant(x, 2, 1.0));  // gap 400 > 303
  EXPECT_FALSE(core::is_significant(x, 3, 1.0));
  EXPECT_EQ(core::significant_count(x, 1.0), 2);
}

TEST(Bias, ImportantUsesFourTimesThreshold) {
  Configuration x({3000, 2600, 100}, 4300);  // n = 10000, gap 400
  EXPECT_FALSE(core::is_significant(x, 1, 1.0));
  EXPECT_TRUE(core::is_important(x, 1, 1.0));  // 400 < 4 * 303
}

TEST(Bias, PluralityAlwaysSignificant) {
  for (int k : {2, 5, 17}) {
    const auto x = Configuration::uniform(5000, k, 500);
    EXPECT_TRUE(core::is_significant(x, x.argmax(), 1.0));
    EXPECT_GE(core::significant_count(x, 1.0), 1);
  }
}

TEST(Bias, MonochromaticDistanceRange) {
  // md(x) in [1, k]; equals 1 at consensus-like, k at uniform.
  EXPECT_DOUBLE_EQ(core::monochromatic_distance(Configuration({100, 0}, 0)),
                   1.0);
  EXPECT_DOUBLE_EQ(
      core::monochromatic_distance(Configuration({25, 25, 25, 25}, 0)), 4.0);
  const auto skew = Configuration({80, 40, 20}, 0);
  const double md = core::monochromatic_distance(skew);
  EXPECT_GT(md, 1.0);
  EXPECT_LT(md, 3.0);
  // Exact: (80^2 + 40^2 + 20^2)/80^2 = (6400+1600+400)/6400.
  EXPECT_NEAR(md, 8400.0 / 6400.0, 1e-12);
}

TEST(Bias, AppendixDCrossover) {
  // Appendix D: md(x) log n beats log n + n/x1 exactly when
  // x1 > n log n / k (roughly). Verify the comparison flips across the
  // boundary for a geometric family.
  const pp::Count n = 1 << 20;
  const int k = 64;
  // Highly skewed: x1 large => gossip bound smaller.
  const auto skewed = Configuration::geometric(n, k, 0, 0.5);
  EXPECT_LT(core::gossip_rate_bound(skewed),
            core::population_rate_bound(skewed) * 10.0);
  // Flat: x1 ~ n/k is far below n log n / k => population bound wins.
  const auto flat = Configuration::uniform(n, k, 0);
  EXPECT_LT(core::population_rate_bound(flat),
            core::gossip_rate_bound(flat));
}

}  // namespace
}  // namespace kusd
