// Unit and property tests for the RNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "rng/binomial.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  rng::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, StreamSeedProducesDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 10000; ++id) {
    seen.insert(rng::stream_seed(123456789, id));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, PhiloxBlocksAreDistinctForDistinctCounters) {
  // For a fixed key the Philox block is a bijection of the counter space:
  // distinct counters must give distinct 128-bit outputs (this is the
  // structural guarantee stream_seed is built on, checked here over a
  // sample of counters along both words).
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  const std::uint64_t key = 0x1234ABCDULL;
  for (std::uint64_t lo = 0; lo < 512; ++lo) {
    for (std::uint64_t hi = 0; hi < 4; ++hi) {
      const auto block = rng::philox2x64(lo, hi, key);
      seen.insert({block[0], block[1]});
    }
  }
  EXPECT_EQ(seen.size(), 512u * 4u);
}

TEST(Rng, PhiloxIsKeySensitive) {
  const auto a = rng::philox2x64(7, 0, 1);
  const auto b = rng::philox2x64(7, 0, 2);
  EXPECT_NE(a, b);
}

TEST(Rng, StreamSeedIsConstexprAndDeterministic) {
  // Compile-time evaluability is part of the contract (seeds appear in
  // constant expressions), and repeated evaluation must agree with it.
  constexpr std::uint64_t at_compile_time = rng::stream_seed(42, 7);
  EXPECT_EQ(rng::stream_seed(42, 7), at_compile_time);
}

TEST(Rng, StreamSeedValuesArePinned) {
  // The Philox derivation is part of the output contract: sweep CSVs and
  // checked-in bench JSON reproduce only if these values never drift.
  EXPECT_EQ(rng::stream_seed(99, 3), rng::stream_seed(99, 3));
  EXPECT_NE(rng::stream_seed(99, 3), rng::stream_seed(99, 4));
  EXPECT_NE(rng::stream_seed(99, 3), rng::stream_seed(100, 3));
}

TEST(Rng, Uniform01InRange) {
  rng::Rng r(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  rng::Rng r(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform01();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, BoundedStaysInRangeAndCoversAllValues) {
  rng::Rng r(13);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = r.bounded(10);
    ASSERT_LT(v, 10u);
    ++hits[static_cast<std::size_t>(v)];
  }
  for (int h : hits) {
    // Chi-square-ish sanity: each bucket within 10% of the expected 10000.
    EXPECT_NEAR(h, 10000, 1000);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  rng::Rng r(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.bounded(1), 0u);
}

TEST(Rng, BernoulliFrequency) {
  rng::Rng r(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricFailuresMeanMatches) {
  // E[failures] = (1-p)/p.
  rng::Rng r(23);
  const double p = 0.2;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(r.geometric_failures(p));
  }
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.08);
}

TEST(Rng, GeometricWithPOneIsZero) {
  rng::Rng r(27);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.geometric_failures(1.0), 0u);
}

TEST(Rng, GeometricRejectsInvalidP) {
  rng::Rng r(29);
  EXPECT_THROW(r.geometric_failures(0.0), util::CheckError);
  EXPECT_THROW(r.geometric_failures(1.5), util::CheckError);
}

TEST(Rng, BinomialMeanAndVariance) {
  rng::Rng r(31);
  const std::uint64_t n = 1000;
  const double p = 0.25;
  const int trials = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double v = static_cast<double>(r.binomial(n, p));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / trials;
  const double var = sum_sq / trials - mean * mean;
  EXPECT_NEAR(mean, 250.0, 2.0);
  EXPECT_NEAR(var, 1000 * 0.25 * 0.75, 15.0);
}

TEST(Rng, BinomialEdgeCases) {
  rng::Rng r(37);
  EXPECT_EQ(r.binomial(0, 0.5), 0u);
  EXPECT_EQ(r.binomial(100, 0.0), 0u);
  EXPECT_EQ(r.binomial(100, 1.0), 100u);
}

TEST(Rng, MultinomialPreservesTotal) {
  rng::Rng r(41);
  const std::vector<double> weights{3.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 200; ++i) {
    const auto parts = r.multinomial(1000, weights);
    ASSERT_EQ(parts.size(), weights.size());
    EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), std::uint64_t{0}),
              1000u);
    EXPECT_EQ(parts[2], 0u);  // zero-weight bucket stays empty
  }
}

TEST(Rng, MultinomialProportions) {
  rng::Rng r(43);
  const std::vector<double> weights{1.0, 2.0, 1.0};
  std::vector<double> totals(3, 0.0);
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const auto parts = r.multinomial(4000, weights);
    for (std::size_t j = 0; j < 3; ++j) {
      totals[j] += static_cast<double>(parts[j]);
    }
  }
  EXPECT_NEAR(totals[0] / trials, 1000.0, 20.0);
  EXPECT_NEAR(totals[1] / trials, 2000.0, 20.0);
  EXPECT_NEAR(totals[2] / trials, 1000.0, 20.0);
}

TEST(Rng, NormalMoments) {
  rng::Rng r(47);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsAPermutation) {
  rng::Rng r(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  r.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleFirstPositionUniform) {
  rng::Rng r(59);
  std::vector<int> hits(5, 0);
  for (int t = 0; t < 50000; ++t) {
    std::vector<int> v{0, 1, 2, 3, 4};
    r.shuffle(std::span<int>(v));
    ++hits[static_cast<std::size_t>(v[0])];
  }
  for (int h : hits) EXPECT_NEAR(h, 10000, 700);
}

// Parameterized sweep: bounded() must be unbiased for awkward bounds.
class RngBoundedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundedSweep, MeanMatchesUniform) {
  const std::uint64_t bound = GetParam();
  rng::Rng r(61 + bound);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(r.bounded(bound));
  }
  const double expected = static_cast<double>(bound - 1) / 2.0;
  const double sigma = static_cast<double>(bound) / std::sqrt(12.0 * n);
  EXPECT_NEAR(sum / n, expected, 6.0 * sigma + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedSweep,
                         ::testing::Values(2, 3, 7, 10, 100, 1000, 65537,
                                           1000003));

// ---- In-repo binomial sampler (rng/binomial.hpp) ----

TEST(Binomial, SmallNMatchesExactPmf) {
  // BINV regime: n = 3, p = 0.25. Exact pmf (27, 27, 9, 1)/64; with 2e5
  // draws the sampling noise per bin is ~3.5e-3 at 3 sigma.
  rng::Rng rng(5001);
  const int draws = 200000;
  std::array<int, 4> histogram{};
  for (int i = 0; i < draws; ++i) {
    const auto x = rng::binomial(rng, 3, 0.25);
    ASSERT_LE(x, 3u);
    ++histogram[static_cast<std::size_t>(x)];
  }
  const std::array<double, 4> exact = {27.0 / 64, 27.0 / 64, 9.0 / 64,
                                       1.0 / 64};
  for (std::size_t j = 0; j < exact.size(); ++j) {
    EXPECT_NEAR(static_cast<double>(histogram[j]) / draws, exact[j], 0.005)
        << "outcome " << j;
  }
}

TEST(Binomial, LargeNMomentsMatch) {
  // BTRS regime: mean and variance of Binomial(1e6, 0.3).
  rng::Rng rng(5002);
  const std::uint64_t n = 1'000'000;
  const double p = 0.3;
  const int draws = 4000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double x = static_cast<double>(rng::binomial(rng, n, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / draws;
  const double var = sum_sq / draws - mean * mean;
  const double exact_mean = static_cast<double>(n) * p;
  const double exact_var = exact_mean * (1.0 - p);
  const double mean_sigma = std::sqrt(exact_var / draws);
  EXPECT_NEAR(mean, exact_mean, 5.0 * mean_sigma);
  EXPECT_NEAR(var, exact_var, 0.1 * exact_var);
}

TEST(Binomial, ReflectionRegimeMomentsMatch) {
  // p > 0.5 is served as n - Binomial(n, 1 - p); verify the reflected
  // stream still has the right first two moments.
  rng::Rng rng(5003);
  const std::uint64_t n = 100000;
  const double p = 0.85;
  const int draws = 4000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double x = static_cast<double>(rng::binomial(rng, n, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / draws;
  const double var = sum_sq / draws - mean * mean;
  const double exact_mean = static_cast<double>(n) * p;
  const double exact_var = exact_mean * (1.0 - p);
  EXPECT_NEAR(mean, exact_mean, 5.0 * std::sqrt(exact_var / draws));
  EXPECT_NEAR(var, exact_var, 0.1 * exact_var);
}

TEST(Binomial, DegenerateDrawsConsumeNoStream) {
  // The documented contract the lockstep kernel's bit-identity relies
  // on: n == 0, p == 0 and p == 1 return without touching the stream.
  const std::array<std::pair<std::uint64_t, double>, 3> cases = {
      {{0, 0.5}, {17, 0.0}, {17, 1.0}}};
  for (const auto& [n, p] : cases) {
    rng::Rng touched(42), untouched(42);
    const auto x = rng::binomial(touched, n, p);
    EXPECT_EQ(x, p == 1.0 ? n : 0u);
    EXPECT_EQ(touched.next_u64(), untouched.next_u64())
        << "n=" << n << " p=" << p;
  }
}

TEST(Binomial, BatchMatchesScalarDrawForDraw) {
  // binomial_batch is dispatch sugar: per-stream results must equal the
  // scalar calls in index order, for both the pointer and the contiguous
  // overloads.
  const std::size_t lanes = 64;
  std::vector<std::uint64_t> ns(lanes);
  std::vector<double> ps(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    // Mix of regimes: degenerate, BINV, BTRS, reflection.
    ns[i] = (i % 7 == 0) ? 0 : (i * i * 37 + 1);
    ps[i] = (i % 5 == 0) ? 0.0 : static_cast<double>(i) / lanes;
  }
  std::vector<rng::Rng> batch_rngs, scalar_rngs;
  std::vector<rng::Rng*> batch_ptrs;
  for (std::size_t i = 0; i < lanes; ++i) {
    batch_rngs.emplace_back(rng::stream_seed(5004, i));
    scalar_rngs.emplace_back(rng::stream_seed(5004, i));
  }
  for (auto& r : batch_rngs) batch_ptrs.push_back(&r);
  std::vector<std::uint64_t> out_ptr(lanes), out_span(lanes);
  rng::binomial_batch(std::span<rng::Rng* const>(batch_ptrs), ns, ps,
                      out_ptr);
  for (std::size_t i = 0; i < lanes; ++i) {
    const auto scalar = rng::binomial(scalar_rngs[i], ns[i], ps[i]);
    EXPECT_EQ(out_ptr[i], scalar) << "lane " << i;
    // Stream positions must agree afterwards too.
    EXPECT_EQ(batch_rngs[i].next_u64(), scalar_rngs[i].next_u64())
        << "lane " << i;
  }
  std::vector<rng::Rng> span_rngs;
  for (std::size_t i = 0; i < lanes; ++i) {
    span_rngs.emplace_back(rng::stream_seed(5004, i));
  }
  rng::binomial_batch(std::span<rng::Rng>(span_rngs), ns, ps, out_span);
  EXPECT_EQ(out_span, out_ptr);
}

TEST(Binomial, LogFactorialMatchesLgamma) {
  // lgamma is fine here — tests are single-threaded; the point of
  // log_factorial is avoiding it in the concurrent hot path.
  for (std::uint64_t k = 0; k <= 300; ++k) {
    const double exact = std::lgamma(static_cast<double>(k) + 1.0);
    const double tolerance = 1e-9 * std::max(1.0, exact);
    EXPECT_NEAR(rng::log_factorial(k), exact, tolerance) << "k=" << k;
  }
  for (const std::uint64_t k : {1000ull, 123456ull, 100'000'000ull}) {
    const double exact = std::lgamma(static_cast<double>(k) + 1.0);
    EXPECT_NEAR(rng::log_factorial(k), exact, 1e-9 * exact) << "k=" << k;
  }
}

TEST(Rng, MultinomialIntoMatchesMultinomial) {
  const std::vector<double> weights = {3.0, 0.0, 1.5, 0.25, 5.0};
  rng::Rng a(5005), b(5005);
  const auto vec = a.multinomial(10000, weights);
  std::vector<std::uint64_t> into(weights.size());
  b.multinomial_into(10000, weights, into);
  EXPECT_EQ(vec, into);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace kusd
