// Exact Markov ground truth vs Monte Carlo: the strongest validation of the
// simulator, with no asymptotic hedging.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/markov_exact.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using analysis::Usd2ExactSolver;
using pp::Configuration;

TEST(MarkovExact, TrivialTwoAgents) {
  Usd2ExactSolver solver(2);
  // (2,0) and (0,2) are absorbing.
  EXPECT_DOUBLE_EQ(solver.expected_consensus_time(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(solver.win_probability(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(solver.win_probability(0, 2), 0.0);
  // (1,0): the undecided agent must adopt opinion 0; consensus certain.
  EXPECT_DOUBLE_EQ(solver.win_probability(1, 0), 1.0);
  // From (1,0) with u=1: a productive interaction happens w.p.
  // u*x0/n^2 = 1/4, so E[T] = 4.
  EXPECT_DOUBLE_EQ(solver.expected_consensus_time(1, 0), 4.0);
}

TEST(MarkovExact, SymmetricStartIsFair) {
  for (pp::Count n : {4, 8, 12}) {
    Usd2ExactSolver solver(n);
    EXPECT_NEAR(solver.win_probability(n / 2, n / 2), 0.5, 1e-9) << n;
  }
}

TEST(MarkovExact, WinProbabilityMonotoneInSupport) {
  Usd2ExactSolver solver(12);
  double prev = -1.0;
  for (pp::Count x0 = 1; x0 <= 11; ++x0) {
    const double w = solver.win_probability(x0, 12 - x0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(MarkovExact, UndecidedAgentsPreserveFairness) {
  // Equal supports with undecided agents remain a fair race by symmetry.
  Usd2ExactSolver solver(10);
  EXPECT_NEAR(solver.win_probability(3, 3), 0.5, 1e-9);
  EXPECT_NEAR(solver.win_probability(1, 1), 0.5, 1e-9);
}

TEST(MarkovExact, RejectsAllUndecidedQuery) {
  Usd2ExactSolver solver(6);
  EXPECT_THROW(static_cast<void>(solver.win_probability(0, 0)),
               util::CheckError);
  EXPECT_THROW(Usd2ExactSolver(1), util::CheckError);
}

struct ExactVsMcCase {
  pp::Count n = 0, x0 = 0, x1 = 0;
};

class ExactVsMonteCarlo : public ::testing::TestWithParam<ExactVsMcCase> {};

TEST_P(ExactVsMonteCarlo, ExpectedTimeAndWinProbMatch) {
  const auto param = GetParam();
  Usd2ExactSolver solver(param.n);
  const double exact_time =
      solver.expected_consensus_time(param.x0, param.x1);
  const double exact_win = solver.win_probability(param.x0, param.x1);

  const Configuration start({param.x0, param.x1},
                            param.n - param.x0 - param.x1);
  const int trials = 40000;
  stats::Samples times;
  int wins = 0;
  for (int t = 0; t < trials; ++t) {
    core::UsdSimulator sim(
        start, rng::Rng(rng::stream_seed(4242, t)),
        core::UsdOptions{core::StepMode::kSkipUnproductive});
    ASSERT_TRUE(sim.run_to_consensus(100'000'000));
    times.add(static_cast<double>(sim.interactions()));
    wins += sim.consensus_opinion() == 0 ? 1 : 0;
  }
  // Mean within 5 standard errors of the exact value.
  EXPECT_NEAR(times.mean(), exact_time,
              5.0 * times.stddev() / std::sqrt(trials) + 1e-9);
  const double win_se =
      std::sqrt(exact_win * (1.0 - exact_win) / trials) + 1e-6;
  EXPECT_NEAR(static_cast<double>(wins) / trials, exact_win, 5.0 * win_se);
}

INSTANTIATE_TEST_SUITE_P(SmallChains, ExactVsMonteCarlo,
                         ::testing::Values(ExactVsMcCase{6, 3, 3},
                                           ExactVsMcCase{8, 5, 2},
                                           ExactVsMcCase{10, 4, 4},
                                           ExactVsMcCase{12, 7, 3},
                                           ExactVsMcCase{14, 5, 5}));

}  // namespace
}  // namespace kusd
