// RoundEngine primitives and the batched-round exactness properties: the
// count-based (multinomial) synchronized and gossip rounds must have the
// same law as literal per-agent simulations of the same round models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/round_engine.hpp"
#include "core/sync_usd.hpp"
#include "gossip/gossip_usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"

namespace kusd {
namespace {

using core::RoundEngine;
using pp::Configuration;
using pp::Count;

std::uint64_t sum(std::span<const Count> counts) {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

TEST(RoundEngine, DecidedStepConservesAgents) {
  RoundEngine engine(4);
  rng::Rng rng(1);
  const std::vector<Count> opinions = {40, 30, 20, 10};
  for (int round = 0; round < 50; ++round) {
    std::vector<Count> next(4, 0);
    const Count undecided =
        engine.decided_step(opinions, 25, true, next, rng);
    EXPECT_EQ(sum(next) + undecided, 100u);
  }
}

TEST(RoundEngine, DecidedStepWithoutUndecidedKeepLosesMore) {
  // With a large undecided share, keep_on_undecided=true must preserve
  // strictly more agents on average than keep_on_undecided=false.
  RoundEngine engine(2);
  rng::Rng rng(2);
  const std::vector<Count> opinions = {50, 50};
  std::uint64_t kept_with = 0, kept_without = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<Count> next(2, 0);
    kept_with += 100 - engine.decided_step(opinions, 900, true, next, rng);
    next.assign(2, 0);
    kept_without +=
        100 - engine.decided_step(opinions, 900, false, next, rng);
  }
  EXPECT_GT(kept_with, kept_without);
}

TEST(RoundEngine, AdoptionStepConservesAndAllowsAliasing) {
  RoundEngine engine(3);
  rng::Rng rng(3);
  std::vector<Count> counts = {10, 20, 30};
  const Count before = sum(counts);
  // Partners alias the accumulation target, as in SyncUsd phase B.
  const Count remaining = engine.adoption_step(counts, 40, 40, counts, rng);
  EXPECT_EQ(sum(counts) + remaining, before + 40);
}

TEST(RoundEngine, AdoptionStepAllDecidedPartnersAdoptsEveryone) {
  RoundEngine engine(2);
  rng::Rng rng(4);
  std::vector<Count> next(2, 0);
  const std::vector<Count> partners = {60, 40};
  const Count remaining = engine.adoption_step(partners, 0, 25, next, rng);
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(sum(next), 25u);
}

TEST(RoundEngine, AsyncChunkConservesAndSucceedsAtOne) {
  RoundEngine engine(3);
  rng::Rng rng(5);
  std::vector<Count> opinions = {40, 35, 15};
  Count undecided = 10;
  for (int i = 0; i < 500; ++i) {
    // m = 1 realizes exactly one chain event and must always succeed.
    ASSERT_TRUE(engine.try_async_chunk(opinions, undecided, 100, 1, rng));
    ASSERT_EQ(sum(opinions) + undecided, 100u);
  }
}

TEST(RoundEngine, AsyncChunkRejectsOvershootWithoutMutating) {
  RoundEngine engine(2);
  rng::Rng rng(6);
  // A huge frozen-rate chunk from a state with a tiny opinion must
  // eventually propose driving it negative; state stays intact either way.
  std::vector<Count> opinions = {97, 2};
  Count undecided = 1;
  bool saw_reject = false;
  for (int i = 0; i < 200 && !saw_reject; ++i) {
    std::vector<Count> o = opinions;
    Count u = undecided;
    if (!engine.try_async_chunk(o, u, 100, 80, rng)) {
      saw_reject = true;
      EXPECT_EQ(o, opinions);
      EXPECT_EQ(u, undecided);
    } else {
      EXPECT_EQ(sum(o) + u, 100u);
    }
  }
  EXPECT_TRUE(saw_reject);
}

TEST(RoundEngine, AsyncChunkNeverLeavesZeroDecided) {
  // The exact chain preserves decided >= 1; a chunk that flips every
  // decided agent (reachable only in the aggregate draw) must be rejected,
  // not committed — otherwise all-undecided becomes an absorbing state.
  RoundEngine engine(2);
  rng::Rng rng(7);
  bool saw_reject = false;
  for (int i = 0; i < 400; ++i) {
    std::vector<Count> opinions = {1, 1};
    Count undecided = 0;
    // n = 2, both decided differently, m = 2: P(both flip) = 1/8.
    if (engine.try_async_chunk(opinions, undecided, 2, 2, rng)) {
      EXPECT_LT(undecided, 2u);
    } else {
      saw_reject = true;
      EXPECT_EQ(undecided, 0u);
    }
  }
  EXPECT_TRUE(saw_reject);
}

// ---- Exactness vs literal per-agent round simulations ----

/// Per-agent synchronized USD (the idealized process of Section 1.2):
/// phase A, one USD step each; phase B, undecided agents resample until
/// landing on a decided agent, one synchronous sub-round per attempt.
std::uint64_t per_agent_sync_super_rounds(std::size_t n, int k,
                                          rng::Rng& rng,
                                          std::uint64_t max_super) {
  std::vector<int> agents(n);
  for (std::size_t i = 0; i < n; ++i) {
    agents[i] = static_cast<int>(i % static_cast<std::size_t>(k));
  }
  const int undecided = k;
  const auto is_consensus = [&agents] {
    return std::all_of(agents.begin(), agents.end(),
                       [&agents](int a) { return a == agents[0]; });
  };
  std::uint64_t supers = 0;
  while (!is_consensus() && supers < max_super) {
    std::vector<int> next(n);
    bool all_undecided = true;
    do {
      all_undecided = true;
      for (std::size_t i = 0; i < n; ++i) {
        const int partner = agents[rng.bounded(n)];
        next[i] = partner == agents[i] ? agents[i] : undecided;
        all_undecided = all_undecided && next[i] == undecided;
      }
    } while (all_undecided);
    agents = next;
    bool any_undecided = true;
    while (any_undecided) {
      any_undecided = false;
      const std::vector<int> snapshot = agents;
      for (std::size_t i = 0; i < n; ++i) {
        if (snapshot[i] != undecided) continue;
        const int partner = snapshot[rng.bounded(n)];
        if (partner != undecided) {
          agents[i] = partner;
        } else {
          any_undecided = true;
        }
      }
    }
    ++supers;
  }
  return supers;
}

TEST(RoundEngine, SyncUsdMatchesPerAgentReferenceInDistribution) {
  // The acceptance property: batched (multinomial) synchronized rounds are
  // distributionally identical to a per-agent simulation — same seeds
  // derive both samples, statistics compared by two-sample KS.
  const Count n = 120;
  const int k = 3;
  const int trials = 300;
  std::vector<double> batched, reference;
  for (int t = 0; t < trials; ++t) {
    core::SyncUsd sim(Configuration::uniform(n, k, 0),
                      rng::Rng(rng::stream_seed(4100, t)));
    EXPECT_TRUE(sim.run_to_consensus(10'000));
    batched.push_back(static_cast<double>(sim.super_rounds()));
    rng::Rng rng(rng::stream_seed(4200, t));
    reference.push_back(static_cast<double>(
        per_agent_sync_super_rounds(n, k, rng, 10'000)));
  }
  EXPECT_LT(stats::ks_statistic(batched, reference),
            stats::ks_threshold(batched.size(), reference.size(), 0.001));
}

/// Per-agent gossip-model USD round: every agent samples one partner from
/// the pre-round population and applies the USD rule.
std::uint64_t per_agent_gossip_rounds(std::size_t n, int k, rng::Rng& rng,
                                      std::uint64_t max_rounds) {
  std::vector<int> agents(n);
  for (std::size_t i = 0; i < n; ++i) {
    agents[i] = static_cast<int>(i % static_cast<std::size_t>(k));
  }
  const int undecided = k;
  const auto is_consensus = [&agents] {
    return std::all_of(agents.begin(), agents.end(),
                       [&agents](int a) { return a == agents[0]; });
  };
  std::uint64_t rounds = 0;
  while (!is_consensus() && rounds < max_rounds) {
    const std::vector<int> snapshot = agents;
    for (std::size_t i = 0; i < n; ++i) {
      const int partner = snapshot[rng.bounded(n)];
      if (snapshot[i] == undecided) {
        if (partner != undecided) agents[i] = partner;
      } else if (partner != undecided && partner != snapshot[i]) {
        agents[i] = undecided;
      }
    }
    ++rounds;
  }
  return rounds;
}

TEST(RoundEngine, GossipUsdMatchesPerAgentReferenceInDistribution) {
  const Count n = 120;
  const int k = 3;
  const int trials = 300;
  std::vector<double> batched, reference;
  for (int t = 0; t < trials; ++t) {
    gossip::GossipUsd sim(Configuration::uniform(n, k, 0),
                          rng::Rng(rng::stream_seed(4300, t)));
    EXPECT_TRUE(sim.run_to_consensus(100'000));
    batched.push_back(static_cast<double>(sim.rounds()));
    rng::Rng rng(rng::stream_seed(4400, t));
    reference.push_back(
        static_cast<double>(per_agent_gossip_rounds(n, k, rng, 100'000)));
  }
  EXPECT_LT(stats::ks_statistic(batched, reference),
            stats::ks_threshold(batched.size(), reference.size(), 0.001));
}

}  // namespace
}  // namespace kusd
