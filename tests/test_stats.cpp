// Statistics substrate tests.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

TEST(Streaming, MeanVarianceMinMax) {
  stats::Streaming s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Streaming, AgreesWithSamples) {
  rng::Rng r(5);
  stats::Streaming st;
  stats::Samples sa;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.normal() * 3.0 + 1.0;
    st.add(v);
    sa.add(v);
  }
  EXPECT_NEAR(st.mean(), sa.mean(), 1e-9);
  EXPECT_NEAR(st.variance(), sa.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(st.min(), sa.min());
  EXPECT_DOUBLE_EQ(st.max(), sa.max());
}

TEST(Samples, QuantilesInterpolate) {
  stats::Samples s({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 2.0);
}

TEST(Samples, SingleValue) {
  stats::Samples s({7.0});
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Samples, Ci95ShrinksWithMoreData) {
  rng::Rng r(9);
  stats::Samples small, large;
  for (int i = 0; i < 100; ++i) small.add(r.normal());
  for (int i = 0; i < 10000; ++i) large.add(r.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  // The 95% CI of 10k standard normals is about 1.96/sqrt(10000) ~ 0.02.
  EXPECT_NEAR(large.ci95_halfwidth(), 0.0196, 0.004);
}

TEST(Ks, IdenticalSamplesHaveZeroDistance) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::ks_statistic(a, a), 0.0);
}

TEST(Ks, DisjointSamplesHaveDistanceOne) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{10, 11, 12};
  EXPECT_DOUBLE_EQ(stats::ks_statistic(a, b), 1.0);
}

TEST(Ks, SameDistributionPassesThreshold) {
  rng::Rng r(13);
  std::vector<double> a, b;
  for (int i = 0; i < 4000; ++i) a.push_back(r.normal());
  for (int i = 0; i < 4000; ++i) b.push_back(r.normal());
  EXPECT_LT(stats::ks_statistic(a, b),
            stats::ks_threshold(a.size(), b.size(), 0.001));
}

TEST(Ks, ShiftedDistributionFailsThreshold) {
  rng::Rng r(17);
  std::vector<double> a, b;
  for (int i = 0; i < 4000; ++i) a.push_back(r.normal());
  for (int i = 0; i < 4000; ++i) b.push_back(r.normal() + 0.3);
  EXPECT_GT(stats::ks_statistic(a, b),
            stats::ks_threshold(a.size(), b.size(), 0.001));
}

TEST(Regression, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = stats::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyLineRecoversSlope) {
  rng::Rng r(19);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(4.0 - 0.5 * x + r.normal());
  }
  const auto fit = stats::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, -0.5, 0.01);
}

TEST(Regression, LogLogRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.5));
  }
  const auto fit = stats::loglog_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(Regression, RejectsDegenerateInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(static_cast<void>(stats::linear_fit(one, one)),
               util::CheckError);
  const std::vector<double> xs{-1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(static_cast<void>(stats::loglog_fit(xs, ys)),
               util::CheckError);
}

TEST(Histogram, BinningAndClamping) {
  stats::Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RenderContainsBars) {
  stats::Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  const std::string out = h.render(20);
  EXPECT_NE(out.find("####"), std::string::npos);
}

}  // namespace
}  // namespace kusd
