// The sim layer: the Engine interface, the string-keyed Registry, the
// GraphSpec topology axis, and the property that the adapters preserve
// the dynamics of the simulators they wrap.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/batched_usd.hpp"
#include "runner/run.hpp"
#include "core/sync_usd.hpp"
#include "core/usd.hpp"
#include "gossip/gossip_usd.hpp"
#include "pp/configuration.hpp"
#include "pp/graph.hpp"
#include "rng/rng.hpp"
#include "sim/engines.hpp"
#include "sim/graph_spec.hpp"
#include "sim/registry.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using pp::Configuration;
using sim::GraphSpec;

// ---- Registry ----

TEST(Registry, ContainsEveryBuiltinEngine) {
  const auto& registry = sim::Registry::instance();
  for (const char* name :
       {"every", "skip", "batched", "sync", "gossip", "graph"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    ASSERT_NE(registry.find(name), nullptr);
    EXPECT_FALSE(registry.find(name)->description.empty());
  }
  EXPECT_FALSE(registry.contains("warp-drive"));
  EXPECT_EQ(registry.find("warp-drive"), nullptr);
}

TEST(Registry, EveryRegisteredNameConstructsAndRuns) {
  // The registry round-trip of the acceptance criteria: every name in
  // names() constructs an engine from a small configuration, runs it to
  // consensus, and reports sane incremental state.
  const auto& registry = sim::Registry::instance();
  const auto x0 = Configuration::uniform(200, 2, 0);
  for (const auto& name : registry.names()) {
    const auto engine = registry.create(name, x0, 7);
    EXPECT_EQ(engine->n(), 200u) << name;
    EXPECT_EQ(engine->k(), 2) << name;
    EXPECT_EQ(engine->elapsed(), 0u) << name;
    ASSERT_TRUE(engine->run_to_consensus(engine->default_budget())) << name;
    EXPECT_TRUE(engine->is_consensus()) << name;
    const int winner = engine->consensus_opinion();
    ASSERT_GE(winner, 0) << name;
    ASSERT_LT(winner, 2) << name;
    EXPECT_EQ(engine->counts()[static_cast<std::size_t>(winner)], 200u)
        << name;
    EXPECT_EQ(engine->undecided(), 0u) << name;
    EXPECT_GT(engine->elapsed(), 0u) << name;
    EXPECT_GT(engine->parallel_time(), 0.0) << name;
  }
}

TEST(Registry, PublishedBudgetMatchesEveryConstructedEngine) {
  // EngineInfo::default_budget is the statically published copy of
  // Engine::default_budget() — drivers (the sweep's disconnected
  // short-circuit) report it without constructing an engine, so the two
  // must never drift.
  const auto& registry = sim::Registry::instance();
  const auto x0 = pp::Configuration::uniform(200, 2, 0);
  sim::EngineOptions options;
  options.graph = sim::GraphSpec{sim::GraphSpec::Kind::kCycle};
  for (const auto& name : registry.names()) {
    const sim::EngineInfo* info = registry.find(name);
    ASSERT_NE(info, nullptr) << name;
    if (!info->default_budget) continue;  // fallback path, nothing to pin
    const auto engine = registry.create(name, x0, 1, options);
    EXPECT_EQ(info->default_budget(x0.n(), x0.k()), engine->default_budget())
        << "engine '" << name
        << "' publishes a default budget that differs from the one it uses";
  }
}

TEST(Engine, TopologyConnectedReflectsTheRealizedTopology) {
  const auto& registry = sim::Registry::instance();
  const auto x0 = pp::Configuration::uniform(300, 2, 0);
  // Engines without a topology make no connectivity claim.
  EXPECT_EQ(registry.create("skip", x0, 1)->topology_connected(),
            std::nullopt);
  EXPECT_EQ(registry.create("batched", x0, 1)->topology_connected(),
            std::nullopt);
  sim::EngineOptions cycle;
  cycle.graph = sim::GraphSpec{sim::GraphSpec::Kind::kCycle};
  // G(300, 0.003) sits far below the ln n / n connectivity threshold:
  // sparse enough for isolated vertices (both the materialized and the
  // aggregated representation see the disconnection) but not empty.
  sim::EngineOptions sparse;
  sparse.graph = sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 0.003};
  EXPECT_EQ(registry.create("graph", x0, 1, cycle)->topology_connected(),
            std::optional<bool>(true));
  EXPECT_EQ(registry.create("graph", x0, 1, sparse)->topology_connected(),
            std::optional<bool>(false));
  EXPECT_EQ(
      registry.create("graph-batched", x0, 1, cycle)->topology_connected(),
      std::optional<bool>(true));
  EXPECT_EQ(
      registry.create("graph-batched", x0, 1, sparse)->topology_connected(),
      std::optional<bool>(false));
}

TEST(Registry, CreateUnknownEngineThrows) {
  const auto x0 = Configuration::uniform(100, 2, 0);
  EXPECT_THROW((void)sim::Registry::instance().create("warp-drive", x0, 1),
               util::CheckError);
}

TEST(Registry, RejectsBadRegistrations) {
  sim::Registry registry;  // fresh instance, builtins pre-registered
  EXPECT_THROW(registry.add("", {}), util::CheckError);
  EXPECT_THROW(registry.add("no-factory", {}), util::CheckError);
  sim::EngineInfo dup;
  dup.factory = [](const Configuration& x0, std::uint64_t seed,
                   const sim::EngineOptions&) {
    return sim::Registry::instance().create("skip", x0, seed);
  };
  EXPECT_THROW(registry.add("skip", dup), util::CheckError);  // duplicate
}

TEST(Registry, CustomEnginesAreCreatable) {
  // The extension contract of the layer: a registered name is immediately
  // constructible with no other changes.
  sim::Registry registry;
  sim::EngineInfo info;
  info.factory = [](const Configuration& x0, std::uint64_t seed,
                    const sim::EngineOptions&) {
    return sim::Registry::instance().create("every", x0, seed);
  };
  info.description = "alias of every, for the test";
  registry.add("every-again", info);
  ASSERT_TRUE(registry.contains("every-again"));
  const auto x0 = Configuration::uniform(100, 2, 0);
  const auto engine = registry.create("every-again", x0, 3);
  EXPECT_TRUE(engine->run_to_consensus(engine->default_budget()));
}

// ---- Adapters preserve the wrapped simulators' dynamics ----

TEST(EngineAdapters, SkipMatchesUsdSimulatorByteForByte) {
  const auto x0 = Configuration::uniform(1000, 3, 50);
  core::UsdSimulator direct(x0, rng::Rng(11),
                            core::UsdOptions{core::StepMode::kSkipUnproductive});
  ASSERT_TRUE(direct.run_to_consensus(100'000'000));
  const auto engine = sim::Registry::instance().create("skip", x0, 11);
  ASSERT_TRUE(engine->run_to_consensus(100'000'000));
  EXPECT_EQ(engine->elapsed(), direct.interactions());
  EXPECT_EQ(engine->consensus_opinion(), direct.consensus_opinion());
}

TEST(EngineAdapters, BatchedMatchesBatchedSimulatorByteForByte) {
  const auto x0 = Configuration::uniform(20000, 4, 0);
  core::BatchedUsdSimulator direct(x0, rng::Rng(13), core::BatchedOptions{});
  ASSERT_TRUE(direct.run_to_consensus(~std::uint64_t{0}));
  const auto engine = sim::Registry::instance().create("batched", x0, 13);
  ASSERT_TRUE(engine->run_to_consensus(~std::uint64_t{0}));
  EXPECT_EQ(engine->elapsed(), direct.interactions());
  EXPECT_EQ(engine->consensus_opinion(), direct.consensus_opinion());
}

TEST(EngineAdapters, SyncMatchesSyncUsdByteForByte) {
  const auto x0 = Configuration::uniform(800, 3, 0);
  core::SyncUsd direct(x0, rng::Rng(17));
  ASSERT_TRUE(direct.run_to_consensus(10'000));
  const auto engine = sim::Registry::instance().create("sync", x0, 17);
  ASSERT_TRUE(engine->run_to_consensus(10'000));
  EXPECT_EQ(engine->elapsed(), direct.super_rounds());
  EXPECT_DOUBLE_EQ(engine->parallel_time(),
                   static_cast<double>(direct.total_rounds()));
  EXPECT_EQ(engine->consensus_opinion(), direct.consensus_opinion());
}

TEST(EngineAdapters, GossipMatchesGossipUsdByteForByte) {
  const auto x0 = Configuration::uniform(800, 3, 40);
  gossip::GossipUsd direct(x0, rng::Rng(19));
  ASSERT_TRUE(direct.run_to_consensus(100'000));
  const auto engine = sim::Registry::instance().create("gossip", x0, 19);
  ASSERT_TRUE(engine->run_to_consensus(100'000));
  EXPECT_EQ(engine->elapsed(), direct.rounds());
  EXPECT_EQ(engine->consensus_opinion(), direct.consensus_opinion());
}

TEST(EngineAdapters, RunObservedVisitsIntervalBoundaries) {
  const auto x0 = Configuration::uniform(500, 2, 0);
  const auto engine = sim::Registry::instance().create("batched", x0, 23);
  std::vector<std::uint64_t> times;
  ASSERT_TRUE(engine->run_observed(
      ~std::uint64_t{0}, 250,
      [&times](std::uint64_t t, std::span<const pp::Count>, pp::Count) {
        times.push_back(t);
      }));
  ASSERT_GE(times.size(), 2u);
  EXPECT_EQ(times.front(), 0u);
  // The batched engine clamps chunks: every interior observation lands
  // exactly on a boundary.
  for (std::size_t i = 1; i + 1 < times.size(); ++i) {
    EXPECT_EQ(times[i] % 250, 0u) << i;
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(EngineAdapters, SyncRequiresDecidedStart) {
  const auto x0 = Configuration::uniform(100, 2, 10);
  EXPECT_THROW((void)sim::Registry::instance().create("sync", x0, 1),
               util::CheckError);
  EXPECT_TRUE(sim::Registry::instance().find("sync")->requires_decided_start);
}

// ---- GraphSpec ----

TEST(GraphSpec, NamesRoundTrip) {
  for (const char* name :
       {"complete", "cycle", "regular:4", "regular:7", "er:auto", "er:0.05"}) {
    const auto spec = sim::parse_graph_spec(name);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_EQ(sim::to_string(*spec), name);
    EXPECT_EQ(sim::parse_graph_spec(sim::to_string(*spec)), spec) << name;
  }
  // Shortest round-trip formatting keeps every significant digit.
  const GraphSpec gnarly{GraphSpec::Kind::kErdosRenyi, 4, 0.1234567891234567};
  const auto reparsed = sim::parse_graph_spec(sim::to_string(gnarly));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->edge_probability, gnarly.edge_probability);
}

TEST(GraphSpec, RejectsMalformedNames) {
  for (const char* name : {"", "torus", "regular:", "regular:0", "regular:x",
                           "er:", "er:0", "er:1.5", "er:x", "complete:3"}) {
    EXPECT_FALSE(sim::parse_graph_spec(name).has_value()) << name;
  }
}

TEST(GraphSpec, BuildGraphResolvesEveryKind) {
  rng::Rng rng(31);
  EXPECT_EQ(sim::build_graph(GraphSpec{}, 50, rng).num_edges(),
            50u * 49u / 2u);
  EXPECT_EQ(
      sim::build_graph(GraphSpec{GraphSpec::Kind::kCycle}, 50, rng).num_edges(),
      50u);
  const auto regular =
      sim::build_graph(GraphSpec{GraphSpec::Kind::kRegular, 4}, 50, rng);
  EXPECT_TRUE(regular.is_connected());
  const auto er = sim::build_graph(
      GraphSpec{GraphSpec::Kind::kErdosRenyi, 4, 0.0}, 400, rng);
  EXPECT_TRUE(er.is_connected());  // er:auto sits above the threshold
  EXPECT_THROW(
      (void)sim::build_graph(GraphSpec{GraphSpec::Kind::kRegular, 3}, 51, rng),
      util::CheckError);  // n * d odd
}

TEST(GraphSpec, AutoEdgeProbabilityTracksTheConnectivityThreshold) {
  EXPECT_GT(sim::auto_edge_probability(100), std::log(100.0) / 100.0);
  EXPECT_LE(sim::auto_edge_probability(3), 1.0);
  EXPECT_GT(sim::auto_edge_probability(1'000'000), 0.0);
}

TEST(InteractionGraph, ImplicitCompleteGraphIsCheap) {
  // K_n is held implicitly: big n must construct instantly and sample
  // uniform ordered distinct pairs without an edge list.
  const auto g = pp::InteractionGraph::complete(1'000'000);
  EXPECT_EQ(g.num_edges(), 1'000'000ull * 999'999ull / 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.edge(0), (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(g.edge(999'998), (std::pair<std::uint32_t, std::uint32_t>{0,
                                                                      999'999}));
  EXPECT_EQ(g.edge(999'999), (std::pair<std::uint32_t, std::uint32_t>{1, 2}));
  rng::Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    const auto [u, v] = g.sample_pair(rng);
    EXPECT_NE(u, v);
    EXPECT_LT(u, 1'000'000u);
    EXPECT_LT(v, 1'000'000u);
  }
}

// ---- The graph engine ----

TEST(GraphEngine, ReachesConsensusOnRestrictedTopologies) {
  const auto x0 = Configuration::uniform(64, 2, 0);
  for (const auto& spec :
       {GraphSpec{GraphSpec::Kind::kCycle},
        GraphSpec{GraphSpec::Kind::kRegular, 4},
        GraphSpec{GraphSpec::Kind::kErdosRenyi, 4, 0.0}}) {
    sim::EngineOptions options;
    options.graph = spec;
    const auto engine =
        sim::Registry::instance().create("graph", x0, 41, options);
    ASSERT_TRUE(engine->run_to_consensus(100'000'000)) << sim::to_string(spec);
    EXPECT_EQ(engine->counts()[static_cast<std::size_t>(
                  engine->consensus_opinion())],
              64u);
  }
}

TEST(GraphEngine, SharedTopologyMatchesOwnedConstruction) {
  // A sweep shares one topology across trials; an engine that builds its
  // own from the same spec and stream must produce the same trajectory.
  const auto x0 = Configuration::uniform(80, 2, 0);
  const std::uint64_t seed = 43;
  sim::EngineOptions owned;
  owned.graph = GraphSpec{GraphSpec::Kind::kRegular, 4};
  const auto a = sim::Registry::instance().create("graph", x0, seed, owned);

  rng::Rng topology_rng(rng::stream_seed(seed, sim::kTopologyStream));
  const auto topology = sim::build_graph(owned.graph, 80, topology_rng);
  sim::EngineOptions shared = owned;
  shared.shared_graph = &topology;
  const auto b = sim::Registry::instance().create("graph", x0, seed, shared);

  ASSERT_TRUE(a->run_to_consensus(100'000'000));
  ASSERT_TRUE(b->run_to_consensus(100'000'000));
  EXPECT_EQ(a->elapsed(), b->elapsed());
  EXPECT_EQ(a->consensus_opinion(), b->consensus_opinion());
}

TEST(GraphEngine, RejectsMismatchedSharedTopology) {
  const auto x0 = Configuration::uniform(80, 2, 0);
  const auto topology = pp::InteractionGraph::cycle(60);  // wrong size
  sim::EngineOptions options;
  options.shared_graph = &topology;
  EXPECT_THROW(
      (void)sim::Registry::instance().create("graph", x0, 1, options),
      util::CheckError);
}

TEST(GraphEngine, CompleteTopologyMatchesSkipEngineDistribution) {
  // On the complete topology the edge-restricted scheduler is the
  // unrestricted model conditioned on responder != initiator, whose
  // productive dynamics are identical (self-interactions are unproductive
  // and inflate interaction counts by only ~1/n). The consensus-time
  // (parallel time) distributions must therefore agree: KS at the same
  // threshold the batched-engine property tests use.
  const auto x0 = Configuration::uniform(150, 2, 0);
  const int trials = 200;
  std::vector<double> skip_times, graph_times;
  skip_times.reserve(trials);
  graph_times.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    const auto skip_engine = sim::Registry::instance().create(
        "skip", x0, rng::stream_seed(5100, static_cast<std::uint64_t>(t)));
    ASSERT_TRUE(skip_engine->run_to_consensus(100'000'000));
    skip_times.push_back(skip_engine->parallel_time());
    const auto graph_engine = sim::Registry::instance().create(
        "graph", x0, rng::stream_seed(5101, static_cast<std::uint64_t>(t)));
    ASSERT_TRUE(graph_engine->run_to_consensus(100'000'000));
    graph_times.push_back(graph_engine->parallel_time());
  }
  EXPECT_LT(stats::ks_statistic(skip_times, graph_times),
            stats::ks_threshold(skip_times.size(), graph_times.size(), 0.001));
}

// ---- run_usd through the registry ----

TEST(RunUsd, EngineNameSelectsTheEngine) {
  const auto x0 = Configuration::uniform(500, 2, 0);
  runner::RunOptions options;
  options.engine = "sync";
  options.track_phases = false;
  const auto result = runner::run_usd(x0, 3, options);
  ASSERT_TRUE(result.converged);
  // Native time for sync is super-rounds: polylog, nowhere near the
  // interaction counts of the asynchronous engines.
  EXPECT_LT(result.interactions, 1000u);
  runner::RunOptions unknown;
  unknown.engine = "warp-drive";
  EXPECT_THROW((void)runner::run_usd(x0, 3, unknown), util::CheckError);
}

TEST(RunUsd, GraphEngineRunsWithTopology) {
  const auto x0 = Configuration::uniform(80, 2, 0);
  runner::RunOptions options;
  options.engine = "graph";
  options.graph = GraphSpec{GraphSpec::Kind::kRegular, 4};
  const auto result = runner::run_usd(x0, 5, options);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(result.phases.complete());
  EXPECT_GT(result.parallel_time, 0.0);
}

TEST(RunUsd, LegacyStepModeStillResolvesThroughTheRegistry) {
  const auto x0 = Configuration::uniform(400, 3, 0);
  for (const auto mode :
       {core::StepMode::kEveryInteraction, core::StepMode::kSkipUnproductive,
        core::StepMode::kBatchedRounds}) {
    runner::RunOptions options;
    options.mode = mode;
    options.track_phases = false;
    const auto result = runner::run_usd(x0, 9, options);
    EXPECT_TRUE(result.converged) << core::engine_name(mode);
  }
}

}  // namespace
}  // namespace kusd
