// Observations 6/8/9 and Observation 7: the closed-form transition
// probabilities and the undecided equilibrium, validated against empirical
// one-step frequencies of the simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/transition_probs.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"

namespace kusd {
namespace {

using pp::Configuration;

TEST(TransitionProbs, Observation6ClosedForms) {
  const Configuration x({30, 20, 10}, 40);  // n = 100
  // p- = u (n-u) / n^2 = 40*60/10000.
  EXPECT_DOUBLE_EQ(analysis::p_minus(x), 0.24);
  // p+ = ((n-u)^2 - r2)/n^2 = (3600 - (900+400+100))/10000.
  EXPECT_DOUBLE_EQ(analysis::p_plus(x), 0.22);
  EXPECT_DOUBLE_EQ(analysis::p_tilde_plus(x), 0.22 / 0.46);
}

TEST(TransitionProbs, Observation8ClosedForms) {
  const Configuration x({30, 20, 10}, 40);
  EXPECT_DOUBLE_EQ(analysis::p_i_plus(x, 0), 40.0 * 30.0 / 10000.0);
  // x_0 (n - u - x_0) / n^2 = 30 * 30 / 10000.
  EXPECT_DOUBLE_EQ(analysis::p_i_minus(x, 0), 0.09);
}

TEST(TransitionProbs, Observation9ClosedForms) {
  const Configuration x({30, 20, 10}, 40);
  EXPECT_DOUBLE_EQ(analysis::p_ij_plus(x, 0, 1),
                   analysis::p_i_plus(x, 0) + analysis::p_i_minus(x, 1));
  EXPECT_DOUBLE_EQ(analysis::p_ij_minus(x, 0, 1),
                   analysis::p_i_minus(x, 0) + analysis::p_i_plus(x, 1));
}

TEST(TransitionProbs, UStarFormula) {
  EXPECT_DOUBLE_EQ(analysis::u_star(300, 2), 100.0);      // n/3 for k=2
  EXPECT_DOUBLE_EQ(analysis::u_star(1000, 1), 0.0);       // k=1: no flips
  EXPECT_NEAR(analysis::u_star(1000, 100), 1000.0 * 99.0 / 199.0, 1e-9);
  // u* -> n/2 as k grows.
  EXPECT_NEAR(analysis::u_star(1'000'000, 10000), 500000.0, 50.0);
}

TEST(TransitionProbs, PotentialFunctions) {
  const Configuration x({30, 20, 10}, 40);
  // Z = n - 2u - xmax = 100 - 80 - 30.
  EXPECT_DOUBLE_EQ(analysis::potential_z(x), -10.0);
  EXPECT_DOUBLE_EQ(analysis::potential_z_alpha(x, 7.0 / 8.0),
                   100.0 - 80.0 - 7.0 / 8.0 * 30.0);
}

// Lemma 1's drift inequality: E[Z(t) - Z(t+1)] >= Z/(2n) whenever Z >= 0
// and u < n/2 (checked on a grid of Phase-1 configurations).
TEST(TransitionProbs, Lemma1DriftInequalityOnGrid) {
  const pp::Count n = 120;
  for (pp::Count u = 0; u < n / 2; u += 10) {
    for (pp::Count x0 = 1; x0 + u <= n; x0 += 7) {
      const pp::Count rest = n - u - x0;
      const Configuration x({x0, rest / 2, rest - rest / 2}, u);
      if (x.xmax() != x0) continue;  // keep opinion 0 the plurality
      const double z = analysis::potential_z(x);
      if (z < 0) continue;
      EXPECT_GE(analysis::expected_z_drift(x) + 1e-12,
                z / (2.0 * static_cast<double>(n)))
          << "u=" << u << " x0=" << x0;
    }
  }
}

// Observation 7: p~+ <= 1/2 - eps/2 when u >= u* + eps n.
TEST(TransitionProbs, Observation7UpperBound) {
  const pp::Count n = 1000;
  for (int k : {2, 3, 10}) {
    const double ustar = analysis::u_star(n, k);
    for (double eps : {0.05, 0.1, 0.2}) {
      const auto u = static_cast<pp::Count>(std::ceil(
          ustar + eps * static_cast<double>(n)));
      if (u >= n) continue;
      const auto x = Configuration::uniform(n, k, u);
      EXPECT_LE(analysis::p_tilde_plus(x), 0.5 - eps / 2.0 + 1e-9)
          << "k=" << k << " eps=" << eps;
    }
  }
}

// Empirical validation: simulate many single interactions from a fixed
// configuration and compare the frequency of each u-move with the formulas.
TEST(TransitionProbs, EmpiricalOneStepFrequenciesMatch) {
  const Configuration x({30, 20, 10}, 40);
  rng::Rng r(99);
  const int trials = 300000;
  int down = 0, up = 0;
  for (int t = 0; t < trials; ++t) {
    core::UsdSimulator sim(x, rng::Rng(r.next_u64()));
    sim.step();
    if (sim.undecided() < 40) ++down;
    if (sim.undecided() > 40) ++up;
  }
  const double sigma = std::sqrt(0.25 * trials);  // conservative
  EXPECT_NEAR(down, analysis::p_minus(x) * trials, 5 * sigma);
  EXPECT_NEAR(up, analysis::p_plus(x) * trials, 5 * sigma);
}

TEST(TransitionProbs, EmpiricalOpinionStepFrequenciesMatch) {
  const Configuration x({50, 30}, 20);
  rng::Rng r(101);
  const int trials = 300000;
  int up0 = 0, down0 = 0;
  for (int t = 0; t < trials; ++t) {
    core::UsdSimulator sim(x, rng::Rng(r.next_u64()));
    sim.step();
    if (sim.opinion(0) > 50) ++up0;
    if (sim.opinion(0) < 50) ++down0;
  }
  const double sigma = std::sqrt(0.25 * trials);
  EXPECT_NEAR(up0, analysis::p_i_plus(x, 0) * trials, 5 * sigma);
  EXPECT_NEAR(down0, analysis::p_i_minus(x, 0) * trials, 5 * sigma);
}

}  // namespace
}  // namespace kusd
