// The degree-aggregated graph engine ("graph-batched") and its substrate:
// pp::DegreeClassModel extraction, the class-structured tau-leap in
// core::RoundEngine, the halve-on-overshoot m = 1 boundary, and KS
// agreement with the per-interaction "graph" engine on the topologies
// where the annealed model is exact (complete) or mean-field-accurate
// (random regular).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/chunk_controller.hpp"
#include "core/round_engine.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "pp/degree_classes.hpp"
#include "pp/graph.hpp"
#include "rng/rng.hpp"
#include "sim/batched_graph_engine.hpp"
#include "sim/graph_spec.hpp"
#include "sim/registry.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using pp::Configuration;
using pp::DegreeClass;
using pp::DegreeClassModel;
using sim::GraphSpec;

// ---- DegreeClassModel ----

TEST(DegreeClasses, RegularFamiliesCollapseToOneClass) {
  const auto model = DegreeClassModel::regular(1000, 8.0);
  ASSERT_EQ(model.num_classes(), 1u);
  EXPECT_EQ(model.classes()[0].size, 1000u);
  EXPECT_DOUBLE_EQ(model.classes()[0].degree, 8.0);
  EXPECT_EQ(model.num_vertices(), 1000u);
  EXPECT_DOUBLE_EQ(model.expected_edges(), 4000.0);
  EXPECT_FALSE(model.has_isolated_vertices());
}

TEST(DegreeClasses, FromGraphMeasuresTheDegreeHistogram) {
  const auto cycle = DegreeClassModel::from_graph(pp::InteractionGraph::cycle(50));
  ASSERT_EQ(cycle.num_classes(), 1u);
  EXPECT_DOUBLE_EQ(cycle.classes()[0].degree, 2.0);
  EXPECT_EQ(cycle.classes()[0].size, 50u);

  // K_n stays implicit: one class of degree n-1 without edge iteration.
  const auto complete =
      DegreeClassModel::from_graph(pp::InteractionGraph::complete(1 << 20));
  ASSERT_EQ(complete.num_classes(), 1u);
  EXPECT_DOUBLE_EQ(complete.classes()[0].degree,
                   static_cast<double>((1 << 20) - 1));

  rng::Rng rng(3);
  const auto er = DegreeClassModel::from_graph(
      pp::InteractionGraph::erdos_renyi(400, 0.05, rng));
  EXPECT_GT(er.num_classes(), 1u);
  EXPECT_EQ(er.num_vertices(), 400u);
}

TEST(DegreeClasses, BinomialRealizesClassSizesSummingToN) {
  rng::Rng rng(17);
  const auto model = DegreeClassModel::binomial(100000, 0.001, 48, rng);
  EXPECT_EQ(model.num_vertices(), 100000u);
  EXPECT_GE(model.num_classes(), 2u);
  EXPECT_LE(model.num_classes(), 48u);
  // Expected edges tracks p * n * (n-1) / 2 within a few percent.
  const double analytic = 0.001 * 100000.0 * 99999.0 / 2.0;
  EXPECT_NEAR(model.expected_edges() / analytic, 1.0, 0.05);
  // Mean degree 100: no isolated vertices at this density.
  EXPECT_FALSE(model.has_isolated_vertices());
}

TEST(DegreeClasses, SparseBinomialRealizesIsolatedVertices) {
  // Mean degree ~1: a constant fraction of vertices is isolated, which is
  // exactly what the sweep's connected=0 timeout detection keys on.
  rng::Rng rng(19);
  const auto model = DegreeClassModel::binomial(2000, 0.0005, 48, rng);
  EXPECT_EQ(model.num_vertices(), 2000u);
  EXPECT_TRUE(model.has_isolated_vertices());
}

TEST(DegreeClasses, GraphSpecExtractionMatchesTheFamilies) {
  rng::Rng rng(23);
  const auto complete = sim::degree_class_model(GraphSpec{}, 500, rng);
  ASSERT_EQ(complete.num_classes(), 1u);
  EXPECT_DOUBLE_EQ(complete.classes()[0].degree, 499.0);
  const auto cycle =
      sim::degree_class_model(GraphSpec{GraphSpec::Kind::kCycle}, 500, rng);
  EXPECT_DOUBLE_EQ(cycle.classes()[0].degree, 2.0);
  const auto regular = sim::degree_class_model(
      GraphSpec{GraphSpec::Kind::kRegular, 6}, 500, rng);
  EXPECT_DOUBLE_EQ(regular.classes()[0].degree, 6.0);
  EXPECT_THROW((void)sim::degree_class_model(
                   GraphSpec{GraphSpec::Kind::kRegular, 3}, 501, rng),
               util::CheckError);  // n * d odd, parity with build_graph

  // Aggregation is NOT capped at 2^32 vertices — that is its point.
  const auto huge = sim::degree_class_model(
      GraphSpec{GraphSpec::Kind::kRegular, 8}, std::uint64_t{1} << 40, rng);
  EXPECT_EQ(huge.num_vertices(), std::uint64_t{1} << 40);
}

// ---- Class-structured tau-leap ----

TEST(RoundEngineClassChunk, SingleUnitClassMatchesUnstructuredChunk) {
  // With one class of weight 1 the class-structured chunk must reproduce
  // try_async_chunk bit for bit: same event layout, same rates, same
  // multinomial consumption.
  std::vector<pp::Count> a_opinions = {400, 250, 100};
  pp::Count a_undecided = 250;
  std::vector<pp::Count> b_opinions = a_opinions;
  std::vector<pp::Count> b_undecided = {a_undecided};
  const std::vector<double> unit_weight = {1.0};
  const pp::Count n = 1000;

  core::RoundEngine plain(3);
  core::RoundEngine classed(3, 1);
  rng::Rng rng_a(12345), rng_b(12345);
  for (int step = 0; step < 50; ++step) {
    const bool ok_a = plain.try_async_chunk(a_opinions, a_undecided, n,
                                            n / 10, rng_a);
    const bool ok_b = classed.try_async_class_chunk(
        b_opinions, b_undecided, unit_weight, n / 10, rng_b);
    ASSERT_EQ(ok_a, ok_b) << step;
    ASSERT_EQ(a_opinions, b_opinions) << step;
    ASSERT_EQ(a_undecided, b_undecided[0]) << step;
  }
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());  // same stream position
}

TEST(RoundEngineClassChunk, RejectsOvershootWithoutMutation) {
  // Two lone decided agents, a huge frozen-rate chunk: the draw must
  // overshoot a count and be rejected with the state untouched.
  core::RoundEngine engine(2, 1);
  std::vector<pp::Count> opinions = {1, 1};
  std::vector<pp::Count> undecided = {0};
  const std::vector<double> weight = {1.0};
  rng::Rng rng(7);
  ASSERT_FALSE(
      engine.try_async_class_chunk(opinions, undecided, weight, 1000, rng));
  EXPECT_EQ(opinions, (std::vector<pp::Count>{1, 1}));
  EXPECT_EQ(undecided[0], 0u);
}

TEST(RoundEngineClassChunk, SingleInteractionAlwaysSucceeds) {
  // m == 1 is the exact per-interaction limit the halve-on-overshoot
  // fallback bottoms out at: it must succeed in every reachable state,
  // including the near-consensus boundary.
  core::RoundEngine engine(2, 2);
  rng::Rng rng(11);
  const std::vector<double> weights = {2.0, 8.0};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<pp::Count> opinions = {5, 0, 1, 0};  // class-major, 2x2
    std::vector<pp::Count> undecided = {1, 1};
    ASSERT_TRUE(
        engine.try_async_class_chunk(opinions, undecided, weights, 1, rng));
    pp::Count total = undecided[0] + undecided[1];
    for (const auto c : opinions) total += c;
    EXPECT_EQ(total, 8u);  // population conserved
  }
}

TEST(RoundEngineClassChunk, ZeroWeightClassesAreFrozen) {
  // Weight-0 (isolated) vertices never interact: their counts must never
  // change, in either direction.
  core::RoundEngine engine(2, 2);
  rng::Rng rng(13);
  const std::vector<double> weights = {4.0, 0.0};
  std::vector<pp::Count> opinions = {50, 40, 3, 2};
  std::vector<pp::Count> undecided = {10, 1};
  for (int step = 0; step < 100; ++step) {
    (void)engine.try_async_class_chunk(opinions, undecided, weights, 20, rng);
    EXPECT_EQ(opinions[2], 3u);
    EXPECT_EQ(opinions[3], 2u);
    EXPECT_EQ(undecided[1], 1u);
  }
}

// ---- The graph-batched engine ----

TEST(BatchedGraphEngine, RegistryMetadata) {
  const auto* info = sim::Registry::instance().find("graph-batched");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->uses_graph_axis);
  EXPECT_TRUE(info->uses_chunk_options);
  EXPECT_TRUE(info->aggregated_topology);
  EXPECT_EQ(info->max_n, 0u);  // not capped at 2^32 — the engine's point
  EXPECT_FALSE(info->description.empty());
  // The materialized graph engine stays per-edge exact and capped.
  EXPECT_FALSE(sim::Registry::instance().find("graph")->aggregated_topology);
}

TEST(BatchedGraphEngine, InitialCountsMatchTheConfigurationExactly) {
  // The multinomial class embedding must preserve every state total: the
  // reported counts at t = 0 are the configuration, not an approximation.
  const auto x0 = Configuration({700, 200, 50}, 50);
  sim::EngineOptions options;
  options.graph = GraphSpec{GraphSpec::Kind::kErdosRenyi, 4, 0.02};
  const auto engine =
      sim::Registry::instance().create("graph-batched", x0, 29, options);
  ASSERT_EQ(engine->k(), 3);
  EXPECT_EQ(engine->counts()[0], 700u);
  EXPECT_EQ(engine->counts()[1], 200u);
  EXPECT_EQ(engine->counts()[2], 50u);
  EXPECT_EQ(engine->undecided(), 50u);
  EXPECT_EQ(engine->elapsed(), 0u);
}

TEST(BatchedGraphEngine, ReachesConsensusOnEveryFamily) {
  const auto x0 = Configuration::uniform(4096, 2, 0);
  for (const auto& spec :
       {GraphSpec{}, GraphSpec{GraphSpec::Kind::kCycle},
        GraphSpec{GraphSpec::Kind::kRegular, 8},
        GraphSpec{GraphSpec::Kind::kErdosRenyi, 4, 0.0}}) {
    sim::EngineOptions options;
    options.graph = spec;
    const auto engine =
        sim::Registry::instance().create("graph-batched", x0, 31, options);
    ASSERT_TRUE(engine->run_to_consensus(engine->default_budget()))
        << sim::to_string(spec);
    EXPECT_EQ(engine->counts()[static_cast<std::size_t>(
                  engine->consensus_opinion())],
              4096u);
    EXPECT_EQ(engine->undecided(), 0u);
  }
}

TEST(BatchedGraphEngine, SharedDegreeModelMatchesOwnedConstruction) {
  // A sweep shares one degree model across trials; an engine aggregating
  // its own from the same spec and stream must replay the same
  // trajectory, exactly like the materialized engine's shared_graph.
  const auto x0 = Configuration::uniform(5000, 3, 0);
  const std::uint64_t seed = 37;
  sim::EngineOptions owned;
  owned.graph = GraphSpec{GraphSpec::Kind::kErdosRenyi, 4, 0.01};
  const auto a =
      sim::Registry::instance().create("graph-batched", x0, seed, owned);

  rng::Rng topology_rng(rng::stream_seed(seed, sim::kTopologyStream));
  const auto model = sim::degree_class_model(owned.graph, 5000, topology_rng);
  sim::EngineOptions shared = owned;
  shared.shared_degrees = &model;
  const auto b =
      sim::Registry::instance().create("graph-batched", x0, seed, shared);

  ASSERT_TRUE(a->run_to_consensus(a->default_budget()));
  ASSERT_TRUE(b->run_to_consensus(b->default_budget()));
  EXPECT_EQ(a->elapsed(), b->elapsed());
  EXPECT_EQ(a->consensus_opinion(), b->consensus_opinion());
}

TEST(BatchedGraphEngine, RejectsMismatchedSharedModel) {
  const auto x0 = Configuration::uniform(80, 2, 0);
  const auto model = DegreeClassModel::regular(60, 4.0);  // wrong size
  sim::EngineOptions options;
  options.shared_degrees = &model;
  EXPECT_THROW((void)sim::Registry::instance().create("graph-batched", x0, 1,
                                                      options),
               util::CheckError);
}

TEST(BatchedGraphEngine, OvershootHalvesDownToExactSingleInteractions) {
  // Near-consensus boundary: one undecided agent, everything else decided
  // on opinion 0. A 50%-of-n fixed chunk must overshoot (at most one
  // adoption can happen), halve down to the always-exact m = 1, and
  // still converge to the right winner.
  const auto x0 = Configuration({199, 0}, 1);
  sim::EngineOptions options;
  options.graph = GraphSpec{GraphSpec::Kind::kRegular, 4};
  options.batch.chunk_fraction = 0.5;
  const auto engine =
      sim::Registry::instance().create("graph-batched", x0, 41, options);
  ASSERT_TRUE(engine->run_to_consensus(engine->default_budget()));
  EXPECT_EQ(engine->consensus_opinion(), 0);
  EXPECT_EQ(engine->counts()[0], 200u);
  const auto* direct = dynamic_cast<sim::BatchedGraphEngine*>(engine.get());
  ASSERT_NE(direct, nullptr);
  EXPECT_GE(direct->chunks(), 1u);
  EXPECT_EQ(direct->degree_model().num_classes(), 1u);
}

TEST(BatchedGraphEngine, CompleteMatchesGraphEngineDistribution) {
  // On the complete topology the annealed degree-weighted scheduler IS
  // the edge-restricted scheduler's law (self-interactions excepted, and
  // those are unproductive): the consensus-time distributions must agree
  // at the same KS threshold the other scheduler-equivalence tests use.
  const auto x0 = Configuration::uniform(150, 2, 0);
  const int trials = 200;
  std::vector<double> graph_times, aggregated_times;
  graph_times.reserve(trials);
  aggregated_times.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    const auto graph_engine = sim::Registry::instance().create(
        "graph", x0, rng::stream_seed(6100, static_cast<std::uint64_t>(t)));
    ASSERT_TRUE(graph_engine->run_to_consensus(100'000'000));
    graph_times.push_back(graph_engine->parallel_time());
    const auto aggregated = sim::Registry::instance().create(
        "graph-batched", x0,
        rng::stream_seed(6101, static_cast<std::uint64_t>(t)));
    ASSERT_TRUE(aggregated->run_to_consensus(100'000'000));
    aggregated_times.push_back(aggregated->parallel_time());
  }
  EXPECT_LT(stats::ks_statistic(graph_times, aggregated_times),
            stats::ks_threshold(graph_times.size(), aggregated_times.size(),
                                0.001));
}

TEST(BatchedGraphEngine, DenseRegularMatchesGraphEngineDistribution) {
  // The annealed mean field carries an O(1/d) bias against the quenched
  // per-interaction dynamics (local opinion clustering slows the real
  // chain; the mean field has none). By d = 64 the bias is below KS
  // detectability at property-test scale — the dense regime the
  // aggregated engine is for.
  const auto x0 = Configuration::uniform(256, 2, 0);
  const int trials = 150;
  sim::EngineOptions options;
  options.graph = GraphSpec{GraphSpec::Kind::kRegular, 64};
  std::vector<double> graph_times, aggregated_times;
  graph_times.reserve(trials);
  aggregated_times.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    const auto graph_engine = sim::Registry::instance().create(
        "graph", x0, rng::stream_seed(6200, static_cast<std::uint64_t>(t)),
        options);
    ASSERT_TRUE(graph_engine->run_to_consensus(100'000'000));
    graph_times.push_back(graph_engine->parallel_time());
    const auto aggregated = sim::Registry::instance().create(
        "graph-batched", x0,
        rng::stream_seed(6201, static_cast<std::uint64_t>(t)), options);
    ASSERT_TRUE(aggregated->run_to_consensus(100'000'000));
    aggregated_times.push_back(aggregated->parallel_time());
  }
  EXPECT_LT(stats::ks_statistic(graph_times, aggregated_times),
            stats::ks_threshold(graph_times.size(), aggregated_times.size(),
                                0.001));
}

TEST(BatchedGraphEngine, SparseRegularBiasIsOptimisticAndBounded) {
  // At d = 8 the mean-field bias is real and documented: the annealed
  // chain reaches consensus *faster* than the quenched one (it has no
  // local clustering to grind through), by well under 2x at this scale.
  // This test pins the direction and magnitude of the approximation so a
  // regression in either the engine or the docs' claim is caught.
  const auto x0 = Configuration::uniform(256, 2, 0);
  const int trials = 60;
  sim::EngineOptions options;
  options.graph = GraphSpec{GraphSpec::Kind::kRegular, 8};
  stats::Samples graph_times, aggregated_times;
  for (int t = 0; t < trials; ++t) {
    const auto graph_engine = sim::Registry::instance().create(
        "graph", x0, rng::stream_seed(6300, static_cast<std::uint64_t>(t)),
        options);
    ASSERT_TRUE(graph_engine->run_to_consensus(100'000'000));
    graph_times.add(graph_engine->parallel_time());
    const auto aggregated = sim::Registry::instance().create(
        "graph-batched", x0,
        rng::stream_seed(6301, static_cast<std::uint64_t>(t)), options);
    ASSERT_TRUE(aggregated->run_to_consensus(100'000'000));
    aggregated_times.add(aggregated->parallel_time());
  }
  EXPECT_LT(aggregated_times.mean(), graph_times.mean());
  EXPECT_GT(aggregated_times.mean(), graph_times.mean() / 2.0);
}

TEST(BatchedGraphEngine, RunObservedVisitsIntervalBoundaries) {
  const auto x0 = Configuration::uniform(1000, 2, 0);
  sim::EngineOptions options;
  options.graph = GraphSpec{GraphSpec::Kind::kRegular, 4};
  const auto engine =
      sim::Registry::instance().create("graph-batched", x0, 43, options);
  std::vector<std::uint64_t> times;
  ASSERT_TRUE(engine->run_observed(
      ~std::uint64_t{0}, 500,
      [&times](std::uint64_t t, std::span<const pp::Count>, pp::Count) {
        times.push_back(t);
      }));
  ASSERT_GE(times.size(), 2u);
  EXPECT_EQ(times.front(), 0u);
  for (std::size_t i = 1; i + 1 < times.size(); ++i) {
    EXPECT_EQ(times[i] % 500, 0u) << i;  // chunk-clamped, boundary-exact
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(BatchedGraphEngine, RunUsdResolvesItThroughTheRegistry) {
  const auto x0 = Configuration::uniform(4096, 2, 0);
  runner::RunOptions options;
  options.engine = "graph-batched";
  options.graph = GraphSpec{GraphSpec::Kind::kRegular, 8};
  options.batch.policy = core::ChunkPolicy::kAdaptive;
  const auto result = runner::run_usd(x0, 47, options);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(result.phases.complete());
  EXPECT_GT(result.parallel_time, 0.0);
}

}  // namespace
}  // namespace kusd
