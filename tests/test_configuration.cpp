// Configuration: factory invariants and accessors.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "pp/configuration.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using pp::Configuration;
using pp::Count;

TEST(Configuration, ExplicitConstruction) {
  Configuration x({5, 3, 2}, 4);
  EXPECT_EQ(x.n(), 14u);
  EXPECT_EQ(x.k(), 3);
  EXPECT_EQ(x.undecided(), 4u);
  EXPECT_EQ(x.decided(), 10u);
  EXPECT_EQ(x.opinion(0), 5u);
  EXPECT_EQ(x.xmax(), 5u);
  EXPECT_EQ(x.argmax(), 0);
  EXPECT_EQ(x.second_largest(), 3u);
  EXPECT_FALSE(x.is_consensus());
}

TEST(Configuration, StateCountsLayout) {
  Configuration x({5, 3}, 2);
  const auto sc = x.state_counts();
  ASSERT_EQ(sc.size(), 3u);
  EXPECT_EQ(sc[0], 5u);
  EXPECT_EQ(sc[1], 3u);
  EXPECT_EQ(sc[2], 2u);
}

TEST(Configuration, ConsensusDetection) {
  EXPECT_TRUE(Configuration({10, 0}, 0).is_consensus());
  EXPECT_FALSE(Configuration({9, 0}, 1).is_consensus());
  EXPECT_FALSE(Configuration({9, 1}, 0).is_consensus());
}

TEST(Configuration, SumSquares) {
  Configuration x({3, 4}, 0);
  EXPECT_DOUBLE_EQ(x.sum_squares(), 25.0);
}

TEST(Configuration, ArgmaxPrefersSmallestIndexOnTies) {
  Configuration x({4, 4, 1}, 0);
  EXPECT_EQ(x.argmax(), 0);
}

TEST(Configuration, SecondLargestWithDuplicates) {
  EXPECT_EQ(Configuration({7, 7, 1}, 0).second_largest(), 7u);
  EXPECT_EQ(Configuration({7}, 1).second_largest(), 0u);
}

TEST(Configuration, UniformSplitsEvenly) {
  const auto x = Configuration::uniform(103, 5, 3);
  EXPECT_EQ(x.n(), 103u);
  EXPECT_EQ(x.undecided(), 3u);
  Count total = 0;
  for (int i = 0; i < 5; ++i) total += x.opinion(i);
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(x.xmax() - *std::min_element(x.opinions().begin(),
                                         x.opinions().end()),
            0u);  // 100 divides evenly by 5
  const auto y = Configuration::uniform(102, 5, 0);
  EXPECT_LE(y.xmax() - *std::min_element(y.opinions().begin(),
                                         y.opinions().end()),
            1u);
}

TEST(Configuration, AdditiveBiasGuarantee) {
  const auto x = Configuration::with_additive_bias(1000, 4, 100, 50);
  EXPECT_EQ(x.n(), 1000u);
  EXPECT_EQ(x.undecided(), 100u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(x.opinion(0), x.opinion(i) + 50);
  }
  Count total = x.undecided();
  for (int i = 0; i < 4; ++i) total += x.opinion(i);
  EXPECT_EQ(total, 1000u);
}

TEST(Configuration, MultiplicativeBiasGuarantee) {
  const auto x = Configuration::with_multiplicative_bias(1000, 4, 100, 1.5);
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(static_cast<double>(x.opinion(0)),
              1.5 * static_cast<double>(x.opinion(i)));
  }
}

TEST(Configuration, GeometricProfileIsSortedDescending) {
  const auto x = Configuration::geometric(10000, 6, 0, 0.5);
  for (int i = 1; i < 6; ++i) {
    EXPECT_GE(x.opinion(i - 1), x.opinion(i));
  }
  Count total = 0;
  for (int i = 0; i < 6; ++i) total += x.opinion(i);
  EXPECT_EQ(total, 10000u);
}

TEST(Configuration, GeometricRatioOneIsUniformish) {
  const auto x = Configuration::geometric(1000, 4, 0, 1.0);
  EXPECT_LE(x.xmax() - *std::min_element(x.opinions().begin(),
                                         x.opinions().end()),
            4u);
}

TEST(Configuration, TwoOpinion) {
  const auto x = Configuration::two_opinion(100, 60, 10);
  EXPECT_EQ(x.k(), 2);
  EXPECT_EQ(x.opinion(0), 60u);
  EXPECT_EQ(x.opinion(1), 30u);
  EXPECT_EQ(x.undecided(), 10u);
}

TEST(Configuration, RejectsInvalidInput) {
  EXPECT_THROW(Configuration({}, 5), util::CheckError);
  EXPECT_THROW(Configuration::uniform(10, 3, 11), util::CheckError);
  EXPECT_THROW(Configuration::with_additive_bias(10, 2, 0, 11),
               util::CheckError);
  EXPECT_THROW(Configuration::with_multiplicative_bias(10, 2, 0, 1.0),
               util::CheckError);
  EXPECT_THROW(Configuration::geometric(10, 2, 0, 0.0), util::CheckError);
  EXPECT_THROW(Configuration::two_opinion(10, 8, 3), util::CheckError);
}

// Parameterized sweep over (n, k, undecided): every factory preserves mass.
class ConfigurationSweep
    : public ::testing::TestWithParam<std::tuple<Count, int, Count>> {};

TEST_P(ConfigurationSweep, FactoriesConserveMass) {
  const auto [n, k, u] = GetParam();
  for (const auto& x :
       {Configuration::uniform(n, k, u),
        Configuration::with_additive_bias(n, k, u, (n - u) / 10),
        Configuration::with_multiplicative_bias(n, k, u, 2.0),
        Configuration::geometric(n, k, u, 0.7)}) {
    Count total = x.undecided();
    for (int i = 0; i < x.k(); ++i) total += x.opinion(i);
    ASSERT_EQ(total, n);
    ASSERT_EQ(x.k(), k);
    ASSERT_EQ(x.argmax(), 0);  // all factories put the plurality first
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConfigurationSweep,
    ::testing::Values(std::tuple<Count, int, Count>{100, 2, 0},
                      std::tuple<Count, int, Count>{100, 2, 30},
                      std::tuple<Count, int, Count>{1000, 5, 0},
                      std::tuple<Count, int, Count>{1000, 10, 250},
                      std::tuple<Count, int, Count>{99991, 31, 1000},
                      std::tuple<Count, int, Count>{1000000, 64, 0}));

}  // namespace
}  // namespace kusd
