// Concurrency stress suite: deliberately contended schedules for the
// shared-state paths the determinism contract leans on — ThreadPool
// (exception capture under contention, wait_idle racing enqueue, reuse
// after failure), the work-stealing TaskGraph (steal-heavy mixed stripe
// counts, exactly-once completion callbacks, first-exception-wins),
// striped run_trials, and parallel runner::Sweep cells. The assertions
// matter, but the real reviewer is ThreadSanitizer: the `tsan` preset
// runs this suite to give TSan genuine interleavings to inspect (see
// docs/verification.md). Keep new cross-thread machinery covered here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runner/sweep.hpp"
#include "runner/task_graph.hpp"
#include "runner/trials.hpp"
#include "util/thread_pool.hpp"

namespace kusd {
namespace {

TEST(ThreadPoolStress, ManySubmittersManyTasks) {
  util::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 400;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sum, s] {
      for (int t = 0; t < kTasksPerSubmitter; ++t) {
        pool.submit([&sum, s, t] {
          sum.fetch_add(static_cast<std::uint64_t>(s * kTasksPerSubmitter + t),
                        std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  pool.wait_idle();
  constexpr std::uint64_t kTotal = kSubmitters * kTasksPerSubmitter;
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

TEST(ThreadPoolStress, WaitIdleRacesEnqueue) {
  // wait_idle() from one thread while another is mid-burst: every round
  // must observe at least its own completed burst, and the final count
  // must be exact. The interesting part is what TSan sees, not the sum.
  util::ThreadPool pool(2);
  std::atomic<int> done{0};
  constexpr int kBursts = 50;
  constexpr int kPerBurst = 20;
  std::thread submitter([&pool, &done] {
    for (int b = 0; b < kBursts; ++b) {
      for (int t = 0; t < kPerBurst; ++t) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    }
  });
  for (int i = 0; i < 20; ++i) pool.wait_idle();
  submitter.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), kBursts * kPerBurst);
}

TEST(ThreadPoolStress, FirstExceptionWinsUnderContention) {
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  constexpr int kThrowers = 16;
  constexpr int kWorkers = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(2);
  submitters.emplace_back([&pool] {
    for (int t = 0; t < kThrowers; ++t) {
      pool.submit([t] {
        throw std::runtime_error("boom " + std::to_string(t));
      });
    }
  });
  submitters.emplace_back([&pool, &ran] {
    for (int t = 0; t < kWorkers; ++t) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  for (auto& thread : submitters) thread.join();
  // Exactly one exception surfaces (the first captured); the rest are
  // dropped and every non-throwing task still ran.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // No stale exception left behind.
  EXPECT_EQ(ran.load(), kWorkers);

  // The pool is reusable after a failure.
  std::atomic<int> after{0};
  for (int t = 0; t < 50; ++t) {
    pool.submit([&after] { after.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolStress, DestructorDrainsPendingQueue) {
  std::atomic<int> done{0};
  constexpr int kTasks = 300;
  {
    util::ThreadPool pool(3);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor must drain the queue before joining.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStress, PendingExceptionDiscardedAtDestruction) {
  std::atomic<int> done{0};
  {
    util::ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never observed"); });
    for (int t = 0; t < 100; ++t) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(TrialStress, StripedTrialsWriteDisjointSlots) {
  // Striped workers write result slots concurrently — disjoint by index,
  // which TSan confirms is genuinely race-free. Values pin the seed
  // derivation: trial i sees stream_seed(master, i) wherever it ran.
  util::ThreadPool pool(8);
  constexpr int kTrials = 5000;
  constexpr std::uint64_t kMaster = 99;
  const auto results = runner::run_trials<std::uint64_t>(
      pool, kTrials, kMaster, [](std::uint64_t seed) { return seed ^ 0x5aa5; });
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kTrials));
  for (int i = 0; i < kTrials; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)],
              rng::stream_seed(kMaster, static_cast<std::uint64_t>(i)) ^
                  0x5aa5);
  }
}

TEST(TrialStress, TrialExceptionPropagatesPoolSurvives) {
  util::ThreadPool pool(4);
  const auto bomb = [](std::uint64_t seed) -> int {
    if (seed == rng::stream_seed(7, 13)) throw std::runtime_error("trial 13");
    return 1;
  };
  EXPECT_THROW(runner::run_trials<int>(pool, 64, 7, bomb), std::runtime_error);
  // The pool outlives the failed batch and runs the next one cleanly.
  const auto ok =
      runner::run_trials<int>(pool, 32, 8, [](std::uint64_t) { return 2; });
  EXPECT_EQ(ok.size(), 32u);
}

TEST(TaskGraphStress, StealHeavyMixedStripeCounts) {
  // A steal-heavy schedule: items alternate between 1 stripe and 64
  // stripes, so workers that drain a skinny item immediately steal into
  // a fat one. Every stripe must run exactly once and every item's
  // completion callback must fire exactly once, after all its stripes.
  util::ThreadPool pool(8);
  constexpr std::size_t kItems = 40;
  std::vector<std::uint32_t> stripes(kItems);
  std::size_t total_units = 0;
  for (std::size_t i = 0; i < kItems; ++i) {
    stripes[i] = (i % 2 == 0) ? 1u : 64u;
    total_units += stripes[i];
  }
  const runner::TaskGraph graph(std::move(stripes));
  ASSERT_EQ(graph.num_units(), total_units);
  std::vector<std::atomic<std::uint32_t>> stripe_runs(kItems);
  std::vector<std::atomic<std::uint32_t>> done_calls(kItems);
  graph.run(
      pool,
      [&stripe_runs](const runner::TaskUnit& unit) {
        stripe_runs[unit.item].fetch_add(1, std::memory_order_relaxed);
      },
      [&](std::size_t item) {
        // All of the item's stripes must be visible to the finisher.
        EXPECT_EQ(stripe_runs[item].load(std::memory_order_relaxed),
                  graph.stripes_of(item));
        done_calls[item].fetch_add(1, std::memory_order_relaxed);
      });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(stripe_runs[i].load(), graph.stripes_of(i)) << "item " << i;
    EXPECT_EQ(done_calls[i].load(), 1u) << "item " << i;
  }
}

TEST(TaskGraphStress, FirstExceptionWinsAndPoisonsBatch) {
  // One stripe throws; the batch stops claiming new units, exactly one
  // exception surfaces, and the pool survives for the next batch.
  util::ThreadPool pool(4);
  const runner::TaskGraph graph(std::vector<std::uint32_t>(64, 8u));
  std::atomic<std::uint32_t> ran{0};
  EXPECT_THROW(
      graph.run(
          pool,
          [&ran](const runner::TaskUnit& unit) {
            if (unit.item == 5 && unit.stripe == 3) {
              throw std::runtime_error("stripe bomb");
            }
            ran.fetch_add(1, std::memory_order_relaxed);
          },
          [](std::size_t) {}),
      std::runtime_error);
  // Poisoning is best-effort — in-flight stripes finish — but the batch
  // must not have run everything as if nothing happened... unless the
  // scheduler genuinely raced everything through first, which the cap
  // below tolerates.
  EXPECT_LE(ran.load(), graph.num_units() - 1);

  std::atomic<std::uint32_t> after{0};
  const runner::TaskGraph clean(std::vector<std::uint32_t>(16, 2u));
  clean.run(
      pool,
      [&after](const runner::TaskUnit&) {
        after.fetch_add(1, std::memory_order_relaxed);
      },
      [](std::size_t) {});
  EXPECT_EQ(after.load(), clean.num_units());
}

TEST(TaskGraphStress, ShuffledOrderStillCompletesEverything) {
  // A custom execution order (here: reversed) only changes scheduling;
  // coverage and completion semantics are unchanged.
  util::ThreadPool pool(4);
  constexpr std::size_t kItems = 25;
  std::vector<std::uint32_t> stripes(kItems, 3u);
  std::vector<std::size_t> order(kItems);
  for (std::size_t i = 0; i < kItems; ++i) order[i] = kItems - 1 - i;
  const runner::TaskGraph graph(std::move(stripes), std::move(order));
  std::vector<std::atomic<std::uint32_t>> runs(kItems);
  std::atomic<std::uint32_t> done{0};
  graph.run(
      pool,
      [&runs](const runner::TaskUnit& unit) {
        runs[unit.item].fetch_add(1, std::memory_order_relaxed);
      },
      [&done](std::size_t) { done.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(done.load(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(runs[i].load(), 3u);
}

// One small but genuinely parallel sweep per schedule, byte-compared.
// This is the contract the whole tooling layer defends: CSV output is a
// pure function of (spec, master_seed), independent of thread count,
// stripe width, and execution order — and TSan watches the cell
// buffering that makes it so.
std::vector<std::string> sweep_rows(std::size_t stripe_width, bool shuffle,
                                    std::size_t threads) {
  runner::SweepSpec spec;
  spec.engines = {"skip", "batched"};
  spec.ns = {300, 500};
  spec.ks = {2, 3};
  spec.trials = 6;
  spec.master_seed = 42;
  spec.threads = threads;
  spec.stripe_width = stripe_width;
  spec.shuffle_points = shuffle;
  runner::Sweep sweep(spec);
  std::vector<std::string> rows;
  sweep.run([&rows](const runner::SweepCell& cell) {
    std::string row;
    for (const auto& field : runner::Sweep::csv_row(cell)) {
      row += field;
      row += ',';
    }
    rows.push_back(std::move(row));
  });
  return rows;
}

TEST(SweepStress, CellsByteIdenticalAcrossSchedules) {
  const auto sequential = sweep_rows(1, false, 1);
  const auto striped = sweep_rows(2, false, 4);
  const auto wide_stripes = sweep_rows(64, false, 4);
  const auto shuffled = sweep_rows(3, true, 4);
  EXPECT_EQ(sequential, striped);
  EXPECT_EQ(sequential, wide_stripes);
  EXPECT_EQ(sequential, shuffled);
}

TEST(SweepStress, ManySmallPointsKeepCallbackSerial) {
  // A wide grid of tiny points maximizes contention on the buffered-emit
  // path. The callback must never run concurrently with itself; the
  // re-entrancy counter would trip (and TSan would flag the data race on
  // `inside`) if it ever did.
  runner::SweepSpec spec;
  spec.engines = {"skip"};
  spec.ns = {100, 150, 200, 250, 300, 350};
  spec.ks = {2, 3, 4};
  spec.trials = 3;
  spec.master_seed = 9;
  spec.threads = 8;
  spec.stripe_width = 1;
  spec.shuffle_points = true;
  runner::Sweep sweep(spec);
  int inside = 0;
  std::size_t cells = 0;
  sweep.run([&inside, &cells](const runner::SweepCell&) {
    ASSERT_EQ(++inside, 1);
    ++cells;
    --inside;
  });
  EXPECT_EQ(cells, sweep.grid().size());
}

}  // namespace
}  // namespace kusd
