// The USD transition function: exhaustive truth table against the paper's
// definition (Section 2).
#include <gtest/gtest.h>

#include "core/usd.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

class UsdProtocolSweep : public ::testing::TestWithParam<int> {};

TEST_P(UsdProtocolSweep, MatchesPaperDefinition) {
  const int k = GetParam();
  core::UsdProtocol usd(k);
  const int bot = usd.undecided_state();
  EXPECT_EQ(usd.num_states(), k + 1);
  for (int r = 0; r <= k; ++r) {
    for (int i = 0; i <= k; ++i) {
      const auto next = usd.apply(r, i);
      // The initiator never changes (only the responder q updates).
      EXPECT_EQ(next.initiator, i);
      if (r != bot && i != bot && r != i) {
        // (q, q') -> (bot, q') for distinct opinions.
        EXPECT_EQ(next.responder, bot);
      } else if (r == bot && i != bot) {
        // (bot, q') -> (q', q').
        EXPECT_EQ(next.responder, i);
      } else {
        // Same opinion, undecided initiator, or both undecided: no change.
        EXPECT_EQ(next.responder, r);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Opinions, UsdProtocolSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 100));

TEST(UsdProtocol, OnlyResponderEverChanges) {
  core::UsdProtocol usd(4);
  for (int r = 0; r <= 4; ++r) {
    for (int i = 0; i <= 4; ++i) {
      EXPECT_EQ(usd.apply(r, i).initiator, i);
    }
  }
}

TEST(UsdProtocol, SelfPairIsUnproductive) {
  // delta(q, q) never changes anything, so the count-based scheduler's
  // inability to distinguish a literal self-interaction is harmless.
  core::UsdProtocol usd(6);
  for (int q = 0; q <= 6; ++q) {
    const auto next = usd.apply(q, q);
    EXPECT_EQ(next.responder, q);
    EXPECT_EQ(next.initiator, q);
  }
}

TEST(UsdProtocol, RejectsNonPositiveK) {
  EXPECT_THROW(core::UsdProtocol(0), util::CheckError);
}

}  // namespace
}  // namespace kusd
