// Phase tracker: the five end conditions, ordering, and collapse behavior.
#include <gtest/gtest.h>

#include <vector>

#include "core/phase_tracker.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using core::PhaseTracker;
using pp::Count;

TEST(PhaseTracker, RecordsPhasesInOrder) {
  // n = 10000, alpha = 1: significance threshold ~ 303.5.
  PhaseTracker tracker(10000, 1.0);
  // t=0: low undecided count, no phase ends.
  tracker.observe(0, std::vector<Count>{3400, 3300, 3300}, 0);
  EXPECT_FALSE(tracker.times().t1.has_value());
  // t=100: u = 4000 >= (10000-2000)/2: T1.
  tracker.observe(100, std::vector<Count>{2000, 2000, 2000}, 4000);
  EXPECT_EQ(tracker.times().t1, 100u);
  EXPECT_FALSE(tracker.times().t2.has_value());
  // t=200: unique significant opinion (gap 400 > threshold): T2.
  tracker.observe(200, std::vector<Count>{2400, 2000, 1600}, 4000);
  EXPECT_EQ(tracker.times().t2, 200u);
  // t=300: xmax >= 2 * second: T3.
  tracker.observe(300, std::vector<Count>{4000, 1900, 100}, 4000);
  EXPECT_EQ(tracker.times().t3, 300u);
  // t=400: xmax >= 2n/3: T4.
  tracker.observe(400, std::vector<Count>{6700, 300, 0}, 3000);
  EXPECT_EQ(tracker.times().t4, 400u);
  // t=500: consensus: T5.
  tracker.observe(500, std::vector<Count>{10000, 0, 0}, 0);
  EXPECT_EQ(tracker.times().t5, 500u);
  EXPECT_TRUE(tracker.complete());
}

TEST(PhaseTracker, PhasesCollapseOnStronglyBiasedSnapshot) {
  PhaseTracker tracker(10000, 1.0);
  // A single snapshot satisfying every condition at once.
  tracker.observe(7, std::vector<Count>{10000, 0, 0}, 0);
  EXPECT_EQ(tracker.times().t1, 7u);
  EXPECT_EQ(tracker.times().t2, 7u);
  EXPECT_EQ(tracker.times().t3, 7u);
  EXPECT_EQ(tracker.times().t4, 7u);
  EXPECT_EQ(tracker.times().t5, 7u);
}

TEST(PhaseTracker, LaterPhaseWaitsForEarlierOnes) {
  PhaseTracker tracker(10000, 1.0);
  // Snapshot satisfies the T3 predicate (ratio >= 2) but not T1/T2:
  // u = 0 and gap below the significance threshold is impossible here, so
  // craft: big ratio but u too small for T1.
  tracker.observe(0, std::vector<Count>{9000, 1000, 0}, 0);
  // T1: 2u=0 >= n - xmax = 1000? No.
  EXPECT_FALSE(tracker.times().t1.has_value());
  EXPECT_FALSE(tracker.times().t3.has_value());
  // Next snapshot: now T1 (and the rest) can fire.
  tracker.observe(10, std::vector<Count>{8000, 500, 0}, 1500);
  EXPECT_EQ(tracker.times().t1, 10u);
  EXPECT_EQ(tracker.times().t2, 10u);
  EXPECT_EQ(tracker.times().t3, 10u);
  EXPECT_EQ(tracker.times().t4, 10u);
  EXPECT_FALSE(tracker.times().t5.has_value());
}

TEST(PhaseTracker, PhaseLengths) {
  PhaseTracker tracker(10000, 1.0);
  tracker.observe(50, std::vector<Count>{2000, 2000, 2000}, 4000);
  tracker.observe(250, std::vector<Count>{2500, 2000, 1500}, 4000);
  const auto& times = tracker.times();
  EXPECT_EQ(times.phase_length(1), 50u);
  EXPECT_EQ(times.phase_length(2), 200u);
  EXPECT_FALSE(times.phase_length(3).has_value());
  EXPECT_THROW(static_cast<void>(times.phase_length(0)), util::CheckError);
  EXPECT_THROW(static_cast<void>(times.phase_length(6)), util::CheckError);
}

TEST(PhaseTracker, RejectsBadSnapshot) {
  PhaseTracker tracker(100, 1.0);
  EXPECT_THROW(tracker.observe(0, std::vector<Count>{10, 10}, 10),
               util::CheckError);
}

TEST(PhaseTracker, IgnoresSnapshotsAfterCompletion) {
  PhaseTracker tracker(100, 1.0);
  tracker.observe(5, std::vector<Count>{100, 0}, 0);
  ASSERT_TRUE(tracker.complete());
  // Sum check would fail, but completed trackers ignore input.
  tracker.observe(6, std::vector<Count>{1, 0}, 0);
  EXPECT_EQ(tracker.times().t5, 5u);
}

}  // namespace
}  // namespace kusd
