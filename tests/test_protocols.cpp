// The classic protocol zoo: exact majority, leader election, epidemic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "pp/scheduler.hpp"
#include "protocols/classic.hpp"
#include "rng/rng.hpp"

namespace kusd {
namespace {

using protocols::EpidemicProtocol;
using protocols::ExactMajorityProtocol;
using protocols::LeaderElectionProtocol;

TEST(ExactMajority, TransitionRules) {
  ExactMajorityProtocol p;
  // Strong opposites annihilate both sides.
  auto t = p.apply(ExactMajorityProtocol::kStrongA,
                   ExactMajorityProtocol::kStrongB);
  EXPECT_EQ(t.responder, ExactMajorityProtocol::kWeakA);
  EXPECT_EQ(t.initiator, ExactMajorityProtocol::kWeakB);
  // Strong initiator converts weak responder.
  t = p.apply(ExactMajorityProtocol::kWeakB,
              ExactMajorityProtocol::kStrongA);
  EXPECT_EQ(t.responder, ExactMajorityProtocol::kWeakA);
  // Same-side pairs are unproductive.
  t = p.apply(ExactMajorityProtocol::kStrongA,
              ExactMajorityProtocol::kStrongA);
  EXPECT_EQ(t.responder, ExactMajorityProtocol::kStrongA);
  t = p.apply(ExactMajorityProtocol::kWeakA,
              ExactMajorityProtocol::kWeakB);
  EXPECT_EQ(t.responder, ExactMajorityProtocol::kWeakA);
}

// The headline property: exact majority is ALWAYS correct, even with an
// initial margin of one agent — the contrast with the USD's
// Omega(sqrt(n log n)) requirement.
class ExactMajoritySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactMajoritySweep, MarginOfOneAlwaysWins) {
  const std::uint64_t n = GetParam();
  ExactMajorityProtocol protocol;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    // (n/2 + 1) strong A vs (n/2 - 1)... keep margin exactly 1 when odd.
    const std::uint64_t a = n / 2 + 1;
    const std::uint64_t b = n - a;
    ASSERT_GT(a, b);
    const std::vector<std::uint64_t> init{a, b, 0, 0};
    pp::CountScheduler sched(protocol, init, rng::Rng(seed));
    const auto done = [](std::span<const std::uint64_t> c) {
      // Converged when no strong B remains and everyone believes A
      // (states kStrongA or kWeakA), or symmetrically for B.
      const bool all_a = c[1] == 0 && c[3] == 0;
      const bool all_b = c[0] == 0 && c[2] == 0;
      return all_a || all_b;
    };
    sched.run_until(done, 50'000'000);
    // A must win: every agent believes A.
    EXPECT_EQ(sched.counts()[1], 0u) << "n=" << n << " seed=" << seed;
    EXPECT_EQ(sched.counts()[3], 0u) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExactMajoritySweep,
                         ::testing::Values(11, 51, 101, 501));

TEST(ExactMajority, BelievesHelper) {
  EXPECT_TRUE(ExactMajorityProtocol::believes_a(
      ExactMajorityProtocol::kStrongA));
  EXPECT_TRUE(ExactMajorityProtocol::believes_a(
      ExactMajorityProtocol::kWeakA));
  EXPECT_FALSE(ExactMajorityProtocol::believes_a(
      ExactMajorityProtocol::kStrongB));
  EXPECT_FALSE(ExactMajorityProtocol::believes_a(
      ExactMajorityProtocol::kWeakB));
}

TEST(LeaderElection, ExactlyOneLeaderSurvives) {
  LeaderElectionProtocol protocol;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const std::vector<std::uint64_t> init{200, 0};  // all leaders
    pp::CountScheduler sched(protocol, init, rng::Rng(seed));
    sched.run_until(
        [](std::span<const std::uint64_t> c) { return c[0] == 1; },
        10'000'000);
    EXPECT_EQ(sched.counts()[0], 1u);
    EXPECT_EQ(sched.counts()[1], 199u);
  }
}

TEST(LeaderElection, LeaderCountIsMonotoneNonIncreasing) {
  LeaderElectionProtocol protocol;
  const std::vector<std::uint64_t> init{50, 50};
  pp::CountScheduler sched(protocol, init, rng::Rng(3));
  std::uint64_t prev = 50;
  for (int i = 0; i < 20000; ++i) {
    sched.step();
    ASSERT_LE(sched.counts()[0], prev);
    prev = sched.counts()[0];
  }
}

TEST(Epidemic, InfectsEveryoneInNLogNish) {
  EpidemicProtocol protocol;
  const std::uint64_t n = 10000;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const std::vector<std::uint64_t> init{n - 1, 1};
    pp::CountScheduler sched(protocol, init, rng::Rng(seed));
    sched.run_until(
        [n](std::span<const std::uint64_t> c) { return c[1] == n; },
        100'000'000);
    EXPECT_EQ(sched.counts()[1], n);
    // Theta(n log n) with a small constant; allow a wide band.
    const double nlogn = static_cast<double>(n) *
                         std::log(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(sched.steps()), 10.0 * nlogn);
    EXPECT_GT(static_cast<double>(sched.steps()), 0.3 * nlogn);
  }
}

TEST(Epidemic, NoSpontaneousInfection) {
  EpidemicProtocol protocol;
  const std::vector<std::uint64_t> init{100, 0};
  pp::CountScheduler sched(protocol, init, rng::Rng(1));
  for (int i = 0; i < 10000; ++i) sched.step();
  EXPECT_EQ(sched.counts()[1], 0u);
}

}  // namespace
}  // namespace kusd
