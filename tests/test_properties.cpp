// Broad randomized property sweep: algebraic identities among the
// analysis quantities, configuration invariants, and cross-module
// consistency, evaluated on many random configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/transition_probs.hpp"
#include "core/bias.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"

namespace kusd {
namespace {

using pp::Configuration;
using pp::Count;

/// Random configuration with n agents, k opinions, random undecided share.
Configuration random_config(rng::Rng& rng, Count n, int k) {
  // Random composition of n into k+1 parts via k+1 exponential-ish weights.
  std::vector<double> w(static_cast<std::size_t>(k) + 1);
  for (auto& x : w) x = -std::log(1.0 - rng.uniform01());
  double total = 0.0;
  for (double x : w) total += x;
  std::vector<Count> counts(static_cast<std::size_t>(k), 0);
  Count assigned = 0;
  for (int i = 0; i < k; ++i) {
    counts[static_cast<std::size_t>(i)] = static_cast<Count>(
        static_cast<double>(n) * w[static_cast<std::size_t>(i)] / total);
    assigned += counts[static_cast<std::size_t>(i)];
  }
  Count undecided = n - assigned;
  // Keep at least one decided agent.
  if (undecided == n) {
    counts[0] = 1;
    undecided = n - 1;
  }
  return Configuration(std::move(counts), undecided);
}

struct SweepParam {
  Count n = 0;
  int k = 0;
};

class RandomConfigSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomConfigSweep, AnalysisIdentitiesHold) {
  const auto [n, k] = GetParam();
  rng::Rng rng(0xABCD + n + static_cast<Count>(k));
  for (int round = 0; round < 200; ++round) {
    const auto x = random_config(rng, n, k);
    const double dn = static_cast<double>(n);

    // Observation 6 identities.
    const double pm = analysis::p_minus(x);
    const double pp_ = analysis::p_plus(x);
    ASSERT_GE(pm, 0.0);
    ASSERT_GE(pp_, 0.0);
    ASSERT_LE(pm + pp_, 1.0 + 1e-12);
    // p- + p+ equals the per-opinion sums (Observation 8).
    double sum_i_plus = 0.0, sum_i_minus = 0.0;
    for (int i = 0; i < k; ++i) {
      const double plus = analysis::p_i_plus(x, i);
      const double minus = analysis::p_i_minus(x, i);
      ASSERT_GE(plus, 0.0);
      ASSERT_GE(minus, 0.0);
      sum_i_plus += plus;
      sum_i_minus += minus;
    }
    // Sum over opinions of "x_i grows" is exactly "u shrinks", and
    // "x_i shrinks" is "u grows".
    ASSERT_NEAR(sum_i_plus, pm, 1e-12);
    ASSERT_NEAR(sum_i_minus, pp_, 1e-12);

    // Observation 9 antisymmetry: p_ij_plus(i,j) == p_ij_minus(j,i).
    if (k >= 2) {
      ASSERT_NEAR(analysis::p_ij_plus(x, 0, 1),
                  analysis::p_ij_minus(x, 1, 0), 1e-15);
    }

    // Potential identities: Z_alpha interpolates Z.
    ASSERT_NEAR(analysis::potential_z_alpha(x, 1.0),
                analysis::potential_z(x), 1e-9);
    ASSERT_LE(analysis::potential_z(x), dn);

    // sum_squares bounds: (n-u)^2/k <= r2 <= (n-u)^2 (Appendix B).
    const double decided = static_cast<double>(x.decided());
    ASSERT_LE(x.sum_squares(), decided * decided + 1e-9);
    ASSERT_GE(x.sum_squares(),
              decided * decided / static_cast<double>(k) - 1e-9);

    // Bias measures: md(x) in [1, k]; multiplicative >= 1; additive >= 0.
    if (x.xmax() > 0) {
      const double md = core::monochromatic_distance(x);
      ASSERT_GE(md, 1.0 - 1e-12);
      ASSERT_LE(md, static_cast<double>(k) + 1e-12);
      ASSERT_GE(core::multiplicative_bias(x), 1.0);
    }
    // The plurality is always significant; significant count >= 1.
    ASSERT_TRUE(core::is_significant(x, x.argmax(), 1.0));
    ASSERT_GE(core::significant_count(x, 1.0), 1);
    // Significant implies important (threshold is 4x larger).
    for (int i = 0; i < k; ++i) {
      if (core::is_significant(x, i, 1.0)) {
        ASSERT_TRUE(core::is_important(x, i, 1.0));
      }
    }
  }
}

TEST_P(RandomConfigSweep, UStarDriftDirection) {
  // Above u* the conditional probability of u increasing is < 1/2 for
  // uniform-support configurations (Observation 7 direction); below u* on
  // uniform supports it is > 1/2. This is the "unstable equilibrium".
  const auto [n, k] = GetParam();
  if (k < 2) return;
  const double ustar = analysis::u_star(n, k);
  const auto above = Configuration::uniform(
      n, k, static_cast<Count>(std::min(static_cast<double>(n - k),
                                        ustar + 0.05 * static_cast<double>(n))));
  EXPECT_LT(analysis::p_tilde_plus(above), 0.5);
  const auto below = Configuration::uniform(
      n, k,
      static_cast<Count>(std::max(0.0, ustar - 0.05 * static_cast<double>(n))));
  EXPECT_GT(analysis::p_tilde_plus(below), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomConfigSweep,
    ::testing::Values(SweepParam{100, 2}, SweepParam{100, 5},
                      SweepParam{1000, 3}, SweepParam{1000, 16},
                      SweepParam{100000, 8}, SweepParam{100000, 64},
                      SweepParam{1000000, 32}));

}  // namespace
}  // namespace kusd
