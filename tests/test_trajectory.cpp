// Trajectory recorder: downsampling, bounded memory, CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "pp/trajectory.hpp"
#include "runner/csv.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

TEST(Trajectory, RecordsSnapshotsInOrder) {
  pp::Trajectory traj(64);
  const std::vector<pp::Count> opinions{5, 3, 2};
  traj.record(0, opinions, 0);
  traj.record(10, opinions, 0);
  traj.record(20, opinions, 0);
  ASSERT_EQ(traj.size(), 3u);
  EXPECT_EQ(traj.points()[0].t, 0u);
  EXPECT_EQ(traj.points()[2].t, 20u);
  EXPECT_EQ(traj.points()[0].xmax, 5u);
  EXPECT_EQ(traj.points()[0].second, 3u);
  EXPECT_DOUBLE_EQ(traj.points()[0].sum_squares, 25 + 9 + 4);
}

TEST(Trajectory, MemoryStaysBounded) {
  pp::Trajectory traj(16);
  const std::vector<pp::Count> opinions{1};
  for (std::uint64_t t = 0; t < 100000; ++t) {
    traj.record(t, opinions, 0);
  }
  EXPECT_LE(traj.size(), 16u);
  EXPECT_GE(traj.size(), 4u);
  // Still covers the whole time range roughly uniformly.
  EXPECT_EQ(traj.points().front().t, 0u);
  EXPECT_GT(traj.points().back().t, 50000u);
}

TEST(Trajectory, StrideSkipsDenseUpdates) {
  pp::Trajectory traj(8);
  const std::vector<pp::Count> opinions{1};
  for (std::uint64_t t = 0; t < 64; ++t) traj.record(t, opinions, 0);
  // After thinning, points must be strictly increasing in t.
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GT(traj.points()[i].t, traj.points()[i - 1].t);
  }
}

TEST(Trajectory, RejectsTinyCapacity) {
  EXPECT_THROW(pp::Trajectory(2), util::CheckError);
}

TEST(Trajectory, CsvRoundTrip) {
  pp::Trajectory traj(32);
  traj.record(0, std::vector<pp::Count>{7, 2}, 1);
  traj.record(5, std::vector<pp::Count>{8, 1}, 1);
  const std::string path = "/tmp/kusd_trajectory_test.csv";
  runner::write_trajectory_csv(traj, path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  EXPECT_NE(content.find("t,undecided,xmax,second,sum_squares"),
            std::string::npos);
  EXPECT_NE(content.find("0,1,7,2"), std::string::npos);
  EXPECT_NE(content.find("5,1,8,1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trajectory, IntegratesWithSimulatorObserver) {
  const auto x0 = pp::Configuration::uniform(2000, 3, 0);
  core::UsdSimulator sim(x0, rng::Rng(5));
  pp::Trajectory traj(256);
  sim.run_observed(10'000'000, 200,
                   [&traj](std::uint64_t t,
                           std::span<const pp::Count> opinions,
                           pp::Count u) { traj.record(t, opinions, u); });
  ASSERT_TRUE(sim.is_consensus());
  ASSERT_GE(traj.size(), 2u);
  // The last snapshot is consensus: xmax = n, undecided = 0.
  EXPECT_EQ(traj.points().back().xmax, 2000u);
  EXPECT_EQ(traj.points().back().undecided, 0u);
}

}  // namespace
}  // namespace kusd
