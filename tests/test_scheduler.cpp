// Generic scheduler tests: conservation, equivalence of count- and
// agent-based engines, and the untabulated (virtual dispatch) path.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/usd.hpp"
#include "pp/scheduler.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

std::uint64_t total(std::span<const std::uint64_t> counts) {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

TEST(CountScheduler, ConservesPopulation) {
  core::UsdProtocol usd(3);
  const std::vector<std::uint64_t> init{40, 30, 20, 10};
  pp::CountScheduler sched(usd, init, rng::Rng(1));
  for (int i = 0; i < 5000; ++i) {
    sched.step();
    ASSERT_EQ(total(sched.counts()), 100u);
  }
  EXPECT_EQ(sched.steps(), 5000u);
}

TEST(AgentScheduler, ConservesPopulationAndCountsMatchAgents) {
  core::UsdProtocol usd(3);
  const std::vector<std::uint64_t> init{40, 30, 20, 10};
  pp::AgentScheduler sched(usd, init, rng::Rng(2));
  for (int i = 0; i < 5000; ++i) sched.step();
  ASSERT_EQ(total(sched.counts()), 100u);
  // Recount agents and compare with the incremental counts.
  std::vector<std::uint64_t> recount(4, 0);
  for (int s : sched.agents()) ++recount[static_cast<std::size_t>(s)];
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(recount[s], sched.counts()[s]);
  }
}

TEST(CountScheduler, RunUntilStopsAtPredicate) {
  core::UsdProtocol usd(2);
  const std::vector<std::uint64_t> init{90, 10, 0};
  pp::CountScheduler sched(usd, init, rng::Rng(3));
  const auto executed = sched.run_until(
      [](std::span<const std::uint64_t> counts) { return counts[0] == 100; },
      10'000'000);
  EXPECT_EQ(sched.counts()[0], 100u);
  EXPECT_EQ(executed, sched.steps());
}

TEST(CountScheduler, RunUntilHonorsCap) {
  core::UsdProtocol usd(2);
  const std::vector<std::uint64_t> init{50, 50, 0};
  pp::CountScheduler sched(usd, init, rng::Rng(4));
  const auto executed = sched.run_until(
      [](std::span<const std::uint64_t>) { return false; }, 1000);
  EXPECT_EQ(executed, 1000u);
}

// A protocol with a state space too large to tabulate, exercising the
// virtual-dispatch path: a cyclic "rock-paper-scissors-like" rule over 800
// states where the responder moves one state toward the initiator.
class BigCyclicProtocol final : public pp::PairProtocol {
 public:
  int num_states() const override { return 800; }
  pp::PairTransition apply(int responder, int initiator) const override {
    if (responder < initiator) return {responder + 1, initiator};
    if (responder > initiator) return {responder - 1, initiator};
    return {responder, initiator};
  }
};

TEST(CountScheduler, UntabulatedProtocolRuns) {
  BigCyclicProtocol proto;
  std::vector<std::uint64_t> init(800, 0);
  init[0] = 50;
  init[799] = 50;
  pp::CountScheduler sched(proto, init, rng::Rng(5));
  for (int i = 0; i < 20000; ++i) sched.step();
  EXPECT_EQ(total(sched.counts()), 100u);
}

TEST(Schedulers, RejectMismatchedCounts) {
  core::UsdProtocol usd(3);
  const std::vector<std::uint64_t> wrong{1, 2, 3};  // needs 4 states
  EXPECT_THROW(pp::CountScheduler(usd, wrong, rng::Rng(6)),
               util::CheckError);
  EXPECT_THROW(pp::AgentScheduler(usd, wrong, rng::Rng(6)),
               util::CheckError);
}

// Distributional equivalence: count-based and agent-based executions of the
// USD have the same consensus-time law. Two-sample KS at alpha = 1e-3.
TEST(Schedulers, CountAndAgentEnginesAgreeInDistribution) {
  core::UsdProtocol usd(2);
  const std::vector<std::uint64_t> init{70, 30, 0};
  const int trials = 400;
  const std::uint64_t cap = 2'000'000;
  std::vector<double> count_times, agent_times;
  for (int t = 0; t < trials; ++t) {
    {
      pp::CountScheduler s(usd, init, rng::Rng(rng::stream_seed(100, t)));
      s.run_until(
          [](std::span<const std::uint64_t> c) {
            return c[0] == 100 || c[1] == 100;
          },
          cap);
      count_times.push_back(static_cast<double>(s.steps()));
    }
    {
      pp::AgentScheduler s(usd, init, rng::Rng(rng::stream_seed(200, t)));
      s.run_until(
          [](std::span<const std::uint64_t> c) {
            return c[0] == 100 || c[1] == 100;
          },
          cap);
      agent_times.push_back(static_cast<double>(s.steps()));
    }
  }
  EXPECT_LT(stats::ks_statistic(count_times, agent_times),
            stats::ks_threshold(count_times.size(), agent_times.size(),
                                0.001));
}

}  // namespace
}  // namespace kusd
