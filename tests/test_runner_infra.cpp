// Runner infrastructure: thread pool, trials, table, CSV, scale knob.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "runner/csv.hpp"
#include "runner/scale.hpp"
#include "runner/table.hpp"
#include "runner/trials.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace kusd {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  std::atomic<int> counter{0};
  {
    util::ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1000);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  util::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DrainsOnDestruction) {
  std::atomic<int> counter{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  }  // destructor joins
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RethrowsFirstTaskExceptionFromWaitIdle) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&completed, i] {
      if (i == 7) throw std::runtime_error("trial 7 exploded");
      ++completed;
    });
  }
  EXPECT_THROW(
      {
        try {
          pool.wait_idle();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "trial 7 exploded");
          throw;
        }
      },
      std::runtime_error);
  // The exception is consumed: the pool stays usable afterwards.
  pool.submit([&completed] { ++completed; });
  pool.wait_idle();
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPool, PendingExceptionDoesNotEscapeDestructor) {
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("unobserved"); });
  // Destructor drains and discards; reaching the next line is the test.
}

TEST(Trials, ResultsAreOrderedAndSeedsDistinct) {
  const auto results = runner::run_trials<std::uint64_t>(
      64, 99, [](std::uint64_t seed) { return seed; }, 8);
  ASSERT_EQ(results.size(), 64u);
  std::set<std::uint64_t> unique(results.begin(), results.end());
  EXPECT_EQ(unique.size(), 64u);
  // Deterministic: re-running gives identical seeds in identical order.
  const auto again = runner::run_trials<std::uint64_t>(
      64, 99, [](std::uint64_t seed) { return seed; }, 3);
  EXPECT_EQ(results, again);
}

TEST(Trials, SamplesWrapperCollects) {
  const auto samples = runner::run_trials_samples(
      50, 7, [](std::uint64_t) { return 2.5; }, 4);
  EXPECT_EQ(samples.count(), 50u);
  EXPECT_DOUBLE_EQ(samples.mean(), 2.5);
}

TEST(Trials, RejectsNegativeTrialCount) {
  EXPECT_THROW(runner::run_trials<int>(
                   -1, 1, [](std::uint64_t) { return 0; }, 2),
               util::CheckError);
}

TEST(Trials, ZeroTrialsReturnsEmpty) {
  EXPECT_TRUE(runner::run_trials<int>(
                  0, 1, [](std::uint64_t) { return 0; }, 2)
                  .empty());
}

TEST(Trials, ThrowingTrialPropagates) {
  EXPECT_THROW(runner::run_trials<int>(
                   32, 1,
                   [](std::uint64_t) -> int {
                     throw std::runtime_error("bad trial");
                   },
                   4),
               std::runtime_error);
}

TEST(Trials, BitIdenticalAcrossThreadCounts) {
  // Results must not depend on parallelism: seeds are a function of the
  // trial index alone and collection is by index.
  const auto fn = [](std::uint64_t seed) {
    rng::Rng rng(seed);
    double acc = 0.0;
    for (int i = 0; i < 100; ++i) acc += rng.uniform01();
    return acc;
  };
  const auto single = runner::run_trials<double>(128, 2024, fn, 1);
  const auto parallel = runner::run_trials<double>(128, 2024, fn, 8);
  EXPECT_EQ(single, parallel);  // bit-identical, not just approximately
}

TEST(Rng, StreamSeedCollisionSmokeOverMillionIds) {
  // One master seed, 1M trial ids: the Philox-derived 64-bit stream seeds
  // must be collision-free (the fold's birthday bound: ~2.7e-8 expected).
  constexpr std::uint64_t kIds = 1'000'000;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(kIds * 2);
  for (std::uint64_t id = 0; id < kIds; ++id) {
    seen.insert(rng::stream_seed(0xFEEDFACE, id));
  }
  EXPECT_EQ(seen.size(), kIds);
}

TEST(Table, RendersAlignedRows) {
  runner::Table t({"n", "time"});
  t.add_row({"100", "1.5"});
  t.add_row({"100000", "3.25"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| n "), std::string::npos);
  EXPECT_NE(out.find("100000"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  runner::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), util::CheckError);
}

TEST(TableFormat, Helpers) {
  EXPECT_EQ(runner::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(runner::fmt_int(1234567), "1,234,567");
  EXPECT_EQ(runner::fmt_int(12), "12");
  EXPECT_EQ(runner::fmt_compact(0.0), "0");
  EXPECT_NE(runner::fmt_compact(3.1e7).find("e"), std::string::npos);
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = "/tmp/kusd_test_csv.csv";
  {
    runner::CsvWriter w(path, {"a", "b"});
    w.write_row({"1", "plain"});
    w.write_row({"2", "with,comma"});
    w.write_row({"3", "with\"quote"});
    EXPECT_THROW(w.write_row({"too", "many", "cells"}), util::CheckError);
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, QuotesLineBreakCells) {
  const std::string path = "/tmp/kusd_test_csv_crlf.csv";
  {
    runner::CsvWriter w(path, {"cell"});
    w.write_row({"with\nnewline"});
    w.write_row({"with\rcarriage"});
    EXPECT_THROW(w.write_row({}), util::CheckError);  // width 0 != 1
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  EXPECT_NE(content.find("\"with\nnewline\""), std::string::npos);
  EXPECT_NE(content.find("\"with\rcarriage\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Scale, DefaultsToOneWithoutEnv) {
  unsetenv("REPRO_SCALE");
  EXPECT_DOUBLE_EQ(runner::repro_scale(), 1.0);
  EXPECT_EQ(runner::scaled(1000), 1000u);
  EXPECT_EQ(runner::scaled_trials(20), 20);
}

TEST(Scale, HonorsEnvAndClamps) {
  setenv("REPRO_SCALE", "2", 1);
  EXPECT_DOUBLE_EQ(runner::repro_scale(), 2.0);
  EXPECT_EQ(runner::scaled(1000), 2000u);
  setenv("REPRO_SCALE", "0.000001", 1);
  EXPECT_DOUBLE_EQ(runner::repro_scale(), 0.05);
  setenv("REPRO_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(runner::repro_scale(), 1.0);
  setenv("REPRO_SCALE", "0.25", 1);
  EXPECT_EQ(runner::scaled(100, 50), 50u);  // floor respected
  unsetenv("REPRO_SCALE");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  util::Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
  EXPECT_NEAR(sw.millis(), sw.seconds() * 1000.0, 50.0);
}

}  // namespace
}  // namespace kusd
