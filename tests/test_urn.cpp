// Urn: linear/Fenwick engine equivalence and sampling correctness.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"
#include "urn/urn.hpp"

namespace kusd {
namespace {

TEST(Urn, EngineSelection) {
  std::vector<std::uint64_t> small(8, 1);
  std::vector<std::uint64_t> large(urn::kLinearThreshold + 1, 1);
  EXPECT_FALSE(urn::Urn(small).uses_fenwick());
  EXPECT_TRUE(urn::Urn(large).uses_fenwick());
  EXPECT_TRUE(urn::Urn(small, urn::UrnEngine::kFenwick).uses_fenwick());
  EXPECT_FALSE(urn::Urn(large, urn::UrnEngine::kLinear).uses_fenwick());
}

TEST(Urn, FindIdenticalAcrossEngines) {
  const std::vector<std::uint64_t> counts{4, 0, 7, 1, 0, 9, 3};
  urn::Urn lin(counts, urn::UrnEngine::kLinear);
  urn::Urn fen(counts, urn::UrnEngine::kFenwick);
  for (std::uint64_t r = 0; r < lin.total(); ++r) {
    ASSERT_EQ(lin.find(r), fen.find(r)) << "position " << r;
  }
}

TEST(Urn, MovePreservesTotal) {
  const std::vector<std::uint64_t> counts{5, 5, 5};
  urn::Urn u(counts);
  u.move(0, 2);
  EXPECT_EQ(u.total(), 15u);
  EXPECT_EQ(u.count(0), 4u);
  EXPECT_EQ(u.count(2), 6u);
  u.move(1, 1);  // self-move is a no-op
  EXPECT_EQ(u.count(1), 5u);
}

TEST(Urn, CountsViewReflectsMutations) {
  const std::vector<std::uint64_t> counts{1, 2, 3};
  urn::Urn u(counts);
  u.add(0, 4);
  EXPECT_EQ(u.counts()[0], 5u);
  EXPECT_EQ(u.counts()[1], 2u);
}

class UrnEngineSweep : public ::testing::TestWithParam<urn::UrnEngine> {};

TEST_P(UrnEngineSweep, SampleFrequenciesMatchProportions) {
  const std::vector<std::uint64_t> counts{100, 300, 0, 600};
  urn::Urn u(counts, GetParam());
  rng::Rng r(71);
  std::vector<int> hits(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[u.sample(r)];
  EXPECT_NEAR(hits[0], n * 0.1, 400);
  EXPECT_NEAR(hits[1], n * 0.3, 600);
  EXPECT_EQ(hits[2], 0);
  EXPECT_NEAR(hits[3], n * 0.6, 700);
}

TEST_P(UrnEngineSweep, SamplingAfterUpdatesUsesNewWeights) {
  std::vector<std::uint64_t> counts{1, 0};
  urn::Urn u(counts, GetParam());
  u.add(1, 99);
  u.add(0, -1);
  rng::Rng r(73);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(u.sample(r), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, UrnEngineSweep,
                         ::testing::Values(urn::UrnEngine::kLinear,
                                           urn::UrnEngine::kFenwick));

}  // namespace
}  // namespace kusd
