// BatchedUsdSimulator: invariants, API parity with UsdSimulator, and the
// property that chunked Poissonization matches the exact asynchronous
// chain in distribution.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batched_usd.hpp"
#include "runner/run.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using core::BatchedOptions;
using core::BatchedUsdSimulator;
using core::StepMode;
using core::UsdOptions;
using core::UsdSimulator;
using pp::Configuration;

std::uint64_t population(const BatchedUsdSimulator& sim) {
  std::uint64_t total = sim.undecided();
  for (auto c : sim.opinions()) total += c;
  return total;
}

TEST(BatchedUsd, ConservesPopulationEveryChunk) {
  BatchedUsdSimulator sim(Configuration::uniform(10000, 4, 1000),
                          rng::Rng(1));
  for (int i = 0; i < 2000 && !sim.is_consensus(); ++i) {
    sim.step();
    ASSERT_EQ(population(sim), 10000u);
  }
}

TEST(BatchedUsd, InteractionsIncreaseMonotonically) {
  BatchedUsdSimulator sim(Configuration::uniform(5000, 3, 0), rng::Rng(2));
  std::uint64_t prev = 0;
  for (int i = 0; i < 500 && !sim.is_consensus(); ++i) {
    sim.step();
    ASSERT_GT(sim.interactions(), prev);
    prev = sim.interactions();
  }
}

TEST(BatchedUsd, ReachesConsensusAndDetectsIt) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    BatchedUsdSimulator sim(Configuration::uniform(2000, 2, 0),
                            rng::Rng(seed));
    ASSERT_TRUE(sim.run_to_consensus(~std::uint64_t{0}));
    const int w = sim.consensus_opinion();
    ASSERT_TRUE(w == 0 || w == 1);
    EXPECT_EQ(sim.opinion(w), 2000u);
    EXPECT_EQ(sim.undecided(), 0u);
  }
}

TEST(BatchedUsd, OverwhelmingBiasWins) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    BatchedUsdSimulator sim(Configuration({90000, 5000, 5000}, 0),
                            rng::Rng(seed));
    ASSERT_TRUE(sim.run_to_consensus(~std::uint64_t{0}));
    EXPECT_EQ(sim.consensus_opinion(), 0) << "seed " << seed;
  }
}

TEST(BatchedUsd, DeterministicForSameSeed) {
  const auto x0 = Configuration::uniform(5000, 5, 500);
  BatchedUsdSimulator a(x0, rng::Rng(7)), b(x0, rng::Rng(7));
  a.run_to_consensus(~std::uint64_t{0});
  b.run_to_consensus(~std::uint64_t{0});
  EXPECT_EQ(a.interactions(), b.interactions());
  EXPECT_EQ(a.chunks(), b.chunks());
  EXPECT_EQ(a.consensus_opinion(), b.consensus_opinion());
}

TEST(BatchedUsd, HonorsInteractionCap) {
  BatchedUsdSimulator sim(Configuration::uniform(100000, 8, 0), rng::Rng(8));
  EXPECT_FALSE(sim.run_to_consensus(1000));
  EXPECT_GE(sim.interactions(), 1000u);
}

TEST(BatchedUsd, DetectsPreexistingConsensus) {
  BatchedUsdSimulator sim(Configuration({500, 0}, 0), rng::Rng(9));
  EXPECT_TRUE(sim.is_consensus());
  EXPECT_TRUE(sim.run_to_consensus(10));
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(BatchedUsd, RejectsAllUndecidedAndBadChunk) {
  EXPECT_THROW(BatchedUsdSimulator(Configuration({0, 0}, 10), rng::Rng(10)),
               util::CheckError);
  EXPECT_THROW(BatchedUsdSimulator(Configuration::uniform(100, 2, 0),
                                   rng::Rng(11), BatchedOptions{.chunk_fraction = 0.0}),
               util::CheckError);
  EXPECT_THROW(BatchedUsdSimulator(Configuration::uniform(100, 2, 0),
                                   rng::Rng(11), BatchedOptions{.chunk_fraction = 1.5}),
               util::CheckError);
}

TEST(BatchedUsd, UsdSimulatorRejectsBatchedMode) {
  EXPECT_THROW(UsdSimulator(Configuration::uniform(100, 2, 0), rng::Rng(12),
                            UsdOptions{StepMode::kBatchedRounds}),
               util::CheckError);
}

TEST(BatchedUsd, SupportsPopulationsBeyond32Bits) {
  // UsdSimulator caps n below 2^32; the batched engine must not.
  const pp::Count n = (std::uint64_t{1} << 32) + 10;
  BatchedUsdSimulator sim(Configuration::two_opinion(n, n / 2, 0),
                          rng::Rng(13));
  sim.step();
  EXPECT_EQ(population(sim), n);
  EXPECT_THROW(UsdSimulator(Configuration::two_opinion(n, n / 2, 0),
                            rng::Rng(13)),
               util::CheckError);
}

TEST(BatchedUsd, TinyPopulationsTerminate) {
  // Regression: with whole-population chunks, a draw flipping every
  // decided agent used to commit the absorbing all-undecided state and
  // run_to_consensus would spin forever. Rejection + halving reduces to
  // the exact m = 1 case, which always converges.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    BatchedUsdSimulator sim(Configuration({1, 1}, 0), rng::Rng(seed),
                            BatchedOptions{.chunk_fraction = 1.0});
    ASSERT_TRUE(sim.run_to_consensus(~std::uint64_t{0}));
    EXPECT_EQ(sim.undecided(), 0u);
  }
}

TEST(BatchedUsd, RunObservedVisitsBoundariesInOrder) {
  BatchedUsdSimulator sim(Configuration::uniform(2000, 2, 0), rng::Rng(14));
  std::vector<std::uint64_t> times;
  sim.run_observed(500'000, 1000,
                   [&times](std::uint64_t t, std::span<const pp::Count>,
                            pp::Count) { times.push_back(t); });
  ASSERT_GE(times.size(), 2u);
  EXPECT_EQ(times.front(), 0u);
  for (std::size_t i = 1; i + 1 < times.size(); ++i) {
    ASSERT_GT(times[i], times[i - 1]);
  }
}

TEST(BatchedUsd, RunObservedFiresExactlyAtIntervalMultiples) {
  // Regression: the observer used to fire at the first chunk boundary
  // *past* each interval multiple (a chunk of 2% of n could overshoot the
  // boundary by the whole chunk). Chunks are now clamped so every multiple
  // is hit exactly, under both chunk policies.
  for (const auto policy :
       {core::ChunkPolicy::kFixed, core::ChunkPolicy::kAdaptive}) {
    BatchedOptions options;
    options.policy = policy;
    BatchedUsdSimulator sim(Configuration::uniform(20000, 3, 0),
                            rng::Rng(15), options);
    const std::uint64_t interval = 1500;
    std::vector<std::uint64_t> times;
    sim.run_observed(10'000'000, interval,
                     [&times](std::uint64_t t, std::span<const pp::Count>,
                              pp::Count) { times.push_back(t); });
    ASSERT_GE(times.size(), 4u);
    EXPECT_EQ(times.front(), 0u);
    // Every observation but the last is an exact multiple, consecutive
    // (no multiple skipped), and the final call reports the end state.
    for (std::size_t i = 1; i + 1 < times.size(); ++i) {
      EXPECT_EQ(times[i], i * interval) << "policy "
                                        << core::to_string(policy);
    }
    EXPECT_EQ(times.back(), sim.interactions());
  }
}

TEST(BatchedUsd, RunObservedNeverOvershootsTheCap) {
  BatchedUsdSimulator sim(Configuration::uniform(100000, 8, 0), rng::Rng(16));
  const std::uint64_t cap = 12345;
  sim.run_observed(cap, 1000,
                   [](std::uint64_t, std::span<const pp::Count>, pp::Count) {});
  EXPECT_LE(sim.interactions(), cap);
}

TEST(BatchedUsd, RunUsdDispatchesBatchedMode) {
  runner::RunOptions opts;
  opts.mode = StepMode::kBatchedRounds;
  const auto result =
      runner::run_usd(Configuration::uniform(20000, 4, 0), 77, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.winner, 0);
  EXPECT_GT(result.parallel_time, 0.0);
}

// ---- Approximation-quality property tests ----

std::vector<double> exact_times(const Configuration& x0, int trials,
                                std::uint64_t seed_base) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    UsdSimulator sim(
        x0, rng::Rng(rng::stream_seed(seed_base,
                                        static_cast<std::uint64_t>(t))),
        UsdOptions{StepMode::kEveryInteraction});
    EXPECT_TRUE(sim.run_to_consensus(100'000'000));
    out.push_back(static_cast<double>(sim.interactions()));
  }
  return out;
}

std::vector<double> batched_times(const Configuration& x0, int trials,
                                  std::uint64_t seed_base,
                                  double chunk_fraction) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    BatchedUsdSimulator sim(
        x0, rng::Rng(rng::stream_seed(seed_base,
                                        static_cast<std::uint64_t>(t))),
        BatchedOptions{.chunk_fraction = chunk_fraction});
    EXPECT_TRUE(sim.run_to_consensus(100'000'000));
    out.push_back(static_cast<double>(sim.interactions()));
  }
  return out;
}

TEST(BatchedUsd, SingleInteractionChunksMatchExactChainInDistribution) {
  // chunk_fraction -> 1/n degenerates to one event per draw: the batched
  // engine then samples the exact chain and must match kEveryInteraction.
  const auto x0 = Configuration::uniform(150, 3, 30);
  const int trials = 350;
  const auto exact = exact_times(x0, trials, 2100);
  const auto batched = batched_times(x0, trials, 2101, 1e-9);
  EXPECT_LT(stats::ks_statistic(exact, batched),
            stats::ks_threshold(exact.size(), batched.size(), 0.001));
}

TEST(BatchedUsd, DefaultChunkMatchesExactChainInDistribution) {
  // The default chunk (2% of n per draw) must keep the tau-leap bias below
  // KS detectability at property-test sample sizes.
  const auto x0 = Configuration::uniform(400, 3, 0);
  const int trials = 350;
  const auto exact = exact_times(x0, trials, 2200);
  const auto batched =
      batched_times(x0, trials, 2201, BatchedOptions{}.chunk_fraction);
  EXPECT_LT(stats::ks_statistic(exact, batched),
            stats::ks_threshold(exact.size(), batched.size(), 0.001));
}

TEST(BatchedUsd, WinnerFrequenciesMatchExactChain) {
  const auto x0 = Configuration::two_opinion(500, 260, 0);  // mild bias
  const int trials = 1500;
  int wins_exact = 0, wins_batched = 0;
  for (int t = 0; t < trials; ++t) {
    UsdSimulator a(x0, rng::Rng(rng::stream_seed(2300, t)),
                   UsdOptions{StepMode::kSkipUnproductive});
    ASSERT_TRUE(a.run_to_consensus(100'000'000));
    wins_exact += a.consensus_opinion() == 0 ? 1 : 0;
    BatchedUsdSimulator b(x0, rng::Rng(rng::stream_seed(2301, t)));
    ASSERT_TRUE(b.run_to_consensus(100'000'000));
    wins_batched += b.consensus_opinion() == 0 ? 1 : 0;
  }
  const double f_exact = static_cast<double>(wins_exact) / trials;
  const double f_batched = static_cast<double>(wins_batched) / trials;
  EXPECT_NEAR(f_exact, f_batched, 0.05);  // ~4 sigma of the difference
}

}  // namespace
}  // namespace kusd
