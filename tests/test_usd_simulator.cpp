// The tuned USD engine: invariants, consensus detection, and the central
// property test that the skip-unproductive engine has the same law as the
// interaction-by-interaction engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using core::StepMode;
using core::UsdOptions;
using core::UsdSimulator;
using pp::Configuration;

std::uint64_t population(const UsdSimulator& sim) {
  std::uint64_t total = sim.undecided();
  for (auto c : sim.opinions()) total += c;
  return total;
}

TEST(UsdSimulator, ConservesPopulationEveryStep) {
  UsdSimulator sim(Configuration::uniform(200, 4, 20), rng::Rng(1));
  for (int i = 0; i < 2000 && !sim.is_consensus(); ++i) {
    sim.step();
    ASSERT_EQ(population(sim), 200u);
  }
}

TEST(UsdSimulator, InteractionsIncreaseMonotonically) {
  UsdSimulator sim(Configuration::uniform(100, 3, 0), rng::Rng(2),
                   UsdOptions{StepMode::kSkipUnproductive});
  std::uint64_t prev = 0;
  for (int i = 0; i < 500 && !sim.is_consensus(); ++i) {
    sim.step();
    ASSERT_GT(sim.interactions(), prev);
    prev = sim.interactions();
  }
}

TEST(UsdSimulator, ReachesConsensusOnTinyPopulation) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    UsdSimulator sim(Configuration::uniform(10, 2, 0), rng::Rng(seed));
    ASSERT_TRUE(sim.run_to_consensus(1'000'000));
    ASSERT_TRUE(sim.is_consensus());
    const int w = sim.consensus_opinion();
    ASSERT_TRUE(w == 0 || w == 1);
    EXPECT_EQ(sim.opinion(w), 10u);
    EXPECT_EQ(sim.undecided(), 0u);
  }
}

TEST(UsdSimulator, DetectsPreexistingConsensus) {
  UsdSimulator sim(Configuration({50, 0}, 0), rng::Rng(3));
  EXPECT_TRUE(sim.is_consensus());
  EXPECT_EQ(sim.consensus_opinion(), 0);
  EXPECT_TRUE(sim.run_to_consensus(10));
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(UsdSimulator, SingleOpinionWithUndecidedConverges) {
  // k = 1: only adoptions can happen; consensus on opinion 0 is certain.
  UsdSimulator sim(Configuration({10}, 90), rng::Rng(4));
  ASSERT_TRUE(sim.run_to_consensus(1'000'000));
  EXPECT_EQ(sim.consensus_opinion(), 0);
}

TEST(UsdSimulator, RejectsAllUndecided) {
  EXPECT_THROW(UsdSimulator(Configuration({0, 0}, 10), rng::Rng(5)),
               util::CheckError);
}

TEST(UsdSimulator, HonorsInteractionCap) {
  UsdSimulator sim(Configuration::uniform(1000, 8, 0), rng::Rng(6));
  EXPECT_FALSE(sim.run_to_consensus(100));
  EXPECT_GE(sim.interactions(), 100u);
}

TEST(UsdSimulator, DeterministicForSameSeed) {
  const auto x0 = Configuration::uniform(500, 5, 50);
  UsdSimulator a(x0, rng::Rng(7)), b(x0, rng::Rng(7));
  a.run_to_consensus(10'000'000);
  b.run_to_consensus(10'000'000);
  EXPECT_EQ(a.interactions(), b.interactions());
  EXPECT_EQ(a.consensus_opinion(), b.consensus_opinion());
}

TEST(UsdSimulator, ConfigurationRoundTrip) {
  const auto x0 = Configuration::with_additive_bias(300, 3, 30, 40);
  UsdSimulator sim(x0, rng::Rng(8));
  const auto snap = sim.configuration();
  EXPECT_EQ(snap.n(), 300u);
  EXPECT_EQ(snap.opinion(0), x0.opinion(0));
  EXPECT_EQ(snap.undecided(), 30u);
}

TEST(UsdSimulator, OverwhelmingBiasWins) {
  // x0 = 90% of agents: opinion 0 must win in every trial.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    UsdSimulator sim(Configuration({900, 50, 50}, 0), rng::Rng(seed),
                     UsdOptions{StepMode::kSkipUnproductive});
    ASSERT_TRUE(sim.run_to_consensus(100'000'000));
    EXPECT_EQ(sim.consensus_opinion(), 0) << "seed " << seed;
  }
}

TEST(UsdSimulator, RunObservedVisitsBoundariesInOrder) {
  UsdSimulator sim(Configuration::uniform(200, 2, 0), rng::Rng(9));
  std::vector<std::uint64_t> times;
  sim.run_observed(50'000, 100,
                   [&times](std::uint64_t t, std::span<const pp::Count>,
                            pp::Count) { times.push_back(t); });
  ASSERT_GE(times.size(), 2u);
  EXPECT_EQ(times.front(), 0u);
  for (std::size_t i = 1; i + 1 < times.size(); ++i) {
    ASSERT_GT(times[i], times[i - 1]);
  }
}

TEST(UsdSimulator, RunObservedRejectsZeroInterval) {
  UsdSimulator sim(Configuration::uniform(100, 2, 0), rng::Rng(10));
  EXPECT_THROW(sim.run_observed(
                   1000, 0,
                   [](std::uint64_t, std::span<const pp::Count>, pp::Count) {
                   }),
               util::CheckError);
}

// ---- The central engine-equivalence property (design-choice ablation) ----

std::vector<double> consensus_times(const Configuration& x0, StepMode mode,
                                    int trials, std::uint64_t seed_base) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    UsdSimulator sim(
        x0, rng::Rng(rng::stream_seed(seed_base,
                                        static_cast<std::uint64_t>(t))),
        UsdOptions{mode});
    EXPECT_TRUE(sim.run_to_consensus(50'000'000));
    out.push_back(static_cast<double>(sim.interactions()));
  }
  return out;
}

struct EquivalenceCase {
  pp::Count n = 0;
  int k = 0;
  pp::Count undecided = 0;
};

class SkipEquivalenceSweep
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(SkipEquivalenceSweep, SkipEngineMatchesPlainEngineInDistribution) {
  const auto param = GetParam();
  const auto x0 =
      Configuration::uniform(param.n, param.k, param.undecided);
  const int trials = 350;
  const auto plain =
      consensus_times(x0, StepMode::kEveryInteraction, trials, 900);
  const auto skip =
      consensus_times(x0, StepMode::kSkipUnproductive, trials, 901);
  EXPECT_LT(stats::ks_statistic(plain, skip),
            stats::ks_threshold(plain.size(), skip.size(), 0.001))
      << "n=" << param.n << " k=" << param.k;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SkipEquivalenceSweep,
    ::testing::Values(EquivalenceCase{60, 2, 0}, EquivalenceCase{60, 2, 20},
                      EquivalenceCase{80, 4, 0},
                      EquivalenceCase{100, 8, 30}));

TEST(UsdSimulator, SkipAndPlainWinnerFrequenciesAgree) {
  // With a moderate bias the win frequency of opinion 0 must match across
  // engines (binomial 3-sigma band).
  const auto x0 = Configuration::two_opinion(100, 40, 20);  // 40 vs 40 + 20u
  const int trials = 2000;
  int wins_plain = 0, wins_skip = 0;
  for (int t = 0; t < trials; ++t) {
    UsdSimulator a(x0, rng::Rng(rng::stream_seed(77, t)),
                   UsdOptions{StepMode::kEveryInteraction});
    a.run_to_consensus(10'000'000);
    wins_plain += a.consensus_opinion() == 0 ? 1 : 0;
    UsdSimulator b(x0, rng::Rng(rng::stream_seed(78, t)),
                   UsdOptions{StepMode::kSkipUnproductive});
    b.run_to_consensus(10'000'000);
    wins_skip += b.consensus_opinion() == 0 ? 1 : 0;
  }
  // Symmetric start: both should be near 50%, and near each other.
  const double f_plain = static_cast<double>(wins_plain) / trials;
  const double f_skip = static_cast<double>(wins_skip) / trials;
  EXPECT_NEAR(f_plain, f_skip, 0.045);  // ~4 sigma of the difference
  EXPECT_NEAR(f_plain, 0.5, 0.04);
  EXPECT_NEAR(f_skip, 0.5, 0.04);
}

// Fenwick vs linear urn engines must also agree (second ablation axis).
TEST(UsdSimulator, UrnEnginesAgreeInDistribution) {
  const auto x0 = Configuration::uniform(80, 3, 0);
  const int trials = 350;
  std::vector<double> lin, fen;
  for (int t = 0; t < trials; ++t) {
    UsdSimulator a(x0, rng::Rng(rng::stream_seed(500, t)),
                   UsdOptions{StepMode::kEveryInteraction,
                              urn::UrnEngine::kLinear});
    a.run_to_consensus(50'000'000);
    lin.push_back(static_cast<double>(a.interactions()));
    UsdSimulator b(x0, rng::Rng(rng::stream_seed(501, t)),
                   UsdOptions{StepMode::kEveryInteraction,
                              urn::UrnEngine::kFenwick});
    b.run_to_consensus(50'000'000);
    fen.push_back(static_cast<double>(b.interactions()));
  }
  EXPECT_LT(stats::ks_statistic(lin, fen),
            stats::ks_threshold(lin.size(), fen.size(), 0.001));
}

}  // namespace
}  // namespace kusd
