// Gossip-model USD (Appendix D comparator) and the synchronized variant.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sync_usd.hpp"
#include "gossip/gossip_usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using pp::Configuration;

TEST(GossipUsd, RoundConservesPopulation) {
  gossip::GossipUsd g(Configuration::uniform(1000, 5, 100), rng::Rng(1));
  for (int i = 0; i < 50 && !g.is_consensus(); ++i) {
    g.round();
    std::uint64_t total = g.undecided();
    for (auto c : g.opinions()) total += c;
    ASSERT_EQ(total, 1000u);
  }
}

TEST(GossipUsd, RejectsAllUndecided) {
  EXPECT_THROW(gossip::GossipUsd(Configuration({0, 0}, 10), rng::Rng(2)),
               util::CheckError);
}

TEST(GossipUsd, DetectsPreexistingConsensus) {
  gossip::GossipUsd g(Configuration({100, 0}, 0), rng::Rng(3));
  EXPECT_TRUE(g.is_consensus());
  EXPECT_EQ(g.consensus_opinion(), 0);
}

TEST(GossipUsd, BiasedTwoOpinionConvergesLogarithmically) {
  // Clementi et al.: O(log n) rounds for k = 2. Allow a generous constant.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    gossip::GossipUsd g(Configuration::two_opinion(100000, 70000, 0),
                        rng::Rng(seed));
    ASSERT_TRUE(g.run_to_consensus(600));
    EXPECT_EQ(g.consensus_opinion(), 0);
    EXPECT_LE(g.rounds(), 60u * 17u);  // ~ c log2(1e5)
  }
}

TEST(GossipUsd, MultiOpinionBiasedPluralityWins) {
  int wins = 0;
  const int trials = 20;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    gossip::GossipUsd g(
        Configuration::with_multiplicative_bias(50000, 8, 0, 2.0),
        rng::Rng(seed));
    ASSERT_TRUE(g.run_to_consensus(5000));
    wins += g.consensus_opinion() == 0 ? 1 : 0;
  }
  EXPECT_GE(wins, trials - 1);
}

TEST(GossipUsd, ConfigurationSnapshot) {
  gossip::GossipUsd g(Configuration::uniform(500, 4, 100), rng::Rng(5));
  g.round();
  const auto snap = g.configuration();
  EXPECT_EQ(snap.n(), 500u);
  EXPECT_EQ(snap.k(), 4);
}

TEST(SyncUsd, RequiresFullyDecidedStart) {
  EXPECT_THROW(core::SyncUsd(Configuration({50, 40}, 10), rng::Rng(6)),
               util::CheckError);
}

TEST(SyncUsd, ConvergesInPolylogSuperRounds) {
  // The synchronized variant converges in polylog rounds regardless of
  // bias; with no initial bias this is its headline advantage.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    core::SyncUsd s(Configuration::uniform(100000, 10, 0), rng::Rng(seed));
    ASSERT_TRUE(s.run_to_consensus(2000));
    EXPECT_LT(s.super_rounds(), 500u);
    EXPECT_GE(s.total_rounds(), s.super_rounds());
  }
}

TEST(SyncUsd, TracksTotalRounds) {
  core::SyncUsd s(Configuration::uniform(10000, 4, 0), rng::Rng(7));
  const std::uint64_t subs = s.super_round();
  EXPECT_EQ(s.super_rounds(), 1u);
  EXPECT_GE(s.total_rounds(), 1u + subs);
}

}  // namespace
}  // namespace kusd
