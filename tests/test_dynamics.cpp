// Baseline dynamics (Voter, TwoChoices, j-Majority, MedianRule) update
// rules and their scheduler.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/dynamics.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using pp::Configuration;

TEST(Voter, AdoptsSample) {
  core::VoterDynamics voter;
  rng::Rng r(1);
  const std::array<int, 1> sample{3};
  EXPECT_EQ(voter.sample_size(), 1);
  EXPECT_EQ(voter.update(7, sample, r), 3);
  EXPECT_EQ(voter.name(), "Voter");
}

TEST(TwoChoices, LazyTieBreak) {
  core::TwoChoicesDynamics tc;
  rng::Rng r(2);
  EXPECT_EQ(tc.update(7, std::array<int, 2>{3, 3}, r), 3);  // agreement
  EXPECT_EQ(tc.update(7, std::array<int, 2>{3, 4}, r), 7);  // keep own
}

TEST(ThreeMajority, MajorityWins) {
  core::JMajorityDynamics m3(3);
  rng::Rng r(3);
  EXPECT_EQ(m3.sample_size(), 3);
  EXPECT_EQ(m3.name(), "3-Majority");
  EXPECT_EQ(m3.update(9, std::array<int, 3>{5, 2, 5}, r), 5);
  EXPECT_EQ(m3.update(9, std::array<int, 3>{4, 4, 4}, r), 4);
}

TEST(ThreeMajority, ThreeWayTieIsUniform) {
  core::JMajorityDynamics m3(3);
  rng::Rng r(4);
  std::array<int, 3> hits{};
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    const int pick = m3.update(0, std::array<int, 3>{0, 1, 2}, r);
    ASSERT_GE(pick, 0);
    ASSERT_LE(pick, 2);
    ++hits[static_cast<std::size_t>(pick)];
  }
  for (int h : hits) EXPECT_NEAR(h, trials / 3, 500);
}

TEST(JMajority, LargerSamples) {
  core::JMajorityDynamics m5(5);
  rng::Rng r(5);
  EXPECT_EQ(m5.update(0, std::array<int, 5>{2, 1, 2, 3, 2}, r), 2);
  EXPECT_THROW(core::JMajorityDynamics(0), util::CheckError);
}

TEST(MedianRule, MedianOfThree) {
  core::MedianRuleDynamics median;
  rng::Rng r(6);
  EXPECT_EQ(median.update(5, std::array<int, 2>{1, 9}, r), 5);
  EXPECT_EQ(median.update(1, std::array<int, 2>{9, 5}, r), 5);
  EXPECT_EQ(median.update(9, std::array<int, 2>{1, 1}, r), 1);
  EXPECT_EQ(median.update(2, std::array<int, 2>{2, 7}, r), 2);
}

TEST(DynamicsScheduler, ConservesPopulation) {
  core::VoterDynamics voter;
  core::DynamicsScheduler sched(voter, Configuration::uniform(100, 4, 0),
                                rng::Rng(7));
  for (int i = 0; i < 5000 && !sched.is_consensus(); ++i) {
    sched.step();
    std::uint64_t total = 0;
    for (auto c : sched.counts()) total += c;
    ASSERT_EQ(total, 100u);
  }
}

TEST(DynamicsScheduler, RejectsUndecidedAgents) {
  core::VoterDynamics voter;
  EXPECT_THROW(
      core::DynamicsScheduler(voter, Configuration({50, 40}, 10),
                              rng::Rng(8)),
      util::CheckError);
}

class DynamicsConvergence
    : public ::testing::TestWithParam<const core::SamplingDynamics*> {};

TEST_P(DynamicsConvergence, ReachesConsensusOnSmallPopulations) {
  const auto& dyn = *GetParam();
  int converged = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    core::DynamicsScheduler sched(dyn, Configuration::uniform(50, 3, 0),
                                  rng::Rng(seed));
    if (sched.run_to_consensus(5'000'000)) {
      ++converged;
      const int w = sched.consensus_opinion();
      EXPECT_EQ(sched.counts()[static_cast<std::size_t>(w)], 50u);
    }
  }
  EXPECT_EQ(converged, 10);
}

const core::VoterDynamics kVoter;
const core::TwoChoicesDynamics kTwoChoices;
const core::JMajorityDynamics kThreeMajority(3);
const core::MedianRuleDynamics kMedian;

INSTANTIATE_TEST_SUITE_P(AllDynamics, DynamicsConvergence,
                         ::testing::Values(&kVoter, &kTwoChoices,
                                           &kThreeMajority, &kMedian));

TEST(DynamicsScheduler, StrongMajorityUsuallyWinsUnderThreeMajority) {
  core::JMajorityDynamics m3(3);
  int wins = 0;
  const int trials = 40;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    core::DynamicsScheduler sched(
        m3, Configuration({700, 150, 150}, 0), rng::Rng(seed));
    ASSERT_TRUE(sched.run_to_consensus(50'000'000));
    wins += sched.consensus_opinion() == 0 ? 1 : 0;
  }
  EXPECT_GE(wins, trials - 2);
}

}  // namespace
}  // namespace kusd
