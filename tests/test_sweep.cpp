// The sweep subsystem: grid expansion, streaming aggregation, output
// schema, and reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "runner/run.hpp"
#include "runner/sweep.hpp"
#include "sim/registry.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using runner::BiasKind;
using runner::Sweep;
using runner::SweepCell;
using runner::SweepSpec;

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.ns = {300, 600};
  spec.ks = {2, 3};
  spec.engines = {"skip", "gossip"};
  spec.trials = 3;
  spec.master_seed = 42;
  spec.threads = 2;
  return spec;
}

/// Render header + streamed rows into one string (byte-identity witness).
std::string render(const Sweep& sweep) {
  std::string out;
  for (const auto& col : Sweep::csv_header()) out += col + ",";
  out += "\n";
  sweep.run([&out](const SweepCell& cell) {
    for (const auto& field : Sweep::csv_row(cell)) out += field + ",";
    out += "\n";
  });
  return out;
}

TEST(Sweep, GridIsCartesianInEngineMajorOrder) {
  const Sweep sweep(tiny_spec());
  const auto grid = sweep.grid();
  ASSERT_EQ(grid.size(), 8u);  // 2 engines x 2 ns x 2 ks x 1 bias
  EXPECT_EQ(grid[0].engine, "skip");
  EXPECT_EQ(grid[0].n, 300u);
  EXPECT_EQ(grid[0].k, 2);
  EXPECT_FALSE(grid[0].graph.has_value());  // no topology axis for skip
  EXPECT_EQ(grid[3].k, 3);
  EXPECT_EQ(grid[4].engine, "gossip");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, i);
  }
}

TEST(Sweep, NoBiasCollapsesBiasAxis) {
  auto spec = tiny_spec();
  spec.bias_values = {1.5, 2.0, 3.0};  // ignored under BiasKind::kNone
  EXPECT_EQ(Sweep(spec).grid().size(), 8u);
  spec.bias_kind = BiasKind::kMultiplicative;
  EXPECT_EQ(Sweep(spec).grid().size(), 24u);
}

TEST(Sweep, RunStreamsEveryCellWithMatchingSchema) {
  const Sweep sweep(tiny_spec());
  const auto header = Sweep::csv_header();
  std::vector<SweepCell> cells;
  sweep.run([&cells, &header](const SweepCell& cell) {
    EXPECT_EQ(Sweep::csv_row(cell).size(), header.size());
    cells.push_back(cell);
  });
  ASSERT_EQ(cells.size(), 8u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.trials, 3);
    EXPECT_EQ(cell.parallel_time.count(), 3u);
    EXPECT_DOUBLE_EQ(cell.converged_rate, 1.0);  // tiny configs converge
    EXPECT_GT(cell.parallel_time.mean(), 0.0);
  }
}

TEST(Sweep, ReproducibleAcrossRunsAndThreadCounts) {
  auto spec = tiny_spec();
  spec.threads = 1;
  std::vector<double> first;
  Sweep(spec).run([&first](const SweepCell& cell) {
    for (double v : cell.parallel_time.values()) first.push_back(v);
  });
  spec.threads = 8;
  std::vector<double> second;
  Sweep(spec).run([&second](const SweepCell& cell) {
    for (double v : cell.parallel_time.values()) second.push_back(v);
  });
  EXPECT_EQ(first, second);  // bit-identical
}

TEST(Sweep, MultiplicativeBiasAxisDrivesPluralityWins) {
  SweepSpec spec;
  spec.ns = {2000};
  spec.ks = {4};
  spec.engines = {"skip"};
  spec.bias_kind = BiasKind::kMultiplicative;
  spec.bias_values = {8.0};  // overwhelming plurality
  spec.trials = 10;
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].plurality_win_rate, 1.0);
  EXPECT_DOUBLE_EQ(cells[0].point.bias, 8.0);
}

TEST(Sweep, SynchronizedAndBatchedEnginesRun) {
  SweepSpec spec;
  spec.ns = {500};
  spec.ks = {2};
  spec.engines = {"sync", "batched", "every"};
  spec.trials = 2;
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& cell : cells) EXPECT_DOUBLE_EQ(cell.converged_rate, 1.0);
}

TEST(Sweep, JsonLineQuotesOnlyNameFields) {
  const Sweep sweep(tiny_spec());
  const auto cell = sweep.run_point(sweep.grid()[0]);
  const std::string json = Sweep::json_line(cell);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"engine\":\"skip\""), std::string::npos);
  EXPECT_NE(json.find("\"graph\":\"-\""), std::string::npos);
  EXPECT_NE(json.find("\"bias_kind\":\"none\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":300"), std::string::npos);
  EXPECT_EQ(json.find("\"n\":\"300\""), std::string::npos);
}

TEST(Sweep, OutputIsByteIdenticalAcrossThreadsStripesAndShuffle) {
  // The acceptance bar for the work-stealing task graph: the streamed
  // CSV (and so the JSONL) is a pure function of (spec, master_seed) —
  // identical bytes at any thread count, any stripe width, with and
  // without shuffled execution order.
  auto spec = tiny_spec();
  spec.threads = 1;
  spec.stripe_width = 1;
  const std::string reference = render(Sweep(spec));
  for (const std::size_t threads : {1u, 3u, 8u}) {
    for (const std::size_t width : {1u, 2u, 3u, 8u, 64u}) {
      spec.threads = threads;
      spec.stripe_width = width;
      spec.shuffle_points = false;
      EXPECT_EQ(render(Sweep(spec)), reference)
          << threads << " threads, stripe width " << width;
      spec.shuffle_points = true;
      EXPECT_EQ(render(Sweep(spec)), reference)
          << threads << " threads, stripe width " << width << ", shuffled";
    }
  }
}

TEST(Sweep, GeometricStartAxisExpandsTheGrid) {
  auto spec = tiny_spec();
  spec.starts = {runner::StartProfile{},
                 runner::StartProfile{runner::StartProfile::Kind::kGeometric,
                                      0.5}};
  const Sweep sweep(spec);
  const auto grid = sweep.grid();
  ASSERT_EQ(grid.size(), 16u);  // 2 engines x 2 ns x 2 ks x 2 starts
  EXPECT_EQ(grid[0].start.kind, runner::StartProfile::Kind::kUniform);
  EXPECT_EQ(grid[1].start.kind, runner::StartProfile::Kind::kGeometric);
  EXPECT_DOUBLE_EQ(grid[1].start.ratio, 0.5);

  // Geometric points run and report their start profile in the schema.
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 16u);
  const auto row = Sweep::csv_row(cells[1]);
  EXPECT_EQ(row[6], "geometric:0.5");  // engine,graph,edges,connected,n,k,start
  const auto json = Sweep::json_line(cells[1]);
  EXPECT_NE(json.find("\"start\":\"geometric:0.5\""), std::string::npos);
}

TEST(Sweep, StartProfileNamesRoundTrip) {
  const auto uniform = runner::parse_start_profile("uniform");
  ASSERT_TRUE(uniform.has_value());
  EXPECT_EQ(uniform->kind, runner::StartProfile::Kind::kUniform);
  EXPECT_EQ(runner::to_string(*uniform), "uniform");
  const auto geometric = runner::parse_start_profile("geometric:0.25");
  ASSERT_TRUE(geometric.has_value());
  EXPECT_EQ(geometric->kind, runner::StartProfile::Kind::kGeometric);
  EXPECT_DOUBLE_EQ(geometric->ratio, 0.25);
  EXPECT_EQ(runner::parse_start_profile(runner::to_string(*geometric)),
            geometric);
  // Shortest round-trip formatting: the recorded spelling must parse back
  // to exactly the ratio that ran, even for awkward ratios.
  const runner::StartProfile gnarly{runner::StartProfile::Kind::kGeometric,
                                    0.1234567891234567};
  const auto reparsed = runner::parse_start_profile(runner::to_string(gnarly));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->ratio, gnarly.ratio);
  EXPECT_FALSE(runner::parse_start_profile("geometric:").has_value());
  EXPECT_FALSE(runner::parse_start_profile("geometric:0").has_value());
  EXPECT_FALSE(runner::parse_start_profile("geometric:1.5").has_value());
  EXPECT_FALSE(runner::parse_start_profile("triangular").has_value());
}

TEST(Sweep, BatchedChunkPolicyIsSweepable) {
  SweepSpec spec;
  spec.ns = {2000};
  spec.ks = {3};
  spec.engines = {"batched"};
  spec.trials = 3;
  spec.batch_policy = core::ChunkPolicy::kAdaptive;
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].converged_rate, 1.0);
}

TEST(Sweep, EveryRegisteredEngineIsSweepable) {
  // The engine axis is the registry: every registered name must expand
  // into grid points and run. (Engines with a start constraint get the
  // default fully decided start, which every built-in accepts.)
  SweepSpec spec;
  spec.ns = {200};
  spec.ks = {2};
  spec.engines = sim::Registry::instance().names();
  spec.trials = 2;
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), spec.engines.size());
  for (const auto& cell : cells) {
    EXPECT_DOUBLE_EQ(cell.converged_rate, 1.0) << cell.point.engine;
  }
}

TEST(Sweep, GraphAxisMultipliesOnlyTopologyEngines) {
  SweepSpec spec;
  spec.ns = {120};
  spec.ks = {2};
  spec.engines = {"skip", "graph"};
  spec.graphs = {sim::GraphSpec{},
                 sim::GraphSpec{sim::GraphSpec::Kind::kCycle}};
  spec.trials = 2;
  const Sweep sweep(spec);
  const auto grid = sweep.grid();
  // skip contributes 1 point, graph 2 (one per topology).
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_FALSE(grid[0].graph.has_value());
  ASSERT_TRUE(grid[1].graph.has_value());
  EXPECT_EQ(grid[1].graph->kind, sim::GraphSpec::Kind::kComplete);
  ASSERT_TRUE(grid[2].graph.has_value());
  EXPECT_EQ(grid[2].graph->kind, sim::GraphSpec::Kind::kCycle);

  std::vector<SweepCell> cells;
  sweep.run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(Sweep::csv_row(cells[0])[1], "-");
  EXPECT_EQ(Sweep::csv_row(cells[1])[1], "complete");
  EXPECT_EQ(Sweep::csv_row(cells[2])[1], "cycle");
  EXPECT_NE(Sweep::json_line(cells[2]).find("\"graph\":\"cycle\""),
            std::string::npos);
  // Complete-topology and unrestricted runs converge well within the
  // default budget; the cycle mixes slowly enough that only the schema
  // (not convergence) is asserted for it.
  EXPECT_DOUBLE_EQ(cells[0].converged_rate, 1.0);
  EXPECT_DOUBLE_EQ(cells[1].converged_rate, 1.0);
}

TEST(Sweep, GraphSweepOutputIsByteIdenticalAcrossThreadCounts) {
  // The acceptance bar for the --graph axis: topologies are constructed
  // once per point from a deterministic stream, so CSV/JSONL bytes match
  // across thread counts and parallelism modes — including the random
  // topologies (regular, ER), whose construction must not depend on
  // which worker builds them.
  SweepSpec spec;
  spec.ns = {120};
  spec.ks = {2, 3};
  spec.engines = {"graph", "graph-batched"};
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kCycle},
                 sim::GraphSpec{sim::GraphSpec::Kind::kRegular, 4},
                 sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 0.0}};
  spec.trials = 3;
  spec.master_seed = 7;
  spec.threads = 1;
  const std::string reference = render(Sweep(spec));
  for (const std::size_t threads : {2u, 8u}) {
    spec.threads = threads;
    spec.stripe_width = 1;
    EXPECT_EQ(render(Sweep(spec)), reference)
        << threads << " threads, stripe width 1";
    spec.stripe_width = 8;
    EXPECT_EQ(render(Sweep(spec)), reference)
        << threads << " threads, stripe width 8";
  }
}

TEST(Sweep, TopologySummaryColumnsAreEmittedOncePerPoint) {
  // graph_edges / connected: measured for materialized topologies,
  // analytic for aggregated ones, "-" for engines without a graph axis.
  SweepSpec spec;
  spec.ns = {120};
  spec.ks = {2};
  spec.engines = {"skip", "graph", "graph-batched"};
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kCycle}};
  spec.trials = 2;
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 3u);

  const auto header = Sweep::csv_header();
  const auto col = [&header](const char* name) {
    return static_cast<std::size_t>(
        std::find(header.begin(), header.end(), name) - header.begin());
  };
  ASSERT_LT(col("graph_edges"), header.size());
  ASSERT_LT(col("connected"), header.size());
  ASSERT_LT(col("status"), header.size());

  // skip: no topology axis at all.
  EXPECT_FALSE(cells[0].graph_edges.has_value());
  EXPECT_FALSE(cells[0].connected.has_value());
  EXPECT_EQ(Sweep::csv_row(cells[0])[col("graph_edges")], "-");
  EXPECT_EQ(Sweep::csv_row(cells[0])[col("connected")], "-");
  EXPECT_NE(Sweep::json_line(cells[0]).find("\"graph_edges\":null"),
            std::string::npos);
  EXPECT_NE(Sweep::json_line(cells[0]).find("\"connected\":null"),
            std::string::npos);

  // graph on the cycle: measured — C_120 has 120 edges and is connected.
  ASSERT_TRUE(cells[1].graph_edges.has_value());
  EXPECT_EQ(*cells[1].graph_edges, 120u);
  EXPECT_EQ(cells[1].connected, std::optional<bool>(true));
  EXPECT_EQ(Sweep::csv_row(cells[1])[col("graph_edges")], "120");
  EXPECT_EQ(Sweep::csv_row(cells[1])[col("connected")], "1");
  EXPECT_NE(Sweep::json_line(cells[1]).find("\"graph_edges\":120"),
            std::string::npos);

  // graph-batched on the cycle: the analytic degree-class summary.
  EXPECT_EQ(cells[2].graph_edges, std::optional<std::uint64_t>(120u));
  EXPECT_EQ(cells[2].connected, std::optional<bool>(true));
  EXPECT_EQ(cells[2].status, "ok");
}

TEST(Sweep, DisconnectedTopologyShortCircuitsUnderDefaultBudget) {
  // G(200, 0.005) is disconnected with overwhelming probability, and
  // under the default budget (max_time == 0) most trials would grind
  // through the enormous default cap — the de-facto hang this fix
  // exists for. The point must record connected=0 and report every
  // trial as a timeout at the default cap without simulating.
  SweepSpec spec;
  spec.ns = {200};
  spec.ks = {2};
  spec.engines = {"graph"};
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 0.005}};
  spec.trials = 3;
  spec.master_seed = 5;
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].connected, std::optional<bool>(false));
  EXPECT_EQ(cells[0].status, "timeout");
  EXPECT_DOUBLE_EQ(cells[0].converged_rate, 0.0);
  EXPECT_DOUBLE_EQ(cells[0].plurality_win_rate, 0.0);
  ASSERT_EQ(cells[0].parallel_time.count(), 3u);
  // Parallel time reports the timeout horizon: the default cap / n.
  EXPECT_DOUBLE_EQ(
      cells[0].parallel_time.mean(),
      static_cast<double>(core::default_interaction_cap(200, 2)) / 200.0);

  // Byte-identical across scheduling, like every other cell.
  const std::string reference = render(Sweep(spec));
  spec.threads = 4;
  spec.stripe_width = 1;
  EXPECT_EQ(render(Sweep(spec)), reference);

  // The aggregated engine hits the same guard through its degree classes
  // (mean degree ~1 realizes isolated vertices).
  SweepSpec aggregated = spec;
  aggregated.threads = 0;
  aggregated.stripe_width = SweepSpec{}.stripe_width;
  aggregated.ns = {2000};
  aggregated.engines = {"graph-batched"};
  aggregated.graphs = {
      sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 0.0005}};
  std::vector<SweepCell> agg_cells;
  Sweep(aggregated).run(
      [&agg_cells](const SweepCell& cell) { agg_cells.push_back(cell); });
  ASSERT_EQ(agg_cells.size(), 1u);
  EXPECT_EQ(agg_cells[0].connected, std::optional<bool>(false));
  EXPECT_EQ(agg_cells[0].status, "timeout");
  EXPECT_DOUBLE_EQ(agg_cells[0].converged_rate, 0.0);
}

TEST(Sweep, DisconnectedTopologyRunsHonestlyUnderExplicitBudget) {
  // An explicit --budget bounds the cost, so a disconnected point is
  // simulated for real: global consensus by coincidental component
  // alignment is a measurable quantity (components each converge; with
  // k = 2 and few components it happens often), and the sweep must
  // report the measured rate instead of hardcoding zero.
  SweepSpec spec;
  spec.ns = {60};
  spec.ks = {2};
  spec.engines = {"graph"};
  // Two disjoint-ish sparse blobs: G(60, 0.05) at this seed realizes a
  // disconnected graph whose components still converge individually.
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 0.05}};
  spec.trials = 20;
  spec.master_seed = 1;
  spec.max_time = 2'000'000;
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_EQ(cells[0].connected, std::optional<bool>(false))
      << "seed 1 was chosen to realize a disconnected G(60, 0.05); if "
         "topology construction changed, pick a new seed";
  EXPECT_EQ(cells[0].status, "ok");  // ran for real, no short-circuit
  // Some trials reach coincidental global consensus within the budget;
  // the measured rate is the point of running honestly.
  EXPECT_GT(cells[0].converged_rate, 0.0);
  ASSERT_EQ(cells[0].parallel_time.count(), 20u);
  // No trial exceeded the explicit budget.
  EXPECT_LE(cells[0].parallel_time.max(), 2'000'000.0 / 60.0);
}

TEST(Sweep, BudgetOverrideCapsAndUncapsTrials) {
  // max_time = 0 uses each engine's default budget; an explicit budget
  // replaces it — tiny budgets starve convergence, large ones let
  // slow-mixing topologies (the cycle) finish where the complete-graph
  // default cap cannot.
  SweepSpec spec;
  spec.ns = {64};
  spec.ks = {2};
  spec.engines = {"graph"};
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kCycle}};
  spec.trials = 3;
  spec.max_time = 10;  // 10 interactions: nothing converges
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].converged_rate, 0.0);
  EXPECT_LE(cells[0].parallel_time.mean(), 10.0 / 64.0);

  spec.max_time = 100'000'000;  // far past the cycle's consensus time
  cells.clear();
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].converged_rate, 1.0);
}

TEST(Sweep, ShortCircuitReportsTheEnginePublishedBudget) {
  // The timeout horizon of a short-circuited cell must come from the
  // engine's published default budget (EngineInfo::default_budget), not a
  // hardcoded core::default_interaction_cap — engines are free to publish
  // a different default, and the recorded horizon has to be the budget a
  // simulated trial would actually have run to.
  constexpr std::uint64_t kProbeBudget = 777'000;
  auto& registry = sim::Registry::instance();
  if (!registry.contains("published-budget-probe")) {
    registry.add(
        "published-budget-probe",
        {.factory =
             [](const pp::Configuration& initial, std::uint64_t seed,
                const sim::EngineOptions&) {
               return sim::Registry::instance().create("skip", initial, seed);
             },
         .description = "test probe with a non-default published budget",
         .default_budget = [](pp::Count, int) { return kProbeBudget; },
         .uses_graph_axis = true});
  }
  SweepSpec spec;
  spec.ns = {200};
  spec.ks = {2};
  spec.engines = {"published-budget-probe"};
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 0.005}};
  spec.trials = 2;
  spec.master_seed = 5;  // Same disconnected realization as above.
  std::vector<SweepCell> cells;
  Sweep(spec).run([&cells](const SweepCell& cell) { cells.push_back(cell); });
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_EQ(cells[0].status, "timeout");
  EXPECT_DOUBLE_EQ(cells[0].parallel_time.mean(),
                   static_cast<double>(kProbeBudget) / 200.0);
}

TEST(Sweep, EngineNamesComeFromTheRegistry) {
  for (const auto& name : sim::Registry::instance().names()) {
    EXPECT_TRUE(sim::Registry::instance().contains(name));
  }
  EXPECT_FALSE(sim::Registry::instance().contains("warp-drive"));
}

TEST(Sweep, RejectsInvalidSpecs) {
  auto spec = tiny_spec();
  spec.trials = -1;
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec = tiny_spec();
  spec.engines.clear();
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec = tiny_spec();
  spec.engines = {"warp-drive"};  // not in the registry
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec = tiny_spec();
  spec.undecided_fraction = 1.5;
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  // Constraints that would otherwise only surface mid-grid fail upfront:
  // per-interaction engines cap n below 2^32 (registry metadata), sync
  // needs a decided start, batched needs a valid chunk fraction.
  spec = tiny_spec();
  spec.ns = {300, std::uint64_t{1} << 33};
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec.engines = {"batched"};
  EXPECT_NO_THROW(Sweep{spec});  // batched has no 32-bit cap
  spec.batch_chunk_fraction = 2.0;
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec = tiny_spec();
  spec.engines = {"sync"};
  spec.undecided_fraction = 0.5;
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  // Bias values are validated upfront too (UB casts otherwise).
  spec = tiny_spec();
  spec.bias_kind = BiasKind::kAdditive;
  spec.bias_values = {-50.0};
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec.bias_values = {10.0};
  EXPECT_NO_THROW(Sweep{spec});
  spec.bias_kind = BiasKind::kMultiplicative;
  spec.bias_values = {1.0};
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  // The work-stealing grain must be a positive trial count; shuffled
  // execution is always allowed (it is pure scheduling).
  spec = tiny_spec();
  spec.stripe_width = 0;
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec.stripe_width = 1;
  spec.shuffle_points = true;
  EXPECT_NO_THROW(Sweep{spec});
  // Geometric starts define their own support shape: no bias axis, and
  // the ratio must be a valid geometric ratio.
  spec = tiny_spec();
  spec.starts = {runner::StartProfile{
      runner::StartProfile::Kind::kGeometric, 0.5}};
  spec.bias_kind = BiasKind::kAdditive;
  spec.bias_values = {10.0};
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec.bias_kind = BiasKind::kNone;
  EXPECT_NO_THROW(Sweep{spec});
  spec.starts = {runner::StartProfile{
      runner::StartProfile::Kind::kGeometric, 0.0}};
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec = tiny_spec();
  spec.starts.clear();
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  // The graph axis needs a topology-taking engine and feasible specs.
  spec = tiny_spec();
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kCycle}};
  EXPECT_THROW(Sweep{spec}, util::CheckError);  // skip/gossip take no graph
  spec = tiny_spec();
  spec.engines = {"graph"};
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kRegular, 3}};
  spec.ns = {301};  // n * d odd
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec.ns = {300};
  EXPECT_NO_THROW(Sweep{spec});
  spec.graphs = {sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 1.5}};
  EXPECT_THROW(Sweep{spec}, util::CheckError);
  spec.graphs.clear();
  EXPECT_THROW(Sweep{spec}, util::CheckError);
}

}  // namespace
}  // namespace kusd
