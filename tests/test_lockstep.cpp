// LockstepRoundEngine: per-stream bit-identity with the scalar batched
// engine, batch-composition independence, masking near consensus, KS
// fidelity against the exact chain, and sweep-level byte determinism of
// the batched-lockstep registry engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/batched_usd.hpp"
#include "core/lockstep_usd.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "runner/sweep.hpp"
#include "sim/registry.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using core::BatchedOptions;
using core::BatchedUsdSimulator;
using core::ChunkOptions;
using core::ChunkPolicy;
using core::LockstepRoundEngine;
using core::StepMode;
using core::UsdOptions;
using core::UsdSimulator;
using pp::Configuration;

constexpr std::uint64_t kNoCap = ~std::uint64_t{0};

std::vector<std::uint64_t> seeds_for(std::uint64_t base, std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t t = 0; t < count; ++t) {
    seeds[t] = rng::stream_seed(base, static_cast<std::uint64_t>(t));
  }
  return seeds;
}

/// The tentpole contract: trial t of a lockstep batch is bit-for-bit the
/// scalar BatchedUsdSimulator run with seeds[t] — same interactions, same
/// chunk count (including halved retries), same winner, same final
/// counts.
void expect_bit_identical_to_scalar(const Configuration& x0,
                                    const ChunkOptions& options,
                                    std::uint64_t seed_base,
                                    std::size_t trials) {
  const auto seeds = seeds_for(seed_base, trials);
  LockstepRoundEngine lockstep(x0, seeds, options);
  lockstep.advance_all(kNoCap);
  for (std::size_t t = 0; t < trials; ++t) {
    BatchedUsdSimulator scalar(x0, rng::Rng(seeds[t]), options);
    ASSERT_TRUE(scalar.run_to_consensus(kNoCap)) << "trial " << t;
    ASSERT_TRUE(lockstep.is_consensus(t)) << "trial " << t;
    EXPECT_EQ(lockstep.interactions(t), scalar.interactions())
        << "trial " << t;
    EXPECT_EQ(lockstep.chunks(t), scalar.chunks()) << "trial " << t;
    EXPECT_EQ(lockstep.consensus_opinion(t), scalar.consensus_opinion())
        << "trial " << t;
    const auto counts = lockstep.counts(t);
    for (int j = 0; j < x0.k(); ++j) {
      EXPECT_EQ(counts[static_cast<std::size_t>(j)], scalar.opinion(j))
          << "trial " << t << " opinion " << j;
    }
    EXPECT_EQ(lockstep.undecided(t), scalar.undecided()) << "trial " << t;
  }
}

TEST(Lockstep, BitIdenticalToScalarFixedChunks) {
  expect_bit_identical_to_scalar(Configuration::uniform(3000, 4, 300),
                                 ChunkOptions{}, 801, 8);
}

TEST(Lockstep, BitIdenticalToScalarAdaptiveChunks) {
  expect_bit_identical_to_scalar(
      Configuration::uniform(3000, 4, 300),
      ChunkOptions{.policy = ChunkPolicy::kAdaptive}, 802, 8);
}

TEST(Lockstep, BitIdenticalToScalarWithBiasedStart) {
  expect_bit_identical_to_scalar(
      Configuration({2600, 2000, 1400}, 1000),
      ChunkOptions{.policy = ChunkPolicy::kAdaptive}, 803, 6);
}

TEST(Lockstep, BatchCompositionDoesNotChangeAnyStream) {
  // A trial's draw sequence depends only on its own seed: running it
  // alone must equal running it shoulder-to-shoulder with six others.
  const auto x0 = Configuration::uniform(2000, 3, 200);
  const auto seeds = seeds_for(804, 7);
  LockstepRoundEngine batch(x0, seeds, ChunkOptions{});
  batch.advance_all(kNoCap);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    LockstepRoundEngine solo(
        x0, std::span<const std::uint64_t>(&seeds[t], 1), ChunkOptions{});
    solo.advance_all(kNoCap);
    EXPECT_EQ(batch.interactions(t), solo.interactions(0)) << "trial " << t;
    EXPECT_EQ(batch.chunks(t), solo.chunks(0)) << "trial " << t;
    EXPECT_EQ(batch.consensus_opinion(t), solo.consensus_opinion(0))
        << "trial " << t;
  }
}

TEST(Lockstep, RepeatedRunsAreDeterministic) {
  const auto x0 = Configuration::uniform(2500, 3, 0);
  const auto seeds = seeds_for(805, 5);
  LockstepRoundEngine a(x0, seeds, ChunkOptions{});
  LockstepRoundEngine b(x0, seeds, ChunkOptions{});
  a.advance_all(kNoCap);
  b.advance_all(kNoCap);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    EXPECT_EQ(a.interactions(t), b.interactions(t));
    EXPECT_EQ(a.chunks(t), b.chunks(t));
    EXPECT_EQ(a.consensus_opinion(t), b.consensus_opinion(t));
  }
}

TEST(Lockstep, PartialAdvanceLandsExactlyOnTarget) {
  // Chunks are clamped so every still-running trial stops at exactly the
  // interaction target, never past it.
  const auto x0 = Configuration::uniform(5000, 4, 500);
  const auto seeds = seeds_for(806, 6);
  LockstepRoundEngine kernel(x0, seeds, ChunkOptions{});
  const std::uint64_t target = 2000;
  kernel.advance_all(target);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    EXPECT_LE(kernel.interactions(t), target);
    if (!kernel.is_consensus(t)) {
      EXPECT_EQ(kernel.interactions(t), target) << "trial " << t;
    }
  }
}

TEST(Lockstep, FinishedTrialsAreMaskedOut) {
  // Once a trial reaches consensus it is frozen: further advance_all
  // calls must not move its interaction clock or its counts, while the
  // stragglers keep running.
  const auto x0 = Configuration::uniform(600, 2, 0);
  const auto seeds = seeds_for(807, 12);
  LockstepRoundEngine kernel(x0, seeds, ChunkOptions{});
  // Step in small increments until at least one trial has finished while
  // another is still running — the mixed regime masking must handle.
  std::uint64_t target = 0;
  while (kernel.unfinished() == seeds.size() && target < 100'000'000) {
    target += 600;
    kernel.advance_all(target);
  }
  ASSERT_LT(kernel.unfinished(), seeds.size());
  std::vector<bool> was_done(seeds.size());
  std::vector<std::uint64_t> snapshot_interactions(seeds.size());
  std::vector<std::vector<pp::Count>> snapshot_counts(seeds.size());
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    was_done[t] = kernel.is_consensus(t);
    snapshot_interactions[t] = kernel.interactions(t);
    const auto counts = kernel.counts(t);
    snapshot_counts[t].assign(counts.begin(), counts.end());
  }
  kernel.advance_all(kNoCap);
  EXPECT_EQ(kernel.unfinished(), 0u);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    if (!was_done[t]) continue;
    EXPECT_EQ(kernel.interactions(t), snapshot_interactions[t])
        << "trial " << t;
    const auto counts = kernel.counts(t);
    for (int j = 0; j < x0.k(); ++j) {
      EXPECT_EQ(counts[static_cast<std::size_t>(j)],
                snapshot_counts[t][static_cast<std::size_t>(j)])
          << "trial " << t << " opinion " << j;
    }
  }
}

TEST(Lockstep, RejectsEmptyBatchAndAllUndecidedStart) {
  const auto x0 = Configuration::uniform(100, 2, 0);
  const std::vector<std::uint64_t> none;
  EXPECT_THROW(LockstepRoundEngine(x0, none, ChunkOptions{}),
               util::CheckError);
  const auto all_undecided = Configuration({0, 0}, 50);
  const auto seeds = seeds_for(808, 2);
  EXPECT_THROW(LockstepRoundEngine(all_undecided, seeds, ChunkOptions{}),
               util::CheckError);
}

TEST(Lockstep, ConsensusTimesMatchExactChainInDistribution) {
  // Same KS bar the scalar batched engine clears: lockstep tau-leap
  // consensus times vs the exact asynchronous chain, alpha = 0.001.
  const auto x0 = Configuration::uniform(400, 3, 0);
  const int trials = 350;
  std::vector<double> exact;
  exact.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    UsdSimulator sim(
        x0,
        rng::Rng(rng::stream_seed(2400, static_cast<std::uint64_t>(t))),
        UsdOptions{StepMode::kEveryInteraction});
    ASSERT_TRUE(sim.run_to_consensus(100'000'000));
    exact.push_back(static_cast<double>(sim.interactions()));
  }
  const auto seeds = seeds_for(2401, static_cast<std::size_t>(trials));
  LockstepRoundEngine kernel(x0, seeds, ChunkOptions{});
  kernel.advance_all(kNoCap);
  std::vector<double> lockstep;
  lockstep.reserve(trials);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    ASSERT_TRUE(kernel.is_consensus(t));
    lockstep.push_back(static_cast<double>(kernel.interactions(t)));
  }
  EXPECT_LT(stats::ks_statistic(exact, lockstep),
            stats::ks_threshold(exact.size(), lockstep.size(), 0.001));
}

TEST(Lockstep, RegistryEngineMatchesBatchedEngine) {
  // The batched-lockstep Engine adapter (a batch of one) must replay the
  // plain batched engine bit for bit under the same seed and options.
  const auto x0 = Configuration::uniform(2000, 3, 200);
  auto& registry = sim::Registry::instance();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto scalar = registry.create("batched", x0, seed);
    const auto lockstep = registry.create("batched-lockstep", x0, seed);
    ASSERT_TRUE(scalar->run_to_consensus(scalar->default_budget()));
    ASSERT_TRUE(lockstep->run_to_consensus(lockstep->default_budget()));
    EXPECT_EQ(lockstep->elapsed(), scalar->elapsed()) << "seed " << seed;
    EXPECT_EQ(lockstep->consensus_opinion(), scalar->consensus_opinion())
        << "seed " << seed;
    EXPECT_EQ(lockstep->parallel_time(), scalar->parallel_time())
        << "seed " << seed;
  }
}

/// Render header + streamed rows into one string (byte-identity witness).
std::string render(const runner::Sweep& sweep) {
  std::string out;
  for (const auto& col : runner::Sweep::csv_header()) out += col + ",";
  out += "\n";
  sweep.run([&out](const runner::SweepCell& cell) {
    for (const auto& field : runner::Sweep::csv_row(cell)) {
      out += field + ",";
    }
    out += "\n";
  });
  return out;
}

TEST(Lockstep, SweepOutputIsByteIdenticalAcrossStripesAndThreads) {
  // Per-trial lockstep is bit-identical stream for stream, so a stripe of
  // any width routes through one kernel call over exactly the per-trial
  // seeds the scalar path would use — output cannot depend on thread
  // scheduling or on how trials are cut into stripes.
  runner::SweepSpec spec;
  spec.ns = {400, 900};
  spec.ks = {2, 3};
  spec.engines = {"batched-lockstep"};
  spec.undecided_fraction = 0.1;
  spec.trials = 4;
  spec.master_seed = 77;
  spec.threads = 1;
  const std::string sequential = render(runner::Sweep(spec));
  for (const std::size_t threads : {2u, 6u}) {
    for (const std::size_t width : {1u, 3u, 64u}) {
      spec.threads = threads;
      spec.stripe_width = width;
      EXPECT_EQ(render(runner::Sweep(spec)), sequential)
          << threads << " threads, stripe width " << width;
    }
  }
}

TEST(Lockstep, SweepMatchesScalarBatchedEngineCellForCell) {
  // Per-stream bit-identity lifts to the sweep: the batched-lockstep
  // column of a sweep equals the batched column on every numeric field
  // (only the engine name differs), because the kernel replays the exact
  // per-trial streams run_trials would have handed the scalar engine.
  // Two single-engine sweeps so the grid indices — and therefore the
  // per-point and per-trial seeds — line up exactly.
  runner::SweepSpec spec;
  spec.ns = {500};
  spec.ks = {2, 4};
  spec.engines = {"batched"};
  spec.undecided_fraction = 0.2;
  spec.trials = 5;
  spec.master_seed = 91;
  spec.threads = 2;
  const auto collect = [](const runner::SweepSpec& s) {
    std::vector<std::vector<std::string>> rows;
    runner::Sweep(s).run([&rows](const runner::SweepCell& cell) {
      rows.push_back(runner::Sweep::csv_row(cell));
    });
    return rows;
  };
  const auto batched_rows = collect(spec);
  spec.engines = {"batched-lockstep"};
  const auto lockstep_rows = collect(spec);
  const auto header = runner::Sweep::csv_header();
  ASSERT_EQ(batched_rows.size(), 2u);
  ASSERT_EQ(lockstep_rows.size(), batched_rows.size());
  for (std::size_t i = 0; i < batched_rows.size(); ++i) {
    for (std::size_t col = 0; col < header.size(); ++col) {
      if (header[col] == "engine") {
        EXPECT_EQ(batched_rows[i][col], "batched");
        EXPECT_EQ(lockstep_rows[i][col], "batched-lockstep");
        continue;
      }
      EXPECT_EQ(lockstep_rows[i][col], batched_rows[i][col])
          << "row " << i << " column " << header[col];
    }
  }

  // Satellite contract: cutting the 5 trials into sub-width stripes
  // routes each stripe through its own kernel call over per-trial seeds,
  // so the rows stay pinned to the same scalar-batched streams.
  spec.stripe_width = 2;
  EXPECT_EQ(collect(spec), lockstep_rows);
  spec.stripe_width = 1;
  EXPECT_EQ(collect(spec), lockstep_rows);
}

// ---- shared chunk schedule ----
//
// LockstepSchedule::kShared trades the per-stream bit-identity contract
// (one controller + one rng per trial) for one controller and one
// counter-based Philox uniform stream driving the whole batch. What it
// must keep: self-determinism (the stream is counter-based and consumed
// in a fixed family-outer / trial-inner order) and distributional
// fidelity against the exact chain.

using core::LockstepOptions;
using core::LockstepSchedule;

LockstepOptions shared_options(ChunkOptions chunk = {}) {
  return LockstepOptions{chunk, LockstepSchedule::kShared};
}

TEST(LockstepShared, DeterministicAcrossRuns) {
  // Byte-identical replay: same seeds, same options -> same interactions,
  // chunk counts, winner, and final configuration for every trial.
  const auto x0 = Configuration::uniform(2000, 3, 200);
  const auto seeds = seeds_for(901, 6);
  for (const auto policy : {ChunkPolicy::kFixed, ChunkPolicy::kAdaptive}) {
    const auto options = shared_options(ChunkOptions{.policy = policy});
    LockstepRoundEngine a(x0, seeds, options);
    LockstepRoundEngine b(x0, seeds, options);
    a.advance_all(kNoCap);
    b.advance_all(kNoCap);
    for (std::size_t t = 0; t < seeds.size(); ++t) {
      ASSERT_TRUE(a.is_consensus(t)) << "trial " << t;
      EXPECT_EQ(a.interactions(t), b.interactions(t)) << "trial " << t;
      EXPECT_EQ(a.chunks(t), b.chunks(t)) << "trial " << t;
      EXPECT_EQ(a.consensus_opinion(t), b.consensus_opinion(t))
          << "trial " << t;
      EXPECT_EQ(a.undecided(t), b.undecided(t)) << "trial " << t;
      const auto counts_a = a.counts(t);
      const auto counts_b = b.counts(t);
      for (int j = 0; j < x0.k(); ++j) {
        EXPECT_EQ(counts_a[static_cast<std::size_t>(j)],
                  counts_b[static_cast<std::size_t>(j)])
            << "trial " << t << " opinion " << j;
      }
    }
  }
}

TEST(LockstepShared, ScheduleSelectionIsWired) {
  const auto x0 = Configuration::uniform(1000, 3, 100);
  const auto seeds = seeds_for(902, 3);
  LockstepRoundEngine per_trial(x0, seeds, ChunkOptions{});
  LockstepRoundEngine shared(x0, seeds, shared_options());
  EXPECT_EQ(per_trial.schedule(), LockstepSchedule::kPerTrial);
  EXPECT_EQ(shared.schedule(), LockstepSchedule::kShared);
}

TEST(LockstepShared, ConsensusTimesMatchExactChainInDistribution) {
  // The shared schedule gives up per-stream bit-identity, so the KS gate
  // against the exact asynchronous chain is its correctness contract
  // (alpha = 0.001, same bar as the per-trial schedule above).
  const auto x0 = Configuration::uniform(400, 3, 0);
  const int trials = 350;
  std::vector<double> exact;
  exact.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    UsdSimulator sim(
        x0,
        rng::Rng(rng::stream_seed(2402, static_cast<std::uint64_t>(t))),
        UsdOptions{StepMode::kEveryInteraction});
    ASSERT_TRUE(sim.run_to_consensus(100'000'000));
    exact.push_back(static_cast<double>(sim.interactions()));
  }
  const auto seeds = seeds_for(2403, static_cast<std::size_t>(trials));
  LockstepRoundEngine kernel(x0, seeds, shared_options());
  kernel.advance_all(kNoCap);
  std::vector<double> shared;
  shared.reserve(trials);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    ASSERT_TRUE(kernel.is_consensus(t));
    shared.push_back(static_cast<double>(kernel.interactions(t)));
  }
  EXPECT_LT(stats::ks_statistic(exact, shared),
            stats::ks_threshold(exact.size(), shared.size(), 0.001));
}

TEST(LockstepShared, SweepOutputIsByteIdenticalAcrossThreads) {
  // Self-determinism must survive the sweep wiring: the shared stream is
  // consumed inside one kernel call per cell, so thread count and
  // work-stealing scheduling cannot perturb the output.
  runner::SweepSpec spec;
  spec.ns = {400, 900};
  spec.ks = {2, 3};
  spec.engines = {"batched-lockstep"};
  spec.lockstep_schedule = LockstepSchedule::kShared;
  spec.undecided_fraction = 0.1;
  spec.trials = 4;
  spec.master_seed = 77;
  spec.threads = 1;
  const std::string sequential = render(runner::Sweep(spec));
  for (const std::size_t threads : {2u, 6u}) {
    for (const std::size_t width : {1u, 8u}) {
      // Shared-schedule cells collapse to a single whole-cell unit no
      // matter the requested stripe width — one controller drives the
      // whole cohort, so striping would change the shared stream.
      spec.threads = threads;
      spec.stripe_width = width;
      EXPECT_EQ(render(runner::Sweep(spec)), sequential)
          << threads << " threads, stripe width " << width;
    }
  }
}

TEST(LockstepShared, PartialAdvanceLandsExactlyOnTarget) {
  // The per-trial clamp (m <= target - interactions) must hold even when
  // the proposal comes from the shared controller's min-bound schedule.
  const auto x0 = Configuration::uniform(5000, 4, 500);
  const auto seeds = seeds_for(903, 6);
  LockstepRoundEngine kernel(x0, seeds, shared_options());
  kernel.advance_all(2000);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    if (!kernel.is_consensus(t)) {
      EXPECT_EQ(kernel.interactions(t), 2000u) << "trial " << t;
    }
  }
}

}  // namespace
}  // namespace kusd
