// run_usd: the high-level entry point (integration of simulator + phase
// tracker + outcome classification).
#include <gtest/gtest.h>

#include "core/budget.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"

namespace kusd {
namespace {

using runner::run_usd;
using runner::RunOptions;
using pp::Configuration;

TEST(RunUsd, ConvergesAndClassifiesOutcome) {
  const auto x0 = Configuration::with_additive_bias(5000, 4, 0, 600);
  const auto result = run_usd(x0, 42);
  ASSERT_TRUE(result.converged);
  EXPECT_GE(result.winner, 0);
  EXPECT_LT(result.winner, 4);
  EXPECT_EQ(result.initial_plurality, 0);
  EXPECT_GT(result.interactions, 0u);
  EXPECT_NEAR(result.parallel_time,
              static_cast<double>(result.interactions) / 5000.0, 1e-9);
}

TEST(RunUsd, PhasesCompleteAndOrdered) {
  const auto x0 = Configuration::uniform(20000, 4, 0);
  const auto result = run_usd(x0, 7);
  ASSERT_TRUE(result.converged);
  const auto& ph = result.phases;
  ASSERT_TRUE(ph.complete());
  EXPECT_LE(*ph.t1, *ph.t2);
  EXPECT_LE(*ph.t2, *ph.t3);
  EXPECT_LE(*ph.t3, *ph.t4);
  EXPECT_LE(*ph.t4, *ph.t5);
  // T5 is the consensus time up to observation resolution.
  EXPECT_LE(*ph.t5, result.interactions);
}

TEST(RunUsd, HugeBiasMakesPluralityWin) {
  const auto x0 = Configuration({9000, 500, 500}, 0);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = run_usd(x0, seed);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(result.plurality_won) << "seed " << seed;
    EXPECT_TRUE(result.winner_initially_significant);
  }
}

TEST(RunUsd, UnbiasedWinnerIsInitiallySignificant) {
  // Theorem 2's no-bias clause: the winner is a significant opinion.
  const auto x0 = Configuration::uniform(20000, 5, 0);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto result = run_usd(x0, seed);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(result.winner_initially_significant) << "seed " << seed;
  }
}

TEST(RunUsd, DisconnectedGraphShortCircuitsAtDefaultBudget) {
  // Parity with the sweep's guard: `kusd run --engine graph --graph
  // er:<tiny p>` must consult the engine's topology_connected() at
  // construction and report the would-be timeout instead of grinding
  // through the full default cap.
  const auto x0 = Configuration::uniform(2000, 2, 0);
  RunOptions options;
  options.engine = "graph";
  options.graph = sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 1e-4};
  const auto result = run_usd(x0, 3, options);
  EXPECT_FALSE(result.converged);
  // The reported horizon is the engine's own default budget.
  EXPECT_EQ(result.interactions, core::default_interaction_cap(2000, 2));
  EXPECT_DOUBLE_EQ(
      result.parallel_time,
      static_cast<double>(core::default_interaction_cap(2000, 2)) / 2000.0);
  // Nothing was simulated, so no phase was ever observed.
  EXPECT_FALSE(result.phases.t1.has_value());

  // The aggregated engine short-circuits through its degree classes.
  options.engine = "graph-batched";
  const auto aggregated = run_usd(x0, 3, options);
  EXPECT_FALSE(aggregated.converged);
  EXPECT_EQ(aggregated.interactions, core::default_interaction_cap(2000, 2));
}

TEST(RunUsd, ExplicitCapRunsDisconnectedGraphHonestly) {
  // An explicit cap bounds the cost the caller chose, so the run is
  // simulated for real (parity with the sweep's --budget semantics).
  const auto x0 = Configuration::uniform(2000, 2, 0);
  RunOptions options;
  options.engine = "graph";
  options.graph = sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 1e-4};
  options.max_interactions = 5000;
  const auto result = run_usd(x0, 3, options);
  EXPECT_FALSE(result.converged);
  // The engine genuinely stepped to the cap instead of reporting it.
  EXPECT_EQ(result.interactions, 5000u);
}

TEST(RunUsd, ConsensusAtStartIsExemptFromTheShortCircuit) {
  // A population already at consensus is consensus on any topology.
  const auto x0 = Configuration({2000, 0}, 0);
  RunOptions options;
  options.engine = "graph";
  options.graph = sim::GraphSpec{sim::GraphSpec::Kind::kErdosRenyi, 4, 1e-4};
  const auto result = run_usd(x0, 3, options);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.winner, 0);
  EXPECT_EQ(result.interactions, 0u);
}

TEST(RunUsd, RespectsInteractionCap) {
  RunOptions opts;
  opts.max_interactions = 50;
  opts.track_phases = false;
  const auto result = run_usd(Configuration::uniform(10000, 8, 0), 3, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.winner, -1);
  EXPECT_GE(result.interactions, 50u);
}

TEST(RunUsd, DeterministicAcrossCalls) {
  const auto x0 = Configuration::uniform(3000, 3, 300);
  const auto a = run_usd(x0, 123);
  const auto b = run_usd(x0, 123);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.phases.t1, b.phases.t1);
  EXPECT_EQ(a.phases.t5, b.phases.t5);
}

TEST(RunUsd, PhaseTrackingOffLeavesPhasesEmpty) {
  RunOptions opts;
  opts.track_phases = false;
  const auto result =
      run_usd(Configuration::uniform(2000, 2, 0), 5, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.phases.t1.has_value());
}

TEST(RunUsd, DefaultCapScalesWithKAndN) {
  EXPECT_GT(core::default_interaction_cap(1000, 8),
            core::default_interaction_cap(1000, 2));
  EXPECT_GT(core::default_interaction_cap(100000, 2),
            core::default_interaction_cap(1000, 2));
}

TEST(RunUsd, DefaultInteractionCapSaturatesAtHugeN) {
  // Populations reachable by the batched engine push 64*k*n*(ln n + 1)
  // past uint64 range; the cap must saturate, not overflow (UB cast).
  EXPECT_EQ(core::default_interaction_cap(1'000'000'000'000'000'000ULL, 64),
            ~std::uint64_t{0});
  // Ordinary sizes are unaffected.
  EXPECT_LT(core::default_interaction_cap(100000, 8), ~std::uint64_t{0});
  EXPECT_GT(core::default_interaction_cap(100000, 8), 0u);
}

}  // namespace
}  // namespace kusd
