// Interaction graphs and the graph-restricted scheduler.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/usd.hpp"
#include "pp/graph.hpp"
#include "pp/graph_scheduler.hpp"
#include "protocols/classic.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using pp::InteractionGraph;

TEST(InteractionGraph, CompleteGraphShape) {
  const auto g = InteractionGraph::complete(10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 45u);
  EXPECT_TRUE(g.is_connected());
}

TEST(InteractionGraph, CycleShape) {
  const auto g = InteractionGraph::cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(g.is_connected());
}

TEST(InteractionGraph, RandomRegularDegreesNearD) {
  rng::Rng r(5);
  const auto g = InteractionGraph::random_regular(200, 4, r);
  EXPECT_TRUE(g.is_connected());
  std::vector<int> degree(200, 0);
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const auto [u, v] = g.edge(i);
    ++degree[u];
    ++degree[v];
  }
  // Configuration model with cleanup: average degree within 5% of d.
  double total = 0;
  for (int d : degree) total += d;
  EXPECT_NEAR(total / 200.0, 4.0, 0.2);
}

TEST(InteractionGraph, ErdosRenyiEdgeCountNearExpectation) {
  rng::Rng r(7);
  const std::uint32_t n = 500;
  const double p = 0.05;
  const auto g = InteractionGraph::erdos_renyi(n, p, r);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              5.0 * std::sqrt(expected));
  // Above the connectivity threshold (p >> ln n / n ~ 0.012).
  EXPECT_TRUE(g.is_connected());
}

TEST(InteractionGraph, ErdosRenyiPOneIsComplete) {
  rng::Rng r(9);
  const auto g = InteractionGraph::erdos_renyi(50, 1.0, r);
  EXPECT_EQ(g.num_edges(), 50u * 49u / 2u);
}

TEST(InteractionGraph, DisconnectedDetected) {
  rng::Rng r(11);
  // Tiny p: isolated vertices almost surely.
  const auto g = InteractionGraph::erdos_renyi(400, 0.002, r);
  EXPECT_FALSE(g.is_connected());
}

TEST(InteractionGraph, SamplePairUsesBothOrientations) {
  const auto g = InteractionGraph::cycle(3);
  rng::Rng r(13);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
  for (int i = 0; i < 6000; ++i) ++seen[g.sample_pair(r)];
  EXPECT_EQ(seen.size(), 6u);  // 3 edges x 2 orientations
  for (const auto& [pair, count] : seen) {
    EXPECT_NEAR(count, 1000, 150);
  }
}

TEST(InteractionGraph, RejectsInvalidParameters) {
  rng::Rng r(15);
  EXPECT_THROW(InteractionGraph::erdos_renyi(10, 0.0, r), util::CheckError);
  EXPECT_THROW(InteractionGraph::random_regular(10, 0, r),
               util::CheckError);
  EXPECT_THROW(InteractionGraph::random_regular(11, 3, r),  // n*d odd
               util::CheckError);
}

TEST(GraphScheduler, ConservesPopulationAndCounts) {
  core::UsdProtocol usd(3);
  const auto g = InteractionGraph::cycle(60);
  std::vector<int> init(60);
  for (int i = 0; i < 60; ++i) init[static_cast<std::size_t>(i)] = i % 3;
  pp::GraphScheduler sched(usd, g, init, rng::Rng(17));
  for (int i = 0; i < 20000; ++i) sched.step();
  std::uint64_t total = 0;
  for (auto c : sched.counts()) total += c;
  EXPECT_EQ(total, 60u);
  // Recount from the state array.
  std::vector<std::uint64_t> recount(4, 0);
  for (int s : sched.states()) ++recount[static_cast<std::size_t>(s)];
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(recount[s], sched.counts()[s]);
  }
}

TEST(GraphScheduler, RejectsBadInitialStates) {
  core::UsdProtocol usd(2);
  const auto g = InteractionGraph::cycle(5);
  EXPECT_THROW(pp::GraphScheduler(usd, g, {0, 1, 2, 3, 9}, rng::Rng(1)),
               util::CheckError);
  EXPECT_THROW(pp::GraphScheduler(usd, g, {0, 1}, rng::Rng(1)),
               util::CheckError);
}

TEST(GraphScheduler, UsdReachesConsensusOnCompleteGraph) {
  core::UsdProtocol usd(2);
  const auto g = InteractionGraph::complete(80);
  std::vector<int> init(80);
  for (int i = 0; i < 80; ++i) init[static_cast<std::size_t>(i)] = i % 2;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    pp::GraphScheduler sched(usd, g, init, rng::Rng(seed));
    sched.run_until(
        [](std::span<const std::uint64_t> c) {
          return c[0] == 80 || c[1] == 80;
        },
        10'000'000);
    EXPECT_TRUE(sched.counts()[0] == 80 || sched.counts()[1] == 80);
  }
}

TEST(GraphScheduler, UsdSlowerOnCycleThanCompleteGraph) {
  // On the cycle information travels locally: consensus takes far longer
  // than on the complete graph — the reason the paper's complete-graph
  // assumption matters.
  core::UsdProtocol usd(2);
  const std::uint32_t n = 64;
  std::vector<int> init(n);
  // Adversarial split: two contiguous blocks.
  for (std::uint32_t i = 0; i < n; ++i) {
    init[i] = i < n / 2 ? 0 : 1;
  }
  const auto complete = InteractionGraph::complete(n);
  const auto cycle = InteractionGraph::cycle(n);
  double complete_total = 0.0, cycle_total = 0.0;
  const int trials = 10;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    pp::GraphScheduler a(usd, complete, init, rng::Rng(100 + seed));
    a.run_until(
        [n](std::span<const std::uint64_t> c) {
          return c[0] == n || c[1] == n;
        },
        100'000'000);
    complete_total += static_cast<double>(a.steps());
    pp::GraphScheduler b(usd, cycle, init, rng::Rng(200 + seed));
    b.run_until(
        [n](std::span<const std::uint64_t> c) {
          return c[0] == n || c[1] == n;
        },
        100'000'000);
    cycle_total += static_cast<double>(b.steps());
  }
  EXPECT_GT(cycle_total, 2.0 * complete_total);
}

TEST(GraphScheduler, EpidemicCoversConnectedGraph) {
  protocols::EpidemicProtocol epidemic;
  rng::Rng gr(23);
  const auto g = InteractionGraph::random_regular(100, 4, gr);
  ASSERT_TRUE(g.is_connected());
  std::vector<int> init(100, protocols::EpidemicProtocol::kSusceptible);
  init[0] = protocols::EpidemicProtocol::kInfected;
  pp::GraphScheduler sched(epidemic, g, init, rng::Rng(29));
  sched.run_until(
      [](std::span<const std::uint64_t> c) { return c[1] == 100; },
      50'000'000);
  EXPECT_EQ(sched.counts()[1], 100u);
}

}  // namespace
}  // namespace kusd
