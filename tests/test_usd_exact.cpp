// General-k exact solver: cross-validation against the dedicated k=2
// solver, symmetry properties, and Monte-Carlo agreement for k=3.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/markov_exact.hpp"
#include "analysis/usd_exact.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using analysis::Usd2ExactSolver;
using analysis::UsdExactSolver;

TEST(UsdExactSolver, AgreesWithDedicatedTwoOpinionSolver) {
  const pp::Count n = 12;
  Usd2ExactSolver two(n);
  UsdExactSolver general(n, 2);
  for (pp::Count x0 = 0; x0 <= n; ++x0) {
    for (pp::Count x1 = 0; x0 + x1 <= n; ++x1) {
      if (x0 + x1 == 0) continue;
      EXPECT_NEAR(general.expected_consensus_time({x0, x1}),
                  two.expected_consensus_time(x0, x1), 1e-6)
          << x0 << "," << x1;
      EXPECT_NEAR(general.win_probability({x0, x1}, 0),
                  two.win_probability(x0, x1), 1e-9)
          << x0 << "," << x1;
    }
  }
}

TEST(UsdExactSolver, WinProbabilitiesSumToOne) {
  UsdExactSolver solver(10, 3);
  for (const auto& x : {std::vector<pp::Count>{3, 3, 3},
                        std::vector<pp::Count>{5, 2, 1},
                        std::vector<pp::Count>{1, 1, 1},
                        std::vector<pp::Count>{8, 1, 1}}) {
    double total = 0.0;
    for (int i = 0; i < 3; ++i) total += solver.win_probability(x, i);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(UsdExactSolver, SymmetricOpinionsHaveEqualWinProbability) {
  UsdExactSolver solver(9, 3);
  const std::vector<pp::Count> x{3, 3, 3};
  const double w0 = solver.win_probability(x, 0);
  EXPECT_NEAR(w0, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(solver.win_probability(x, 1), w0, 1e-9);
  EXPECT_NEAR(solver.win_probability(x, 2), w0, 1e-9);
  // Partial symmetry: opinions 1 and 2 tied below opinion 0.
  const std::vector<pp::Count> y{5, 2, 2};
  EXPECT_NEAR(solver.win_probability(y, 1), solver.win_probability(y, 2),
              1e-9);
  EXPECT_GT(solver.win_probability(y, 0), solver.win_probability(y, 1));
}

TEST(UsdExactSolver, ZeroSupportNeverWins) {
  UsdExactSolver solver(8, 3);
  const std::vector<pp::Count> x{5, 3, 0};
  EXPECT_DOUBLE_EQ(solver.win_probability(x, 2), 0.0);
}

TEST(UsdExactSolver, MoreUndecidedMeansLongerRun) {
  UsdExactSolver solver(12, 2);
  // Same supports, more undecided agents: strictly more work remains.
  EXPECT_GT(solver.expected_consensus_time({4, 2}),
            solver.expected_consensus_time({8, 4}) * 0.5);
  EXPECT_GT(solver.expected_consensus_time({2, 1}),
            solver.expected_consensus_time({8, 4}));
}

TEST(UsdExactSolver, RejectsBadQueries) {
  UsdExactSolver solver(6, 2);
  EXPECT_THROW((void)solver.win_probability({0, 0}, 0), util::CheckError);
  EXPECT_THROW((void)solver.win_probability({3, 2}, 5), util::CheckError);
  EXPECT_THROW((void)solver.expected_consensus_time({7, 0}),
               util::CheckError);
  EXPECT_THROW(UsdExactSolver(100, 4), util::CheckError);  // too large
}

TEST(UsdExactSolver, ThreeOpinionMonteCarloAgreement) {
  const pp::Count n = 9;
  UsdExactSolver solver(n, 3);
  const std::vector<pp::Count> start{4, 2, 1};  // u = 2
  const double exact_time = solver.expected_consensus_time(start);
  const double exact_w0 = solver.win_probability(start, 0);

  const pp::Configuration x0(start, n - 7);
  const int trials = 30000;
  double time_total = 0.0;
  int wins0 = 0;
  for (int t = 0; t < trials; ++t) {
    core::UsdSimulator sim(x0, rng::Rng(rng::stream_seed(31337, t)));
    ASSERT_TRUE(sim.run_to_consensus(10'000'000));
    time_total += static_cast<double>(sim.interactions());
    wins0 += sim.consensus_opinion() == 0 ? 1 : 0;
  }
  EXPECT_NEAR(time_total / trials, exact_time, 0.03 * exact_time);
  const double se = std::sqrt(exact_w0 * (1 - exact_w0) / trials);
  EXPECT_NEAR(static_cast<double>(wins0) / trials, exact_w0, 5 * se);
}

// Theorem 2's bias threshold, exactly: the win probability of the
// plurality grows monotonically with the additive bias.
TEST(UsdExactSolver, WinProbabilityMonotoneInBias) {
  const pp::Count n = 14;
  UsdExactSolver solver(n, 2);
  double prev = 0.0;
  for (pp::Count x0 = 7; x0 <= 14; ++x0) {
    const double w = solver.win_probability({x0, 14 - x0}, 0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

}  // namespace
}  // namespace kusd
