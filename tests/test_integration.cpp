// End-to-end integration tests: miniature versions of the paper's claims
// (Theorem 2 and the phase structure) that must hold at test scale.
#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "core/bias.hpp"
#include "core/budget.hpp"
#include "runner/run.hpp"
#include "pp/configuration.hpp"
#include "runner/trials.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace kusd {
namespace {

using runner::run_usd;
using runner::RunOptions;
using pp::Configuration;

RunOptions fast_opts() {
  RunOptions opts;
  opts.track_phases = false;
  return opts;
}

// Theorem 2(2): with an additive bias of Omega(sqrt(n log n)) the plurality
// wins w.h.p.
TEST(Theorem2, AdditiveBiasPluralityWins) {
  const pp::Count n = 20000;
  const int k = 5;
  const auto beta = static_cast<pp::Count>(
      4.0 * std::sqrt(static_cast<double>(n) *
                      std::log(static_cast<double>(n))));
  const auto x0 = Configuration::with_additive_bias(n, k, 0, beta);
  const auto results = runner::run_trials<int>(
      30, 555,
      [&x0](std::uint64_t seed) {
        const auto r = run_usd(x0, seed, fast_opts());
        return r.converged && r.plurality_won ? 1 : 0;
      });
  int wins = 0;
  for (int w : results) wins += w;
  EXPECT_GE(wins, 28) << "plurality must win w.h.p. under additive bias";
}

// Theorem 2(1): multiplicative bias gives a strictly faster convergence
// than the additive-bias regime on the same (n, k).
TEST(Theorem2, MultiplicativeBiasIsFasterThanNoBias) {
  const pp::Count n = 20000;
  const int k = 8;
  const auto mult = Configuration::with_multiplicative_bias(n, k, 0, 1.5);
  const auto flat = Configuration::uniform(n, k, 0);
  const auto t_mult = runner::run_trials_samples(
      12, 888, [&mult](std::uint64_t seed) {
        return static_cast<double>(run_usd(mult, seed, fast_opts())
                                       .interactions);
      });
  const auto t_flat = runner::run_trials_samples(
      12, 889, [&flat](std::uint64_t seed) {
        return static_cast<double>(run_usd(flat, seed, fast_opts())
                                       .interactions);
      });
  EXPECT_LT(t_mult.mean(), t_flat.mean());
}

// Theorem 2(3): no bias still converges (to a significant opinion) within
// the O(k n log n) budget.
TEST(Theorem2, NoBiasConvergesWithinBudget) {
  const pp::Count n = 20000;
  const int k = 8;
  const auto x0 = Configuration::uniform(n, k, 0);
  const double budget = 64.0 * k * static_cast<double>(n) *
                        std::log(static_cast<double>(n));
  const auto results = runner::run_trials<double>(
      16, 111, [&x0](std::uint64_t seed) {
        const auto r = run_usd(x0, seed, fast_opts());
        EXPECT_TRUE(r.converged);
        EXPECT_TRUE(r.winner_initially_significant);
        return static_cast<double>(r.interactions);
      });
  for (double t : results) EXPECT_LE(t, budget);
}

// The assumption u(0) <= (n - x1(0))/2 from Theorem 2 is honored and the
// process still converges starting with many undecided agents.
TEST(Theorem2, ToleratesInitialUndecided) {
  const pp::Count n = 10000;
  const int k = 4;
  const auto x0 = Configuration::uniform(n, k, (n - n / k) / 2);
  const auto r = run_usd(x0, 99);
  EXPECT_TRUE(r.converged);
}

// Phase structure: on unbiased starts Phase 1 completes within O(n log n)
// interactions (Lemma 1 gives 7 n ln n explicitly).
TEST(Phases, PhaseOneEndsWithinLemma1Bound) {
  const pp::Count n = 50000;
  const auto x0 = Configuration::uniform(n, 8, 0);
  const double bound = 7.0 * static_cast<double>(n) *
                       std::log(static_cast<double>(n));
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto r = run_usd(x0, seed);
    ASSERT_TRUE(r.phases.t1.has_value());
    EXPECT_LE(static_cast<double>(*r.phases.t1), bound) << "seed " << seed;
  }
}

// Lemma 3 (upper bound on undecided agents): u(t) < n/2 throughout.
TEST(Phases, UndecidedStaysBelowHalf) {
  const pp::Count n = 20000;
  const auto x0 = Configuration::uniform(n, 6, 0);
  core::UsdSimulator sim(x0, rng::Rng(3));
  bool ok = true;
  sim.run_observed(core::default_interaction_cap(n, 6), n / 10,
                   [&ok, n](std::uint64_t, std::span<const pp::Count>,
                            pp::Count u) {
                     if (u >= n / 2) ok = false;
                   });
  EXPECT_TRUE(ok);
}

// Lemma 16 (Phase 5): from a 2/3 supermajority, consensus lands on that
// opinion within O(n log n) interactions.
TEST(Phases, SupermajorityWinsWithinNLogN) {
  const pp::Count n = 10000;
  const pp::Count rest = n - (2 * n / 3 + 1);
  const auto x0 = Configuration({2 * n / 3 + 1, rest / 2, rest - rest / 2},
                                0);
  const double bound = 40.0 * static_cast<double>(n) *
                       std::log(static_cast<double>(n));
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto r = run_usd(x0, seed, fast_opts());
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0) << "seed " << seed;
    EXPECT_LE(static_cast<double>(r.interactions), bound);
  }
}

// Scaling shape of Theorem 2(2): consensus time under additive bias grows
// roughly like n log n for fixed k (log-log exponent close to 1).
TEST(Theorem2, AdditiveBiasScalingExponent) {
  std::vector<double> ns, ts;
  for (pp::Count n : {4000u, 8000u, 16000u, 32000u}) {
    const auto beta = static_cast<pp::Count>(
        3.0 * std::sqrt(static_cast<double>(n) *
                        std::log(static_cast<double>(n))));
    const auto x0 = Configuration::with_additive_bias(n, 4, 0, beta);
    const auto samples = runner::run_trials_samples(
        10, 1000 + n, [&x0](std::uint64_t seed) {
          return static_cast<double>(
              run_usd(x0, seed, fast_opts()).interactions);
        });
    ns.push_back(static_cast<double>(n));
    ts.push_back(samples.mean());
  }
  const auto fit = stats::loglog_fit(ns, ts);
  // n log n on a log-log plot has local slope 1 + 1/ln n ~ 1.1; allow a
  // generous band that still excludes n^2 or sqrt(n) behavior.
  EXPECT_GT(fit.slope, 0.75);
  EXPECT_LT(fit.slope, 1.45);
}

}  // namespace
}  // namespace kusd
