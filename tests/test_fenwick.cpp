// Fenwick tree: randomized differential test against a brute-force mirror.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"
#include "urn/fenwick.hpp"

namespace kusd {
namespace {

TEST(Fenwick, BuildAndPrefix) {
  const std::vector<std::uint64_t> counts{5, 0, 3, 2, 7};
  urn::Fenwick f(counts);
  EXPECT_EQ(f.size(), 5u);
  EXPECT_EQ(f.total(), 17u);
  EXPECT_EQ(f.prefix(0), 5u);
  EXPECT_EQ(f.prefix(1), 5u);
  EXPECT_EQ(f.prefix(2), 8u);
  EXPECT_EQ(f.prefix(4), 17u);
}

TEST(Fenwick, ValueRecoversCounts) {
  const std::vector<std::uint64_t> counts{1, 4, 0, 9, 2, 2};
  urn::Fenwick f(counts);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(f.value(i), counts[i]);
  }
}

TEST(Fenwick, AddUpdatesPrefixAndTotal) {
  std::vector<std::uint64_t> counts{3, 3, 3};
  urn::Fenwick f(counts);
  f.add(1, +5);
  EXPECT_EQ(f.total(), 14u);
  EXPECT_EQ(f.value(1), 8u);
  f.add(1, -8);
  EXPECT_EQ(f.value(1), 0u);
  EXPECT_EQ(f.total(), 6u);
}

TEST(Fenwick, FindMapsPositionsToCategories) {
  const std::vector<std::uint64_t> counts{2, 0, 3, 1};
  urn::Fenwick f(counts);
  // Positions: [0,1] -> 0; [2,4] -> 2; [5] -> 3.
  EXPECT_EQ(f.find(0), 0u);
  EXPECT_EQ(f.find(1), 0u);
  EXPECT_EQ(f.find(2), 2u);
  EXPECT_EQ(f.find(4), 2u);
  EXPECT_EQ(f.find(5), 3u);
}

TEST(Fenwick, SingleCategory) {
  const std::vector<std::uint64_t> counts{10};
  urn::Fenwick f(counts);
  EXPECT_EQ(f.find(0), 0u);
  EXPECT_EQ(f.find(9), 0u);
}

// Property test across sizes: random adds and find() consistency with a
// brute-force prefix scan.
class FenwickSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FenwickSweep, MatchesBruteForce) {
  const std::size_t k = GetParam();
  rng::Rng r(1000 + k);
  std::vector<std::uint64_t> mirror(k);
  for (auto& c : mirror) c = r.bounded(20);
  urn::Fenwick f(mirror);

  for (int op = 0; op < 2000; ++op) {
    // Random mutation.
    const auto i = static_cast<std::size_t>(r.bounded(k));
    if (r.bernoulli(0.5) && mirror[i] > 0) {
      mirror[i] -= 1;
      f.add(i, -1);
    } else {
      mirror[i] += 1;
      f.add(i, +1);
    }
    // Spot-check invariants.
    std::uint64_t total = 0;
    for (auto c : mirror) total += c;
    ASSERT_EQ(f.total(), total);
    const auto j = static_cast<std::size_t>(r.bounded(k));
    std::uint64_t prefix = 0;
    for (std::size_t t = 0; t <= j; ++t) prefix += mirror[t];
    ASSERT_EQ(f.prefix(j), prefix);
    if (total > 0) {
      const std::uint64_t pos = r.bounded(total);
      // Brute-force find.
      std::size_t expected = 0;
      std::uint64_t acc = 0;
      while (acc + mirror[expected] <= pos) acc += mirror[expected++];
      ASSERT_EQ(f.find(pos), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FenwickSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 33, 100, 257,
                                           1024));

}  // namespace
}  // namespace kusd
