// Edge cases and cross-cutting invariants: tiny populations, degenerate
// opinion counts, extreme skews, and lower bounds that must hold on every
// single run.
#include <gtest/gtest.h>

#include <cstdint>

#include "runner/run.hpp"
#include "core/usd.hpp"
#include "gossip/gossip_usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

using core::StepMode;
using core::UsdOptions;
using core::UsdSimulator;
using pp::Configuration;

TEST(EdgeCases, TwoAgentsConverge) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    UsdSimulator sim(Configuration({1, 1}, 0), rng::Rng(seed));
    ASSERT_TRUE(sim.run_to_consensus(1'000'000));
    EXPECT_EQ(sim.opinion(sim.consensus_opinion()), 2u);
  }
}

TEST(EdgeCases, TwoAgentsSkipModeConverges) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    UsdSimulator sim(Configuration({1, 1}, 0), rng::Rng(seed),
                     UsdOptions{StepMode::kSkipUnproductive});
    ASSERT_TRUE(sim.run_to_consensus(1'000'000));
  }
}

TEST(EdgeCases, SingleAgentIsConsensusAlready) {
  UsdSimulator sim(Configuration({1}, 0), rng::Rng(1));
  EXPECT_TRUE(sim.is_consensus());
}

TEST(EdgeCases, OpinionsWithZeroSupportStayDead) {
  // k larger than the number of decided agents: most opinions start (and
  // must remain) at zero support — the USD never invents opinions.
  UsdSimulator sim(Configuration({5, 3, 0, 0, 0, 0, 0, 0}, 12),
                   rng::Rng(3));
  sim.run_to_consensus(10'000'000);
  ASSERT_TRUE(sim.is_consensus());
  EXPECT_LT(sim.consensus_opinion(), 2);
}

TEST(EdgeCases, KGreaterThanN) {
  // 4 agents, 8 opinions: only 4 opinions can have support.
  const auto x0 = Configuration::uniform(4, 8, 0);
  UsdSimulator sim(x0, rng::Rng(7));
  ASSERT_TRUE(sim.run_to_consensus(1'000'000));
}

TEST(EdgeCases, OneDecidedAgentAmongUndecided) {
  // The lone decided agent must win; also the fastest possible consensus
  // shape (pure adoption).
  for (auto mode : {StepMode::kEveryInteraction,
                    StepMode::kSkipUnproductive}) {
    UsdSimulator sim(Configuration({1, 0}, 999), rng::Rng(5),
                     UsdOptions{mode});
    ASSERT_TRUE(sim.run_to_consensus(100'000'000));
    EXPECT_EQ(sim.consensus_opinion(), 0);
  }
}

TEST(EdgeCases, ExtremeSkewSkipModeHandlesLowAcceptance) {
  // One giant opinion and one singleton: the skip engine's rejection
  // sampling has worst-case acceptance here; it must still be exact and
  // terminate. Opinion 0 should essentially always win.
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    UsdSimulator sim(Configuration({9999, 1}, 0), rng::Rng(seed),
                     UsdOptions{StepMode::kSkipUnproductive});
    ASSERT_TRUE(sim.run_to_consensus(1'000'000'000));
    wins += sim.consensus_opinion() == 0 ? 1 : 0;
  }
  EXPECT_EQ(wins, 20);
}

// Every run needs at least n - x_winner(0) interactions: each agent not
// initially holding the winning opinion must change state at least once,
// and an interaction changes at most one agent.
class LowerBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LowerBoundSweep, InteractionsAtLeastAgentsThatMustMove) {
  const std::uint64_t seed = GetParam();
  const auto x0 = Configuration::uniform(500, 4, 100);
  for (auto mode : {StepMode::kEveryInteraction,
                    StepMode::kSkipUnproductive}) {
    UsdSimulator sim(x0, rng::Rng(seed), UsdOptions{mode});
    ASSERT_TRUE(sim.run_to_consensus(100'000'000));
    const auto initial_support =
        x0.opinion(sim.consensus_opinion());
    EXPECT_GE(sim.interactions(), x0.n() - initial_support);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EdgeCases, GossipSingleOpinionWithUndecided) {
  gossip::GossipUsd g(Configuration({10}, 990), rng::Rng(11));
  ASSERT_TRUE(g.run_to_consensus(100000));
  EXPECT_EQ(g.consensus_opinion(), 0);
}

TEST(EdgeCases, GossipTwoAgents) {
  // From {1, 1} the synchronous rounds genuinely can absorb without
  // consensus: with probability 1/4 per round both agents flip undecided
  // simultaneously, and an all-undecided population never re-decides
  // (partners come from the pre-round configuration). So each seed must
  // end in one of exactly two absorbing states: consensus, or the
  // all-undecided trap — anything else within the budget is a bug.
  int converged = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    gossip::GossipUsd g(Configuration({1, 1}, 0), rng::Rng(seed));
    if (g.run_to_consensus(1'000'000)) {
      ++converged;
    } else {
      EXPECT_EQ(g.undecided(), 2u) << "seed " << seed;
    }
  }
  // P(trap) = 1/3 per seed: all 12 trapping has probability 3^-12.
  EXPECT_GT(converged, 0);
}

TEST(EdgeCases, RunUsdSmallestPopulation) {
  const auto r = runner::run_usd(Configuration({1, 1}, 0), 3);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.phases.complete());
}

TEST(EdgeCases, RunUsdCustomAlphaAffectsPhase2Detection) {
  // alpha = 100 puts the significance threshold above n at this scale, so
  // T2 (a unique significant opinion) can NEVER fire — and because later
  // phases wait for earlier ones, T3..T5 stay empty too, even though the
  // process itself converges. alpha only changes detection, not dynamics.
  const auto x0 = Configuration::uniform(2000, 3, 0);
  runner::RunOptions strict;
  strict.alpha = 100.0;
  const auto r = runner::run_usd(x0, 5, strict);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.phases.t1.has_value());
  EXPECT_FALSE(r.phases.t2.has_value());
  EXPECT_FALSE(r.phases.t5.has_value());
  // Same seed with the default alpha: identical dynamics, full phases.
  runner::RunOptions normal;
  const auto r2 = runner::run_usd(x0, 5, normal);
  EXPECT_EQ(r2.interactions, r.interactions);
  EXPECT_EQ(r2.winner, r.winner);
  EXPECT_TRUE(r2.phases.complete());
}

TEST(EdgeCases, ObserveIntervalOfOneSeesEveryProductiveStep) {
  const auto x0 = Configuration::uniform(50, 2, 0);
  UsdSimulator sim(x0, rng::Rng(9));
  std::uint64_t calls = 0;
  sim.run_observed(1'000'000, 1,
                   [&calls](std::uint64_t, std::span<const pp::Count>,
                            pp::Count) { ++calls; });
  ASSERT_TRUE(sim.is_consensus());
  // Initial + final + one per step.
  EXPECT_GE(calls, sim.interactions());
}

TEST(EdgeCases, ConfigurationSingleOpinionAllAgents) {
  const Configuration x({42}, 0);
  EXPECT_TRUE(x.is_consensus());
  EXPECT_EQ(x.argmax(), 0);
  EXPECT_EQ(x.second_largest(), 0u);
}

TEST(EdgeCases, UniformWithAllUndecidedRejectedBySimulator) {
  const auto x0 = Configuration::uniform(100, 5, 100);
  EXPECT_THROW(UsdSimulator(x0, rng::Rng(1)), util::CheckError);
  EXPECT_THROW(gossip::GossipUsd(x0, rng::Rng(1)), util::CheckError);
}

}  // namespace
}  // namespace kusd
