// SIMD sampling fast path: cross-tier bit-identity and edge cases.
//
// The dispatch contract (rng/simd.hpp) is that the instruction-set tier
// is purely a throughput knob — every tier produces the same bytes for
// every input. These tests pin that contract where it is most likely to
// crack: ragged tails, degenerate parameters, the BINV/BTRS cutoff, and
// counts near the 2^63 cap. Each parameterized case runs under every
// tier the host supports, forced via simd::set_tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "rng/binomial.hpp"
#include "rng/rng.hpp"
#include "rng/simd.hpp"
#include "rng/uniform_block.hpp"

namespace kusd {
namespace {

using rng::simd::Tier;

/// Force a tier for one scope and restore the host's widest on exit, so
/// a failing test cannot leak a narrowed tier into the rest of the
/// suite.
class TierGuard {
 public:
  explicit TierGuard(Tier tier) { installed_ = rng::simd::set_tier(tier); }
  ~TierGuard() { rng::simd::set_tier(rng::simd::supported_tier()); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

  /// The tier actually installed (clamped to what the host supports).
  [[nodiscard]] Tier installed() const { return installed_; }

 private:
  Tier installed_;
};

std::vector<Tier> tiers_up_to_supported() {
  std::vector<Tier> tiers = {Tier::kScalar};
  if (rng::simd::supported_tier() >= Tier::kSse2) tiers.push_back(Tier::kSse2);
  if (rng::simd::supported_tier() >= Tier::kAvx2) tiers.push_back(Tier::kAvx2);
  return tiers;
}

// ---- uniform_block ----

TEST(UniformBlock, MatchesPhiloxReferenceOnEveryTier) {
  // Ground truth straight from the philox2x64 definition, independent of
  // any fill kernel: out[2i] / out[2i + 1] are block (counter_lo + i)'s
  // words mapped by (word >> 11) * 2^-53.
  const std::uint64_t key = 0x5EED;
  const std::uint64_t counter_hi = 7;
  const std::uint64_t counter_lo = 12345;
  const std::size_t size = 1025;  // odd: ends mid-block
  std::vector<double> expected(size);
  for (std::size_t i = 0; i < size; i += 2) {
    const auto block =
        rng::philox2x64(counter_lo + i / 2, counter_hi, key);
    expected[i] = static_cast<double>(block[0] >> 11) * 0x1.0p-53;
    if (i + 1 < size) {
      expected[i + 1] = static_cast<double>(block[1] >> 11) * 0x1.0p-53;
    }
  }
  for (const Tier tier : tiers_up_to_supported()) {
    TierGuard guard(tier);
    std::vector<double> out(size, -1.0);
    rng::uniform_block(key, counter_hi, counter_lo, out);
    EXPECT_EQ(out, expected) << "tier " << rng::simd::to_string(tier);
  }
}

TEST(UniformBlock, RaggedTailsAreBitIdenticalAcrossTiers) {
  // Sizes straddling every lane-width boundary: empty, sub-block, one
  // SSE2 iteration, one AVX2 iteration, the interleaved main-loop widths
  // (8 SSE2 / 32 AVX2), the stream refill size, and off-by-one around
  // each.
  const std::size_t sizes[] = {0,  1,  2,  3,  4,  5,  7,  8,   9,
                               15, 16, 17, 31, 32, 33, 63, 512, 1025};
  for (const std::size_t size : sizes) {
    std::vector<double> reference(size, -1.0);
    {
      TierGuard guard(Tier::kScalar);
      rng::uniform_block(0xAB5EED, 3, 999, reference);
    }
    for (const Tier tier : tiers_up_to_supported()) {
      TierGuard guard(tier);
      std::vector<double> out(size, -2.0);
      rng::uniform_block(0xAB5EED, 3, 999, out);
      EXPECT_EQ(out, reference)
          << "tier " << rng::simd::to_string(tier) << " size " << size;
    }
  }
}

TEST(UniformBlock, KeyAndCounterSelectDistinctStreams) {
  std::vector<double> base(64), other(64);
  rng::uniform_block(1, 2, 3, base);
  rng::uniform_block(4, 2, 3, other);
  EXPECT_NE(base, other) << "key must select the stream";
  rng::uniform_block(1, 5, 3, other);
  EXPECT_NE(base, other) << "counter_hi must select the stream";
  rng::uniform_block(1, 2, 4, other);
  EXPECT_NE(base, other) << "counter_lo must shift the stream";
  // Shifting counter_lo by one shifts the output by one block (2 doubles).
  EXPECT_EQ(std::vector<double>(base.begin() + 2, base.end()),
            std::vector<double>(other.begin(), other.end() - 2));
}

TEST(UniformBlock, StreamReplaysTheBlockKeystreamAcrossRefills) {
  // PhiloxUniformStream::uniform01 must walk exactly the
  // uniform_block(key, counter_hi, 0, ...) sequence, including across
  // its 512-double refill boundary, on every tier.
  const std::size_t draws = 1300;  // > two refills
  std::vector<double> expected(draws);
  {
    TierGuard guard(Tier::kScalar);
    rng::uniform_block(0xFEED, 11, 0, expected);
  }
  for (const Tier tier : tiers_up_to_supported()) {
    TierGuard guard(tier);
    rng::PhiloxUniformStream stream(0xFEED, 11);
    for (std::size_t i = 0; i < draws; ++i) {
      ASSERT_EQ(stream.uniform01(), expected[i])
          << "tier " << rng::simd::to_string(tier) << " draw " << i;
    }
  }
}

// ---- binomial / binomial_batch edge cases ----

/// Run one (n, p) through scalar rng::binomial and through
/// binomial_batch on the given tier with fresh copies of the same
/// stream; both results and the post-draw stream positions must agree.
void expect_batch_matches_scalar(std::uint64_t n, double p, Tier tier,
                                 std::uint64_t seed) {
  TierGuard guard(tier);
  rng::Rng scalar_rng(seed);
  rng::Rng batch_rng(seed);
  const std::uint64_t ns[] = {n};
  const double ps[] = {p};
  std::uint64_t out[] = {~std::uint64_t{0}};
  rng::Rng* ptrs[] = {&batch_rng};
  rng::binomial_batch(std::span<rng::Rng* const>(ptrs),
                      std::span<const std::uint64_t>(ns),
                      std::span<const double>(ps),
                      std::span<std::uint64_t>(out));
  const std::uint64_t expected = rng::binomial(scalar_rng, n, p);
  EXPECT_EQ(out[0], expected)
      << "n=" << n << " p=" << p << " tier " << rng::simd::to_string(tier);
  EXPECT_EQ(batch_rng.next_u64(), scalar_rng.next_u64())
      << "stream position diverged at n=" << n << " p=" << p << " tier "
      << rng::simd::to_string(tier);
}

TEST(BinomialEdge, DegenerateParameters) {
  for (const Tier tier : tiers_up_to_supported()) {
    // p = 0 and n = 0 return 0; p = 1 returns n. None consume
    // randomness (checked via the stream-position assertion).
    expect_batch_matches_scalar(0, 0.5, tier, 41);
    expect_batch_matches_scalar(5000, 0.0, tier, 42);
    expect_batch_matches_scalar(5000, 1.0, tier, 43);
    expect_batch_matches_scalar(1, 0.5, tier, 44);  // single Bernoulli
  }
  rng::Rng rng_a(45);
  EXPECT_EQ(rng::binomial(rng_a, 0, 0.7), 0u);
  EXPECT_EQ(rng::binomial(rng_a, 123, 0.0), 0u);
  EXPECT_EQ(rng::binomial(rng_a, 123, 1.0), 123u);
  // Degenerate draws consumed nothing: the stream is still at origin.
  rng::Rng rng_b(45);
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

TEST(BinomialEdge, MeanStraddlingTheBtrsCutoff) {
  // np just below 10 routes to BINV, just above to BTRS; both sides must
  // match the scalar sampler bit for bit on every tier.
  for (const Tier tier : tiers_up_to_supported()) {
    for (std::uint64_t seed = 50; seed < 58; ++seed) {
      expect_batch_matches_scalar(1000, 0.00999, tier, seed);   // np = 9.99
      expect_batch_matches_scalar(1000, 0.010001, tier, seed);  // np > 10
      expect_batch_matches_scalar(100000, 0.0000999, tier, seed);
      expect_batch_matches_scalar(100000, 0.0001001, tier, seed);
    }
  }
}

TEST(BinomialEdge, HugeCountsNearTheCap) {
  // n near 2^63: exercises the BTRS setup at extreme scale and the
  // reflection path's n - Binomial(n, 1 - p) subtraction.
  const std::uint64_t huge = std::uint64_t{1} << 62;
  for (const Tier tier : tiers_up_to_supported()) {
    for (std::uint64_t seed = 60; seed < 64; ++seed) {
      expect_batch_matches_scalar(huge, 1e-18, tier, seed);  // np < 10: BINV
      expect_batch_matches_scalar(huge, 0.3, tier, seed);
      expect_batch_matches_scalar(huge, 0.97, tier, seed);  // reflection
    }
    TierGuard guard(tier);
    rng::Rng rng_sanity(65);
    const std::uint64_t draw = rng::binomial(rng_sanity, huge, 0.3);
    EXPECT_LE(draw, huge);
    // A draw at this n concentrates within ~1e7 of the mean; a factor-2
    // band catches sign/overflow bugs without flaking.
    EXPECT_GT(draw, huge / 5);
    EXPECT_LT(draw, huge / 2);
  }
}

TEST(BinomialEdge, ReflectionAboveHalf) {
  for (const Tier tier : tiers_up_to_supported()) {
    for (std::uint64_t seed = 70; seed < 74; ++seed) {
      expect_batch_matches_scalar(40, 0.999, tier, seed);
      expect_batch_matches_scalar(5000, 0.75, tier, seed);
      expect_batch_matches_scalar(5000, 0.5, tier, seed);  // boundary
    }
  }
}

TEST(BinomialEdge, RaggedBatchSizesMatchScalarLoopOnEveryTier) {
  // Batch sizes 1..17 cover every remainder against the 4-lane (SSE2)
  // and 8-lane (AVX2 double-pumped) BTRS groupings; parameters mix
  // degenerate, BINV, BTRS, and reflection draws so the cohort
  // partition is exercised at every size.
  for (const Tier tier : tiers_up_to_supported()) {
    TierGuard guard(tier);
    for (std::size_t lanes = 1; lanes <= 17; ++lanes) {
      std::vector<std::uint64_t> ns(lanes);
      std::vector<double> ps(lanes);
      for (std::size_t i = 0; i < lanes; ++i) {
        ns[i] = (i % 6 == 0) ? 0 : 400 * (i + 1) * (i + 1);
        ps[i] = (i % 5 == 0) ? 1.0 : 0.03 + 0.057 * static_cast<double>(i);
      }
      std::vector<rng::Rng> batch_rngs, scalar_rngs;
      std::vector<rng::Rng*> ptrs;
      batch_rngs.reserve(lanes);
      scalar_rngs.reserve(lanes);
      for (std::size_t i = 0; i < lanes; ++i) {
        batch_rngs.emplace_back(rng::stream_seed(6000 + lanes, i));
        scalar_rngs.emplace_back(rng::stream_seed(6000 + lanes, i));
      }
      for (auto& r : batch_rngs) ptrs.push_back(&r);
      std::vector<std::uint64_t> out(lanes);
      rng::binomial_batch(std::span<rng::Rng* const>(ptrs), ns, ps, out);
      for (std::size_t i = 0; i < lanes; ++i) {
        EXPECT_EQ(out[i], rng::binomial(scalar_rngs[i], ns[i], ps[i]))
            << "tier " << rng::simd::to_string(tier) << " lanes " << lanes
            << " lane " << i;
        EXPECT_EQ(batch_rngs[i].next_u64(), scalar_rngs[i].next_u64())
            << "tier " << rng::simd::to_string(tier) << " lanes " << lanes
            << " lane " << i;
      }
    }
  }
}

// ---- shared-stream batch (the shared lockstep schedule's sampler) ----

TEST(BinomialSharedStream, DeterministicAndDegenerateDrawsAreFree) {
  const std::vector<std::uint64_t> ns = {0,    2000, 800,  0,
                                         5000, 300,  1000, 64};
  const std::vector<double> ps = {0.4, 0.0, 0.2, 1.0, 0.45, 1.0, 0.015, 0.6};
  std::vector<std::uint64_t> out_a(ns.size()), out_b(ns.size());
  rng::PhiloxUniformStream stream_a(0xC0DE, 5);
  rng::PhiloxUniformStream stream_b(0xC0DE, 5);
  rng::binomial_batch(stream_a, ns, ps, out_a);
  rng::binomial_batch(stream_b, ns, ps, out_b);
  EXPECT_EQ(out_a, out_b);
  // Degenerate lanes resolve without touching the stream.
  EXPECT_EQ(out_a[0], 0u);
  EXPECT_EQ(out_a[1], 0u);
  EXPECT_EQ(out_a[3], 0u);
  EXPECT_EQ(out_a[5], 300u);
  // Both streams sit at the same position afterwards: the next uniform
  // matches draw for draw.
  EXPECT_EQ(stream_a.uniform01(), stream_b.uniform01());
  // And the non-degenerate draws match a hand-rolled sequential pass
  // over a fresh stream (index order is the contract).
  rng::PhiloxUniformStream replay(0xC0DE, 5);
  std::vector<std::uint64_t> replay_out(ns.size());
  rng::binomial_batch(replay, ns, ps, replay_out);
  EXPECT_EQ(replay_out, out_a);
}

TEST(BinomialSharedStream, IndependentOfActiveTier) {
  // The shared-stream path is scalar by contract (draw order is the
  // spec), so the active tier must not change a single draw.
  const std::vector<std::uint64_t> ns(33, 12000);
  std::vector<double> ps(33);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i] = 0.01 + 0.028 * static_cast<double>(i);
  }
  std::vector<std::uint64_t> reference(ns.size());
  {
    TierGuard guard(Tier::kScalar);
    rng::PhiloxUniformStream stream(0xBEEF, 9);
    rng::binomial_batch(stream, ns, ps, reference);
  }
  for (const Tier tier : tiers_up_to_supported()) {
    TierGuard guard(tier);
    rng::PhiloxUniformStream stream(0xBEEF, 9);
    std::vector<std::uint64_t> out(ns.size());
    rng::binomial_batch(stream, ns, ps, out);
    EXPECT_EQ(out, reference) << "tier " << rng::simd::to_string(tier);
  }
}

}  // namespace
}  // namespace kusd
