// Random-walk closed forms (Appendix A) vs simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/random_walk.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd {
namespace {

TEST(GamblersRuin, FairWalkBoundaryValues) {
  EXPECT_DOUBLE_EQ(analysis::gamblers_ruin_prob(0.5, 0, 10), 1.0);
  EXPECT_DOUBLE_EQ(analysis::gamblers_ruin_prob(0.5, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(analysis::gamblers_ruin_prob(0.5, 3, 10), 0.7);
  EXPECT_DOUBLE_EQ(analysis::gamblers_win_prob(0.5, 3, 10), 0.3);
}

TEST(GamblersRuin, BiasedClosedForm) {
  // p = 0.6, a = 2, b = 5: ruin = (rho^5 - rho^2)/(rho^5 - 1), rho = 2/3.
  const double rho = 2.0 / 3.0;
  const double expected = (std::pow(rho, 5) - std::pow(rho, 2)) /
                          (std::pow(rho, 5) - 1.0);
  EXPECT_NEAR(analysis::gamblers_ruin_prob(0.6, 2, 5), expected, 1e-12);
}

TEST(GamblersRuin, FairExpectedDuration) {
  EXPECT_DOUBLE_EQ(analysis::gamblers_expected_duration(0.5, 3, 10),
                   3.0 * 7.0);
}

struct WalkCase {
  double p = 0.0;
  std::uint64_t a = 0, b = 0;
};

class GamblersRuinSweep : public ::testing::TestWithParam<WalkCase> {};

TEST_P(GamblersRuinSweep, SimulationMatchesFormula) {
  const auto [p, a, b] = GetParam();
  rng::Rng r(314159 + a * 1000 + b);
  const int trials = 40000;
  int wins = 0;
  double total_steps = 0.0;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t steps = 0;
    wins += analysis::simulate_gamblers_ruin(p, a, b, r, &steps) ? 1 : 0;
    total_steps += static_cast<double>(steps);
  }
  const double expect_win = analysis::gamblers_win_prob(p, a, b);
  const double se = std::sqrt(expect_win * (1 - expect_win) / trials) + 1e-6;
  EXPECT_NEAR(static_cast<double>(wins) / trials, expect_win, 5 * se);
  const double expect_dur = analysis::gamblers_expected_duration(p, a, b);
  EXPECT_NEAR(total_steps / trials, expect_dur, 0.05 * expect_dur + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Walks, GamblersRuinSweep,
                         ::testing::Values(WalkCase{0.5, 5, 10},
                                           WalkCase{0.5, 2, 20},
                                           WalkCase{0.6, 3, 12},
                                           WalkCase{0.45, 8, 16},
                                           WalkCase{0.7, 2, 30}));

TEST(ReflectingWalk, TailFormulaBoundsSimulatedMaxima) {
  // Lemma 18: Pr[max over horizon >= m] <= horizon * (p/q)^m.
  const double p = 0.3, q = 0.5;
  rng::Rng r(2718);
  const std::uint64_t horizon = 2000;
  const std::uint64_t m = 12;
  const int trials = 4000;
  int exceed = 0;
  for (int t = 0; t < trials; ++t) {
    if (analysis::simulate_reflecting_max(p, q, horizon, r) >= m) ++exceed;
  }
  const double bound = static_cast<double>(horizon) *
                       analysis::reflecting_tail(p, q, m);
  // The bound must hold (with slack for MC noise).
  EXPECT_LE(static_cast<double>(exceed) / trials, bound + 0.01);
}

TEST(ReflectingWalk, TailDecreasesGeometrically) {
  const double t4 = analysis::reflecting_tail(0.2, 0.4, 4);
  const double t8 = analysis::reflecting_tail(0.2, 0.4, 8);
  EXPECT_NEAR(t8, t4 * t4, 1e-12);
}

TEST(ExcessFailures, Lemma19BoundHolds) {
  // Simulate sequences and check the ruin-style bound empirically.
  const double p = 0.7;
  const std::uint64_t b = 5;
  rng::Rng r(999);
  const int trials = 20000;
  const int horizon = 3000;
  int violated = 0;
  for (int t = 0; t < trials; ++t) {
    int excess = 0;  // failures - successes; may go arbitrarily negative
    bool hit = false;
    for (int i = 0; i < horizon; ++i) {
      excess += r.bernoulli(p) ? -1 : 1;
      if (excess >= static_cast<int>(b)) {
        hit = true;
        break;
      }
    }
    violated += hit ? 1 : 0;
  }
  EXPECT_LE(static_cast<double>(violated) / trials,
            analysis::excess_failure_prob(p, b) + 0.01);
}

TEST(DriftBound, Theorem3Shape) {
  // T <= ceil((r + ln(s0/smin))/delta): doubling s0 adds ln 2 / delta.
  const double t1 = analysis::drift_time_bound(3.0, 100.0, 1.0, 0.01);
  const double t2 = analysis::drift_time_bound(3.0, 200.0, 1.0, 0.01);
  EXPECT_NEAR(t2 - t1, std::log(2.0) / 0.01, 1.0);
  EXPECT_THROW(static_cast<void>(analysis::drift_time_bound(1.0, 1.0, 1.0, 0.0)),
               util::CheckError);
}

TEST(TwoLevelWalk, Lemma21LogarithmicAbsorption) {
  // The Lemma 21 walk reaches log log n in O(log n) steps w.h.p.; check
  // that the average absorption time grows far slower than linearly in the
  // number of levels.
  rng::Rng r(777);
  const int trials = 2000;
  double mean6 = 0.0;
  for (int t = 0; t < trials; ++t) {
    mean6 += static_cast<double>(
        analysis::simulate_two_level_walk(0.5, 6, 1'000'000, r));
  }
  mean6 /= trials;
  // Six levels need ~ a handful of attempts of geometric cost: small.
  EXPECT_LT(mean6, 200.0);
  EXPECT_GE(mean6, 6.0);  // at least one step per level
}

}  // namespace
}  // namespace kusd
