// Default native-time budgets for the asynchronous engines.
//
// Lives in core (not runner) so the sim-layer engine adapters can publish
// their default budgets without reaching up the layer stack: the layering
// contract is util/rng/stats/urn -> core/pp/... -> sim -> runner, and this
// cap is needed on both sides of the sim boundary.
#pragma once

#include <cmath>
#include <cstdint>

#include "pp/configuration.hpp"

namespace kusd::core {

/// Generous default interaction cap for the asynchronous engines:
/// 64 * k * n * (ln n + 1) — several times the paper's O(k n log n)
/// convergence bound. Used when a driver passes cap 0.
[[nodiscard]] inline std::uint64_t default_interaction_cap(pp::Count n,
                                                           int k) {
  const double dn = static_cast<double>(n);
  const double cap = 64.0 * static_cast<double>(k) * dn * (std::log(dn) + 1.0);
  // Populations the batched engine reaches can push the formula past
  // uint64 range; saturate instead of an unrepresentable (UB) cast.
  constexpr double kMax = 18446744073709549568.0;  // largest double < 2^64
  return cap >= kMax ? ~std::uint64_t{0} : static_cast<std::uint64_t>(cap);
}

}  // namespace kusd::core
