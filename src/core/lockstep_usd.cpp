#include "core/lockstep_usd.hpp"

#include <algorithm>
#include <limits>

#include "pp/configuration.hpp"
#include "rng/binomial.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::core {

namespace {
/// counter_hi domain of the shared schedule's Philox stream: a fixed
/// nonzero tag so the keystream can never collide with other
/// uniform_block users keyed by the same seed at counter_hi 0.
constexpr std::uint64_t kSharedStreamDomain = 0x6b7573644c534b44ULL;
}  // namespace

LockstepRoundEngine::LockstepRoundEngine(const pp::Configuration& initial,
                                         std::span<const std::uint64_t> seeds,
                                         LockstepOptions options)
    : k_(initial.k()), n_(initial.n()), schedule_(options.schedule) {
  KUSD_CHECK_MSG(!seeds.empty(), "lockstep engine needs at least one trial");
  KUSD_CHECK_MSG(initial.decided() >= 1,
                 "an all-undecided population never converges");
  const std::size_t trial_count = seeds.size();
  const auto k = static_cast<std::size_t>(k_);
  counts_.reserve(trial_count * k);
  undecided_.reserve(trial_count);
  // The initial winner scan matches BatchedUsdSimulator's constructor: a
  // configuration already at consensus finishes with zero interactions.
  int initial_winner = -1;
  for (int i = 0; i < k_; ++i) {
    if (initial.opinion(i) == n_) initial_winner = i;
  }
  if (schedule_ == LockstepSchedule::kShared) {
    // One controller, one stream, for the whole batch. The per-trial Rng
    // and controller arrays stay empty: every draw under this schedule
    // comes from the shared counter-based stream.
    shared_controller_.emplace(options.chunk, n_);
    shared_stream_.emplace(seeds[0], kSharedStreamDomain);
    shared_grow_cap_.assign(trial_count,
                            std::numeric_limits<double>::infinity());
    shared_grow_factor_ = options.chunk.adaptive.grow_factor;
  } else {
    rngs_.reserve(trial_count);
    controllers_.reserve(trial_count);
  }
  for (std::size_t t = 0; t < trial_count; ++t) {
    counts_.insert(counts_.end(), initial.opinions().begin(),
                   initial.opinions().end());
    undecided_.push_back(initial.undecided());
    if (schedule_ != LockstepSchedule::kShared) {
      rngs_.emplace_back(seeds[t]);
      controllers_.emplace_back(options.chunk, n_);
    }
  }
  interactions_.assign(trial_count, 0);
  chunks_.assign(trial_count, 0);
  winner_.assign(trial_count, initial_winner);
}

std::size_t LockstepRoundEngine::unfinished() const {
  std::size_t open = 0;
  for (const int w : winner_) open += w < 0 ? 1 : 0;
  return open;
}

void LockstepRoundEngine::advance_all(std::uint64_t target) {
  const auto k = static_cast<std::size_t>(k_);
  const std::size_t fam = 2 * k + 1;
  const std::size_t trial_count = trials();

  active_.clear();
  for (std::size_t t = 0; t < trial_count; ++t) {
    if (winner_[t] < 0 && interactions_[t] < target) {
      active_.push_back(static_cast<std::uint32_t>(t));
    }
  }
  if (active_.empty()) return;
  pending_retry_.assign(trial_count, 0);
  m_.resize(trial_count);
  remaining_.resize(trial_count);
  remaining_weight_.resize(trial_count);
  weights_.resize(trial_count * fam);
  events_.resize(trial_count * fam);

  const double total_pairs =
      static_cast<double>(n_) * static_cast<double>(n_);
  while (!active_.empty()) {
    // 1. Chunk proposals. A trial whose last draw was rejected keeps its
    //    halved length instead (the scalar engine's halve-and-redraw loop
    //    calls propose once per committed chunk, not per attempt). Under
    //    the shared schedule the one controller proposes a single length
    //    per pass from the MINIMUM admissible per-trial bound. The
    //    minimum — not a pooled/mean configuration — because the tau band
    //    must hold for each trial individually: trials drifting toward
    //    different winners average into a fictitious contested state
    //    whose huge flip rate pins a mean-configuration proposal at a
    //    handful of interactions while every real trial would admit
    //    chunks of order tol * n.
    if (schedule_ == LockstepSchedule::kShared) {
      double bound = std::numeric_limits<double>::infinity();
      std::uint64_t fresh = 0;
      for (const std::uint32_t t : active_) {
        if (pending_retry_[t] != 0) continue;
        ++fresh;
        bound = std::min(
            bound, shared_controller_->raw_bound(counts(t), undecided_[t]));
      }
      if (fresh > 0) {
        const std::uint64_t shared_m =
            shared_controller_->propose_from_bound(bound);
        for (const std::uint32_t t : active_) {
          if (pending_retry_[t] != 0) continue;
          std::uint64_t m = std::min(shared_m, target - interactions_[t]);
          // A trial recovering from a rejection re-approaches the shared
          // length geometrically (see shared_grow_cap_): without this
          // cap a trial whose admissible chunk sits below the shared
          // proposal would re-reject the full length every pass, paying
          // log2(m) halving retries per tiny commit.
          if (shared_grow_cap_[t] < static_cast<double>(m)) {
            m = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(shared_grow_cap_[t]));
          }
          m_[t] = m;
        }
      }
    } else {
      for (const std::uint32_t t : active_) {
        if (pending_retry_[t] != 0) continue;
        m_[t] = std::min(controllers_[t].propose(counts(t), undecided_[t]),
                         target - interactions_[t]);
      }
    }

    // 2. Frozen event weights, replicating RoundEngine::try_async_chunk's
    //    layout and arithmetic per trial: adopt j at [j], flip j at
    //    [k + j], no-op last. The remaining-weight accumulator mirrors
    //    Rng::multinomial_into's front-to-back sum so the conditional
    //    probabilities below are bit-identical to the scalar path.
    for (const std::uint32_t t : active_) {
      double* w = &weights_[t * fam];
      const pp::Count* x = &counts_[t * k];
      const pp::Count decided = n_ - undecided_[t];
      const double du = static_cast<double>(undecided_[t]);
      double productive = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        const double xj = static_cast<double>(x[j]);
        w[j] = du * xj;
        w[k + j] = xj * static_cast<double>(decided - x[j]);
        productive += w[j] + w[k + j];
      }
      w[2 * k] = std::max(0.0, total_pairs - productive);
      double rw = 0.0;
      for (std::size_t f = 0; f < fam; ++f) rw += w[f];
      remaining_weight_[t] = rw;
      remaining_[t] = m_[t];
      std::fill(&events_[t * fam], &events_[t * fam] + fam, 0);
    }

    // 3. The sequential-conditional multinomial, family-outer and
    //    trial-inner: each family's draws for every live trial go through
    //    one binomial_batch call. Per trial the family order (and thus its
    //    stream consumption) is exactly multinomial_into's; the
    //    interleaved draws of other trials touch other streams only.
    for (std::size_t f = 0; f + 1 < fam; ++f) {
      batch_rngs_.clear();
      batch_ns_.clear();
      batch_ps_.clear();
      batch_trials_.clear();
      for (const std::uint32_t t : active_) {
        if (remaining_[t] == 0 || remaining_weight_[t] <= 0.0) continue;
        if (schedule_ != LockstepSchedule::kShared) {
          batch_rngs_.push_back(&rngs_[t]);
        }
        batch_ns_.push_back(remaining_[t]);
        batch_ps_.push_back(
            std::min(1.0, weights_[t * fam + f] / remaining_weight_[t]));
        batch_trials_.push_back(t);
      }
      batch_out_.resize(batch_trials_.size());
      if (schedule_ == LockstepSchedule::kShared) {
        rng::binomial_batch(*shared_stream_, batch_ns_, batch_ps_,
                            batch_out_);
      } else {
        rng::binomial_batch(std::span<rng::Rng* const>(batch_rngs_),
                            batch_ns_, batch_ps_, batch_out_);
      }
      for (std::size_t i = 0; i < batch_trials_.size(); ++i) {
        const std::uint32_t t = batch_trials_[i];
        events_[t * fam + f] = batch_out_[i];
        remaining_[t] -= batch_out_[i];
        remaining_weight_[t] -= weights_[t * fam + f];
      }
    }
    for (const std::uint32_t t : active_) {
      events_[t * fam + 2 * k] += remaining_[t];
    }

    // 4. Validate and commit (or reject) each trial exactly as
    //    try_async_chunk does, then compact the active list in place:
    //    finished and target-reached trials are masked out.
    std::size_t write = 0;
    std::uint64_t fresh_count = 0;
    std::uint64_t fresh_rejects = 0;
    for (const std::uint32_t t : active_) {
      ++chunks_[t];
      // pending_retry_[t] still holds its phase-1 value here: this pass
      // took the shared proposal iff the trial entered it fresh.
      const bool fresh = pending_retry_[t] == 0;
      if (fresh) ++fresh_count;
      const std::uint64_t* e = &events_[t * fam];
      pp::Count* x = &counts_[t * k];
      std::uint64_t adopted = 0;
      std::uint64_t flipped = 0;
      bool ok = true;
      for (std::size_t j = 0; j < k; ++j) {
        if (x[j] + e[j] < e[k + j]) {
          ok = false;
          break;
        }
        adopted += e[j];
        flipped += e[k + j];
      }
      if (ok && undecided_[t] + flipped < adopted) ok = false;
      // A draw flipping every decided agent would reach the absorbing
      // all-undecided state the exact chain cannot enter.
      if (ok && undecided_[t] + flipped - adopted ==
                    static_cast<std::uint64_t>(n_)) {
        ok = false;
      }
      if (!ok) {
        // Halving stays per trial under both schedules; the shared
        // controller hears on_reject only when a majority of the fresh
        // trials rejected this pass (below). With T trials an any-reject
        // rule would fire ~T times as often as a single trial's and pin
        // the shared proposal at its floor; a lone outlier's overshoot
        // is already absorbed by its own halved retry.
        m_[t] = std::max<std::uint64_t>(1, m_[t] / 2);
        if (schedule_ == LockstepSchedule::kShared) {
          if (fresh) ++fresh_rejects;
          shared_grow_cap_[t] = static_cast<double>(m_[t]);
        } else {
          controllers_[t].on_reject();
        }
        pending_retry_[t] = 1;
        active_[write++] = t;
        continue;
      }
      for (std::size_t j = 0; j < k; ++j) {
        x[j] += e[j];
        x[j] -= e[k + j];
      }
      undecided_[t] += flipped;
      undecided_[t] -= adopted;
      interactions_[t] += m_[t];
      pending_retry_[t] = 0;
      // Geometric recovery toward the uncapped shared proposal; +inf
      // stays +inf, so never-rejected trials pay nothing here.
      if (schedule_ == LockstepSchedule::kShared) {
        shared_grow_cap_[t] *= shared_grow_factor_;
      }
      for (std::size_t j = 0; j < k; ++j) {
        if (x[j] == n_) winner_[t] = static_cast<int>(j);
      }
      if (winner_[t] < 0 && interactions_[t] < target) {
        active_[write++] = t;
      }
    }
    active_.resize(write);
    if (shared_controller_ && fresh_rejects * 2 > fresh_count) {
      shared_controller_->on_reject();
    }
  }
}

}  // namespace kusd::core
