#include "core/dynamics.hpp"

#include <algorithm>

#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::core {

int VoterDynamics::update(int /*self*/, std::span<const int> sampled,
                          rng::Rng& /*rng*/) const {
  return sampled[0];
}

int TwoChoicesDynamics::update(int self, std::span<const int> sampled,
                               rng::Rng& /*rng*/) const {
  return sampled[0] == sampled[1] ? sampled[0] : self;
}

JMajorityDynamics::JMajorityDynamics(int j) : j_(j) {
  KUSD_CHECK_MSG(j >= 1, "sample size must be positive");
  name_ = std::to_string(j) + "-Majority";
}

int JMajorityDynamics::update(int /*self*/, std::span<const int> sampled,
                              rng::Rng& rng) const {
  // Find the mode of the sample; ties broken uniformly among tied opinions.
  // The sample is tiny (j <= ~16), so sort a local copy.
  std::vector<int> s(sampled.begin(), sampled.end());
  std::sort(s.begin(), s.end());
  int best_count = 0;
  int num_tied = 0;
  int choice = s[0];
  for (std::size_t i = 0; i < s.size();) {
    std::size_t jj = i;
    while (jj < s.size() && s[jj] == s[i]) ++jj;
    const int count = static_cast<int>(jj - i);
    if (count > best_count) {
      best_count = count;
      num_tied = 1;
      choice = s[i];
    } else if (count == best_count) {
      ++num_tied;
      // Reservoir tie-break: pick this opinion with probability 1/num_tied.
      if (rng.bounded(static_cast<std::uint64_t>(num_tied)) == 0) {
        choice = s[i];
      }
    }
    i = jj;
  }
  return choice;
}

int MedianRuleDynamics::update(int self, std::span<const int> sampled,
                               rng::Rng& /*rng*/) const {
  int a = self, b = sampled[0], c = sampled[1];
  // Median of three.
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  return b;
}

DynamicsScheduler::DynamicsScheduler(const SamplingDynamics& dynamics,
                                     const pp::Configuration& initial,
                                     rng::Rng rng)
    : dynamics_(dynamics),
      opinions_(initial.opinions()),
      n_(initial.n()),
      rng_(rng),
      sample_buffer_(static_cast<std::size_t>(dynamics.sample_size())) {
  KUSD_CHECK_MSG(initial.undecided() == 0,
                 "sampling dynamics have no undecided state");
  for (int i = 0; i < initial.k(); ++i) {
    if (initial.opinion(i) == n_) winner_ = i;
  }
}

void DynamicsScheduler::step() {
  KUSD_DCHECK(!winner_.has_value());
  const int self = static_cast<int>(opinions_.sample(rng_));
  for (auto& s : sample_buffer_) {
    s = static_cast<int>(opinions_.sample(rng_));
  }
  const int next = dynamics_.update(self, sample_buffer_, rng_);
  ++activations_;
  if (next != self) {
    opinions_.move(static_cast<std::size_t>(self),
                   static_cast<std::size_t>(next));
    if (opinions_.count(static_cast<std::size_t>(next)) == n_) {
      winner_ = next;
    }
  }
}

bool DynamicsScheduler::run_to_consensus(std::uint64_t max_activations) {
  while (!winner_.has_value() && activations_ < max_activations) step();
  return winner_.has_value();
}

}  // namespace kusd::core
