// High-level one-call runner: run the USD from an initial configuration,
// track the five phases, and classify the outcome against the paper's
// claims (did the initial plurality win? was the winner initially
// significant?). This is the entry point the examples and most benches use.
#pragma once

#include <cstdint>
#include <optional>

#include "core/batched_usd.hpp"
#include "core/phase_tracker.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"

namespace kusd::core {

struct RunOptions {
  /// Hard cap on interactions; 0 picks a generous default of
  /// 64 * k * n * (ln n + 1) (several times the paper's O(k n log n)).
  std::uint64_t max_interactions = 0;
  StepMode mode = StepMode::kSkipUnproductive;
  urn::UrnEngine engine = urn::UrnEngine::kAuto;
  /// Chunk schedule for StepMode::kBatchedRounds: fixed chunk fraction or
  /// the error-controlled adaptive policy (see chunk_controller.hpp).
  BatchedOptions batch;
  /// Track T1..T5; snapshots are taken every `observe_interval`
  /// interactions (0 picks n/8, a resolution far below phase lengths).
  bool track_phases = true;
  std::uint64_t observe_interval = 0;
  /// Significance constant alpha of the paper.
  double alpha = 1.0;
};

struct RunResult {
  bool converged = false;
  /// Consensus opinion (valid iff converged).
  int winner = -1;
  /// Interactions until consensus (or the cap if not converged).
  std::uint64_t interactions = 0;
  /// Parallel time: interactions / n.
  double parallel_time = 0.0;
  PhaseTimes phases;

  // Outcome vs the initial configuration:
  int initial_plurality = -1;
  bool plurality_won = false;
  /// Whether the winner was significant at t = 0 (Theorem 2's no-bias
  /// guarantee).
  bool winner_initially_significant = false;
};

/// Default interaction cap used when RunOptions::max_interactions == 0.
[[nodiscard]] std::uint64_t default_interaction_cap(pp::Count n, int k);

/// Run the USD once from `initial` with a deterministic seed.
[[nodiscard]] RunResult run_usd(const pp::Configuration& initial,
                                std::uint64_t seed, RunOptions options = {});

}  // namespace kusd::core
