// Bias and significance measures from Section 2 of the paper, plus the
// monochromatic distance of Becchetti et al. [9] used in Appendix D.
#pragma once

#include "pp/configuration.hpp"

namespace kusd::core {

/// Additive bias: xmax - second largest support (the beta such that the
/// configuration "has an additive bias beta" with the plurality as m).
[[nodiscard]] pp::Count additive_bias(const pp::Configuration& x);

/// Multiplicative bias: xmax / second largest support; +infinity when only
/// one opinion has support.
[[nodiscard]] double multiplicative_bias(const pp::Configuration& x);

/// The paper's significance threshold alpha * sqrt(n * ln n).
[[nodiscard]] double significance_threshold(pp::Count n, double alpha);

/// Opinion i is significant iff x_i > xmax - alpha * sqrt(n ln n).
[[nodiscard]] bool is_significant(const pp::Configuration& x, int i,
                                  double alpha);

/// Number of significant opinions (always >= 1: the plurality itself).
[[nodiscard]] int significant_count(const pp::Configuration& x, double alpha);

/// Opinion i is *important* (Section 4) iff x_i > xmax - 4 alpha sqrt(n ln n).
[[nodiscard]] bool is_important(const pp::Configuration& x, int i,
                                double alpha);

/// Monochromatic distance md(x) = sum_i (x_i / xmax)^2 (Becchetti et al.,
/// used by the Appendix D rate comparison). Always in [1, k].
[[nodiscard]] double monochromatic_distance(const pp::Configuration& x);

/// Becchetti et al.'s gossip-model convergence bound in rounds:
/// md(x) * log2(n).
[[nodiscard]] double gossip_rate_bound(const pp::Configuration& x);

/// This paper's population-model bound in *parallel time* (interactions/n)
/// under multiplicative bias: log2(n) + n / x1.
[[nodiscard]] double population_rate_bound(const pp::Configuration& x);

}  // namespace kusd::core
