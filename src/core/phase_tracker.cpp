#include "core/phase_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "pp/configuration.hpp"
#include "util/check.hpp"

namespace kusd::core {

std::optional<std::uint64_t> PhaseTimes::phase_length(int p) const {
  const auto bound = [&](int i) -> std::optional<std::uint64_t> {
    switch (i) {
      case 0: return 0;
      case 1: return t1;
      case 2: return t2;
      case 3: return t3;
      case 4: return t4;
      case 5: return t5;
      default: return std::nullopt;
    }
  };
  KUSD_CHECK_MSG(p >= 1 && p <= 5, "phases are numbered 1..5");
  const auto lo = bound(p - 1), hi = bound(p);
  if (!lo || !hi) return std::nullopt;
  return *hi - *lo;
}

PhaseTracker::PhaseTracker(pp::Count n, double alpha) : n_(n) {
  const double dn = static_cast<double>(n);
  threshold_ = alpha * std::sqrt(dn * std::log(dn));
}

void PhaseTracker::observe(std::uint64_t t,
                           std::span<const pp::Count> opinions,
                           pp::Count undecided) {
  if (times_.complete()) return;
  pp::Count total = undecided;
  pp::Count xmax = 0, second = 0;
  for (pp::Count c : opinions) {
    total += c;
    if (c >= xmax) {
      second = xmax;
      xmax = c;
    } else {
      second = std::max(second, c);
    }
  }
  KUSD_CHECK_MSG(total == n_, "snapshot does not sum to n");

  // Phase 1 end: u >= n/2 - xmax/2, i.e. 2u >= n - xmax.
  if (!times_.t1) {
    if (2 * undecided >= n_ - xmax) times_.t1 = t;
  }
  // Phase 2 end: a unique significant opinion — every other opinion is more
  // than alpha*sqrt(n ln n) below xmax.
  if (times_.t1 && !times_.t2) {
    if (static_cast<double>(xmax) - static_cast<double>(second) >=
        threshold_) {
      times_.t2 = t;
    }
  }
  // Phase 3 end: multiplicative bias >= 2 over every other opinion.
  if (times_.t2 && !times_.t3) {
    if (xmax >= 2 * second || second == 0) times_.t3 = t;
  }
  // Phase 4 end: absolute two-thirds majority.
  if (times_.t3 && !times_.t4) {
    if (3 * xmax >= 2 * n_) times_.t4 = t;
  }
  // Phase 5 end: consensus.
  if (times_.t4 && !times_.t5) {
    if (xmax == n_) times_.t5 = t;
  }
}

}  // namespace kusd::core
