// Batched whole-round primitives for the USD Markov chains.
//
// SyncUsd, GossipUsd and BatchedUsdSimulator all advance entire rounds in
// aggregate: the partners of the m agents in a state are jointly multinomial
// over the partner distribution, so a round costs O(k) binomial draws
// instead of Θ(n) per-agent samples. This class centralizes that machinery
// (previously duplicated ad hoc in sync_usd.cpp and gossip_usd.cpp):
//
//  * decided_step / adoption_step — the two synchronous half-rounds, exact
//    for the synchronized and gossip round models.
//  * try_async_chunk — a chunked-Poissonization (tau-leaping) step for the
//    asynchronous chain: m interactions advanced with the transition rates
//    frozen at the current configuration. Exact in the limit m -> 1 and a
//    documented approximation for m > 1 (see BatchedUsdSimulator).
//  * try_async_class_chunk — the same tau-leap generalized to a population
//    partitioned into weighted degree classes (the annealed scheduler of
//    sim::BatchedGraphEngine): interaction endpoints are sampled with
//    probability proportional to per-member class weight instead of
//    uniformly. With one class of weight 1 its event layout and rates
//    reduce exactly to try_async_chunk.
//
// The engine owns only scratch buffers; all population state is the
// caller's. Methods are deterministic given the caller's Rng.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pp/configuration.hpp"
#include "rng/rng.hpp"

namespace kusd::core {

class RoundEngine {
 public:
  /// `k` is the number of decided opinions, `classes` the number of degree
  /// classes the population is partitioned into (1 = the unstructured
  /// chain; scratch is sized for 2 * k * classes + 1 async event families).
  explicit RoundEngine(int k, int classes = 1);

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int classes() const { return classes_; }

  /// One synchronous USD half-round over the decided agents: every agent of
  /// opinion i samples a partner from the distribution (opinions...,
  /// undecided) and keeps i iff the partner shares it (or, when
  /// `keep_on_undecided`, is undecided); otherwise it becomes undecided.
  /// Survivors are accumulated into `next` (size k); returns the number of
  /// agents that became undecided. `next` must not alias `opinions`.
  pp::Count decided_step(std::span<const pp::Count> opinions,
                         pp::Count undecided, bool keep_on_undecided,
                         std::span<pp::Count> next, rng::Rng& rng);

  /// One synchronous re-adoption half-round: `undecided` agents each sample
  /// a partner from the distribution (partners..., partner_undecided);
  /// samplers landing on opinion j adopt it (accumulated into `next[j]`).
  /// Returns how many agents remain undecided. `partners` may alias `next`
  /// (the weights are copied before `next` is written).
  pp::Count adoption_step(std::span<const pp::Count> partners,
                          pp::Count partner_undecided, pp::Count undecided,
                          std::span<pp::Count> next, rng::Rng& rng);

  /// Attempt to advance `m` interactions of the asynchronous chain in one
  /// multinomial draw with the event rates frozen at the current
  /// configuration: per interaction, opinion j gains an agent w.p.
  /// u*x_j / n^2 (adoption) and loses one w.p. x_j*(d - x_j) / n^2 (flip to
  /// undecided), where d = n - u. Applies the aggregate deltas to
  /// (`opinions`, `undecided`) and returns true; returns false without
  /// modifying the state when the draw would drive a count negative or
  /// leave zero decided agents — a state the exact chain cannot reach (the
  /// caller should retry with a smaller m — m == 1 always succeeds).
  bool try_async_chunk(std::span<pp::Count> opinions, pp::Count& undecided,
                       pp::Count n, std::uint64_t m, rng::Rng& rng);

  /// Class-structured tau-leap: advance `m` interactions of the annealed
  /// degree-weighted chain in one multinomial draw with rates frozen at
  /// the current configuration. The population is partitioned into
  /// `classes()` classes; `opinions` holds the class-major decided counts
  /// (class c, opinion j at index c * k + j), `undecided` the per-class
  /// undecided counts, and `weights[c]` the per-member sampling weight
  /// (degree) of class c. Per interaction, responder and initiator are
  /// independently weight-proportional; only the responder transitions
  /// (adopt / flip), exactly as in the unstructured chain. Applies the
  /// aggregate deltas and returns true; returns false without modifying
  /// the state when the frozen-rate draw would drive a count negative or
  /// leave zero decided agents (the caller retries with a smaller m —
  /// m == 1 always succeeds). With one class of weight 1 this is
  /// try_async_chunk's event layout and rates verbatim.
  bool try_async_class_chunk(std::span<pp::Count> opinions,
                             std::span<pp::Count> undecided,
                             std::span<const double> weights, std::uint64_t m,
                             rng::Rng& rng);

 private:
  int k_;
  int classes_;
  std::vector<double> weights_;  // scratch: up to 2*k*classes+1 event weights
  std::vector<double> weighted_counts_;  // scratch: k degree-weighted counts
};

}  // namespace kusd::core
