#include "core/chunk_controller.hpp"

#include <algorithm>
#include <cmath>

#include "pp/configuration.hpp"
#include "util/check.hpp"

namespace kusd::core {

const char* to_string(ChunkPolicy policy) {
  switch (policy) {
    case ChunkPolicy::kFixed: return "fixed";
    case ChunkPolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<ChunkPolicy> parse_chunk_policy(const std::string& name) {
  if (name == "fixed") return ChunkPolicy::kFixed;
  if (name == "adaptive") return ChunkPolicy::kAdaptive;
  return std::nullopt;
}

const char* to_string(LockstepSchedule schedule) {
  switch (schedule) {
    case LockstepSchedule::kPerTrial: return "per-trial";
    case LockstepSchedule::kShared: return "shared";
  }
  return "?";
}

std::optional<LockstepSchedule> parse_lockstep_schedule(
    const std::string& name) {
  if (name == "per-trial") return LockstepSchedule::kPerTrial;
  if (name == "shared") return LockstepSchedule::kShared;
  return std::nullopt;
}

ChunkController::ChunkController(const ChunkOptions& options, pp::Count n)
    : options_(options), n_(n) {
  KUSD_CHECK_MSG(options.chunk_fraction > 0.0 && options.chunk_fraction <= 1.0,
                 "chunk_fraction must be in (0, 1]");
  const auto& a = options.adaptive;
  KUSD_CHECK_MSG(a.drift_tolerance > 0.0 && a.drift_tolerance <= 1.0,
                 "drift_tolerance must be in (0, 1]");
  KUSD_CHECK_MSG(a.min_fraction >= 0.0 && a.min_fraction <= a.max_fraction &&
                     a.max_fraction <= 1.0,
                 "need 0 <= min_fraction <= max_fraction <= 1");
  KUSD_CHECK_MSG(a.grow_factor > 1.0, "grow_factor must exceed 1");
  KUSD_CHECK_MSG(a.trend_alpha >= 0.0 && a.trend_alpha < 1.0,
                 "trend_alpha must be in [0, 1)");

  const double dn = static_cast<double>(n);
  fixed_chunk_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(options.chunk_fraction * dn)));
  min_chunk_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(a.min_fraction * dn)));
  max_chunk_ = std::max<std::uint64_t>(
      min_chunk_,
      static_cast<std::uint64_t>(std::llround(a.max_fraction * dn)));
  last_ = min_chunk_;
}

std::uint64_t ChunkController::propose(std::span<const pp::Count> opinions,
                                       pp::Count undecided) {
  if (options_.policy == ChunkPolicy::kFixed) return fixed_chunk_;
  return finalize_bound(raw_bound(opinions, undecided));
}

std::uint64_t ChunkController::propose_from_bound(double bound) {
  if (options_.policy == ChunkPolicy::kFixed) return fixed_chunk_;
  return finalize_bound(bound);
}

double ChunkController::raw_bound(std::span<const pp::Count> opinions,
                                  pp::Count undecided) const {
  if (options_.policy == ChunkPolicy::kFixed) {
    return static_cast<double>(max_chunk_);
  }

  // Per-interaction moments of every count, in closed form at the frozen
  // configuration (rates in units of probability per interaction):
  //   opinion j:  gains w.p. u*x_j / n^2, loses w.p. x_j*(d - x_j) / n^2
  //   undecided:  gains w.p. sum_j x_j*(d - x_j) / n^2 = (d^2 - S2) / n^2,
  //               loses w.p. u*d / n^2
  // The admissible chunk is the largest m keeping both m*|mu| (drift) and
  // m*sigma2 (fluctuation variance) within the tolerance band of every
  // count, i.e. the standard tau-selection bound, computable in O(k).
  const double tol = options_.adaptive.drift_tolerance;
  const double dn = static_cast<double>(n_);
  const double inv_n2 = 1.0 / (dn * dn);
  const double du = static_cast<double>(undecided);
  const double dd = dn - du;  // decided agents

  double bound = static_cast<double>(max_chunk_);
  double sum_sq = 0.0;
  for (const pp::Count count : opinions) {
    if (count == 0) continue;
    const double xj = static_cast<double>(count);
    sum_sq += xj * xj;
    apply_band(xj, du * xj * inv_n2, xj * (dd - xj) * inv_n2, tol, bound);
  }
  apply_band(du, (dd * dd - sum_sq) * inv_n2, du * dd * inv_n2, tol, bound);
  return bound;
}

std::uint64_t ChunkController::propose_classes(
    std::span<const pp::Count> opinions, std::span<const pp::Count> undecided,
    std::span<const double> weights) {
  if (options_.policy == ChunkPolicy::kFixed) return fixed_chunk_;
  const std::size_t classes = undecided.size();
  KUSD_DCHECK(classes >= 1 && weights.size() == classes &&
              opinions.size() % classes == 0);
  const std::size_t k = opinions.size() / classes;

  // Degree-weighted totals of the annealed chain: the rates below MUST
  // mirror RoundEngine::try_async_class_chunk (in units of probability
  // per interaction after dividing by W^2) — a divergence silently
  // detunes the error control.
  if (weighted_scratch_.size() < k) weighted_scratch_.resize(k);
  double weighted_undecided = 0.0;
  for (std::size_t j = 0; j < k; ++j) weighted_scratch_[j] = 0.0;
  for (std::size_t c = 0; c < classes; ++c) {
    weighted_undecided += weights[c] * static_cast<double>(undecided[c]);
    for (std::size_t j = 0; j < k; ++j) {
      weighted_scratch_[j] +=
          weights[c] * static_cast<double>(opinions[c * k + j]);
    }
  }
  double weighted_decided = 0.0;
  for (std::size_t j = 0; j < k; ++j) weighted_decided += weighted_scratch_[j];
  const double total_weight = weighted_undecided + weighted_decided;
  if (total_weight <= 0.0) return finalize_bound(1.0);
  const double inv_w2 = 1.0 / (total_weight * total_weight);
  const double tol = options_.adaptive.drift_tolerance;

  double bound = static_cast<double>(max_chunk_);
  for (std::size_t c = 0; c < classes; ++c) {
    const double wc = weights[c];
    for (std::size_t j = 0; j < k; ++j) {
      const pp::Count count = opinions[c * k + j];
      if (count == 0) continue;
      const double xcj = static_cast<double>(count);
      const double gain =
          wc * static_cast<double>(undecided[c]) * weighted_scratch_[j] *
          inv_w2;
      const double loss =
          wc * xcj * (weighted_decided - weighted_scratch_[j]) * inv_w2;
      apply_band(xcj, gain, loss, tol, bound);
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    const double wc = weights[c];
    const double uc = static_cast<double>(undecided[c]);
    double flips = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      flips += static_cast<double>(opinions[c * k + j]) *
               (weighted_decided - weighted_scratch_[j]);
    }
    apply_band(uc, wc * flips * inv_w2, wc * uc * weighted_decided * inv_w2,
               tol, bound);
  }
  return finalize_bound(bound);
}

void ChunkController::apply_band(double count, double gain, double loss,
                                 double tol, double& bound) {
  const double band = std::max(tol * count, 1.0);
  const double drift = std::abs(gain - loss);
  if (drift > 0.0) bound = std::min(bound, band / drift);
  const double sigma2 = gain + loss;
  if (sigma2 > 0.0) bound = std::min(bound, band * band / sigma2);
}

std::uint64_t ChunkController::finalize_bound(double bound) {
  // PI-style lookahead: smooth the bound's step-to-step change with an
  // EWMA and, while the bound is falling, pre-shrink by the predicted
  // next-step drop. Anticipation only tightens (a rising trend never
  // extends the hard error cap) and is floored at a quarter of the raw
  // bound, so one noisy estimate cannot collapse the schedule.
  const double raw_bound = bound;
  if (options_.adaptive.trend_alpha > 0.0) {
    if (has_previous_raw_bound_) {
      const double alpha = options_.adaptive.trend_alpha;
      trend_ = (1.0 - alpha) * trend_ +
               alpha * (raw_bound - previous_raw_bound_);
      if (trend_ < 0.0) {
        bound = std::max({raw_bound + trend_, 0.25 * raw_bound, 1.0});
      }
    }
    previous_raw_bound_ = raw_bound;
    has_previous_raw_bound_ = true;
  }

  auto target = static_cast<std::uint64_t>(
      std::clamp(std::floor(bound), 1.0, static_cast<double>(max_chunk_)));
  // Geometric rate limit on growth; shrinking takes effect immediately
  // (the error bound is a hard cap, the baseline only damps growth).
  const auto grow_cap = static_cast<std::uint64_t>(std::min(
      static_cast<double>(max_chunk_),
      std::max(1.0, static_cast<double>(last_) *
                        options_.adaptive.grow_factor)));
  target = std::min(target, grow_cap);
  target = std::clamp(target, std::max<std::uint64_t>(1, min_chunk_),
                      max_chunk_);
  last_ = target;
  return target;
}

void ChunkController::on_reject() {
  if (options_.policy == ChunkPolicy::kFixed) return;
  last_ = std::max<std::uint64_t>(std::max<std::uint64_t>(1, min_chunk_),
                                  last_ / 2);
}

}  // namespace kusd::core
