// Structure-of-arrays lockstep kernel: many tau-leap trials per chunk.
//
// A sweep cell runs hundreds of trials of the same (configuration,
// ChunkOptions) point, differing only in their Philox-derived Rng streams.
// BatchedUsdSimulator walks them one at a time; LockstepRoundEngine
// advances all of them together, one chunk per trial per pass, with the
// per-trial state held trial-major (counts[trial * k + opinion]) and the
// conditional-binomial multinomial draws batched family-by-family across
// trials (rng::binomial_batch).
//
// The defining contract is *per-stream bit-identity*: trial t of a
// lockstep run makes exactly the draw sequence, chunk schedule, and
// halve-on-overshoot decisions that
//     BatchedUsdSimulator(initial, rng::Rng(seeds[t]), options)
// would make alone, because every draw of trial t comes from trial t's own
// stream and the kernel replays RoundEngine::try_async_chunk +
// Rng::multinomial_into arithmetic in the same order per trial. Batch
// composition is therefore invisible: adding, removing, or reordering the
// other trials of a batch cannot change any trial's trajectory, finished
// trials are masked out of the active set without disturbing the rest,
// and KS fidelity vs the exact chain is inherited from the scalar engine
// (pinned by tests/test_lockstep.cpp). The throughput win is measured by
// bench_lockstep_trials (E18).
//
// Under LockstepSchedule::kPerTrial (the default) each trial keeps its
// own ChunkController: the cell shares one schedule *policy* (the
// ChunkOptions), while the adaptive controller state stays per-trial —
// exactly what the scalar engines do, and required for the bit-identity
// above (reject feedback and the drift trend are trajectory-dependent).
//
// LockstepSchedule::kShared is the opt-in throughput mode: ONE
// ChunkController proposes a single chunk length per pass from the
// minimum admissible per-trial tau bound (ChunkController::raw_bound
// over the trials taking it — the band must hold for each trial
// individually; a pooled configuration of trials drifting toward
// different winners misreads as a contested state whose flip rate pins
// the proposal at its floor), and every draw of the batch is
// consumed sequentially (family-outer, trial-inner, index order) from one
// counter-based Philox uniform stream keyed by seeds[0]. That eliminates
// schedule divergence and the per-trial stream gather, but deliberately
// gives up per-stream bit-identity to the scalar engine: batch
// composition now shapes each trial's draws. The mode remains fully
// self-deterministic — the kernel is sequential and the stream is
// counter-based, so results are byte-identical across runs and thread
// counts — and its marginal statistics are KS-gated against the exact
// chain (tests/test_lockstep.cpp). Halve-on-reject stays per trial (a
// rejected trial redraws its own halved chunk); the shared controller
// hears on_reject only when a majority of the fresh (proposal-taking)
// trials rejected the pass — with T trials an any-reject rule fires ~T
// times as often as a single trial's and pins the proposal at its floor.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/chunk_controller.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "rng/uniform_block.hpp"

namespace kusd::core {

/// Full schedule configuration of the lockstep kernel: the chunk policy
/// every schedule shares, plus who owns the controller(s).
struct LockstepOptions {
  ChunkOptions chunk;
  LockstepSchedule schedule = LockstepSchedule::kPerTrial;
};

class LockstepRoundEngine {
 public:
  /// One trial per entry of `seeds`, all starting from `initial`. Trial t
  /// draws from rng::Rng(seeds[t]) under the per-trial schedule; under
  /// the shared schedule all trials draw from one Philox stream keyed by
  /// seeds[0].
  LockstepRoundEngine(const pp::Configuration& initial,
                      std::span<const std::uint64_t> seeds,
                      LockstepOptions options);

  /// Per-trial schedule with the given chunk policy (the PR-8 surface;
  /// bit-identical to the scalar tau-leap engine per stream).
  LockstepRoundEngine(const pp::Configuration& initial,
                      std::span<const std::uint64_t> seeds,
                      ChunkOptions options = {})
      : LockstepRoundEngine(initial, seeds, LockstepOptions{options}) {}

  [[nodiscard]] std::size_t trials() const { return undecided_.size(); }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] pp::Count n() const { return n_; }

  /// Advance every trial until it reaches consensus or `target` total
  /// interactions, whichever comes first. Chunks are clamped to land
  /// exactly on `target` (the batched engine's boundary-exactness
  /// contract), so repeated calls with growing targets tile a trajectory
  /// without overshoot. Already-finished trials are skipped.
  void advance_all(std::uint64_t target);

  /// Trials that have not yet reached consensus.
  [[nodiscard]] std::size_t unfinished() const;

  // ---- Per-trial inspection (mirrors BatchedUsdSimulator) ----
  [[nodiscard]] std::span<const pp::Count> counts(std::size_t t) const {
    return {&counts_[t * static_cast<std::size_t>(k_)],
            static_cast<std::size_t>(k_)};
  }
  [[nodiscard]] pp::Count undecided(std::size_t t) const {
    return undecided_[t];
  }
  [[nodiscard]] std::uint64_t interactions(std::size_t t) const {
    return interactions_[t];
  }
  /// Multinomial chunks drawn for trial t (including halved retries).
  [[nodiscard]] std::uint64_t chunks(std::size_t t) const {
    return chunks_[t];
  }
  [[nodiscard]] bool is_consensus(std::size_t t) const {
    return winner_[t] >= 0;
  }
  /// Only valid when is_consensus(t).
  [[nodiscard]] int consensus_opinion(std::size_t t) const {
    return winner_[t];
  }

  /// The active schedule mode.
  [[nodiscard]] LockstepSchedule schedule() const { return schedule_; }

 private:
  int k_;
  pp::Count n_;
  LockstepSchedule schedule_;
  // Trial-major SoA state: counts_[t * k + j], the rest indexed by trial.
  std::vector<pp::Count> counts_;
  std::vector<pp::Count> undecided_;
  std::vector<rng::Rng> rngs_;
  std::vector<ChunkController> controllers_;
  // Shared-schedule state (engaged only under LockstepSchedule::kShared):
  // the one controller driving the batch and the one uniform stream every
  // draw consumes from, in deterministic index order.
  std::optional<ChunkController> shared_controller_;
  std::optional<rng::PhiloxUniformStream> shared_stream_;
  // Per-trial geometric re-growth cap on taking the shared proposal,
  // mirroring ChunkController's grow_factor ramp: a trial whose draw was
  // rejected re-approaches the shared length geometrically from its
  // halved retry instead of re-taking (and re-rejecting) the full
  // shared proposal every pass. +inf = no cap (never rejected, or fully
  // recovered).
  std::vector<double> shared_grow_cap_;
  double shared_grow_factor_ = 2.0;
  std::vector<std::uint64_t> interactions_;
  std::vector<std::uint64_t> chunks_;
  std::vector<int> winner_;  // -1 = still running

  // advance_all scratch, indexed by trial (events_/weights_ by trial *
  // (2k + 1) + family). Kept across calls to avoid reallocation.
  std::vector<std::uint32_t> active_;
  std::vector<std::uint8_t> pending_retry_;
  std::vector<std::uint64_t> m_;
  std::vector<std::uint64_t> remaining_;
  std::vector<double> remaining_weight_;
  std::vector<double> weights_;
  std::vector<std::uint64_t> events_;
  // Gather buffers of the per-family batched binomial call.
  std::vector<rng::Rng*> batch_rngs_;
  std::vector<std::uint64_t> batch_ns_;
  std::vector<double> batch_ps_;
  std::vector<std::uint64_t> batch_out_;
  std::vector<std::uint32_t> batch_trials_;
};

}  // namespace kusd::core
