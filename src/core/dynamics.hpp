// Baseline consensus dynamics from the paper's related-work section (1.2):
// Voter (1-Majority), TwoChoices (lazy tie-break), 3-Majority, general
// j-Majority, and the MedianRule. These are *sampling dynamics*: at each
// activation one agent is chosen uniformly at random, samples j agents
// uniformly at random (with replacement), and updates its opinion by the
// rule. There is no undecided state.
//
// They are used by bench_baselines (E9) to place the USD's convergence
// among its peers, exactly as the paper's introduction does.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "urn/urn.hpp"

namespace kusd::core {

/// One update rule of a sampling dynamic.
class SamplingDynamics {
 public:
  virtual ~SamplingDynamics() = default;

  /// Number of agents sampled per activation.
  [[nodiscard]] virtual int sample_size() const = 0;

  /// New opinion of the activated agent, given its own opinion and the
  /// sampled opinions.
  [[nodiscard]] virtual int update(int self, std::span<const int> sampled,
                                   rng::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Voter / 1-Majority: adopt the sampled opinion.
class VoterDynamics final : public SamplingDynamics {
 public:
  [[nodiscard]] int sample_size() const override { return 1; }
  [[nodiscard]] int update(int self, std::span<const int> sampled,
                           rng::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "Voter"; }
};

/// TwoChoices: sample two; adopt if they agree, otherwise keep your own
/// opinion (lazy tie-breaking, as in Ghaffari & Lengler).
class TwoChoicesDynamics final : public SamplingDynamics {
 public:
  [[nodiscard]] int sample_size() const override { return 2; }
  [[nodiscard]] int update(int self, std::span<const int> sampled,
                           rng::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "TwoChoices";
  }
};

/// j-Majority: sample j; adopt the majority opinion among the sample,
/// breaking ties uniformly among the tied opinions. j = 3 is the classic
/// 3-Majority dynamics.
class JMajorityDynamics final : public SamplingDynamics {
 public:
  explicit JMajorityDynamics(int j);
  [[nodiscard]] int sample_size() const override { return j_; }
  [[nodiscard]] int update(int self, std::span<const int> sampled,
                           rng::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  int j_;
  std::string name_;
};

/// MedianRule (Doerr et al.): opinions are ordered; adopt the median of
/// {self, sampled[0], sampled[1]}.
class MedianRuleDynamics final : public SamplingDynamics {
 public:
  [[nodiscard]] int sample_size() const override { return 2; }
  [[nodiscard]] int update(int self, std::span<const int> sampled,
                           rng::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "MedianRule";
  }
};

/// Sequential (asynchronous) scheduler for sampling dynamics: each step
/// activates one uniformly random agent. Count-based, like the USD engine.
class DynamicsScheduler {
 public:
  DynamicsScheduler(const SamplingDynamics& dynamics,
                    const pp::Configuration& initial, rng::Rng rng);

  void step();
  /// Returns true iff consensus was reached within `max_activations`.
  bool run_to_consensus(std::uint64_t max_activations);

  [[nodiscard]] std::uint64_t activations() const { return activations_; }
  [[nodiscard]] pp::Count n() const { return n_; }
  [[nodiscard]] std::span<const pp::Count> counts() const {
    return opinions_.counts();
  }
  [[nodiscard]] bool is_consensus() const { return winner_.has_value(); }
  [[nodiscard]] int consensus_opinion() const { return *winner_; }

 private:
  const SamplingDynamics& dynamics_;
  urn::Urn opinions_;
  pp::Count n_;
  rng::Rng rng_;
  std::uint64_t activations_ = 0;
  std::optional<int> winner_;
  std::vector<int> sample_buffer_;
};

}  // namespace kusd::core
