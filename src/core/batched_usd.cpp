#include "core/batched_usd.hpp"

#include <algorithm>
#include <cmath>

#include "core/stepping.hpp"
#include "util/check.hpp"

namespace kusd::core {

BatchedUsdSimulator::BatchedUsdSimulator(const pp::Configuration& initial,
                                         rng::Rng rng, BatchedOptions options)
    : opinions_(initial.opinions().begin(), initial.opinions().end()),
      undecided_(initial.undecided()),
      n_(initial.n()),
      engine_(initial.k()),
      rng_(rng) {
  KUSD_CHECK_MSG(initial.decided() >= 1,
                 "an all-undecided population never converges");
  KUSD_CHECK_MSG(options.chunk_fraction > 0.0 && options.chunk_fraction <= 1.0,
                 "chunk_fraction must be in (0, 1]");
  const double target = options.chunk_fraction * static_cast<double>(n_);
  chunk_target_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(target)));
  for (int i = 0; i < initial.k(); ++i) {
    if (initial.opinion(i) == n_) winner_ = i;
  }
}

void BatchedUsdSimulator::step() {
  KUSD_DCHECK(!winner_.has_value());
  std::uint64_t m = chunk_target_;
  // A frozen-rate draw can overshoot a count; halve and redraw. m == 1
  // realizes exactly one interaction-chain event and always succeeds.
  while (true) {
    ++chunks_;
    if (engine_.try_async_chunk(opinions_, undecided_, n_, m, rng_)) break;
    m = std::max<std::uint64_t>(1, m / 2);
  }
  interactions_ += m;
  for (std::size_t i = 0; i < opinions_.size(); ++i) {
    if (opinions_[i] == n_) winner_ = static_cast<int>(i);
  }
}

bool BatchedUsdSimulator::run_to_consensus(std::uint64_t max_interactions) {
  return detail::run_sim_to_consensus(*this, max_interactions);
}

bool BatchedUsdSimulator::run_observed(std::uint64_t max_interactions,
                                       std::uint64_t interval,
                                       const UsdSimulator::Observer& observer) {
  return detail::run_sim_observed(*this, max_interactions, interval,
                                  observer);
}

}  // namespace kusd::core
