#include "core/batched_usd.hpp"

#include <algorithm>

#include "core/stepping.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::core {

BatchedUsdSimulator::BatchedUsdSimulator(const pp::Configuration& initial,
                                         rng::Rng rng, BatchedOptions options)
    : opinions_(initial.opinions().begin(), initial.opinions().end()),
      undecided_(initial.undecided()),
      n_(initial.n()),
      controller_(options, initial.n()),
      engine_(initial.k()),
      rng_(rng) {
  KUSD_CHECK_MSG(initial.decided() >= 1,
                 "an all-undecided population never converges");
  for (int i = 0; i < initial.k(); ++i) {
    if (initial.opinion(i) == n_) winner_ = i;
  }
}

void BatchedUsdSimulator::step(std::uint64_t max_length) {
  KUSD_DCHECK(!winner_.has_value());
  KUSD_DCHECK(max_length >= 1);
  std::uint64_t m =
      std::min(controller_.propose(opinions_, undecided_), max_length);
  // A frozen-rate draw can overshoot a count; halve and redraw. m == 1
  // realizes exactly one interaction-chain event and always succeeds.
  while (true) {
    ++chunks_;
    if (engine_.try_async_chunk(opinions_, undecided_, n_, m, rng_)) break;
    controller_.on_reject();
    m = std::max<std::uint64_t>(1, m / 2);
  }
  interactions_ += m;
  for (std::size_t i = 0; i < opinions_.size(); ++i) {
    if (opinions_[i] == n_) winner_ = static_cast<int>(i);
  }
}

bool BatchedUsdSimulator::run_to_consensus(std::uint64_t max_interactions) {
  return detail::run_sim_to_consensus(*this, max_interactions);
}

bool BatchedUsdSimulator::run_observed(std::uint64_t max_interactions,
                                       std::uint64_t interval,
                                       const UsdSimulator::Observer& observer) {
  KUSD_CHECK_MSG(interval > 0, "observer interval must be positive");
  // Unlike the shared driver in stepping.hpp (which reports at the first
  // step past each boundary — the right contract for engines advancing one
  // interaction at a time), chunks here are clamped so the trajectory
  // lands exactly on every multiple of `interval`: phase-tracker
  // milestones are then measured at the boundary itself instead of up to a
  // chunk later.
  observer(interactions_, opinions_, undecided_);
  std::uint64_t next = interactions_ + interval;
  while (!is_consensus() && interactions_ < max_interactions) {
    const std::uint64_t stop = std::min(next, max_interactions);
    step(stop - interactions_);
    if (interactions_ == next) {
      observer(interactions_, opinions_, undecided_);
      next += interval;
    }
  }
  observer(interactions_, opinions_, undecided_);
  return is_consensus();
}

}  // namespace kusd::core
