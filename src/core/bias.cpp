#include "core/bias.hpp"

#include <cmath>
#include <limits>

#include "pp/configuration.hpp"
#include "util/check.hpp"

namespace kusd::core {

pp::Count additive_bias(const pp::Configuration& x) {
  return x.xmax() - x.second_largest();
}

double multiplicative_bias(const pp::Configuration& x) {
  const pp::Count second = x.second_largest();
  if (second == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(x.xmax()) / static_cast<double>(second);
}

double significance_threshold(pp::Count n, double alpha) {
  const double dn = static_cast<double>(n);
  return alpha * std::sqrt(dn * std::log(dn));
}

bool is_significant(const pp::Configuration& x, int i, double alpha) {
  const double threshold = significance_threshold(x.n(), alpha);
  return static_cast<double>(x.opinion(i)) >
         static_cast<double>(x.xmax()) - threshold;
}

int significant_count(const pp::Configuration& x, double alpha) {
  int count = 0;
  for (int i = 0; i < x.k(); ++i) {
    if (is_significant(x, i, alpha)) ++count;
  }
  KUSD_DCHECK(count >= 1);
  return count;
}

bool is_important(const pp::Configuration& x, int i, double alpha) {
  return is_significant(x, i, 4.0 * alpha);
}

double monochromatic_distance(const pp::Configuration& x) {
  const double xmax = static_cast<double>(x.xmax());
  KUSD_CHECK_MSG(xmax > 0.0, "md(x) undefined without decided agents");
  return x.sum_squares() / (xmax * xmax);
}

double gossip_rate_bound(const pp::Configuration& x) {
  return monochromatic_distance(x) * std::log2(static_cast<double>(x.n()));
}

double population_rate_bound(const pp::Configuration& x) {
  const double n = static_cast<double>(x.n());
  const double x1 = static_cast<double>(x.xmax());
  KUSD_CHECK(x1 > 0.0);
  return std::log2(n) + n / x1;
}

}  // namespace kusd::core
