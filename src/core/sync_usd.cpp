#include "core/sync_usd.hpp"

#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::core {

SyncUsd::SyncUsd(const pp::Configuration& initial, rng::Rng rng)
    : opinions_(initial.opinions().begin(), initial.opinions().end()),
      n_(initial.n()),
      engine_(initial.k()),
      rng_(rng) {
  KUSD_CHECK_MSG(initial.undecided() == 0,
                 "the synchronized variant starts fully decided");
  for (int i = 0; i < initial.k(); ++i) {
    if (initial.opinion(i) == n_) winner_ = i;
  }
}

std::uint64_t SyncUsd::super_round() {
  KUSD_DCHECK(!winner_.has_value());
  const std::size_t k = opinions_.size();

  // Phase A: one USD round over a fully decided population. An agent of
  // opinion i keeps it iff the sampled partner shares it. In the (for
  // non-trivial n astronomically unlikely) event that every agent becomes
  // undecided, the round is re-run: the idealized synchronized process is
  // only defined conditioned on at least one decided survivor.
  std::vector<pp::Count> next(k, 0);
  pp::Count undecided = 0;
  do {
    next.assign(k, 0);
    undecided = engine_.decided_step(opinions_, /*undecided=*/0,
                                     /*keep_on_undecided=*/false, next, rng_);
    ++total_rounds_;
  } while (undecided == n_);

  // Phase B: undecided agents repeatedly sample until they land on a
  // decided agent, one synchronous sub-round per attempt. Partners are the
  // current (partially re-adopted) counts, so `next` aliases both roles.
  std::uint64_t sub_rounds = 0;
  while (undecided > 0) {
    undecided = engine_.adoption_step(next, undecided, undecided, next, rng_);
    ++sub_rounds;
    ++total_rounds_;
  }

  opinions_ = std::move(next);
  ++super_rounds_;
  for (std::size_t i = 0; i < k; ++i) {
    if (opinions_[i] == n_) winner_ = static_cast<int>(i);
  }
  return sub_rounds;
}

bool SyncUsd::run_to_consensus(std::uint64_t max_super_rounds) {
  while (!winner_.has_value() && super_rounds_ < max_super_rounds) {
    super_round();
  }
  return winner_.has_value();
}

}  // namespace kusd::core
