#include "core/round_engine.hpp"

#include "util/check.hpp"

namespace kusd::core {

RoundEngine::RoundEngine(int k) : k_(k) {
  KUSD_CHECK_MSG(k >= 1, "round engine needs at least one opinion");
  weights_.resize(2 * static_cast<std::size_t>(k) + 1);
}

pp::Count RoundEngine::decided_step(std::span<const pp::Count> opinions,
                                    pp::Count undecided,
                                    bool keep_on_undecided,
                                    std::span<pp::Count> next,
                                    rng::Rng& rng) {
  const std::size_t k = opinions.size();
  KUSD_DCHECK(k == static_cast<std::size_t>(k_) && next.size() == k);
  KUSD_DCHECK(next.data() != opinions.data());
  // Partner-sampling weights: the pre-round state distribution. With no
  // undecided agents the slot is omitted entirely — a trailing zero-weight
  // bucket would absorb the multinomial's exact-remainder treatment of the
  // last real opinion and let floating-point error leak agents into it.
  for (std::size_t j = 0; j < k; ++j) {
    weights_[j] = static_cast<double>(opinions[j]);
  }
  const bool with_undecided = undecided > 0;
  if (with_undecided) weights_[k] = static_cast<double>(undecided);
  const std::span<const double> w(weights_.data(),
                                  with_undecided ? k + 1 : k);

  pp::Count became_undecided = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (opinions[i] == 0) continue;
    const auto partners = rng.multinomial(opinions[i], w);
    pp::Count stay = partners[i];
    if (keep_on_undecided && with_undecided) stay += partners[k];
    next[i] += stay;
    became_undecided += opinions[i] - stay;
  }
  return became_undecided;
}

pp::Count RoundEngine::adoption_step(std::span<const pp::Count> partners,
                                     pp::Count partner_undecided,
                                     pp::Count undecided,
                                     std::span<pp::Count> next,
                                     rng::Rng& rng) {
  const std::size_t k = partners.size();
  KUSD_DCHECK(k == static_cast<std::size_t>(k_) && next.size() == k);
  if (undecided == 0) return 0;
  // Copy the weights before touching `next` so partners may alias next.
  // As in decided_step, a zero partner-undecided slot is omitted so the
  // last real opinion keeps the exact multinomial remainder.
  for (std::size_t j = 0; j < k; ++j) {
    weights_[j] = static_cast<double>(partners[j]);
  }
  const bool with_undecided = partner_undecided > 0;
  if (with_undecided) weights_[k] = static_cast<double>(partner_undecided);
  const auto sampled = rng.multinomial(
      undecided,
      std::span<const double>(weights_.data(), with_undecided ? k + 1 : k));
  for (std::size_t j = 0; j < k; ++j) next[j] += sampled[j];
  return with_undecided ? sampled[k] : 0;
}

bool RoundEngine::try_async_chunk(std::span<pp::Count> opinions,
                                  pp::Count& undecided, pp::Count n,
                                  std::uint64_t m, rng::Rng& rng) {
  const std::size_t k = opinions.size();
  KUSD_DCHECK(k == static_cast<std::size_t>(k_));
  const pp::Count decided = n - undecided;
  // Event weights in units of n^2 * probability, frozen at the current
  // configuration: adoption of j, flip of j, and the unproductive rest.
  const double du = static_cast<double>(undecided);
  double productive = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double xj = static_cast<double>(opinions[j]);
    weights_[j] = du * xj;                                       // adopt j
    weights_[k + j] = xj * static_cast<double>(decided - opinions[j]);
    productive += weights_[j] + weights_[k + j];
  }
  const double total =
      static_cast<double>(n) * static_cast<double>(n);
  weights_[2 * k] = std::max(0.0, total - productive);           // no-op
  const auto events = rng.multinomial(
      m, std::span<const double>(weights_.data(), 2 * k + 1));

  // Validate before committing: a frozen-rate draw can overshoot a count.
  std::uint64_t adopted = 0, flipped = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (opinions[j] + events[j] < events[k + j]) return false;
    adopted += events[j];
    flipped += events[k + j];
  }
  if (undecided + flipped < adopted) return false;
  // The exact chain preserves decided >= 1 (a flip needs two differently-
  // decided agents); all-undecided would be absorbing here, so a draw that
  // flips every decided agent must also be rejected.
  if (undecided + flipped - adopted == static_cast<std::uint64_t>(n)) {
    return false;
  }
  for (std::size_t j = 0; j < k; ++j) {
    opinions[j] += events[j];
    opinions[j] -= events[k + j];
  }
  undecided += flipped;
  undecided -= adopted;
  return true;
}

}  // namespace kusd::core
