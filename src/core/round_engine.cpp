#include "core/round_engine.hpp"

#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::core {

RoundEngine::RoundEngine(int k, int classes) : k_(k), classes_(classes) {
  KUSD_CHECK_MSG(k >= 1, "round engine needs at least one opinion");
  KUSD_CHECK_MSG(classes >= 1, "round engine needs at least one class");
  weights_.resize(2 * static_cast<std::size_t>(k) *
                      static_cast<std::size_t>(classes) +
                  1);
  weighted_counts_.resize(static_cast<std::size_t>(k));
}

pp::Count RoundEngine::decided_step(std::span<const pp::Count> opinions,
                                    pp::Count undecided,
                                    bool keep_on_undecided,
                                    std::span<pp::Count> next,
                                    rng::Rng& rng) {
  const std::size_t k = opinions.size();
  KUSD_DCHECK(k == static_cast<std::size_t>(k_) && next.size() == k);
  KUSD_DCHECK(next.data() != opinions.data());
  // Partner-sampling weights: the pre-round state distribution. With no
  // undecided agents the slot is omitted entirely — a trailing zero-weight
  // bucket would absorb the multinomial's exact-remainder treatment of the
  // last real opinion and let floating-point error leak agents into it.
  for (std::size_t j = 0; j < k; ++j) {
    weights_[j] = static_cast<double>(opinions[j]);
  }
  const bool with_undecided = undecided > 0;
  if (with_undecided) weights_[k] = static_cast<double>(undecided);
  const std::span<const double> w(weights_.data(),
                                  with_undecided ? k + 1 : k);

  pp::Count became_undecided = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (opinions[i] == 0) continue;
    const auto partners = rng.multinomial(opinions[i], w);
    pp::Count stay = partners[i];
    if (keep_on_undecided && with_undecided) stay += partners[k];
    next[i] += stay;
    became_undecided += opinions[i] - stay;
  }
  return became_undecided;
}

pp::Count RoundEngine::adoption_step(std::span<const pp::Count> partners,
                                     pp::Count partner_undecided,
                                     pp::Count undecided,
                                     std::span<pp::Count> next,
                                     rng::Rng& rng) {
  const std::size_t k = partners.size();
  KUSD_DCHECK(k == static_cast<std::size_t>(k_) && next.size() == k);
  if (undecided == 0) return 0;
  // Copy the weights before touching `next` so partners may alias next.
  // As in decided_step, a zero partner-undecided slot is omitted so the
  // last real opinion keeps the exact multinomial remainder.
  for (std::size_t j = 0; j < k; ++j) {
    weights_[j] = static_cast<double>(partners[j]);
  }
  const bool with_undecided = partner_undecided > 0;
  if (with_undecided) weights_[k] = static_cast<double>(partner_undecided);
  const auto sampled = rng.multinomial(
      undecided,
      std::span<const double>(weights_.data(), with_undecided ? k + 1 : k));
  for (std::size_t j = 0; j < k; ++j) next[j] += sampled[j];
  return with_undecided ? sampled[k] : 0;
}

bool RoundEngine::try_async_chunk(std::span<pp::Count> opinions,
                                  pp::Count& undecided, pp::Count n,
                                  std::uint64_t m, rng::Rng& rng) {
  const std::size_t k = opinions.size();
  KUSD_DCHECK(k == static_cast<std::size_t>(k_));
  const pp::Count decided = n - undecided;
  // Event weights in units of n^2 * probability, frozen at the current
  // configuration: adoption of j, flip of j, and the unproductive rest.
  const double du = static_cast<double>(undecided);
  double productive = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double xj = static_cast<double>(opinions[j]);
    weights_[j] = du * xj;                                       // adopt j
    weights_[k + j] = xj * static_cast<double>(decided - opinions[j]);
    productive += weights_[j] + weights_[k + j];
  }
  const double total =
      static_cast<double>(n) * static_cast<double>(n);
  weights_[2 * k] = std::max(0.0, total - productive);           // no-op
  const auto events = rng.multinomial(
      m, std::span<const double>(weights_.data(), 2 * k + 1));

  // Validate before committing: a frozen-rate draw can overshoot a count.
  std::uint64_t adopted = 0, flipped = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (opinions[j] + events[j] < events[k + j]) return false;
    adopted += events[j];
    flipped += events[k + j];
  }
  if (undecided + flipped < adopted) return false;
  // The exact chain preserves decided >= 1 (a flip needs two differently-
  // decided agents); all-undecided would be absorbing here, so a draw that
  // flips every decided agent must also be rejected.
  if (undecided + flipped - adopted == static_cast<std::uint64_t>(n)) {
    return false;
  }
  for (std::size_t j = 0; j < k; ++j) {
    opinions[j] += events[j];
    opinions[j] -= events[k + j];
  }
  undecided += flipped;
  undecided -= adopted;
  return true;
}

bool RoundEngine::try_async_class_chunk(std::span<pp::Count> opinions,
                                        std::span<pp::Count> undecided,
                                        std::span<const double> weights,
                                        std::uint64_t m, rng::Rng& rng) {
  const std::size_t k = static_cast<std::size_t>(k_);
  const std::size_t classes = static_cast<std::size_t>(classes_);
  KUSD_DCHECK(opinions.size() == k * classes);
  KUSD_DCHECK(undecided.size() == classes && weights.size() == classes);

  // Degree-weighted totals: X_j^w = sum_c w_c x_{c,j}, U^w = sum_c w_c u_c,
  // W = U^w + sum_j X_j^w. Endpoints are independently weight-proportional,
  // so event weights live in units of W^2 * probability. NOTE: any change
  // to these rates must be mirrored in ChunkController::propose_classes,
  // whose tau bound is derived from exactly this model (as propose() is
  // from try_async_chunk's).
  double weighted_undecided = 0.0;
  double total_weight = 0.0;
  for (std::size_t j = 0; j < k; ++j) weighted_counts_[j] = 0.0;
  for (std::size_t c = 0; c < classes; ++c) {
    weighted_undecided += weights[c] * static_cast<double>(undecided[c]);
    for (std::size_t j = 0; j < k; ++j) {
      weighted_counts_[j] +=
          weights[c] * static_cast<double>(opinions[c * k + j]);
    }
  }
  double weighted_decided = 0.0;
  for (std::size_t j = 0; j < k; ++j) weighted_decided += weighted_counts_[j];
  total_weight = weighted_undecided + weighted_decided;
  if (total_weight <= 0.0) return false;  // no interacting vertices at all

  // Event families, mirroring try_async_chunk's layout per class block:
  // adopt(c, j) at [c*k + j], flip(c, j) at [classes*k + c*k + j], no-op
  // last. adopt(c, j): responder (c, undecided) meets initiator of opinion
  // j; flip(c, j): responder (c, j) meets a differently-decided initiator.
  const std::size_t adopt0 = 0;
  const std::size_t flip0 = classes * k;
  double productive = 0.0;
  for (std::size_t c = 0; c < classes; ++c) {
    const double wc = weights[c];
    const double uc = static_cast<double>(undecided[c]);
    for (std::size_t j = 0; j < k; ++j) {
      const double xcj = static_cast<double>(opinions[c * k + j]);
      weights_[adopt0 + c * k + j] = wc * uc * weighted_counts_[j];
      weights_[flip0 + c * k + j] =
          wc * xcj * (weighted_decided - weighted_counts_[j]);
      productive +=
          weights_[adopt0 + c * k + j] + weights_[flip0 + c * k + j];
    }
  }
  weights_[2 * classes * k] =
      std::max(0.0, total_weight * total_weight - productive);  // no-op
  const auto events = rng.multinomial(
      m, std::span<const double>(weights_.data(), 2 * classes * k + 1));

  // Validate before committing, exactly as in the unstructured chunk: a
  // frozen-rate draw can overshoot a per-class count.
  std::uint64_t total_adopted = 0, total_flipped = 0;
  std::uint64_t total_decided = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    std::uint64_t adopted_c = 0, flipped_c = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (opinions[c * k + j] + events[adopt0 + c * k + j] <
          events[flip0 + c * k + j]) {
        return false;
      }
      adopted_c += events[adopt0 + c * k + j];
      flipped_c += events[flip0 + c * k + j];
      total_decided += opinions[c * k + j];
    }
    if (undecided[c] + flipped_c < adopted_c) return false;
    total_adopted += adopted_c;
    total_flipped += flipped_c;
  }
  // The exact chain preserves decided >= 1 globally (a flip needs a
  // differently-decided initiator); reject a draw that would leave the
  // absorbing all-undecided state.
  if (total_decided + total_adopted == total_flipped) return false;
  for (std::size_t c = 0; c < classes; ++c) {
    std::uint64_t adopted_c = 0, flipped_c = 0;
    for (std::size_t j = 0; j < k; ++j) {
      opinions[c * k + j] += events[adopt0 + c * k + j];
      opinions[c * k + j] -= events[flip0 + c * k + j];
      adopted_c += events[adopt0 + c * k + j];
      flipped_c += events[flip0 + c * k + j];
    }
    undecided[c] += flipped_c;
    undecided[c] -= adopted_c;
  }
  return true;
}

}  // namespace kusd::core
