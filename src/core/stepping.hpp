// Shared run-loop drivers for the interaction-level simulators.
//
// UsdSimulator and BatchedUsdSimulator expose the same stepping surface
// (step / is_consensus / interactions / opinions / undecided); the
// consensus loop and the observer-interval bookkeeping live here once so
// the two engines cannot drift apart.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace kusd::core::detail {

template <typename Sim>
bool run_sim_to_consensus(Sim& sim, std::uint64_t max_interactions) {
  while (!sim.is_consensus() && sim.interactions() < max_interactions) {
    sim.step();
  }
  return sim.is_consensus();
}

/// Invokes `observer(t, opinions, undecided)` before the first step, at the
/// first step past each multiple of `interval`, and after the last step.
template <typename Sim, typename Observer>
bool run_sim_observed(Sim& sim, std::uint64_t max_interactions,
                      std::uint64_t interval, const Observer& observer) {
  KUSD_CHECK_MSG(interval > 0, "observer interval must be positive");
  observer(sim.interactions(), sim.opinions(), sim.undecided());
  std::uint64_t next = sim.interactions() + interval;
  while (!sim.is_consensus() && sim.interactions() < max_interactions) {
    sim.step();
    if (sim.interactions() >= next) {
      observer(sim.interactions(), sim.opinions(), sim.undecided());
      do {
        next += interval;
      } while (next <= sim.interactions());
    }
  }
  observer(sim.interactions(), sim.opinions(), sim.undecided());
  return sim.is_consensus();
}

}  // namespace kusd::core::detail
