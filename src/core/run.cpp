#include "core/run.hpp"

#include <algorithm>
#include <cmath>

#include "core/bias.hpp"
#include "util/check.hpp"

namespace kusd::core {

std::uint64_t default_interaction_cap(pp::Count n, int k) {
  const double dn = static_cast<double>(n);
  const double cap = 64.0 * static_cast<double>(k) * dn * (std::log(dn) + 1.0);
  // Populations the batched engine reaches can push the formula past
  // uint64 range; saturate instead of an unrepresentable (UB) cast.
  constexpr double kMax = 18446744073709549568.0;  // largest double < 2^64
  return cap >= kMax ? ~std::uint64_t{0} : static_cast<std::uint64_t>(cap);
}

namespace {

// Shared driver: UsdSimulator and BatchedUsdSimulator expose the same
// stepping/observation API, so the phase-tracking and outcome
// classification logic is written once against either.
template <typename Simulator>
void run_with(Simulator& sim, const pp::Configuration& initial,
              const RunOptions& options, std::uint64_t cap,
              RunResult& result) {
  if (options.track_phases) {
    PhaseTracker tracker(initial.n(), options.alpha);
    const std::uint64_t interval = options.observe_interval != 0
                                       ? options.observe_interval
                                       : std::max<std::uint64_t>(
                                             1, initial.n() / 8);
    result.converged = sim.run_observed(
        cap, interval,
        [&tracker](std::uint64_t t, std::span<const pp::Count> opinions,
                   pp::Count undecided) {
          tracker.observe(t, opinions, undecided);
        });
    result.phases = tracker.times();
  } else {
    result.converged = sim.run_to_consensus(cap);
  }

  result.interactions = sim.interactions();
  result.parallel_time = static_cast<double>(sim.interactions()) /
                         static_cast<double>(initial.n());
  if (result.converged) {
    result.winner = sim.consensus_opinion();
    result.plurality_won = result.winner == result.initial_plurality;
    result.winner_initially_significant =
        is_significant(initial, result.winner, options.alpha);
  }
}

}  // namespace

RunResult run_usd(const pp::Configuration& initial, std::uint64_t seed,
                  RunOptions options) {
  RunResult result;
  result.initial_plurality = initial.argmax();
  const std::uint64_t cap = options.max_interactions != 0
                                ? options.max_interactions
                                : default_interaction_cap(initial.n(),
                                                          initial.k());

  if (options.mode == StepMode::kBatchedRounds) {
    BatchedUsdSimulator sim(initial, rng::Rng(seed), options.batch);
    run_with(sim, initial, options, cap, result);
  } else {
    UsdSimulator sim(initial, rng::Rng(seed),
                     UsdOptions{options.mode, options.engine});
    run_with(sim, initial, options, cap, result);
  }
  return result;
}

}  // namespace kusd::core
