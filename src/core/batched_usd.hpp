// Batched simulator for the asynchronous USD chain: Θ(n) interactions per
// O(k) work via chunked Poissonization (tau-leaping).
//
// Each step freezes the per-interaction transition rates at the current
// configuration and draws the aggregate event counts of a whole chunk of
// interactions from one multinomial (RoundEngine::try_async_chunk). This
// is the standard tau-leap approximation of the jump chain: exact when
// the chunk is a single interaction, and accurate whenever the rates
// change little across a chunk. The chunk length comes from a
// ChunkController — a fixed fraction of n (ChunkPolicy::kFixed, the
// bit-compatible default) or an error-controlled adaptive schedule
// (ChunkPolicy::kAdaptive) that bounds the predicted rate drift per chunk
// (see chunk_controller.hpp). Chunks that would overshoot a count are
// halved and redrawn down to a single interaction, which is always exact,
// so the simulator is well-defined in every state. The approximation
// quality is validated against StepMode::kEveryInteraction by KS property
// tests (tests/test_batched_usd.cpp, tests/test_chunk_controller.cpp).
//
// Unlike UsdSimulator, populations are not limited to 32 bits: only k+1
// counts are stored, so n = 10^9 and beyond run comfortably (see
// bench_batched_rounds.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/chunk_controller.hpp"
#include "core/round_engine.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"

namespace kusd::core {

/// Chunk-schedule options of the batched engine. The alias keeps PR-2
/// call sites (brace-initializing the leading chunk_fraction) meaning "fixed-fraction chunks".
using BatchedOptions = ChunkOptions;

class BatchedUsdSimulator {
 public:
  BatchedUsdSimulator(const pp::Configuration& initial, rng::Rng rng,
                      BatchedOptions options = {});

  /// Advance one chunk (possibly halved on overshoot; at least one
  /// interaction). The proposed chunk is clamped to `max_length`
  /// interactions, which run_observed uses to land exactly on observation
  /// boundaries.
  void step(std::uint64_t max_length = ~std::uint64_t{0});

  /// Run until consensus or until `max_interactions` have elapsed.
  bool run_to_consensus(std::uint64_t max_interactions);

  /// Same contract as UsdSimulator::run_observed, and exact about
  /// boundaries: chunks are clamped so the observer fires exactly at every
  /// multiple of `interval` (and never past `max_interactions`), rather
  /// than at the first chunk boundary beyond it.
  bool run_observed(std::uint64_t max_interactions, std::uint64_t interval,
                    const UsdSimulator::Observer& observer);

  // ---- Inspection (mirrors UsdSimulator) ----
  [[nodiscard]] std::uint64_t interactions() const { return interactions_; }
  /// Number of multinomial chunks drawn so far (including halved retries).
  [[nodiscard]] std::uint64_t chunks() const { return chunks_; }
  [[nodiscard]] pp::Count n() const { return n_; }
  [[nodiscard]] int k() const { return static_cast<int>(opinions_.size()); }
  [[nodiscard]] std::span<const pp::Count> opinions() const {
    return opinions_;
  }
  [[nodiscard]] pp::Count opinion(int i) const {
    return opinions_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] pp::Count undecided() const { return undecided_; }
  [[nodiscard]] bool is_consensus() const { return winner_.has_value(); }
  [[nodiscard]] int consensus_opinion() const { return *winner_; }
  [[nodiscard]] pp::Configuration configuration() const {
    return pp::Configuration(opinions_, undecided_);
  }

 private:
  std::vector<pp::Count> opinions_;
  pp::Count undecided_;
  pp::Count n_;
  ChunkController controller_;
  RoundEngine engine_;
  rng::Rng rng_;
  std::uint64_t interactions_ = 0;
  std::uint64_t chunks_ = 0;
  std::optional<int> winner_;
};

}  // namespace kusd::core
