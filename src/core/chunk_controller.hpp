// Chunk-length control for the tau-leaping batched simulator.
//
// BatchedUsdSimulator advances the asynchronous USD chain in chunks of m
// interactions with the transition rates frozen at the chunk's starting
// configuration. The approximation error of a chunk is governed by how far
// the per-interaction rates drift across it, and that drift is predictable
// in O(k) from the current counts: the expected per-interaction change of
// every count (and its variance) is a closed-form function of
// (x_1..x_k, u, n). ChunkController turns that prediction into a step-size
// policy:
//
//  * ChunkPolicy::kFixed — the PR-2 behaviour, bit-for-bit: a constant
//    chunk of chunk_fraction * n interactions. Kept as the default so
//    seeded runs stay reproducible across revisions.
//  * ChunkPolicy::kAdaptive — an error-controlled chunk in the style of
//    Cao–Gillespie tau-selection: the largest m such that, for every
//    count c with per-interaction drift mu_c and variance sigma2_c,
//        m * |mu_c|        <= tol * max(c, 1)     (predicted drift)
//        m * sigma2_c      <= (tol * max(c, 1))^2 (predicted fluctuation)
//    clamped to [min_fraction, max_fraction] of n and moved geometrically
//    (at most grow_factor per step) so one noisy estimate cannot slam the
//    chunk around. An EWMA of the bound's step-to-step change
//    (trend_alpha) additionally pre-shrinks the chunk when the bound is
//    falling, so the schedule tightens *before* a phase transition rather
//    than one step into it. Flat mid-run regimes take chunks far larger
//    than the fixed default; near-absorbing and early phase-transition
//    states drop automatically toward the exact single-interaction chain.
//
// The controller is pure bookkeeping: it never draws randomness, so for a
// fixed sequence of observed configurations its proposals are
// deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pp/configuration.hpp"

namespace kusd::core {

enum class ChunkPolicy {
  kFixed,     ///< constant chunk_fraction * n interactions per draw
  kAdaptive,  ///< error-controlled (rate-drift bound), grows/shrinks
};

[[nodiscard]] const char* to_string(ChunkPolicy policy);
/// Parse the CLI spelling ("fixed", "adaptive").
[[nodiscard]] std::optional<ChunkPolicy> parse_chunk_policy(
    const std::string& name);

/// Who owns the chunk schedule in the lockstep many-trial kernel
/// (core::LockstepRoundEngine).
enum class LockstepSchedule {
  /// One ChunkController per trial — the scalar engine's schedule replayed
  /// per stream, preserving per-stream bit-identity (the PR-8 default).
  kPerTrial,
  /// One ChunkController drives every active trial of the batch and all
  /// draws come from one shared counter-based uniform stream. Trades
  /// per-stream bit-identity to the scalar engine for throughput; still
  /// self-deterministic (byte-identical across runs and thread counts)
  /// and KS-gated against the exact chain.
  kShared,
};

[[nodiscard]] const char* to_string(LockstepSchedule schedule);
/// Parse the CLI spelling ("per-trial", "shared").
[[nodiscard]] std::optional<LockstepSchedule> parse_lockstep_schedule(
    const std::string& name);

/// Knobs of ChunkPolicy::kAdaptive (ignored under kFixed).
struct AdaptiveChunkOptions {
  /// Bound on the predicted relative drift (and relative standard
  /// deviation) of every count across one chunk. Smaller is more accurate;
  /// the default keeps the adaptive engine within KS detectability of the
  /// exact chain in every property test.
  double drift_tolerance = 0.05;
  /// Exactness floor: chunks never shrink below max(1, min_fraction * n)
  /// interactions. 0 allows the exact single-interaction chain.
  double min_fraction = 0.0;
  /// Ceiling: chunks never exceed max_fraction * n interactions.
  double max_fraction = 0.5;
  /// Geometric growth limit per committed step (> 1). Shrinking is
  /// immediate (the error bound is a hard cap); growth is rate-limited so
  /// one flat-looking configuration cannot jump straight to the ceiling.
  double grow_factor = 2.0;
  /// EWMA weight of the drift-trend lookahead, in [0, 1); 0 disables it.
  /// The controller smooths the step-to-step change of the raw tau bound
  /// and, when the bound is falling, pre-shrinks the next chunk by the
  /// predicted one-step drop (PI-style): chunks tighten *before* a phase
  /// transition instead of one step into it. The anticipation only ever
  /// shrinks below the hard error bound (never extends it), so accuracy
  /// is unaffected, and it is floored at a quarter of the raw bound so a
  /// noisy spike cannot collapse the schedule.
  double trend_alpha = 0.25;
};

/// Options of the batched engine's chunk schedule. The first member keeps
/// brace-initialization compatibility with the PR-2 BatchedOptions
/// (`{0.02}` still means "fixed 2% chunks").
struct ChunkOptions {
  /// Chunk length under kFixed, as a fraction of n.
  double chunk_fraction = 0.02;
  ChunkPolicy policy = ChunkPolicy::kFixed;
  AdaptiveChunkOptions adaptive = {};
};

class ChunkController {
 public:
  /// Validates the options against the population size `n` (throws
  /// util::CheckError on out-of-range knobs).
  ChunkController(const ChunkOptions& options, pp::Count n);

  [[nodiscard]] const ChunkOptions& options() const { return options_; }

  /// Propose the next chunk length (always >= 1) for the current
  /// configuration. O(k). Under kFixed the proposal is the constant
  /// chunk_fraction * n; under kAdaptive it is the error bound described
  /// in the file comment, geometrically rate-limited against the previous
  /// proposal.
  [[nodiscard]] std::uint64_t propose(std::span<const pp::Count> opinions,
                                      pp::Count undecided);

  /// The stateless tau-selection bound of propose() alone: the largest
  /// admissible chunk (in interactions, clamped to max_chunk) for this
  /// configuration, before the trend/growth schedule. O(k), const.
  /// Returns max_chunk under kFixed. Callers aggregating several
  /// configurations (e.g. the shared lockstep schedule takes the minimum
  /// over trials) feed the result to propose_from_bound().
  [[nodiscard]] double raw_bound(std::span<const pp::Count> opinions,
                                 pp::Count undecided) const;

  /// Run an externally aggregated raw_bound() value through the one
  /// trend/growth/clamp schedule propose() applies. Under kFixed the
  /// bound is ignored and the constant chunk returned.
  [[nodiscard]] std::uint64_t propose_from_bound(double bound);

  /// The class-structured analogue of propose() for the annealed
  /// degree-weighted chain (RoundEngine::try_async_class_chunk):
  /// `opinions` is class-major (class c, opinion j at c * k + j),
  /// `undecided` per class, `weights[c]` the per-member sampling weight of
  /// class c. Same tau-selection band — every per-class count's predicted
  /// drift and fluctuation stay within the tolerance — and the same
  /// trend/growth schedule, in O(classes * k). With one class of weight 1
  /// it computes exactly propose()'s bound.
  [[nodiscard]] std::uint64_t propose_classes(
      std::span<const pp::Count> opinions, std::span<const pp::Count> undecided,
      std::span<const double> weights);

  /// Feedback from the simulator: the last chunk overshot a count and was
  /// rejected by the frozen-rate draw. Shrinks the adaptive baseline so
  /// the next proposal starts from the halved length. No-op under kFixed.
  void on_reject();

  /// The smallest chunk the controller will propose.
  [[nodiscard]] std::uint64_t min_chunk() const { return min_chunk_; }
  /// The largest chunk the controller will propose.
  [[nodiscard]] std::uint64_t max_chunk() const { return max_chunk_; }

 private:
  /// Shared tail of the adaptive policies: trend lookahead, clamping to
  /// [min_chunk, max_chunk] and the geometric growth limit applied to a
  /// raw tau bound.
  [[nodiscard]] std::uint64_t finalize_bound(double raw_bound);
  /// Tighten `bound` so drift and fluctuation of a count with the given
  /// per-interaction gain/loss rates stay inside the tolerance band.
  static void apply_band(double count, double gain, double loss, double tol,
                         double& bound);

  ChunkOptions options_;
  pp::Count n_;
  std::uint64_t min_chunk_ = 1;
  std::uint64_t max_chunk_ = 1;
  std::uint64_t fixed_chunk_ = 1;
  /// Last adaptive proposal (growth baseline).
  std::uint64_t last_ = 0;
  // Trend lookahead state (see AdaptiveChunkOptions::trend_alpha): the
  // EWMA of the raw bound's step-to-step change, and the previous raw
  // bound it is updated against.
  double trend_ = 0.0;
  double previous_raw_bound_ = 0.0;
  bool has_previous_raw_bound_ = false;
  /// Scratch of propose_classes: k degree-weighted opinion totals.
  std::vector<double> weighted_scratch_;
};

}  // namespace kusd::core
