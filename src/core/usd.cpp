#include "core/usd.hpp"

#include "core/stepping.hpp"
#include "pp/configuration.hpp"
#include "pp/protocol.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::core {

UsdProtocol::UsdProtocol(int k) : k_(k) {
  KUSD_CHECK_MSG(k >= 1, "need at least one opinion");
}

pp::PairTransition UsdProtocol::apply(int responder, int initiator) const {
  KUSD_DCHECK(responder >= 0 && responder <= k_);
  KUSD_DCHECK(initiator >= 0 && initiator <= k_);
  const int undecided = k_;
  if (responder != undecided && initiator != undecided &&
      responder != initiator) {
    return {undecided, initiator};  // (q, q') -> (bot, q')
  }
  if (responder == undecided && initiator != undecided) {
    return {initiator, initiator};  // (bot, q') -> (q', q')
  }
  return {responder, initiator};  // unproductive
}

const char* engine_name(StepMode mode) {
  switch (mode) {
    case StepMode::kEveryInteraction: return "every";
    case StepMode::kSkipUnproductive: return "skip";
    case StepMode::kBatchedRounds: return "batched";
  }
  return "?";
}

namespace {
std::uint64_t square(pp::Count c) {
  return static_cast<std::uint64_t>(c) * static_cast<std::uint64_t>(c);
}
}  // namespace

UsdSimulator::UsdSimulator(const pp::Configuration& initial, rng::Rng rng,
                           UsdOptions options)
    : opinions_(initial.opinions(), options.engine),
      undecided_(initial.undecided()),
      n_(initial.n()),
      rng_(rng),
      mode_(options.mode) {
  KUSD_CHECK_MSG(mode_ != StepMode::kBatchedRounds,
                 "StepMode::kBatchedRounds is served by BatchedUsdSimulator "
                 "(use runner::run_usd or construct it directly)");
  KUSD_CHECK_MSG(n_ < (std::uint64_t{1} << 32),
                 "population must fit in 32 bits (n^2 must fit in 64)");
  KUSD_CHECK_MSG(initial.decided() >= 1,
                 "an all-undecided population never converges");
  sum_squares_ = 0;
  for (pp::Count c : initial.opinions()) sum_squares_ += square(c);
  for (int i = 0; i < initial.k(); ++i) {
    if (initial.opinion(i) == n_) winner_ = i;
  }
}

pp::Configuration UsdSimulator::configuration() const {
  return pp::Configuration(
      std::vector<pp::Count>(opinions_.counts().begin(),
                             opinions_.counts().end()),
      undecided_);
}

void UsdSimulator::adopt(int opinion) {
  const auto idx = static_cast<std::size_t>(opinion);
  sum_squares_ += 2 * opinions_.count(idx) + 1;
  opinions_.add(idx, +1);
  --undecided_;
  if (opinions_.count(idx) == n_) winner_ = opinion;
}

void UsdSimulator::flip(int opinion) {
  const auto idx = static_cast<std::size_t>(opinion);
  sum_squares_ -= 2 * opinions_.count(idx) - 1;
  opinions_.add(idx, -1);
  ++undecided_;
}

void UsdSimulator::step() {
  KUSD_DCHECK(!winner_.has_value());
  if (mode_ == StepMode::kEveryInteraction) {
    step_plain();
  } else {
    step_skip();
  }
}

void UsdSimulator::step_plain() {
  // Sample responder and initiator as uniform agents (with replacement):
  // position < undecided_ means the undecided state, otherwise the decided
  // position maps to an opinion through the urn.
  const std::uint64_t r = rng_.bounded(n_);
  const std::uint64_t i = rng_.bounded(n_);
  ++interactions_;
  const bool responder_undecided = r < undecided_;
  const bool initiator_undecided = i < undecided_;
  if (initiator_undecided) return;  // initiator undecided: never productive
  const int initiator_opinion =
      static_cast<int>(opinions_.find(i - undecided_));
  if (responder_undecided) {
    adopt(initiator_opinion);
    return;
  }
  const int responder_opinion =
      static_cast<int>(opinions_.find(r - undecided_));
  if (responder_opinion != initiator_opinion) flip(responder_opinion);
}

void UsdSimulator::step_skip() {
  const std::uint64_t decided = n_ - undecided_;
  // Weights of the two productive event families, in units of n^2 * prob:
  //   adopt: undecided responder, decided initiator  -> u * (n - u)
  //   flip:  decided responder, differently-decided initiator
  //          -> (n - u)^2 - r2   (Observation 6)
  const std::uint64_t w_adopt = undecided_ * decided;
  const std::uint64_t w_flip = decided * decided - sum_squares_;
  const std::uint64_t w = w_adopt + w_flip;
  KUSD_DCHECK(w > 0);  // only zero at consensus or all-undecided
  const double q = static_cast<double>(w) /
                   (static_cast<double>(n_) * static_cast<double>(n_));
  // Skip the (geometric) run of unproductive interactions, then realize one
  // productive interaction from the conditional distribution.
  interactions_ += rng_.geometric_failures(q) + 1;
  if (rng_.bounded(w) < w_adopt) {
    adopt(sample_opinion());
  } else {
    // (responder, initiator) ~ x_j * x_l conditioned on j != l: rejection
    // on the joint sample keeps the marginals exact.
    int j, l;
    do {
      j = sample_opinion();
      l = sample_opinion();
    } while (j == l);
    flip(j);
  }
}

bool UsdSimulator::run_to_consensus(std::uint64_t max_interactions) {
  return detail::run_sim_to_consensus(*this, max_interactions);
}

bool UsdSimulator::run_observed(std::uint64_t max_interactions,
                                std::uint64_t interval,
                                const Observer& observer) {
  return detail::run_sim_observed(*this, max_interactions, interval,
                                  observer);
}

}  // namespace kusd::core
