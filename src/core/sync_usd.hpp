// Synchronized USD variant (extension feature).
//
// Several works cited in Section 1.2 ([5, 7, 15, 30]) study a synchronized
// variant of the USD in which the system alternates between two phases:
// first every agent performs one USD step, then every undecided agent
// re-adopts an opinion (by sampling agents until a decided one is found).
// Phase clocks make this implementable in the population model at the cost
// of extra states; the payoff is polylogarithmic convergence *regardless of
// the initial configuration*. We implement the idealized synchronized
// process on top of the multinomial round engine so bench_baselines can
// show the contrast the paper draws: polylog rounds, but a "less natural"
// protocol.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/round_engine.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"

namespace kusd::core {

class SyncUsd {
 public:
  SyncUsd(const pp::Configuration& initial, rng::Rng rng);

  /// One synchronized super-round: a USD round followed by repeated
  /// re-adoption rounds until no agent is undecided. Returns the number of
  /// re-adoption sub-rounds used.
  std::uint64_t super_round();

  /// Returns true iff consensus was reached within `max_super_rounds`.
  bool run_to_consensus(std::uint64_t max_super_rounds);

  [[nodiscard]] std::uint64_t super_rounds() const { return super_rounds_; }
  /// Total synchronous rounds including re-adoption sub-rounds.
  [[nodiscard]] std::uint64_t total_rounds() const { return total_rounds_; }
  [[nodiscard]] pp::Count n() const { return n_; }
  [[nodiscard]] std::span<const pp::Count> opinions() const {
    return opinions_;
  }
  [[nodiscard]] bool is_consensus() const { return winner_.has_value(); }
  [[nodiscard]] int consensus_opinion() const { return *winner_; }

 private:
  std::vector<pp::Count> opinions_;
  pp::Count n_;
  RoundEngine engine_;
  rng::Rng rng_;
  std::uint64_t super_rounds_ = 0;
  std::uint64_t total_rounds_ = 0;
  std::optional<int> winner_;
};

}  // namespace kusd::core
