// The five-phase structure of the paper's analysis (table in Section 2.1),
// detected online from configuration snapshots.
//
//   Phase 1 ends at T1: u >= (n - xmax) / 2            (Lemma 1)
//   Phase 2 ends at T2: exactly one significant opinion (Lemma 8)
//   Phase 3 ends at T3: xmax >= 2 * x_i for all others  (Lemma 11)
//   Phase 4 ends at T4: xmax >= 2n/3                    (Lemma 15)
//   Phase 5 ends at T5: xmax = n (consensus)            (Lemma 16)
//
// The tracker is fed (t, opinions, undecided) snapshots and records the
// first snapshot time at which each end condition holds, in order (a later
// phase's end is only recorded after all earlier ones, matching the
// T1 <= T2 <= ... <= T5 structure of the analysis; the process may satisfy
// several conditions at the same snapshot, e.g. when starting with a large
// bias, in which case phases collapse).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "pp/configuration.hpp"

namespace kusd::core {

struct PhaseTimes {
  std::optional<std::uint64_t> t1, t2, t3, t4, t5;

  [[nodiscard]] bool complete() const { return t5.has_value(); }

  /// Interactions spent inside phase `p` (1-based); nullopt until both
  /// boundaries are known. Phase 1 starts at t = 0.
  [[nodiscard]] std::optional<std::uint64_t> phase_length(int p) const;
};

class PhaseTracker {
 public:
  /// `alpha` is the significance constant of the paper (threshold
  /// alpha * sqrt(n ln n)).
  PhaseTracker(pp::Count n, double alpha = 1.0);

  /// Feed a snapshot. Snapshots must be fed with non-decreasing t.
  void observe(std::uint64_t t, std::span<const pp::Count> opinions,
               pp::Count undecided);

  [[nodiscard]] const PhaseTimes& times() const { return times_; }
  [[nodiscard]] bool complete() const { return times_.complete(); }

 private:
  pp::Count n_;
  double threshold_;  // alpha * sqrt(n ln n)
  PhaseTimes times_;
};

}  // namespace kusd::core
