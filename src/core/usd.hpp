// The k-opinion Undecided State Dynamics — the paper's subject.
//
// Two faces are exposed:
//
//  * UsdProtocol — the transition function as a pp::PairProtocol, usable
//    with the generic schedulers (and the form in which the protocol is
//    stated in Section 2 of the paper).
//  * UsdSimulator — the tuned count-based engine used by the benches. It
//    samples the exact same Markov chain (one uniformly random ordered
//    (responder, initiator) pair per interaction, self-pairs allowed) but
//    exploits USD structure: only the responder ever changes, consensus is
//    detectable in O(1), and unproductive interactions can optionally be
//    skipped in bulk with an exact geometric jump (StepMode::kSkipUnproductive).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "pp/configuration.hpp"
#include "pp/protocol.hpp"
#include "rng/rng.hpp"
#include "urn/urn.hpp"

namespace kusd::core {

/// delta of the USD with k opinions; state k is the undecided state.
class UsdProtocol final : public pp::PairProtocol {
 public:
  explicit UsdProtocol(int k);

  [[nodiscard]] int num_states() const override { return k_ + 1; }
  [[nodiscard]] int undecided_state() const { return k_; }
  [[nodiscard]] pp::PairTransition apply(int responder,
                                         int initiator) const override;

 private:
  int k_;
};

/// Interaction-stepping policy of UsdSimulator.
enum class StepMode {
  /// Simulate every interaction individually.
  kEveryInteraction,
  /// Jump over maximal runs of unproductive interactions with an exact
  /// Geometric sample, then realize one productive interaction from the
  /// correct conditional distribution. Distributionally identical to
  /// kEveryInteraction (validated by property tests) but much faster in
  /// regimes where most interactions change nothing.
  kSkipUnproductive,
  /// Advance whole chunks of Θ(n) interactions per O(k) multinomial draw
  /// (chunked Poissonization / tau-leaping). A documented approximation of
  /// the asynchronous chain, handled by BatchedUsdSimulator; run_usd
  /// dispatches to it, UsdSimulator itself rejects this mode.
  kBatchedRounds,
};

/// sim::Registry spelling of a StepMode ("every", "skip", "batched").
[[nodiscard]] const char* engine_name(StepMode mode);

struct UsdOptions {
  StepMode mode = StepMode::kEveryInteraction;
  urn::UrnEngine engine = urn::UrnEngine::kAuto;
};

class UsdSimulator {
 public:
  UsdSimulator(const pp::Configuration& initial, rng::Rng rng,
               UsdOptions options = {});

  /// Execute one interaction (kEveryInteraction) or one productive
  /// interaction plus the unproductive run before it (kSkipUnproductive).
  void step();

  /// Run until consensus or until `max_interactions` have elapsed.
  /// Returns true iff consensus was reached.
  bool run_to_consensus(std::uint64_t max_interactions);

  /// Like run_to_consensus, but invokes `observer(t, opinions, undecided)`
  /// before the first interaction and then every time the interaction count
  /// crosses a multiple of `interval` (in kSkipUnproductive mode the call
  /// happens at the first productive step past the boundary).
  using Observer = std::function<void(
      std::uint64_t t, std::span<const pp::Count> opinions,
      pp::Count undecided)>;
  bool run_observed(std::uint64_t max_interactions, std::uint64_t interval,
                    const Observer& observer);

  // ---- Inspection ----
  [[nodiscard]] std::uint64_t interactions() const { return interactions_; }
  [[nodiscard]] pp::Count n() const { return n_; }
  [[nodiscard]] int k() const { return static_cast<int>(opinions_.size()); }
  [[nodiscard]] std::span<const pp::Count> opinions() const {
    return opinions_.counts();
  }
  [[nodiscard]] pp::Count opinion(int i) const {
    return opinions_.count(static_cast<std::size_t>(i));
  }
  [[nodiscard]] pp::Count undecided() const { return undecided_; }
  [[nodiscard]] bool is_consensus() const { return winner_.has_value(); }
  /// The consensus opinion; only valid when is_consensus().
  [[nodiscard]] int consensus_opinion() const { return *winner_; }
  [[nodiscard]] pp::Configuration configuration() const;

 private:
  void step_plain();
  void step_skip();
  /// Sample a decided opinion proportional to its support.
  [[nodiscard]] int sample_opinion() { return static_cast<int>(
      opinions_.sample(rng_)); }
  void adopt(int opinion);   // undecided responder adopts `opinion`
  void flip(int opinion);    // responder of `opinion` becomes undecided

  urn::Urn opinions_;        // k categories: decided agents by opinion
  pp::Count undecided_;
  pp::Count n_;
  // Sum of squared opinion supports, maintained incrementally (r^2 of the
  // paper's Appendix B); used by the skip engine's productive probability.
  std::uint64_t sum_squares_;
  rng::Rng rng_;
  StepMode mode_;
  std::uint64_t interactions_ = 0;
  std::optional<int> winner_;
};

}  // namespace kusd::core
