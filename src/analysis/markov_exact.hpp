// Exact finite-Markov-chain analysis of the 2-opinion USD for small n.
//
// The 2-opinion USD on n agents is a Markov chain on states (x0, x1) with
// u = n - x0 - x1 implied. We solve the first-step linear systems for
//   * the expected number of interactions to consensus, and
//   * the probability that Opinion 0 wins,
// by dense Gaussian elimination. This gives ground truth that the Monte
// Carlo simulators are validated against (no asymptotics, no w.h.p.
// hedging), and doubles as a check of the approximate-majority behavior:
// the win probability as a function of the initial bias.
#pragma once

#include <cstdint>
#include <vector>

#include "pp/configuration.hpp"

namespace kusd::analysis {

class Usd2ExactSolver {
 public:
  /// Builds and solves the chain for population size n (n <= 64 is
  /// practical; cost grows as ~n^6). States with no decided agent are
  /// excluded: they are unreachable from any state with a decided agent
  /// and never reach consensus.
  explicit Usd2ExactSolver(pp::Count n);

  [[nodiscard]] pp::Count n() const { return n_; }

  /// Expected interactions to consensus from (x0, x1), u = n - x0 - x1.
  /// Requires x0 + x1 >= 1.
  [[nodiscard]] double expected_consensus_time(pp::Count x0,
                                               pp::Count x1) const;

  /// Probability that Opinion 0 is the eventual consensus opinion.
  [[nodiscard]] double win_probability(pp::Count x0, pp::Count x1) const;

 private:
  [[nodiscard]] std::size_t index(pp::Count x0, pp::Count x1) const;

  pp::Count n_;
  // Solved values per state; absorbing states included with time 0 and win
  // probability 1/0.
  std::vector<double> expected_time_;
  std::vector<double> win_prob_;
};

}  // namespace kusd::analysis
