// Random-walk theory used by the paper's proofs (Appendix A), as executable
// closed forms plus simulators to validate them against.
#pragma once

#include <cstdint>

#include "rng/rng.hpp"

namespace kusd::analysis {

/// Gambler's ruin (Lemma 20): walk on [0, b] starting at a, +1 w.p. p,
/// -1 w.p. 1-p, absorbing at 0 and b. Probability of absorbing at 0.
[[nodiscard]] double gamblers_ruin_prob(double p, std::uint64_t a,
                                        std::uint64_t b);

/// Probability of absorbing at b (the "win"): 1 - gamblers_ruin_prob.
[[nodiscard]] double gamblers_win_prob(double p, std::uint64_t a,
                                       std::uint64_t b);

/// Expected number of steps to absorption for the gambler's-ruin walk.
[[nodiscard]] double gamblers_expected_duration(double p, std::uint64_t a,
                                                std::uint64_t b);

/// Lemma 18 tail: for the reflecting-barrier walk with up-probability p and
/// down-probability q > p, the stationary probability of being >= m is
/// (p/q)^m; and Pr[T_m <= n^c] <= n^c (p/q)^m.
[[nodiscard]] double reflecting_tail(double p, double q, std::uint64_t m);

/// Lemma 19: probability that failures ever exceed successes by b when each
/// trial succeeds w.p. at least p: ((1-p)/p)^b.
[[nodiscard]] double excess_failure_prob(double p, std::uint64_t b);

/// Theorem 3 (multiplicative drift, Lengler): upper bound on the time for a
/// process with drift E[X_t - X_{t+1} | X_t = s] >= delta * s to hit 0,
/// holding with probability >= 1 - exp(-r):
/// ceil((r + ln(s0/smin)) / delta).
[[nodiscard]] double drift_time_bound(double r, double s0, double smin,
                                      double delta);

// ---- Simulators (exact walks, for validating the closed forms) ----

/// Simulate one gambler's-ruin walk; returns true if absorbed at b
/// ("win") and writes the number of steps to *steps if non-null.
bool simulate_gamblers_ruin(double p, std::uint64_t a, std::uint64_t b,
                            rng::Rng& rng, std::uint64_t* steps = nullptr);

/// Simulate the reflecting-barrier walk of Lemma 18 for `horizon` steps
/// starting at 0; returns the maximum level reached.
std::uint64_t simulate_reflecting_max(double p, double q,
                                      std::uint64_t horizon, rng::Rng& rng);

/// Lemma 21 walk: states [0, levels], reflecting 0, absorbing at `levels`.
/// From 0 step to 1 w.p. p0; from level l >= 1 step up w.p. 1 - exp(-2^l),
/// else fall back to 0. Returns the number of steps until absorption
/// (capped at `max_steps`).
std::uint64_t simulate_two_level_walk(double p0, std::uint64_t levels,
                                      std::uint64_t max_steps, rng::Rng& rng);

}  // namespace kusd::analysis
