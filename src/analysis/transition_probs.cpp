#include "analysis/transition_probs.hpp"

#include <algorithm>

#include "pp/configuration.hpp"
#include "util/check.hpp"

namespace kusd::analysis {

namespace {
double dn(const pp::Configuration& x) { return static_cast<double>(x.n()); }
double du(const pp::Configuration& x) {
  return static_cast<double>(x.undecided());
}
double dx(const pp::Configuration& x, int i) {
  return static_cast<double>(x.opinion(i));
}
}  // namespace

double p_minus(const pp::Configuration& x) {
  const double n = dn(x), u = du(x);
  return u * (n - u) / (n * n);
}

double p_plus(const pp::Configuration& x) {
  const double n = dn(x), u = du(x);
  return ((n - u) * (n - u) - x.sum_squares()) / (n * n);
}

double p_tilde_plus(const pp::Configuration& x) {
  const double pm = p_minus(x), pp_ = p_plus(x);
  KUSD_CHECK_MSG(pm + pp_ > 0.0, "no u-productive step possible");
  return pp_ / (pm + pp_);
}

double u_star(pp::Count n, int k) {
  KUSD_CHECK(k >= 1);
  return static_cast<double>(n) * static_cast<double>(k - 1) /
         static_cast<double>(2 * k - 1);
}

double p_i_plus(const pp::Configuration& x, int i) {
  const double n = dn(x);
  return du(x) * dx(x, i) / (n * n);
}

double p_i_minus(const pp::Configuration& x, int i) {
  const double n = dn(x), u = du(x), xi = dx(x, i);
  return xi * (n - u - xi) / (n * n);
}

double p_tilde_i_plus(const pp::Configuration& x, int i) {
  const double plus = p_i_plus(x, i), minus = p_i_minus(x, i);
  KUSD_CHECK(plus + minus > 0.0);
  return plus / (plus + minus);
}

double p_ij_plus(const pp::Configuration& x, int i, int j) {
  // Opinion i gains from an undecided responder, or opinion j loses a
  // responder to the undecided state.
  return p_i_plus(x, i) + p_i_minus(x, j);
}

double p_ij_minus(const pp::Configuration& x, int i, int j) {
  return p_i_minus(x, i) + p_i_plus(x, j);
}

double p_tilde_ij_plus(const pp::Configuration& x, int i, int j) {
  const double plus = p_ij_plus(x, i, j), minus = p_ij_minus(x, i, j);
  KUSD_CHECK(plus + minus > 0.0);
  return plus / (plus + minus);
}

double potential_z(const pp::Configuration& x) {
  return dn(x) - 2.0 * du(x) - static_cast<double>(x.xmax());
}

double potential_z_alpha(const pp::Configuration& x, double alpha) {
  return dn(x) - 2.0 * du(x) - alpha * static_cast<double>(x.xmax());
}

double expected_z_drift(const pp::Configuration& x) {
  // From the Lemma 1 proof: conditioned on the interaction changing u,
  // Z moves by -1/-2 (u up) or +1/+2 (u down) depending on whether the
  // decided opinion involved has maximum support.
  const double n = dn(x), u = du(x);
  const pp::Count xmax = x.xmax();
  double drift = 0.0;
  for (int i = 0; i < x.k(); ++i) {
    const double xi = dx(x, i);
    const double weight = (x.opinion(i) == xmax) ? 1.0 : 2.0;
    // u decreases (undecided adopts opinion i): Z increases by weight.
    drift -= weight * xi * u / (n * n);
    // u increases (responder of opinion i flips): Z decreases by weight.
    drift += weight * xi * (n - u - xi) / (n * n);
  }
  return drift;
}

}  // namespace kusd::analysis
