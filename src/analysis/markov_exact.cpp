#include "analysis/markov_exact.hpp"

#include <cmath>

#include "pp/configuration.hpp"
#include "util/check.hpp"

namespace kusd::analysis {

namespace {

/// Dense Gaussian elimination with partial pivoting solving A X = B for
/// multiple right-hand sides in place. A is m x m row-major; B is m x r.
void solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t m, std::size_t r) {
  for (std::size_t col = 0; col < m; ++col) {
    // Pivot.
    std::size_t pivot = col;
    double best = std::abs(a[col * m + col]);
    for (std::size_t row = col + 1; row < m; ++row) {
      const double v = std::abs(a[row * m + col]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    KUSD_CHECK_MSG(best > 1e-14, "singular linear system");
    if (pivot != col) {
      for (std::size_t j = col; j < m; ++j)
        std::swap(a[col * m + j], a[pivot * m + j]);
      for (std::size_t j = 0; j < r; ++j)
        std::swap(b[col * r + j], b[pivot * r + j]);
    }
    const double inv = 1.0 / a[col * m + col];
    for (std::size_t row = col + 1; row < m; ++row) {
      const double factor = a[row * m + col] * inv;
      if (factor == 0.0) continue;
      a[row * m + col] = 0.0;
      for (std::size_t j = col + 1; j < m; ++j)
        a[row * m + j] -= factor * a[col * m + j];
      for (std::size_t j = 0; j < r; ++j)
        b[row * r + j] -= factor * b[col * r + j];
    }
  }
  // Back substitution.
  for (std::size_t col = m; col-- > 0;) {
    const double inv = 1.0 / a[col * m + col];
    for (std::size_t j = 0; j < r; ++j) {
      double v = b[col * r + j];
      for (std::size_t jj = col + 1; jj < m; ++jj)
        v -= a[col * m + jj] * b[jj * r + j];
      b[col * r + j] = v * inv;
    }
  }
}

}  // namespace

std::size_t Usd2ExactSolver::index(pp::Count x0, pp::Count x1) const {
  KUSD_DCHECK(x0 + x1 <= n_);
  // Triangular indexing over all (x0, x1) with x0 + x1 <= n.
  const pp::Count s = x0;
  // Row x0 starts after rows 0..x0-1; row i has (n - i + 1) entries.
  const pp::Count row_start = s * (n_ + 1) - s * (s - 1) / 2;
  return static_cast<std::size_t>(row_start + x1);
}

Usd2ExactSolver::Usd2ExactSolver(pp::Count n) : n_(n) {
  KUSD_CHECK_MSG(n >= 2, "need at least two agents");
  KUSD_CHECK_MSG(n <= 64, "exact solver is O(n^6); use the simulator");
  const std::size_t num_states = index(n, 0) + 1;
  expected_time_.assign(num_states, 0.0);
  win_prob_.assign(num_states, 0.0);

  // Transient states: x0 + x1 >= 1 and not consensus. (States with
  // x0 + x1 == 0 are the all-undecided trap; excluded.)
  std::vector<std::size_t> transient;
  std::vector<std::ptrdiff_t> unknown_of_state(num_states, -1);
  for (pp::Count x0 = 0; x0 <= n; ++x0) {
    for (pp::Count x1 = 0; x1 + x0 <= n; ++x1) {
      if (x0 + x1 == 0) continue;
      if ((x0 == n && x1 == 0) || (x1 == n && x0 == 0)) continue;
      unknown_of_state[index(x0, x1)] =
          static_cast<std::ptrdiff_t>(transient.size());
      transient.push_back(index(x0, x1));
    }
  }
  const std::size_t m = transient.size();
  // Two right-hand sides: column 0 = expected time, column 1 = win prob.
  std::vector<double> a(m * m, 0.0);
  std::vector<double> b(m * 2, 0.0);

  const double nn = static_cast<double>(n) * static_cast<double>(n);
  std::size_t row = 0;
  for (pp::Count x0 = 0; x0 <= n; ++x0) {
    for (pp::Count x1 = 0; x1 + x0 <= n; ++x1) {
      if (unknown_of_state[index(x0, x1)] < 0) continue;
      const double u = static_cast<double>(n - x0 - x1);
      const double d0 = static_cast<double>(x0);
      const double d1 = static_cast<double>(x1);
      // Productive transitions and their probabilities.
      struct Arc {
        pp::Count nx0 = 0, nx1 = 0;
        double p = 0.0;
      };
      const Arc arcs[4] = {
          {x0 + 1, x1, u * d0 / nn},      // undecided adopts opinion 0
          {x0, x1 + 1, u * d1 / nn},      // undecided adopts opinion 1
          {x0 - 1, x1, d0 * d1 / nn},     // opinion-0 responder flips
          {x0, x1 - 1, d1 * d0 / nn},     // opinion-1 responder flips
      };
      double q = 0.0;  // total productive probability
      for (const Arc& arc : arcs) q += arc.p;
      KUSD_CHECK_MSG(q > 0.0, "transient state with no productive step");
      // (I - P_cond) t = 1/q ; (I - P_cond) h = P_cond(-> win absorbing).
      a[row * m + row] = 1.0;
      b[row * 2 + 0] = 1.0 / q;
      for (const Arc& arc : arcs) {
        if (arc.p == 0.0) continue;
        const double pc = arc.p / q;
        const std::size_t sidx = index(arc.nx0, arc.nx1);
        const std::ptrdiff_t col = unknown_of_state[sidx];
        if (col >= 0) {
          a[row * m + static_cast<std::size_t>(col)] -= pc;
        } else if (arc.nx0 == n && arc.nx1 == 0) {
          b[row * 2 + 1] += pc;  // absorbed with Opinion 0 winning
        }
        // Absorption at (0, n) contributes 0 to both systems; the
        // all-undecided state is unreachable (x0 + x1 never drops to 0:
        // a flip requires both opinions present, leaving the other).
      }
      ++row;
    }
  }
  KUSD_CHECK(row == m);
  solve_dense(a, b, m, 2);
  for (std::size_t i = 0; i < m; ++i) {
    expected_time_[transient[i]] = b[i * 2 + 0];
    win_prob_[transient[i]] = b[i * 2 + 1];
  }
  // Absorbing states.
  expected_time_[index(n, 0)] = 0.0;
  win_prob_[index(n, 0)] = 1.0;
  expected_time_[index(0, n)] = 0.0;
  win_prob_[index(0, n)] = 0.0;
}

double Usd2ExactSolver::expected_consensus_time(pp::Count x0,
                                                pp::Count x1) const {
  KUSD_CHECK_MSG(x0 + x1 >= 1, "all-undecided start never converges");
  KUSD_CHECK(x0 + x1 <= n_);
  return expected_time_[index(x0, x1)];
}

double Usd2ExactSolver::win_probability(pp::Count x0, pp::Count x1) const {
  KUSD_CHECK_MSG(x0 + x1 >= 1, "all-undecided start never converges");
  KUSD_CHECK(x0 + x1 <= n_);
  return win_prob_[index(x0, x1)];
}

}  // namespace kusd::analysis
