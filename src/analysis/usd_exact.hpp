// Exact finite-Markov-chain analysis of the k-opinion USD for small n and
// k — the general-k companion of Usd2ExactSolver.
//
// The state space is every support vector (x_1..x_k) with sum <= n (the
// undecided count implied); expected consensus time and the win
// probability of every opinion are solved exactly by dense Gaussian
// elimination with k+1 right-hand sides. State count is C(n+k, k), so this
// is for validation scale (n <~ 20, k <= 4), where it gives asymptotics-free
// ground truth for the plurality-win probabilities of Theorem 2.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pp/configuration.hpp"

namespace kusd::analysis {

class UsdExactSolver {
 public:
  /// Builds and solves the k-opinion chain on n agents. Cost grows like
  /// C(n+k,k)^3; KUSD_CHECK rejects state spaces above ~2500 states.
  UsdExactSolver(pp::Count n, int k);

  [[nodiscard]] pp::Count n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] std::size_t num_states() const { return states_.size(); }

  /// Expected interactions to consensus from support vector x
  /// (u = n - sum(x) implied; sum must be >= 1).
  [[nodiscard]] double expected_consensus_time(
      const std::vector<pp::Count>& x) const;

  /// Probability that `opinion` is the eventual consensus opinion.
  [[nodiscard]] double win_probability(const std::vector<pp::Count>& x,
                                       int opinion) const;

 private:
  [[nodiscard]] std::size_t index_of(const std::vector<pp::Count>& x) const;

  pp::Count n_;
  int k_;
  std::vector<std::vector<pp::Count>> states_;
  std::map<std::vector<pp::Count>, std::size_t> index_;
  // Solved values: per state, expected time and k win probabilities.
  std::vector<double> expected_time_;
  std::vector<std::vector<double>> win_prob_;  // [state][opinion]
};

}  // namespace kusd::analysis
