// Closed-form USD transition probabilities from Appendix B of the paper
// (Observations 6, 8, 9), the undecided equilibrium u*, and the potential
// functions used throughout the phase analysis.
//
// These are the quantities the proofs manipulate; the property tests check
// the simulators against them, and the benches report them next to the
// measured trajectories.
#pragma once

#include "pp/configuration.hpp"

namespace kusd::analysis {

// ---- Observation 6: the number of undecided agents ----

/// p-(t): probability the next interaction decreases u by one
/// ( = u * (n - u) / n^2 ).
[[nodiscard]] double p_minus(const pp::Configuration& x);

/// p+(t): probability the next interaction increases u by one
/// ( = ((n-u)^2 - r2) / n^2 ).
[[nodiscard]] double p_plus(const pp::Configuration& x);

/// p~+(t): probability u increases conditioned on a u-productive step.
[[nodiscard]] double p_tilde_plus(const pp::Configuration& x);

/// The unstable equilibrium u* = n (k-1) / (2k-1) (Lemma 3 discussion).
[[nodiscard]] double u_star(pp::Count n, int k);

// ---- Observation 8: a single opinion i ----

/// Probability x_i increases by one in the next interaction (u x_i / n^2).
[[nodiscard]] double p_i_plus(const pp::Configuration& x, int i);

/// Probability x_i decreases by one (x_i (n - u - x_i) / n^2).
[[nodiscard]] double p_i_minus(const pp::Configuration& x, int i);

/// Probability x_i increases conditioned on x_i changing.
[[nodiscard]] double p_tilde_i_plus(const pp::Configuration& x, int i);

// ---- Observation 9: the difference x_i - x_j ----

/// Probability x_i - x_j increases by one.
[[nodiscard]] double p_ij_plus(const pp::Configuration& x, int i, int j);

/// Probability x_i - x_j decreases by one.
[[nodiscard]] double p_ij_minus(const pp::Configuration& x, int i, int j);

/// Probability the difference increases conditioned on it changing.
[[nodiscard]] double p_tilde_ij_plus(const pp::Configuration& x, int i,
                                     int j);

// ---- Potential functions ----

/// Z(t) = n - 2u - xmax (Phase 1 / Lemma 1). Phase 1 ends when Z <= 0.
[[nodiscard]] double potential_z(const pp::Configuration& x);

/// Z_alpha(t) = n - 2u - alpha * xmax (Section 2.1; alpha = 7/8 in Phase 4).
[[nodiscard]] double potential_z_alpha(const pp::Configuration& x,
                                       double alpha);

/// Expected one-step drift E[Z(t) - Z(t+1) | X(t) = x] of Z(t), computed
/// exactly from the transition probabilities (the Lemma 1 proof shows this
/// is >= Z(t) / (2n) when Z >= 0 and u < n/2).
[[nodiscard]] double expected_z_drift(const pp::Configuration& x);

}  // namespace kusd::analysis
