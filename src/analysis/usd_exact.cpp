#include "analysis/usd_exact.hpp"

#include <cmath>

#include "pp/configuration.hpp"
#include "util/check.hpp"

namespace kusd::analysis {

namespace {

void enumerate_states(int k, std::vector<pp::Count>& current, int position,
                      pp::Count remaining,
                      std::vector<std::vector<pp::Count>>& out) {
  if (position == k) {
    out.push_back(current);
    return;
  }
  for (pp::Count v = 0; v <= remaining; ++v) {
    current[static_cast<std::size_t>(position)] = v;
    enumerate_states(k, current, position + 1, remaining - v, out);
  }
}

/// Gaussian elimination with partial pivoting, multiple right-hand sides.
void solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t m, std::size_t r) {
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a[col * m + col]);
    for (std::size_t row = col + 1; row < m; ++row) {
      const double v = std::abs(a[row * m + col]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    KUSD_CHECK_MSG(best > 1e-14, "singular linear system");
    if (pivot != col) {
      for (std::size_t j = col; j < m; ++j)
        std::swap(a[col * m + j], a[pivot * m + j]);
      for (std::size_t j = 0; j < r; ++j)
        std::swap(b[col * r + j], b[pivot * r + j]);
    }
    const double inv = 1.0 / a[col * m + col];
    for (std::size_t row = col + 1; row < m; ++row) {
      const double factor = a[row * m + col] * inv;
      if (factor == 0.0) continue;
      a[row * m + col] = 0.0;
      for (std::size_t j = col + 1; j < m; ++j)
        a[row * m + j] -= factor * a[col * m + j];
      for (std::size_t j = 0; j < r; ++j)
        b[row * r + j] -= factor * b[col * r + j];
    }
  }
  for (std::size_t col = m; col-- > 0;) {
    const double inv = 1.0 / a[col * m + col];
    for (std::size_t j = 0; j < r; ++j) {
      double v = b[col * r + j];
      for (std::size_t jj = col + 1; jj < m; ++jj)
        v -= a[col * m + jj] * b[jj * r + j];
      b[col * r + j] = v * inv;
    }
  }
}

}  // namespace

UsdExactSolver::UsdExactSolver(pp::Count n, int k) : n_(n), k_(k) {
  KUSD_CHECK_MSG(n >= 2, "need at least two agents");
  KUSD_CHECK_MSG(k >= 1, "need at least one opinion");
  // State count is C(n+k, k); bound it before enumerating anything.
  double state_count = 1.0;
  for (int i = 1; i <= k; ++i) {
    state_count *= static_cast<double>(n + static_cast<pp::Count>(i)) /
                   static_cast<double>(i);
  }
  KUSD_CHECK_MSG(state_count <= 2500.0,
                 "state space too large for the exact solver");
  std::vector<pp::Count> scratch(static_cast<std::size_t>(k), 0);
  enumerate_states(k, scratch, 0, n, states_);
  for (std::size_t i = 0; i < states_.size(); ++i) index_[states_[i]] = i;

  const auto uk = static_cast<std::size_t>(k);
  expected_time_.assign(states_.size(), 0.0);
  win_prob_.assign(states_.size(), std::vector<double>(uk, 0.0));

  // Identify transient states (at least one decided agent, no consensus).
  std::vector<std::ptrdiff_t> unknown(states_.size(), -1);
  std::vector<std::size_t> transient;
  for (std::size_t s = 0; s < states_.size(); ++s) {
    pp::Count total = 0;
    bool consensus = false;
    for (std::size_t i = 0; i < uk; ++i) {
      total += states_[s][i];
      if (states_[s][i] == n_) consensus = true;
    }
    if (total == 0 || consensus) continue;
    unknown[s] = static_cast<std::ptrdiff_t>(transient.size());
    transient.push_back(s);
  }

  const std::size_t m = transient.size();
  const std::size_t r = uk + 1;  // time + k win probabilities
  std::vector<double> a(m * m, 0.0);
  std::vector<double> b(m * r, 0.0);
  const double nn = static_cast<double>(n_) * static_cast<double>(n_);

  for (std::size_t row = 0; row < m; ++row) {
    const auto& x = states_[transient[row]];
    pp::Count decided = 0;
    for (auto v : x) decided += v;
    const double u = static_cast<double>(n_ - decided);

    a[row * m + row] = 1.0;
    double q = 0.0;
    struct Arc {
      std::vector<pp::Count> to;
      double p = 0.0;
    };
    std::vector<Arc> arcs;
    for (std::size_t i = 0; i < uk; ++i) {
      const double xi = static_cast<double>(x[i]);
      if (x[i] > 0) {
        // Flip: responder of opinion i meets a differently decided
        // initiator.
        const double p =
            xi * (static_cast<double>(decided) - xi) / nn;
        if (p > 0) {
          auto to = x;
          --to[i];
          arcs.push_back({std::move(to), p});
        }
      }
      if (u > 0 && x[i] > 0) {
        // Adopt: undecided responder meets an initiator of opinion i.
        const double p = u * xi / nn;
        auto to = x;
        ++to[i];
        arcs.push_back({std::move(to), p});
      }
    }
    for (const auto& arc : arcs) q += arc.p;
    KUSD_CHECK_MSG(q > 0.0, "transient state with no productive step");
    b[row * r + 0] = 1.0 / q;
    for (const auto& arc : arcs) {
      const double pc = arc.p / q;
      const std::size_t sidx = index_.at(arc.to);
      const std::ptrdiff_t col = unknown[sidx];
      if (col >= 0) {
        a[row * m + static_cast<std::size_t>(col)] -= pc;
      } else {
        // Absorbing: exactly one opinion holds all n agents.
        for (std::size_t i = 0; i < uk; ++i) {
          if (arc.to[i] == n_) b[row * r + 1 + i] += pc;
        }
      }
    }
  }
  solve_dense(a, b, m, r);
  for (std::size_t i = 0; i < m; ++i) {
    expected_time_[transient[i]] = b[i * r + 0];
    for (std::size_t j = 0; j < uk; ++j) {
      win_prob_[transient[i]][j] = b[i * r + 1 + j];
    }
  }
  // Absorbing states.
  for (std::size_t s = 0; s < states_.size(); ++s) {
    for (std::size_t i = 0; i < uk; ++i) {
      if (states_[s][i] == n_) win_prob_[s][i] = 1.0;
    }
  }
}

std::size_t UsdExactSolver::index_of(const std::vector<pp::Count>& x) const {
  KUSD_CHECK_MSG(static_cast<int>(x.size()) == k_, "support vector size");
  pp::Count total = 0;
  for (auto v : x) total += v;
  KUSD_CHECK_MSG(total >= 1, "all-undecided start never converges");
  KUSD_CHECK_MSG(total <= n_, "support exceeds population");
  return index_.at(x);
}

double UsdExactSolver::expected_consensus_time(
    const std::vector<pp::Count>& x) const {
  return expected_time_[index_of(x)];
}

double UsdExactSolver::win_probability(const std::vector<pp::Count>& x,
                                       int opinion) const {
  KUSD_CHECK(opinion >= 0 && opinion < k_);
  return win_prob_[index_of(x)][static_cast<std::size_t>(opinion)];
}

}  // namespace kusd::analysis
