#include "analysis/random_walk.hpp"

#include <cmath>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::analysis {

double gamblers_ruin_prob(double p, std::uint64_t a, std::uint64_t b) {
  KUSD_CHECK_MSG(p > 0.0 && p < 1.0, "p must be in (0,1)");
  KUSD_CHECK_MSG(a <= b, "start must be inside [0, b]");
  if (a == 0) return 1.0;
  if (a == b) return 0.0;
  const double q = 1.0 - p;
  if (std::abs(p - q) < 1e-12) {
    return 1.0 - static_cast<double>(a) / static_cast<double>(b);
  }
  const double rho = q / p;
  // (rho^b - rho^a) / (rho^b - 1); compute in a numerically stable way.
  const double ra = std::pow(rho, static_cast<double>(a));
  const double rb = std::pow(rho, static_cast<double>(b));
  if (std::isinf(rb)) {
    // rho > 1 and b huge: ruin prob -> 1 - rho^(a-b) ~ 1.
    return 1.0;
  }
  return (rb - ra) / (rb - 1.0);
}

double gamblers_win_prob(double p, std::uint64_t a, std::uint64_t b) {
  return 1.0 - gamblers_ruin_prob(p, a, b);
}

double gamblers_expected_duration(double p, std::uint64_t a, std::uint64_t b) {
  KUSD_CHECK(p > 0.0 && p < 1.0);
  KUSD_CHECK(a <= b);
  const double q = 1.0 - p;
  const double da = static_cast<double>(a);
  const double db = static_cast<double>(b);
  if (std::abs(p - q) < 1e-12) return da * (db - da);
  // E[T] = a/(q-p) - b/(q-p) * (1 - rho^a)/(1 - rho^b), rho = q/p.
  const double rho = q / p;
  const double num = 1.0 - std::pow(rho, da);
  const double den = 1.0 - std::pow(rho, db);
  return da / (q - p) - db / (q - p) * (num / den);
}

double reflecting_tail(double p, double q, std::uint64_t m) {
  KUSD_CHECK_MSG(p > 0.0 && q > p && p + q <= 1.0,
                 "need 0 < p < q with p + q <= 1");
  return std::pow(p / q, static_cast<double>(m));
}

double excess_failure_prob(double p, std::uint64_t b) {
  KUSD_CHECK_MSG(p > 0.5 && p < 1.0, "needs success probability > 1/2");
  return std::pow((1.0 - p) / p, static_cast<double>(b));
}

double drift_time_bound(double r, double s0, double smin, double delta) {
  KUSD_CHECK(delta > 0.0 && s0 >= smin && smin > 0.0 && r >= 0.0);
  return std::ceil((r + std::log(s0 / smin)) / delta);
}

bool simulate_gamblers_ruin(double p, std::uint64_t a, std::uint64_t b,
                            rng::Rng& rng, std::uint64_t* steps) {
  KUSD_CHECK(a <= b);
  std::uint64_t pos = a;
  std::uint64_t t = 0;
  while (pos != 0 && pos != b) {
    pos += rng.bernoulli(p) ? 1 : -1;
    ++t;
  }
  if (steps != nullptr) *steps = t;
  return pos == b;
}

std::uint64_t simulate_reflecting_max(double p, double q,
                                      std::uint64_t horizon, rng::Rng& rng) {
  std::uint64_t pos = 0, best = 0;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    const double u = rng.uniform01();
    if (pos == 0) {
      if (u < p) pos = 1;
    } else {
      if (u < p) {
        ++pos;
      } else if (u < p + q) {
        --pos;
      }
    }
    best = std::max(best, pos);
  }
  return best;
}

std::uint64_t simulate_two_level_walk(double p0, std::uint64_t levels,
                                      std::uint64_t max_steps,
                                      rng::Rng& rng) {
  std::uint64_t level = 0;
  for (std::uint64_t t = 1; t <= max_steps; ++t) {
    if (level == 0) {
      if (rng.bernoulli(p0)) level = 1;
    } else {
      const double p_up =
          1.0 - std::exp(-std::pow(2.0, static_cast<double>(level)));
      if (rng.bernoulli(p_up)) {
        ++level;
      } else {
        level = 0;
      }
    }
    if (level >= levels) return t;
  }
  return max_steps;
}

}  // namespace kusd::analysis
