#include "urn/urn.hpp"


#include "rng/rng.hpp"
namespace kusd::urn {

Urn::Urn(std::span<const std::uint64_t> counts, UrnEngine engine) {
  const bool use_fenwick =
      engine == UrnEngine::kFenwick ||
      (engine == UrnEngine::kAuto && counts.size() > kLinearThreshold);
  if (use_fenwick) {
    fenwick_.emplace(counts);
  } else {
    linear_.emplace(counts);
  }
}

std::size_t Urn::size() const {
  return fenwick_ ? fenwick_->size() : linear_->size();
}

std::uint64_t Urn::total() const {
  return fenwick_ ? fenwick_->total() : linear_->total();
}

std::uint64_t Urn::count(std::size_t i) const {
  return fenwick_ ? fenwick_->count(i) : linear_->count(i);
}

std::span<const std::uint64_t> Urn::counts() const {
  return fenwick_ ? fenwick_->counts() : linear_->counts();
}

void Urn::add(std::size_t i, std::int64_t delta) {
  if (fenwick_) {
    fenwick_->add(i, delta);
  } else {
    linear_->add(i, delta);
  }
}

std::size_t Urn::sample(rng::Rng& rng) const {
  return fenwick_ ? fenwick_->sample(rng) : linear_->sample(rng);
}

std::size_t Urn::find(std::uint64_t r) const {
  return fenwick_ ? fenwick_->find(r) : linear_->find(r);
}

}  // namespace kusd::urn
