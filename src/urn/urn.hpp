// Urn: category counts with weighted sampling.
//
// The population protocol schedulers never look at individual agents; the
// configuration is a vector of counts per state, and picking a uniformly
// random agent is sampling a category proportionally to its count. Two
// interchangeable engines are provided:
//
//  * LinearUrn  — O(k) scan per sample; fastest for small k (cache-friendly).
//  * FenwickUrn — O(log k) per sample and per update; wins for large k.
//
// Urn (the default) picks the engine at construction based on a size
// threshold chosen from the ablation in bench_throughput.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rng/rng.hpp"
#include "urn/fenwick.hpp"
#include "util/check.hpp"

namespace kusd::urn {

/// O(k)-sampling urn backed by a plain count array.
class LinearUrn {
 public:
  explicit LinearUrn(std::span<const std::uint64_t> counts)
      : counts_(counts.begin(), counts.end()) {
    total_ = 0;
    for (auto c : counts_) total_ += c;
  }

  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::span<const std::uint64_t> counts() const {
    return counts_;
  }

  void add(std::size_t i, std::int64_t delta) {
    KUSD_DCHECK(delta >= 0 ||
                counts_[i] >= static_cast<std::uint64_t>(-delta));
    counts_[i] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(counts_[i]) + delta);
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) +
                                        delta);
  }

  /// Sample a category proportionally to its count.
  [[nodiscard]] std::size_t sample(rng::Rng& rng) const {
    return find(rng.bounded(total_));
  }

  /// Category owning position r, for r in [0, total()).
  [[nodiscard]] std::size_t find(std::uint64_t r) const {
    KUSD_DCHECK(r < total_);
    for (std::size_t i = 0;; ++i) {
      if (r < counts_[i]) return i;
      r -= counts_[i];
    }
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// O(log k)-sampling urn backed by a Fenwick tree. Keeps a mirror count
/// array so count() is O(1).
class FenwickUrn {
 public:
  explicit FenwickUrn(std::span<const std::uint64_t> counts)
      : counts_(counts.begin(), counts.end()), tree_(counts) {}

  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return tree_.total(); }
  [[nodiscard]] std::uint64_t count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::span<const std::uint64_t> counts() const {
    return counts_;
  }

  void add(std::size_t i, std::int64_t delta) {
    KUSD_DCHECK(delta >= 0 ||
                counts_[i] >= static_cast<std::uint64_t>(-delta));
    counts_[i] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(counts_[i]) + delta);
    tree_.add(i, delta);
  }

  [[nodiscard]] std::size_t sample(rng::Rng& rng) const {
    KUSD_DCHECK(total() > 0);
    return tree_.find(rng.bounded(total()));
  }

  [[nodiscard]] std::size_t find(std::uint64_t r) const {
    return tree_.find(r);
  }

 private:
  std::vector<std::uint64_t> counts_;
  Fenwick tree_;
};

/// Engine selection for Urn.
enum class UrnEngine {
  kAuto,     ///< linear below kLinearThreshold categories, Fenwick above
  kLinear,   ///< force LinearUrn
  kFenwick,  ///< force FenwickUrn
};

/// Default engine crossover (categories). Chosen from bench_throughput.
inline constexpr std::size_t kLinearThreshold = 64;

/// Polymorphic-by-value urn: picks LinearUrn or FenwickUrn at construction.
class Urn {
 public:
  explicit Urn(std::span<const std::uint64_t> counts,
               UrnEngine engine = UrnEngine::kAuto);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t count(std::size_t i) const;
  [[nodiscard]] std::span<const std::uint64_t> counts() const;
  [[nodiscard]] bool uses_fenwick() const { return fenwick_.has_value(); }

  void add(std::size_t i, std::int64_t delta);
  [[nodiscard]] std::size_t sample(rng::Rng& rng) const;
  [[nodiscard]] std::size_t find(std::uint64_t r) const;

  /// Move one unit from category `from` to category `to`.
  void move(std::size_t from, std::size_t to) {
    if (from == to) return;
    add(from, -1);
    add(to, +1);
  }

 private:
  // Exactly one engaged, decided at construction.
  std::optional<LinearUrn> linear_;
  std::optional<FenwickUrn> fenwick_;
};

}  // namespace kusd::urn
