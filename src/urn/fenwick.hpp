// Fenwick (binary-indexed) tree over non-negative 64-bit counts.
//
// Supports point updates and sampling an index proportionally to its count
// in O(log k). This is the data structure behind the count-based population
// protocol scheduler when the number of states is large.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace kusd::urn {

class Fenwick {
 public:
  Fenwick() = default;

  /// Build from initial counts in O(k).
  explicit Fenwick(std::span<const std::uint64_t> counts) { assign(counts); }

  /// Reset to the given counts in O(k).
  void assign(std::span<const std::uint64_t> counts) {
    size_ = counts.size();
    tree_.assign(size_ + 1, 0);
    total_ = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      tree_[i + 1] += counts[i];
      total_ += counts[i];
      const std::size_t parent = (i + 1) + ((i + 1) & (~(i + 1) + 1));
      if (parent <= size_) tree_[parent] += tree_[i + 1];
    }
    highest_pow2_ = 1;
    while ((highest_pow2_ << 1) <= size_) highest_pow2_ <<= 1;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Add `delta` (may be negative; the stored count must stay >= 0) to
  /// index `i`. O(log k).
  void add(std::size_t i, std::int64_t delta) {
    KUSD_DCHECK(i < size_);
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) +
                                        delta);
    for (std::size_t j = i + 1; j <= size_; j += j & (~j + 1)) {
      tree_[j] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(tree_[j]) + delta);
    }
  }

  /// Sum of counts[0..i] inclusive. O(log k).
  [[nodiscard]] std::uint64_t prefix(std::size_t i) const {
    KUSD_DCHECK(i < size_);
    std::uint64_t sum = 0;
    for (std::size_t j = i + 1; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
  }

  /// Current count at index i. O(log k).
  [[nodiscard]] std::uint64_t value(std::size_t i) const {
    return prefix(i) - (i == 0 ? 0 : prefix(i - 1));
  }

  /// Smallest index i such that prefix(i) > r, for r in [0, total()).
  /// This maps a uniform r to a category sampled proportionally to counts.
  /// O(log k).
  [[nodiscard]] std::size_t find(std::uint64_t r) const {
    KUSD_DCHECK(r < total_);
    std::size_t idx = 0;
    std::size_t mask = highest_pow2_;
    while (mask != 0) {
      const std::size_t next = idx + mask;
      if (next <= size_ && tree_[next] <= r) {
        idx = next;
        r -= tree_[next];
      }
      mask >>= 1;
    }
    return idx;  // idx is the zero-based category index
  }

 private:
  std::vector<std::uint64_t> tree_;  // 1-based
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::size_t highest_pow2_ = 1;
};

}  // namespace kusd::urn
