// Production sweep service: deterministic sharding, cell-granular
// checkpoint journals with resume, and validated shard merging — the
// operational layer over runner::Sweep behind `kusd sweep --shard /
// --journal / --resume` and `kusd merge`.
//
// Everything here rests on one invariant the sweep pins with tests: a
// cell's output bytes are a pure function of (spec, master_seed, grid
// index). That makes three operations safe:
//
//  * Sharding — shard i of N owns the contiguous grid block
//    [i*P/N, (i+1)*P/N), so concatenating shard outputs in shard order
//    *is* the unsharded output, byte for byte.
//  * Checkpointing — each completed cell is appended to a JSONL journal
//    and flushed before the cell is emitted downstream, so a killed run
//    loses at most the cell in flight. The journal is keyed on a digest
//    of the grid, the seed, the output schema, and the engine registry
//    contract: a journal can only resume the exact sweep that wrote it.
//  * Resume — completed cells are *replayed* from the journal (their
//    recorded rows re-emitted, nothing recomputed) and interleaved in
//    grid order with freshly computed cells, so the final output is
//    byte-identical to an uninterrupted run.
//
// Journal format (one JSON object per line, LF-terminated):
//
//   {"kusd_journal":1,"digest":"<hex16>","points_begin":B,
//    "points_end":E,"points_total":P,"shard_index":I,"shard_count":N,
//    "trials":T}
//   {"cell":<grid index>,"crc":"<hex16>","row":["<field>",...]}
//
// The header is written once at creation; each cell line carries the
// cell's csv_row fields plus an FNV-1a checksum of them. Readers are
// strict: a truncated or corrupt line, a duplicate or out-of-range cell,
// or a checksum mismatch fails the whole read (util::CheckError) — the
// service never silently drops journal content or emits partial output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runner/sweep.hpp"

namespace kusd::runner {

/// Shard coordinates: this process owns shard `index` of `count`.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool operator==(const ShardSpec&) const = default;
};

/// Parse the CLI spelling "i/N" (0-based i < N). nullopt on malformed
/// input or i >= N.
[[nodiscard]] std::optional<ShardSpec> parse_shard(const std::string& text);

/// The contiguous block of grid points shard (index, count) owns in a
/// grid of `points_total` points: [i*P/N, (i+1)*P/N). Blocks partition
/// the grid in shard order, which is what makes shard-order
/// concatenation equal grid order.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};
[[nodiscard]] ShardRange shard_range(std::size_t points_total,
                                     const ShardSpec& shard);

/// Digest of everything that determines cell bytes: the expanded grid,
/// master seed, trial count, bias/budget/chunk/lockstep settings, the
/// output schema, and the registry contract (flags + caps) of every
/// swept engine. Deliberately excludes pure scheduling (threads,
/// stripe_width, shuffle_points) and the shard coordinates — every
/// shard of one sweep shares one digest.
[[nodiscard]] std::uint64_t sweep_digest(const Sweep& sweep);

struct JournalHeader {
  std::uint64_t digest = 0;
  std::size_t points_begin = 0;
  std::size_t points_end = 0;
  std::size_t points_total = 0;
  ShardSpec shard;
  int trials = 0;
};

/// A fully validated journal: the header plus every recorded cell's row,
/// keyed (and therefore iterated) by grid index.
struct Journal {
  JournalHeader header;
  std::map<std::size_t, std::vector<std::string>> cells;
};

/// Read and validate a journal. Throws util::CheckError on any defect:
/// unreadable file, missing/malformed header, truncated or corrupt line,
/// checksum mismatch, duplicate or out-of-range cell index, or a row
/// that does not match the output schema width.
[[nodiscard]] Journal read_journal(const std::string& path);

struct SweepServiceOptions {
  ShardSpec shard;
  /// Append each completed cell to this journal ("" = no journal). On a
  /// fresh run the file is created with a header line.
  std::string journal_path;
  /// Resume from this journal ("" = fresh run): its cells are replayed,
  /// the rest computed, and new cells appended to the same file. When
  /// both paths are set they must agree.
  std::string resume_path;
  /// Fault-injection / progress hook: invoked after each *computed* cell
  /// has been journaled and emitted, with the number of cells computed
  /// so far in this run (replayed cells don't count). The CI kill switch
  /// (KUSD_SWEEP_TRIP_CELLS) and the resume property tests live here.
  std::function<void(std::size_t cells_computed)> after_cell;
};

/// One output row in grid order. `cell` is null for rows replayed from
/// the resume journal — only their recorded bytes exist; nothing was
/// recomputed.
struct SweepRowEvent {
  std::size_t index = 0;
  const std::vector<std::string>* row = nullptr;
  const SweepCell* cell = nullptr;
};

/// Run the sweep's shard of the grid with journaling and resume,
/// streaming every row of the shard — replayed and computed alike — in
/// grid order. The journal line of a cell is flushed *before* the cell
/// is handed to `on_row`, so output a consumer observed is always
/// covered by the journal. Throws util::CheckError on an invalid shard,
/// a journal/spec mismatch, or journal I/O failure.
void run_sweep_service(const Sweep& sweep, const SweepServiceOptions& options,
                       const std::function<void(const SweepRowEvent&)>& on_row);

/// Merge shard journals into one output stream: validate provenance
/// first — same digest, same shard count with every shard present
/// exactly once, contiguous gap-free coverage of the whole grid, every
/// journal complete — then emit every row in grid order. Validation
/// failures throw util::CheckError before the first row is emitted:
/// merge never produces partial output.
void merge_journals(
    const std::vector<std::string>& journal_paths,
    const std::function<void(std::size_t index,
                             const std::vector<std::string>& row)>& on_row);

}  // namespace kusd::runner
