#include "runner/trials.hpp"


#include "stats/summary.hpp"
namespace kusd::runner {

stats::Samples run_trials_samples(
    int trials, std::uint64_t master_seed,
    const std::function<double(std::uint64_t)>& fn, std::size_t threads) {
  return stats::Samples(
      run_trials<double>(trials, master_seed, fn, threads));
}

}  // namespace kusd::runner
