// High-level one-call runner: run the USD from an initial configuration,
// track the five phases, and classify the outcome against the paper's
// claims (did the initial plurality win? was the winner initially
// significant?). This is the entry point the examples and most benches use.
//
// The engine is resolved through sim::Registry: pick it either with the
// legacy StepMode knob (the asynchronous engines) or by registry name via
// RunOptions::engine, which also opens the round models ("sync",
// "gossip") and the graph-restricted scheduler ("graph", with
// RunOptions::graph selecting the topology).
//
// This driver lives in runner — above sim in the layering DAG — because
// it resolves engines by name through the registry; core stays below sim
// and never sees the engine roster.
#pragma once

#include <cstdint>
#include <string>

#include "core/batched_usd.hpp"
#include "core/phase_tracker.hpp"
#include "core/usd.hpp"
#include "pp/configuration.hpp"
#include "sim/graph_spec.hpp"
#include "urn/urn.hpp"

namespace kusd::runner {

struct RunOptions {
  /// Hard cap in the engine's native time unit (interactions for the
  /// asynchronous engines, super-rounds/rounds for sync/gossip); 0 picks
  /// the engine's generous default budget (for the asynchronous engines,
  /// 64 * k * n * (ln n + 1) — several times the paper's O(k n log n)).
  std::uint64_t max_interactions = 0;
  /// Legacy engine selector, used when `engine` is empty.
  core::StepMode mode = core::StepMode::kSkipUnproductive;
  /// sim::Registry name of the engine to run ("every", "skip", "batched",
  /// "sync", "gossip", "graph", or anything registered); empty derives
  /// the name from `mode`.
  std::string engine;
  /// Urn backend of the every/skip engines.
  urn::UrnEngine urn = urn::UrnEngine::kAuto;
  /// Chunk schedule for the batched engine: fixed chunk fraction or the
  /// error-controlled adaptive policy (see chunk_controller.hpp).
  core::BatchedOptions batch;
  /// Topology for the graph engine.
  sim::GraphSpec graph;
  /// Track T1..T5; snapshots are taken every `observe_interval` native
  /// time units (0 picks the engine default: n/8 interactions — a
  /// resolution far below phase lengths — or one round).
  bool track_phases = true;
  std::uint64_t observe_interval = 0;
  /// Significance constant alpha of the paper.
  double alpha = 1.0;
};

struct RunResult {
  bool converged = false;
  /// Consensus opinion (valid iff converged).
  int winner = -1;
  /// Native time until consensus (or the cap if not converged):
  /// interactions for the asynchronous engines, super-rounds/rounds for
  /// the synchronous ones.
  std::uint64_t interactions = 0;
  /// Cross-engine comparable time: interactions / n for the asynchronous
  /// engines, total rounds for sync/gossip.
  double parallel_time = 0.0;
  core::PhaseTimes phases;

  // Outcome vs the initial configuration:
  int initial_plurality = -1;
  bool plurality_won = false;
  /// Whether the winner was significant at t = 0 (Theorem 2's no-bias
  /// guarantee).
  bool winner_initially_significant = false;
};

/// Run the USD once from `initial` with a deterministic seed.
[[nodiscard]] RunResult run_usd(const pp::Configuration& initial,
                                std::uint64_t seed, RunOptions options = {});

}  // namespace kusd::runner
