#include "runner/scale.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace kusd::runner {

double repro_scale() {
  const char* env = std::getenv("REPRO_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || !(v > 0.0)) return 1.0;
  return std::clamp(v, 0.05, 64.0);
}

std::uint64_t scaled(std::uint64_t base, std::uint64_t min_value) {
  const double v = static_cast<double>(base) * repro_scale();
  return std::max<std::uint64_t>(min_value,
                                 static_cast<std::uint64_t>(v));
}

int scaled_trials(int base, int min_trials) {
  const double v = static_cast<double>(base) * std::sqrt(repro_scale());
  return std::max(min_trials, static_cast<int>(v));
}

}  // namespace kusd::runner
