#include "runner/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/check.hpp"

namespace kusd::runner {

TaskGraph::TaskGraph(std::vector<std::uint32_t> stripes_per_item,
                     std::vector<std::size_t> order)
    : stripes_(std::move(stripes_per_item)) {
  KUSD_CHECK_MSG(order.empty() || order.size() == stripes_.size(),
                 "task graph: order must permute the item list");
  for (auto& stripes : stripes_) stripes = std::max<std::uint32_t>(1, stripes);
  std::size_t total = 0;
  for (const auto stripes : stripes_) total += stripes;
  units_.reserve(total);
  if (order.empty()) {
    order.resize(stripes_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  }
  std::vector<bool> seen(stripes_.size(), false);
  for (const std::size_t item : order) {
    KUSD_CHECK_MSG(item < stripes_.size() && !seen[item],
                   "task graph: order must permute the item list");
    seen[item] = true;
    for (std::uint32_t s = 0; s < stripes_[item]; ++s) {
      units_.push_back(TaskUnit{item, s});
    }
  }
}

void TaskGraph::run(
    util::ThreadPool& pool,
    const std::function<void(const TaskUnit&)>& run_stripe,
    const std::function<void(std::size_t item)>& on_item_done) const {
  if (units_.empty()) return;
  // Shared scheduler state, alive until wait_idle() below confirms every
  // claiming loop has exited (the pool finishes all tasks before
  // rethrowing a captured exception, so stack lifetime is safe).
  const auto remaining =
      std::make_unique<std::atomic<std::uint32_t>[]>(stripes_.size());
  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    remaining[i].store(stripes_[i], std::memory_order_relaxed);
  }
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};

  const auto claim_loop = [this, &remaining, &cursor, &failed, &run_stripe,
                           &on_item_done] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t next = cursor.fetch_add(1, std::memory_order_relaxed);
      if (next >= units_.size()) return;
      const TaskUnit& unit = units_[next];
      try {
        run_stripe(unit);
        // acq_rel: the finisher of an item's last stripe must observe
        // every other stripe's writes (the sweep's per-trial outcome
        // slots) before aggregating them in on_item_done.
        if (remaining[unit.item].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          on_item_done(unit.item);
        }
      } catch (...) {
        // Poison the batch before the pool captures the exception so no
        // worker claims further units; in-flight units finish on their
        // own workers.
        failed.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  };
  const std::size_t loops = std::min(pool.num_threads(), units_.size());
  for (std::size_t i = 0; i < loops; ++i) pool.submit(claim_loop);
  pool.wait_idle();
}

}  // namespace kusd::runner
