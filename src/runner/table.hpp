// ASCII table printer: the benches print paper-style rows with it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace kusd::runner {

/// Format helpers used by benches for uniform numeric rendering.
[[nodiscard]] std::string fmt(double value, int precision = 3);
[[nodiscard]] std::string fmt_int(std::uint64_t value);
/// Compact scientific-ish rendering for large counts (e.g. "3.1e+07").
[[nodiscard]] std::string fmt_compact(double value);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;
  /// Print to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kusd::runner
