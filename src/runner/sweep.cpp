#include "runner/sweep.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/run.hpp"
#include "core/sync_usd.hpp"
#include "gossip/gossip_usd.hpp"
#include "runner/table.hpp"
#include "runner/trials.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace kusd::runner {

const char* to_string(SweepEngine engine) {
  switch (engine) {
    case SweepEngine::kEveryInteraction: return "every";
    case SweepEngine::kSkipUnproductive: return "skip";
    case SweepEngine::kBatchedRounds: return "batched";
    case SweepEngine::kSynchronized: return "sync";
    case SweepEngine::kGossip: return "gossip";
  }
  return "?";
}

const char* to_string(BiasKind kind) {
  switch (kind) {
    case BiasKind::kNone: return "none";
    case BiasKind::kAdditive: return "additive";
    case BiasKind::kMultiplicative: return "multiplicative";
  }
  return "?";
}

std::string to_string(const StartProfile& start) {
  if (start.kind == StartProfile::Kind::kUniform) return "uniform";
  // Shortest round-trip formatting: the spelling in the output schema
  // must parse back to exactly the ratio that ran (0.5 stays "0.5",
  // awkward ratios keep every significant digit).
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof buffer, start.ratio);
  return "geometric:" + std::string(buffer, result.ptr);
}

std::optional<SweepEngine> parse_engine(const std::string& name) {
  if (name == "every") return SweepEngine::kEveryInteraction;
  if (name == "skip") return SweepEngine::kSkipUnproductive;
  if (name == "batched") return SweepEngine::kBatchedRounds;
  if (name == "sync") return SweepEngine::kSynchronized;
  if (name == "gossip") return SweepEngine::kGossip;
  return std::nullopt;
}

std::optional<StartProfile> parse_start_profile(const std::string& name) {
  if (name == "uniform") return StartProfile{};
  const std::string prefix = "geometric:";
  if (name.rfind(prefix, 0) == 0) {
    const std::string value = name.substr(prefix.size());
    char* end = nullptr;
    const double ratio = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') return std::nullopt;
    if (!(ratio > 0.0 && ratio <= 1.0)) return std::nullopt;
    return StartProfile{StartProfile::Kind::kGeometric, ratio};
  }
  return std::nullopt;
}

namespace {

struct TrialOutcome {
  double parallel_time = 0.0;
  bool converged = false;
  bool plurality_won = false;
};

pp::Configuration build_config(const SweepSpec& spec, const SweepPoint& p) {
  // Round (not truncate) so a fraction built from an absolute count
  // round-trips exactly: (u / n) * n == u.
  const auto undecided = static_cast<pp::Count>(std::llround(
      spec.undecided_fraction * static_cast<double>(p.n)));
  if (p.start.kind == StartProfile::Kind::kGeometric) {
    // Validated upfront: geometric starts only combine with kNone.
    return pp::Configuration::geometric(p.n, p.k, undecided, p.start.ratio);
  }
  switch (spec.bias_kind) {
    case BiasKind::kNone:
      return pp::Configuration::uniform(p.n, p.k, undecided);
    case BiasKind::kAdditive:
      return pp::Configuration::with_additive_bias(
          p.n, p.k, undecided, static_cast<pp::Count>(p.bias));
    case BiasKind::kMultiplicative:
      return pp::Configuration::with_multiplicative_bias(p.n, p.k, undecided,
                                                         p.bias);
  }
  KUSD_CHECK_MSG(false, "unreachable bias kind");
}

/// Round caps mirroring default_interaction_cap's generosity: the
/// synchronized variant is O(log^2 n) rounds w.h.p., gossip O(k log n).
std::uint64_t sync_round_cap(pp::Count n) {
  const double lg = std::log2(static_cast<double>(n)) + 1.0;
  return static_cast<std::uint64_t>(64.0 * lg * lg) + 256;
}

std::uint64_t gossip_round_cap(pp::Count n, int k) {
  const double lg = std::log2(static_cast<double>(n)) + 1.0;
  return static_cast<std::uint64_t>(64.0 * static_cast<double>(k) * lg) + 256;
}

TrialOutcome run_one(const SweepSpec& spec, const SweepPoint& point,
                     const pp::Configuration& x0, std::uint64_t seed) {
  TrialOutcome out;
  switch (point.engine) {
    case SweepEngine::kEveryInteraction:
    case SweepEngine::kSkipUnproductive:
    case SweepEngine::kBatchedRounds: {
      core::RunOptions opts;
      opts.track_phases = false;
      opts.mode = point.engine == SweepEngine::kEveryInteraction
                      ? core::StepMode::kEveryInteraction
                  : point.engine == SweepEngine::kSkipUnproductive
                      ? core::StepMode::kSkipUnproductive
                      : core::StepMode::kBatchedRounds;
      opts.batch.chunk_fraction = spec.batch_chunk_fraction;
      opts.batch.policy = spec.batch_policy;
      const auto r = core::run_usd(x0, seed, opts);
      out.parallel_time = r.parallel_time;
      out.converged = r.converged;
      out.plurality_won = r.plurality_won;
      return out;
    }
    case SweepEngine::kSynchronized: {
      core::SyncUsd sim(x0, rng::Rng(seed));
      out.converged = sim.run_to_consensus(sync_round_cap(point.n));
      out.parallel_time = static_cast<double>(sim.total_rounds());
      out.plurality_won =
          out.converged && sim.consensus_opinion() == x0.argmax();
      return out;
    }
    case SweepEngine::kGossip: {
      gossip::GossipUsd sim(x0, rng::Rng(seed));
      out.converged =
          sim.run_to_consensus(gossip_round_cap(point.n, point.k));
      out.parallel_time = static_cast<double>(sim.rounds());
      out.plurality_won =
          out.converged && sim.consensus_opinion() == x0.argmax();
      return out;
    }
  }
  KUSD_CHECK_MSG(false, "unreachable sweep engine");
}

SweepCell aggregate_cell(const SweepSpec& spec, const SweepPoint& point,
                         const std::vector<TrialOutcome>& outcomes,
                         double wall_seconds) {
  SweepCell cell;
  cell.point = point;
  cell.bias_kind = spec.bias_kind;
  cell.trials = spec.trials;
  cell.parallel_time.reserve(outcomes.size());
  int converged = 0, won = 0;
  for (const auto& o : outcomes) {
    cell.parallel_time.add(o.parallel_time);
    converged += o.converged ? 1 : 0;
    won += o.plurality_won ? 1 : 0;
  }
  const double denom = outcomes.empty() ? 1.0 : static_cast<double>(
                                                    outcomes.size());
  cell.converged_rate = static_cast<double>(converged) / denom;
  cell.plurality_win_rate = static_cast<double>(won) / denom;
  cell.wall_seconds = wall_seconds;
  return cell;
}

}  // namespace

Sweep::Sweep(SweepSpec spec) : spec_(std::move(spec)) {
  KUSD_CHECK_MSG(spec_.trials >= 0, "sweep: negative trial count");
  KUSD_CHECK_MSG(!spec_.ns.empty() && !spec_.ks.empty() &&
                     !spec_.starts.empty() && !spec_.bias_values.empty() &&
                     !spec_.engines.empty(),
                 "sweep: every axis needs at least one value");
  KUSD_CHECK_MSG(
      spec_.undecided_fraction >= 0.0 && spec_.undecided_fraction < 1.0,
      "sweep: undecided fraction must be in [0, 1)");
  KUSD_CHECK_MSG(!spec_.shuffle_points || spec_.point_parallelism,
                 "sweep: shuffle_points requires point_parallelism");
  // Fail the whole sweep upfront rather than aborting mid-grid after other
  // points already streamed.
  for (const auto engine : spec_.engines) {
    KUSD_CHECK_MSG(engine != SweepEngine::kSynchronized ||
                       spec_.undecided_fraction == 0.0,
                   "sweep: the sync engine starts fully decided "
                   "(undecided fraction must be 0)");
    if (engine == SweepEngine::kEveryInteraction ||
        engine == SweepEngine::kSkipUnproductive) {
      for (const auto n : spec_.ns) {
        KUSD_CHECK_MSG(n < (std::uint64_t{1} << 32),
                       "sweep: the every/skip engines cap n below 2^32 "
                       "(use the batched engine beyond that)");
      }
    }
    KUSD_CHECK_MSG(engine != SweepEngine::kBatchedRounds ||
                       (spec_.batch_chunk_fraction > 0.0 &&
                        spec_.batch_chunk_fraction <= 1.0),
                   "sweep: batched chunk fraction must be in (0, 1]");
  }
  for (const auto& start : spec_.starts) {
    if (start.kind == StartProfile::Kind::kGeometric) {
      KUSD_CHECK_MSG(start.ratio > 0.0 && start.ratio <= 1.0,
                     "sweep: geometric start ratio must be in (0, 1]");
      KUSD_CHECK_MSG(spec_.bias_kind == BiasKind::kNone,
                     "sweep: geometric starts define their own support "
                     "shape and exclude a bias axis");
    }
  }
  for (const double bias : spec_.bias_values) {
    switch (spec_.bias_kind) {
      case BiasKind::kNone:
        break;
      case BiasKind::kAdditive:
        // beta is an agent count: casting a negative/huge double to
        // pp::Count in build_config would be UB.
        KUSD_CHECK_MSG(bias >= 0.0 && bias <= 1e18 &&
                           bias == std::floor(bias),
                       "sweep: additive beta must be a non-negative count");
        break;
      case BiasKind::kMultiplicative:
        KUSD_CHECK_MSG(std::isfinite(bias) && bias > 1.0,
                       "sweep: multiplicative alpha must exceed 1");
        break;
    }
  }
  // Construct every grid point's initial configuration once now, so any
  // infeasible (n, k, start, bias) combination (e.g. beta exceeding the
  // decided agents of the smallest n) fails here instead of mid-grid.
  for (const auto& point : grid()) {
    const auto config = build_config(spec_, point);
    // Configuration itself allows decided == 0, but no engine converges
    // from it (an undecided fraction can round up to the whole population
    // at small n).
    KUSD_CHECK_MSG(config.decided() >= 1,
                   "sweep: undecided fraction leaves no decided agents at "
                   "n = " + std::to_string(point.n));
  }
}

std::vector<SweepPoint> Sweep::grid() const {
  // With no bias, the bias axis is a single implicit point — listing
  // several values would just duplicate work.
  const std::size_t bias_points =
      spec_.bias_kind == BiasKind::kNone ? 1 : spec_.bias_values.size();
  std::vector<SweepPoint> points;
  points.reserve(spec_.engines.size() * spec_.ns.size() * spec_.ks.size() *
                 spec_.starts.size() * bias_points);
  std::size_t index = 0;
  for (const auto engine : spec_.engines) {
    for (const auto n : spec_.ns) {
      for (const auto k : spec_.ks) {
        for (const auto& start : spec_.starts) {
          for (std::size_t b = 0; b < bias_points; ++b) {
            const double bias = spec_.bias_kind == BiasKind::kNone
                                    ? 0.0
                                    : spec_.bias_values[b];
            points.push_back(SweepPoint{engine, n, k, start, bias, index++});
          }
        }
      }
    }
  }
  return points;
}

SweepCell Sweep::run_point(const SweepPoint& point) const {
  util::ThreadPool pool(spec_.threads);
  return run_point(pool, point);
}

SweepCell Sweep::run_point(util::ThreadPool& pool,
                           const SweepPoint& point) const {
  const auto x0 = build_config(spec_, point);
  util::Stopwatch watch;
  const std::uint64_t point_seed =
      rng::stream_seed(spec_.master_seed, point.index);
  const auto outcomes = run_trials<TrialOutcome>(
      pool, spec_.trials, point_seed,
      [this, &point, &x0](std::uint64_t seed) {
        return run_one(spec_, point, x0, seed);
      });
  return aggregate_cell(spec_, point, outcomes, watch.seconds());
}

void Sweep::run(const std::function<void(const SweepCell&)>& on_cell) const {
  // One pool for the whole grid: workers are not respawned per point.
  util::ThreadPool pool(spec_.threads);
  if (!spec_.point_parallelism) {
    for (const auto& point : grid()) on_cell(run_point(pool, point));
    return;
  }

  // Point-parallel mode: one pool task per grid point, trials run inline
  // with the exact per-trial seeds run_trials would derive. Completed
  // cells are buffered and the contiguous done prefix is emitted under
  // the mutex (so the callback never runs concurrently with itself):
  // output order and content match the sequential path byte for byte.
  const auto points = grid();
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (spec_.shuffle_points) {
    // The execution order is itself a seeded derivation (the all-ones
    // stream id cannot collide with a grid index), so shuffled sweeps are
    // as reproducible as ordered ones.
    rng::Rng shuffle_rng(
        rng::stream_seed(spec_.master_seed, ~std::uint64_t{0}));
    shuffle_rng.shuffle(std::span<std::size_t>(order));
  }

  std::mutex mu;
  std::vector<std::optional<SweepCell>> done(points.size());
  std::size_t next_emit = 0;
  for (const std::size_t point_index : order) {
    pool.submit([this, &points, &mu, &done, &next_emit, &on_cell,
                 point_index] {
      const SweepPoint& point = points[point_index];
      const auto x0 = build_config(spec_, point);
      util::Stopwatch watch;
      const std::uint64_t point_seed =
          rng::stream_seed(spec_.master_seed, point.index);
      std::vector<TrialOutcome> outcomes(
          static_cast<std::size_t>(spec_.trials));
      for (int t = 0; t < spec_.trials; ++t) {
        outcomes[static_cast<std::size_t>(t)] = run_one(
            spec_, point, x0,
            rng::stream_seed(point_seed, static_cast<std::uint64_t>(t)));
      }
      auto cell = aggregate_cell(spec_, point, outcomes, watch.seconds());

      const std::lock_guard<std::mutex> lock(mu);
      done[point_index] = std::move(cell);
      while (next_emit < done.size() && done[next_emit].has_value()) {
        // Consume the slot before invoking the callback: if on_cell
        // throws (the exception resurfaces from wait_idle), later tasks
        // must not re-emit the same cell.
        const SweepCell next = *std::move(done[next_emit]);
        done[next_emit].reset();
        ++next_emit;
        on_cell(next);
      }
    });
  }
  pool.wait_idle();
}

std::vector<std::string> Sweep::csv_header() {
  return {"engine",
          "n",
          "k",
          "start",
          "bias_kind",
          "bias",
          "trials",
          "converged_rate",
          "plurality_win_rate",
          "pt_mean",
          "pt_stddev",
          "pt_median",
          "pt_p95"};
}

std::vector<std::string> Sweep::csv_row(const SweepCell& cell) {
  const auto& pt = cell.parallel_time;
  return {to_string(cell.point.engine),
          std::to_string(cell.point.n),
          std::to_string(cell.point.k),
          to_string(cell.point.start),
          to_string(cell.bias_kind),
          fmt(cell.point.bias, 6),
          std::to_string(cell.trials),
          fmt(cell.converged_rate, 4),
          fmt(cell.plurality_win_rate, 4),
          fmt(pt.empty() ? 0.0 : pt.mean(), 4),
          fmt(pt.empty() ? 0.0 : pt.stddev(), 4),
          fmt(pt.empty() ? 0.0 : pt.median(), 4),
          fmt(pt.empty() ? 0.0 : pt.quantile(0.95), 4)};
}

std::string Sweep::json_line(const SweepCell& cell) {
  const auto header = csv_header();
  const auto row = csv_row(cell);
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << header[i] << "\":";
    // engine, start and bias_kind are enum spellings, everything else
    // numeric.
    if (header[i] == "engine" || header[i] == "start" ||
        header[i] == "bias_kind") {
      os << '"' << row[i] << '"';
    } else {
      os << row[i];
    }
  }
  os << '}';
  return os.str();
}

}  // namespace kusd::runner
