#include "runner/sweep.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/budget.hpp"
#include "pp/degree_classes.hpp"
#include "rng/rng.hpp"
#include "runner/table.hpp"
#include "runner/trials.hpp"
#include "sim/registry.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace kusd::runner {

const char* to_string(BiasKind kind) {
  switch (kind) {
    case BiasKind::kNone: return "none";
    case BiasKind::kAdditive: return "additive";
    case BiasKind::kMultiplicative: return "multiplicative";
  }
  return "?";
}

std::string to_string(const StartProfile& start) {
  if (start.kind == StartProfile::Kind::kUniform) return "uniform";
  // Shortest round-trip formatting: the spelling in the output schema
  // must parse back to exactly the ratio that ran (0.5 stays "0.5",
  // awkward ratios keep every significant digit).
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof buffer, start.ratio);
  return "geometric:" + std::string(buffer, result.ptr);
}

std::optional<StartProfile> parse_start_profile(const std::string& name) {
  if (name == "uniform") return StartProfile{};
  const std::string prefix = "geometric:";
  if (name.rfind(prefix, 0) == 0) {
    const std::string value = name.substr(prefix.size());
    char* end = nullptr;
    const double ratio = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') return std::nullopt;
    if (!(ratio > 0.0 && ratio <= 1.0)) return std::nullopt;
    return StartProfile{StartProfile::Kind::kGeometric, ratio};
  }
  return std::nullopt;
}

namespace {

struct TrialOutcome {
  double parallel_time = 0.0;
  bool converged = false;
  bool plurality_won = false;
};

pp::Configuration build_config(const SweepSpec& spec, const SweepPoint& p) {
  // Round (not truncate) so a fraction built from an absolute count
  // round-trips exactly: (u / n) * n == u.
  const auto undecided = static_cast<pp::Count>(std::llround(
      spec.undecided_fraction * static_cast<double>(p.n)));
  if (p.start.kind == StartProfile::Kind::kGeometric) {
    // Validated upfront: geometric starts only combine with kNone.
    return pp::Configuration::geometric(p.n, p.k, undecided, p.start.ratio);
  }
  switch (spec.bias_kind) {
    case BiasKind::kNone:
      return pp::Configuration::uniform(p.n, p.k, undecided);
    case BiasKind::kAdditive:
      return pp::Configuration::with_additive_bias(
          p.n, p.k, undecided, static_cast<pp::Count>(p.bias));
    case BiasKind::kMultiplicative:
      return pp::Configuration::with_multiplicative_bias(p.n, p.k, undecided,
                                                         p.bias);
  }
  KUSD_CHECK_MSG(false, "unreachable bias kind");
}

/// The point's realized topology, in whichever representation its engine
/// runs on, plus the summary the output schema records.
struct PointTopology {
  std::optional<pp::InteractionGraph> graph;
  std::optional<pp::DegreeClassModel> degrees;
  std::optional<std::uint64_t> edges;
  std::optional<bool> connected;
};

sim::EngineOptions engine_options(const SweepSpec& spec,
                                  const SweepPoint& point,
                                  const PointTopology& topology) {
  sim::EngineOptions options;
  options.batch.chunk_fraction = spec.batch_chunk_fraction;
  options.batch.policy = spec.batch_policy;
  options.lockstep_schedule = spec.lockstep_schedule;
  if (point.graph.has_value()) {
    options.graph = *point.graph;
    if (topology.graph.has_value()) options.shared_graph = &*topology.graph;
    if (topology.degrees.has_value()) {
      options.shared_degrees = &*topology.degrees;
    }
  }
  return options;
}

/// Realize the point's shared topology (graph-axis engines only): one
/// deterministic construction per grid point, reused read-only by every
/// trial regardless of thread placement. Aggregated engines
/// (EngineInfo::aggregated_topology) get a degree-class model — never a
/// materialized edge set, which is exactly what their n >= 1e8 sweeps
/// cannot afford — with the summary columns computed analytically.
PointTopology realize_topology(const SweepPoint& point,
                               std::uint64_t point_seed) {
  PointTopology out;
  if (!point.graph.has_value()) return out;
  const sim::EngineInfo* info = sim::Registry::instance().find(point.engine);
  rng::Rng topology_rng(rng::stream_seed(point_seed, sim::kTopologyStream));
  if (info != nullptr && info->aggregated_topology) {
    out.degrees = sim::degree_class_model(*point.graph, point.n, topology_rng);
    out.edges = static_cast<std::uint64_t>(
        std::llround(out.degrees->expected_edges()));
    out.connected = !out.degrees->has_isolated_vertices();
  } else {
    out.graph = sim::build_graph(*point.graph, point.n, topology_rng);
    out.edges = out.graph->num_edges();
    out.connected = out.graph->is_connected();
  }
  return out;
}

/// The per-trial native-time cap of this point — what run_one passes to
/// run_to_consensus, and what a short-circuited disconnected point
/// reports as its timeout horizon. The default comes from the engine's
/// published budget (EngineInfo::default_budget), so a short-circuited
/// cell reports the same horizon a simulated trial would have run to;
/// engines that publish nothing default to the asynchronous
/// default_interaction_cap.
std::uint64_t trial_budget(const SweepSpec& spec, const SweepPoint& point) {
  if (spec.max_time != 0) return spec.max_time;
  const sim::EngineInfo* info = sim::Registry::instance().find(point.engine);
  if (info != nullptr && info->default_budget) {
    return info->default_budget(point.n, point.k);
  }
  return core::default_interaction_cap(point.n, point.k);
}

bool starts_at_consensus(const pp::Configuration& x0) {
  for (int i = 0; i < x0.k(); ++i) {
    if (x0.opinion(i) == x0.n()) return true;
  }
  return false;
}

TrialOutcome run_one(const SweepSpec& spec, const SweepPoint& point,
                     const pp::Configuration& x0,
                     const PointTopology& topology, std::uint64_t seed) {
  const auto engine = sim::Registry::instance().create(
      point.engine, x0, seed, engine_options(spec, point, topology));
  TrialOutcome out;
  out.converged = engine->run_to_consensus(
      spec.max_time != 0 ? spec.max_time : engine->default_budget());
  out.parallel_time = engine->parallel_time();
  out.plurality_won =
      out.converged && engine->consensus_opinion() == x0.argmax();
  return out;
}

SweepCell aggregate_cell(const SweepSpec& spec, const SweepPoint& point,
                         const std::vector<TrialOutcome>& outcomes,
                         double wall_seconds) {
  SweepCell cell;
  cell.point = point;
  cell.bias_kind = spec.bias_kind;
  cell.trials = spec.trials;
  cell.parallel_time.reserve(outcomes.size());
  int converged = 0, won = 0;
  for (const auto& o : outcomes) {
    cell.parallel_time.add(o.parallel_time);
    converged += o.converged ? 1 : 0;
    won += o.plurality_won ? 1 : 0;
  }
  const double denom = outcomes.empty() ? 1.0 : static_cast<double>(
                                                    outcomes.size());
  cell.converged_rate = static_cast<double>(converged) / denom;
  cell.plurality_win_rate = static_cast<double>(won) / denom;
  cell.wall_seconds = wall_seconds;
  return cell;
}

/// A cell's whole trial batch through the engine's lockstep kernel
/// (EngineInfo::lockstep): the exact seeds run_trials would derive, one
/// kernel invocation, outcomes in trial order. Because the kernel is
/// per-stream bit-identical to the single-trial engine, this path is the
/// same in every execution mode and at every thread count by
/// construction.
std::vector<TrialOutcome> run_lockstep_batch(const SweepSpec& spec,
                                             const SweepPoint& point,
                                             const pp::Configuration& x0,
                                             const PointTopology& topology,
                                             std::uint64_t point_seed,
                                             const sim::EngineInfo& info) {
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(spec.trials));
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    seeds[t] = rng::stream_seed(point_seed, static_cast<std::uint64_t>(t));
  }
  const auto results =
      info.lockstep(x0, seeds, engine_options(spec, point, topology),
                    trial_budget(spec, point));
  const int plurality = x0.argmax();
  std::vector<TrialOutcome> outcomes(results.size());
  for (std::size_t t = 0; t < results.size(); ++t) {
    outcomes[t].parallel_time = results[t].parallel_time;
    outcomes[t].converged = results[t].converged;
    outcomes[t].plurality_won =
        results[t].converged && results[t].winner == plurality;
  }
  return outcomes;
}

/// Shared core of both execution modes — one code path so CSV/JSONL stay
/// byte-identical across modes: realize the point's topology, short-
/// circuit a disconnected one as an all-timeout batch, route lockstep-
/// capable engines through one whole-batch kernel call, and otherwise
/// hand the trial batch to `run_batch` (striped over a pool, or inline in
/// a point-parallel task).
SweepCell run_point_cell(
    const SweepSpec& spec, const SweepPoint& point,
    const std::function<std::vector<TrialOutcome>(
        std::uint64_t point_seed,
        const std::function<TrialOutcome(std::uint64_t)>&)>& run_batch) {
  const auto x0 = build_config(spec, point);
  util::Stopwatch watch;
  const std::uint64_t point_seed =
      rng::stream_seed(spec.master_seed, point.index);
  const auto topology = realize_topology(point, point_seed);
  std::vector<TrialOutcome> outcomes;
  bool timed_out = false;
  if (topology.connected.has_value() && !*topology.connected &&
      spec.max_time == 0 && !starts_at_consensus(x0)) {
    // Disconnected topology under the *default* budget: global consensus
    // needs every component (including each isolated vertex) to align by
    // coincidence, so most trials would grind through the enormous
    // default cap — the de-facto hang this guard exists for. Record the
    // trials as timeouts at that cap instead of simulating. An explicit
    // --budget bounds the cost the user signed up for, so those sweeps
    // run honestly below and *measure* the coincidental-consensus rate
    // rather than hardcoding it to zero.
    TrialOutcome out;
    out.parallel_time = static_cast<double>(trial_budget(spec, point)) /
                        static_cast<double>(point.n);
    outcomes.assign(static_cast<std::size_t>(spec.trials), out);
    timed_out = true;
  } else {
    const sim::EngineInfo* info =
        sim::Registry::instance().find(point.engine);
    if (info != nullptr && info->supports_lockstep && info->lockstep) {
      outcomes =
          run_lockstep_batch(spec, point, x0, topology, point_seed, *info);
    } else {
      outcomes = run_batch(point_seed, [&](std::uint64_t seed) {
        return run_one(spec, point, x0, topology, seed);
      });
    }
  }
  auto cell = aggregate_cell(spec, point, outcomes, watch.seconds());
  cell.graph_edges = topology.edges;
  cell.connected = topology.connected;
  if (timed_out) cell.status = "timeout";
  return cell;
}

}  // namespace

Sweep::Sweep(SweepSpec spec) : spec_(std::move(spec)) {
  KUSD_CHECK_MSG(spec_.trials >= 0, "sweep: negative trial count");
  KUSD_CHECK_MSG(!spec_.ns.empty() && !spec_.ks.empty() &&
                     !spec_.starts.empty() && !spec_.bias_values.empty() &&
                     !spec_.engines.empty() && !spec_.graphs.empty(),
                 "sweep: every axis needs at least one value");
  KUSD_CHECK_MSG(
      spec_.undecided_fraction >= 0.0 && spec_.undecided_fraction < 1.0,
      "sweep: undecided fraction must be in [0, 1)");
  KUSD_CHECK_MSG(!spec_.shuffle_points || spec_.point_parallelism,
                 "sweep: shuffle_points requires point_parallelism");
  // Engine constraints come from registry metadata, so the sweep needs no
  // per-engine knowledge. Fail the whole sweep upfront rather than
  // aborting mid-grid after other points already streamed.
  const auto& registry = sim::Registry::instance();
  bool any_graph_engine = false;
  for (const auto& name : spec_.engines) {
    const sim::EngineInfo* info = registry.find(name);
    KUSD_CHECK_MSG(info != nullptr,
                   "sweep: unknown engine '" + name +
                       "' (registered: " + registry.names_joined() + ")");
    any_graph_engine = any_graph_engine || info->uses_graph_axis;
    KUSD_CHECK_MSG(!info->requires_decided_start ||
                       spec_.undecided_fraction == 0.0,
                   "sweep: engine '" + name +
                       "' starts fully decided (undecided fraction must "
                       "be 0)");
    if (info->max_n != 0) {
      for (const auto n : spec_.ns) {
        KUSD_CHECK_MSG(n <= info->max_n,
                       "sweep: engine '" + name + "' caps n at " +
                           std::to_string(info->max_n));
      }
    }
    KUSD_CHECK_MSG(!info->uses_chunk_options ||
                       (spec_.batch_chunk_fraction > 0.0 &&
                        spec_.batch_chunk_fraction <= 1.0),
                   "sweep: batched chunk fraction must be in (0, 1]");
  }
  KUSD_CHECK_MSG(
      any_graph_engine ||
          spec_.graphs == std::vector<sim::GraphSpec>{sim::GraphSpec{}},
      "sweep: the graph axis requires a topology-taking engine "
      "(--engine graph or graph-batched)");
  for (const auto& graph : spec_.graphs) {
    if (graph.kind == sim::GraphSpec::Kind::kRegular && any_graph_engine) {
      for (const auto n : spec_.ns) {
        KUSD_CHECK_MSG(graph.degree >= 1 &&
                           static_cast<pp::Count>(graph.degree) < n,
                       "sweep: regular:<d> needs 1 <= d < n");
        KUSD_CHECK_MSG(
            (n * static_cast<pp::Count>(graph.degree)) % 2 == 0,
            "sweep: regular:<d> needs n * d even at every n of the grid");
      }
    }
    KUSD_CHECK_MSG(graph.kind != sim::GraphSpec::Kind::kErdosRenyi ||
                       graph.edge_probability == 0.0 ||
                       (graph.edge_probability > 0.0 &&
                        graph.edge_probability <= 1.0),
                   "sweep: er:<p> needs p in (0, 1] or er:auto");
  }
  for (const auto& start : spec_.starts) {
    if (start.kind == StartProfile::Kind::kGeometric) {
      KUSD_CHECK_MSG(start.ratio > 0.0 && start.ratio <= 1.0,
                     "sweep: geometric start ratio must be in (0, 1]");
      KUSD_CHECK_MSG(spec_.bias_kind == BiasKind::kNone,
                     "sweep: geometric starts define their own support "
                     "shape and exclude a bias axis");
    }
  }
  for (const double bias : spec_.bias_values) {
    switch (spec_.bias_kind) {
      case BiasKind::kNone:
        break;
      case BiasKind::kAdditive:
        // beta is an agent count: casting a negative/huge double to
        // pp::Count in build_config would be UB.
        KUSD_CHECK_MSG(bias >= 0.0 && bias <= 1e18 &&
                           bias == std::floor(bias),
                       "sweep: additive beta must be a non-negative count");
        break;
      case BiasKind::kMultiplicative:
        KUSD_CHECK_MSG(std::isfinite(bias) && bias > 1.0,
                       "sweep: multiplicative alpha must exceed 1");
        break;
    }
  }
  // Construct every grid point's initial configuration once now, so any
  // infeasible (n, k, start, bias) combination (e.g. beta exceeding the
  // decided agents of the smallest n) fails here instead of mid-grid.
  for (const auto& point : grid()) {
    const auto config = build_config(spec_, point);
    // Configuration itself allows decided == 0, but no engine converges
    // from it (an undecided fraction can round up to the whole population
    // at small n).
    KUSD_CHECK_MSG(config.decided() >= 1,
                   "sweep: undecided fraction leaves no decided agents at "
                   "n = " + std::to_string(point.n));
  }
}

std::vector<SweepPoint> Sweep::grid() const {
  // With no bias, the bias axis is a single implicit point — listing
  // several values would just duplicate work. Likewise the graph axis
  // multiplies only engines that take a topology.
  const std::size_t bias_points =
      spec_.bias_kind == BiasKind::kNone ? 1 : spec_.bias_values.size();
  const auto& registry = sim::Registry::instance();
  std::vector<SweepPoint> points;
  std::size_t index = 0;
  for (const auto& engine : spec_.engines) {
    const sim::EngineInfo* info = registry.find(engine);
    const bool graph_axis = info != nullptr && info->uses_graph_axis;
    const std::size_t graph_points = graph_axis ? spec_.graphs.size() : 1;
    for (std::size_t g = 0; g < graph_points; ++g) {
      for (const auto n : spec_.ns) {
        for (const auto k : spec_.ks) {
          for (const auto& start : spec_.starts) {
            for (std::size_t b = 0; b < bias_points; ++b) {
              const double bias = spec_.bias_kind == BiasKind::kNone
                                      ? 0.0
                                      : spec_.bias_values[b];
              points.push_back(SweepPoint{
                  engine,
                  graph_axis ? std::optional<sim::GraphSpec>(spec_.graphs[g])
                             : std::nullopt,
                  n, k, start, bias, index++});
            }
          }
        }
      }
    }
  }
  return points;
}

SweepCell Sweep::run_point(const SweepPoint& point) const {
  util::ThreadPool pool(spec_.threads);
  return run_point(pool, point);
}

SweepCell Sweep::run_point(util::ThreadPool& pool,
                           const SweepPoint& point) const {
  return run_point_cell(
      spec_, point,
      [this, &pool](std::uint64_t point_seed,
                    const std::function<TrialOutcome(std::uint64_t)>& trial) {
        return run_trials<TrialOutcome>(pool, spec_.trials, point_seed, trial);
      });
}

void Sweep::run(const std::function<void(const SweepCell&)>& on_cell) const {
  // One pool for the whole grid: workers are not respawned per point.
  util::ThreadPool pool(spec_.threads);
  if (!spec_.point_parallelism) {
    for (const auto& point : grid()) on_cell(run_point(pool, point));
    return;
  }

  // Point-parallel mode: one pool task per grid point, trials run inline
  // with the exact per-trial seeds run_trials would derive. Completed
  // cells are buffered and the contiguous done prefix is emitted under
  // the mutex (so the callback never runs concurrently with itself):
  // output order and content match the sequential path byte for byte.
  const auto points = grid();
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (spec_.shuffle_points) {
    // The execution order is itself a seeded derivation (the all-ones
    // stream id cannot collide with a grid index), so shuffled sweeps are
    // as reproducible as ordered ones.
    rng::Rng shuffle_rng(
        rng::stream_seed(spec_.master_seed, ~std::uint64_t{0}));
    shuffle_rng.shuffle(std::span<std::size_t>(order));
  }

  std::mutex mu;
  std::vector<std::optional<SweepCell>> done(points.size());
  std::size_t next_emit = 0;
  for (const std::size_t point_index : order) {
    pool.submit([this, &points, &mu, &done, &next_emit, &on_cell,
                 point_index] {
      const SweepPoint& point = points[point_index];
      // Trials run inline with the exact per-trial seeds run_trials would
      // derive, through the same shared cell path as the sequential mode.
      auto cell = run_point_cell(
          spec_, point,
          [this](std::uint64_t point_seed,
                 const std::function<TrialOutcome(std::uint64_t)>& trial) {
            std::vector<TrialOutcome> outcomes(
                static_cast<std::size_t>(spec_.trials));
            for (int t = 0; t < spec_.trials; ++t) {
              outcomes[static_cast<std::size_t>(t)] = trial(rng::stream_seed(
                  point_seed, static_cast<std::uint64_t>(t)));
            }
            return outcomes;
          });

      const std::lock_guard<std::mutex> lock(mu);
      done[point_index] = std::move(cell);
      while (next_emit < done.size() && done[next_emit].has_value()) {
        // Consume the slot before invoking the callback: if on_cell
        // throws (the exception resurfaces from wait_idle), later tasks
        // must not re-emit the same cell.
        const SweepCell next = *std::move(done[next_emit]);
        done[next_emit].reset();
        ++next_emit;
        on_cell(next);
      }
    });
  }
  pool.wait_idle();
}

std::vector<std::string> Sweep::csv_header() {
  return {"engine",
          "graph",
          "graph_edges",
          "connected",
          "n",
          "k",
          "start",
          "bias_kind",
          "bias",
          "trials",
          "status",
          "converged_rate",
          "plurality_win_rate",
          "pt_mean",
          "pt_stddev",
          "pt_median",
          "pt_p95"};
}

std::vector<std::string> Sweep::csv_row(const SweepCell& cell) {
  const auto& pt = cell.parallel_time;
  return {cell.point.engine,
          cell.point.graph.has_value() ? sim::to_string(*cell.point.graph)
                                       : "-",
          cell.graph_edges.has_value() ? std::to_string(*cell.graph_edges)
                                       : "-",
          cell.connected.has_value() ? (*cell.connected ? "1" : "0") : "-",
          std::to_string(cell.point.n),
          std::to_string(cell.point.k),
          to_string(cell.point.start),
          to_string(cell.bias_kind),
          fmt(cell.point.bias, 6),
          std::to_string(cell.trials),
          cell.status,
          fmt(cell.converged_rate, 4),
          fmt(cell.plurality_win_rate, 4),
          fmt(pt.empty() ? 0.0 : pt.mean(), 4),
          fmt(pt.empty() ? 0.0 : pt.stddev(), 4),
          fmt(pt.empty() ? 0.0 : pt.median(), 4),
          fmt(pt.empty() ? 0.0 : pt.quantile(0.95), 4)};
}

std::string Sweep::json_line(const SweepCell& cell) {
  const auto header = csv_header();
  const auto row = csv_row(cell);
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << header[i] << "\":";
    // engine, graph, start, bias_kind and status are name spellings;
    // graph_edges and connected are numeric when present and null for
    // engines without a graph axis (CSV spells that "-"); everything
    // else is numeric.
    if (header[i] == "engine" || header[i] == "graph" ||
        header[i] == "start" || header[i] == "bias_kind" ||
        header[i] == "status") {
      os << '"' << row[i] << '"';
    } else if ((header[i] == "graph_edges" || header[i] == "connected") &&
               row[i] == "-") {
      os << "null";
    } else {
      os << row[i];
    }
  }
  os << '}';
  return os.str();
}

}  // namespace kusd::runner
