#include "runner/sweep.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <utility>

#include "core/budget.hpp"
#include "pp/degree_classes.hpp"
#include "rng/rng.hpp"
#include "runner/table.hpp"
#include "runner/task_graph.hpp"
#include "sim/registry.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace kusd::runner {

const char* to_string(BiasKind kind) {
  switch (kind) {
    case BiasKind::kNone: return "none";
    case BiasKind::kAdditive: return "additive";
    case BiasKind::kMultiplicative: return "multiplicative";
  }
  return "?";
}

std::string to_string(const StartProfile& start) {
  if (start.kind == StartProfile::Kind::kUniform) return "uniform";
  // Shortest round-trip formatting: the spelling in the output schema
  // must parse back to exactly the ratio that ran (0.5 stays "0.5",
  // awkward ratios keep every significant digit).
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof buffer, start.ratio);
  return "geometric:" + std::string(buffer, result.ptr);
}

std::optional<StartProfile> parse_start_profile(const std::string& name) {
  if (name == "uniform") return StartProfile{};
  const std::string prefix = "geometric:";
  if (name.rfind(prefix, 0) == 0) {
    const std::string value = name.substr(prefix.size());
    char* end = nullptr;
    const double ratio = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') return std::nullopt;
    if (!(ratio > 0.0 && ratio <= 1.0)) return std::nullopt;
    return StartProfile{StartProfile::Kind::kGeometric, ratio};
  }
  return std::nullopt;
}

namespace {

struct TrialOutcome {
  double parallel_time = 0.0;
  bool converged = false;
  bool plurality_won = false;
};

pp::Configuration build_config(const SweepSpec& spec, const SweepPoint& p) {
  // Round (not truncate) so a fraction built from an absolute count
  // round-trips exactly: (u / n) * n == u.
  const auto undecided = static_cast<pp::Count>(std::llround(
      spec.undecided_fraction * static_cast<double>(p.n)));
  if (p.start.kind == StartProfile::Kind::kGeometric) {
    // Validated upfront: geometric starts only combine with kNone.
    return pp::Configuration::geometric(p.n, p.k, undecided, p.start.ratio);
  }
  switch (spec.bias_kind) {
    case BiasKind::kNone:
      return pp::Configuration::uniform(p.n, p.k, undecided);
    case BiasKind::kAdditive:
      return pp::Configuration::with_additive_bias(
          p.n, p.k, undecided, static_cast<pp::Count>(p.bias));
    case BiasKind::kMultiplicative:
      return pp::Configuration::with_multiplicative_bias(p.n, p.k, undecided,
                                                         p.bias);
  }
  KUSD_CHECK_MSG(false, "unreachable bias kind");
}

/// The point's realized topology, in whichever representation its engine
/// runs on, plus the summary the output schema records.
struct PointTopology {
  std::optional<pp::InteractionGraph> graph;
  std::optional<pp::DegreeClassModel> degrees;
  std::optional<std::uint64_t> edges;
  std::optional<bool> connected;
};

sim::EngineOptions engine_options(const SweepSpec& spec,
                                  const SweepPoint& point,
                                  const PointTopology& topology) {
  sim::EngineOptions options;
  options.batch.chunk_fraction = spec.batch_chunk_fraction;
  options.batch.policy = spec.batch_policy;
  options.lockstep_schedule = spec.lockstep_schedule;
  if (point.graph.has_value()) {
    options.graph = *point.graph;
    if (topology.graph.has_value()) options.shared_graph = &*topology.graph;
    if (topology.degrees.has_value()) {
      options.shared_degrees = &*topology.degrees;
    }
  }
  return options;
}

/// Realize the point's shared topology (graph-axis engines only): one
/// deterministic construction per grid point, reused read-only by every
/// trial regardless of thread placement. Aggregated engines
/// (EngineInfo::aggregated_topology) get a degree-class model — never a
/// materialized edge set, which is exactly what their n >= 1e8 sweeps
/// cannot afford — with the summary columns computed analytically.
PointTopology realize_topology(const SweepPoint& point,
                               std::uint64_t point_seed) {
  PointTopology out;
  if (!point.graph.has_value()) return out;
  const sim::EngineInfo* info = sim::Registry::instance().find(point.engine);
  rng::Rng topology_rng(rng::stream_seed(point_seed, sim::kTopologyStream));
  if (info != nullptr && info->aggregated_topology) {
    out.degrees = sim::degree_class_model(*point.graph, point.n, topology_rng);
    out.edges = static_cast<std::uint64_t>(
        std::llround(out.degrees->expected_edges()));
    out.connected = !out.degrees->has_isolated_vertices();
  } else {
    out.graph = sim::build_graph(*point.graph, point.n, topology_rng);
    out.edges = out.graph->num_edges();
    out.connected = out.graph->is_connected();
  }
  return out;
}

/// The per-trial native-time cap of this point — what run_one passes to
/// run_to_consensus, and what a short-circuited disconnected point
/// reports as its timeout horizon. The default comes from the engine's
/// published budget (EngineInfo::default_budget), so a short-circuited
/// cell reports the same horizon a simulated trial would have run to;
/// engines that publish nothing default to the asynchronous
/// default_interaction_cap.
std::uint64_t trial_budget(const SweepSpec& spec, const SweepPoint& point) {
  if (spec.max_time != 0) return spec.max_time;
  const sim::EngineInfo* info = sim::Registry::instance().find(point.engine);
  if (info != nullptr && info->default_budget) {
    return info->default_budget(point.n, point.k);
  }
  return core::default_interaction_cap(point.n, point.k);
}

bool starts_at_consensus(const pp::Configuration& x0) {
  for (int i = 0; i < x0.k(); ++i) {
    if (x0.opinion(i) == x0.n()) return true;
  }
  return false;
}

TrialOutcome run_one(const SweepSpec& spec, const SweepPoint& point,
                     const pp::Configuration& x0,
                     const PointTopology& topology, std::uint64_t seed) {
  const auto engine = sim::Registry::instance().create(
      point.engine, x0, seed, engine_options(spec, point, topology));
  TrialOutcome out;
  out.converged = engine->run_to_consensus(
      spec.max_time != 0 ? spec.max_time : engine->default_budget());
  out.parallel_time = engine->parallel_time();
  out.plurality_won =
      out.converged && engine->consensus_opinion() == x0.argmax();
  return out;
}

SweepCell aggregate_cell(const SweepSpec& spec, const SweepPoint& point,
                         const std::vector<TrialOutcome>& outcomes,
                         double wall_seconds) {
  SweepCell cell;
  cell.point = point;
  cell.bias_kind = spec.bias_kind;
  cell.trials = spec.trials;
  cell.parallel_time.reserve(outcomes.size());
  int converged = 0, won = 0;
  for (const auto& o : outcomes) {
    cell.parallel_time.add(o.parallel_time);
    converged += o.converged ? 1 : 0;
    won += o.plurality_won ? 1 : 0;
  }
  const double denom = outcomes.empty() ? 1.0 : static_cast<double>(
                                                    outcomes.size());
  cell.converged_rate = static_cast<double>(converged) / denom;
  cell.plurality_win_rate = static_cast<double>(won) / denom;
  cell.wall_seconds = wall_seconds;
  return cell;
}

/// One stripe of a cell's trial batch through the engine's lockstep
/// kernel (EngineInfo::lockstep): trials [begin, end) with exactly the
/// per-trial seeds the scalar path would derive, outcomes written into
/// the stripe's slots. Because the kernel is per-stream bit-identical to
/// the single-trial engine, the stripe decomposition is invisible in the
/// output — the same cell bytes at every stripe width and thread count.
/// (Under LockstepSchedule::kShared the caller passes the whole cell as
/// one stripe: a shared controller is a joint function of its cohort, so
/// splitting it would change results.)
void run_lockstep_stripe(const SweepSpec& spec, const SweepPoint& point,
                         const pp::Configuration& x0,
                         const PointTopology& topology,
                         std::uint64_t point_seed, const sim::EngineInfo& info,
                         std::size_t begin, std::size_t end,
                         std::span<TrialOutcome> outcomes) {
  std::vector<std::uint64_t> seeds(end - begin);
  for (std::size_t t = begin; t < end; ++t) {
    seeds[t - begin] = rng::stream_seed(point_seed, t);
  }
  const auto results =
      info.lockstep(x0, seeds, engine_options(spec, point, topology),
                    trial_budget(spec, point));
  const int plurality = x0.argmax();
  for (std::size_t j = 0; j < results.size(); ++j) {
    TrialOutcome& out = outcomes[begin + j];
    out.parallel_time = results[j].parallel_time;
    out.converged = results[j].converged;
    out.plurality_won = results[j].converged && results[j].winner == plurality;
  }
}

/// Per-point execution state, initialized by whichever worker claims the
/// point's first stripe (std::call_once) and read-only to every later
/// stripe; the outcome slots are written stripe-disjointly.
struct PointState {
  std::once_flag once;
  std::optional<pp::Configuration> x0;
  PointTopology topology;
  std::uint64_t point_seed = 0;
  const sim::EngineInfo* info = nullptr;
  /// Route stripes through the engine's batch kernel.
  bool lockstep = false;
  /// Disconnected under the default budget: outcomes pre-filled with
  /// timeouts at init, stripes no-op.
  bool short_circuit = false;
  std::vector<TrialOutcome> outcomes;
  util::Stopwatch watch;
};

}  // namespace

Sweep::Sweep(SweepSpec spec) : spec_(std::move(spec)) {
  KUSD_CHECK_MSG(spec_.trials >= 0, "sweep: negative trial count");
  KUSD_CHECK_MSG(!spec_.ns.empty() && !spec_.ks.empty() &&
                     !spec_.starts.empty() && !spec_.bias_values.empty() &&
                     !spec_.engines.empty() && !spec_.graphs.empty(),
                 "sweep: every axis needs at least one value");
  KUSD_CHECK_MSG(
      spec_.undecided_fraction >= 0.0 && spec_.undecided_fraction < 1.0,
      "sweep: undecided fraction must be in [0, 1)");
  KUSD_CHECK_MSG(spec_.stripe_width >= 1,
                 "sweep: stripe_width must be at least 1");
  // Engine constraints come from registry metadata, so the sweep needs no
  // per-engine knowledge. Fail the whole sweep upfront rather than
  // aborting mid-grid after other points already streamed.
  const auto& registry = sim::Registry::instance();
  bool any_graph_engine = false;
  for (const auto& name : spec_.engines) {
    const sim::EngineInfo* info = registry.find(name);
    KUSD_CHECK_MSG(info != nullptr,
                   "sweep: unknown engine '" + name +
                       "' (registered: " + registry.names_joined() + ")");
    any_graph_engine = any_graph_engine || info->uses_graph_axis;
    KUSD_CHECK_MSG(!info->requires_decided_start ||
                       spec_.undecided_fraction == 0.0,
                   "sweep: engine '" + name +
                       "' starts fully decided (undecided fraction must "
                       "be 0)");
    if (info->max_n != 0) {
      for (const auto n : spec_.ns) {
        KUSD_CHECK_MSG(n <= info->max_n,
                       "sweep: engine '" + name + "' caps n at " +
                           std::to_string(info->max_n));
      }
    }
    KUSD_CHECK_MSG(!info->uses_chunk_options ||
                       (spec_.batch_chunk_fraction > 0.0 &&
                        spec_.batch_chunk_fraction <= 1.0),
                   "sweep: batched chunk fraction must be in (0, 1]");
  }
  KUSD_CHECK_MSG(
      any_graph_engine ||
          spec_.graphs == std::vector<sim::GraphSpec>{sim::GraphSpec{}},
      "sweep: the graph axis requires a topology-taking engine "
      "(--engine graph or graph-batched)");
  for (const auto& graph : spec_.graphs) {
    if (graph.kind == sim::GraphSpec::Kind::kRegular && any_graph_engine) {
      for (const auto n : spec_.ns) {
        KUSD_CHECK_MSG(graph.degree >= 1 &&
                           static_cast<pp::Count>(graph.degree) < n,
                       "sweep: regular:<d> needs 1 <= d < n");
        KUSD_CHECK_MSG(
            (n * static_cast<pp::Count>(graph.degree)) % 2 == 0,
            "sweep: regular:<d> needs n * d even at every n of the grid");
      }
    }
    KUSD_CHECK_MSG(graph.kind != sim::GraphSpec::Kind::kErdosRenyi ||
                       graph.edge_probability == 0.0 ||
                       (graph.edge_probability > 0.0 &&
                        graph.edge_probability <= 1.0),
                   "sweep: er:<p> needs p in (0, 1] or er:auto");
  }
  for (const auto& start : spec_.starts) {
    if (start.kind == StartProfile::Kind::kGeometric) {
      KUSD_CHECK_MSG(start.ratio > 0.0 && start.ratio <= 1.0,
                     "sweep: geometric start ratio must be in (0, 1]");
      KUSD_CHECK_MSG(spec_.bias_kind == BiasKind::kNone,
                     "sweep: geometric starts define their own support "
                     "shape and exclude a bias axis");
    }
  }
  for (const double bias : spec_.bias_values) {
    switch (spec_.bias_kind) {
      case BiasKind::kNone:
        break;
      case BiasKind::kAdditive:
        // beta is an agent count: casting a negative/huge double to
        // pp::Count in build_config would be UB.
        KUSD_CHECK_MSG(bias >= 0.0 && bias <= 1e18 &&
                           bias == std::floor(bias),
                       "sweep: additive beta must be a non-negative count");
        break;
      case BiasKind::kMultiplicative:
        KUSD_CHECK_MSG(std::isfinite(bias) && bias > 1.0,
                       "sweep: multiplicative alpha must exceed 1");
        break;
    }
  }
  // Construct every grid point's initial configuration once now, so any
  // infeasible (n, k, start, bias) combination (e.g. beta exceeding the
  // decided agents of the smallest n) fails here instead of mid-grid.
  for (const auto& point : grid()) {
    const auto config = build_config(spec_, point);
    // Configuration itself allows decided == 0, but no engine converges
    // from it (an undecided fraction can round up to the whole population
    // at small n).
    KUSD_CHECK_MSG(config.decided() >= 1,
                   "sweep: undecided fraction leaves no decided agents at "
                   "n = " + std::to_string(point.n));
  }
}

std::vector<SweepPoint> Sweep::grid() const {
  // With no bias, the bias axis is a single implicit point — listing
  // several values would just duplicate work. Likewise the graph axis
  // multiplies only engines that take a topology.
  const std::size_t bias_points =
      spec_.bias_kind == BiasKind::kNone ? 1 : spec_.bias_values.size();
  const auto& registry = sim::Registry::instance();
  std::vector<SweepPoint> points;
  std::size_t index = 0;
  for (const auto& engine : spec_.engines) {
    const sim::EngineInfo* info = registry.find(engine);
    const bool graph_axis = info != nullptr && info->uses_graph_axis;
    const std::size_t graph_points = graph_axis ? spec_.graphs.size() : 1;
    for (std::size_t g = 0; g < graph_points; ++g) {
      for (const auto n : spec_.ns) {
        for (const auto k : spec_.ks) {
          for (const auto& start : spec_.starts) {
            for (std::size_t b = 0; b < bias_points; ++b) {
              const double bias = spec_.bias_kind == BiasKind::kNone
                                      ? 0.0
                                      : spec_.bias_values[b];
              points.push_back(SweepPoint{
                  engine,
                  graph_axis ? std::optional<sim::GraphSpec>(spec_.graphs[g])
                             : std::nullopt,
                  n, k, start, bias, index++});
            }
          }
        }
      }
    }
  }
  return points;
}

SweepCell Sweep::run_point(const SweepPoint& point) const {
  util::ThreadPool pool(spec_.threads);
  return run_point(pool, point);
}

SweepCell Sweep::run_point(util::ThreadPool& pool,
                           const SweepPoint& point) const {
  // The single-point form goes through the same task-graph path as whole
  // grids — one code path is what keeps cell bytes identical everywhere.
  std::optional<SweepCell> cell;
  run_points_on(pool, {point},
                [&cell](const SweepCell& c) { cell = c; });
  return *std::move(cell);
}

void Sweep::run(const std::function<void(const SweepCell&)>& on_cell) const {
  // One pool for the whole grid: workers are not respawned per point.
  util::ThreadPool pool(spec_.threads);
  run_points_on(pool, grid(), on_cell);
}

void Sweep::run_selected(
    const std::vector<std::size_t>& indices,
    const std::function<void(const SweepCell&)>& on_cell) const {
  const auto all = grid();
  std::vector<SweepPoint> points;
  points.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    KUSD_CHECK_MSG(indices[i] < all.size(),
                   "sweep: selected grid index out of range");
    KUSD_CHECK_MSG(i == 0 || indices[i] > indices[i - 1],
                   "sweep: selected grid indices must be strictly increasing");
    points.push_back(all[indices[i]]);
  }
  util::ThreadPool pool(spec_.threads);
  run_points_on(pool, points, on_cell);
}

void Sweep::run_points_on(
    util::ThreadPool& pool, const std::vector<SweepPoint>& points,
    const std::function<void(const SweepCell&)>& on_cell) const {
  if (points.empty()) return;
  const auto& registry = sim::Registry::instance();
  const auto trials = static_cast<std::size_t>(spec_.trials);
  const std::size_t width = spec_.stripe_width;
  const auto stripes_per_point = static_cast<std::uint32_t>(
      trials == 0 ? 1 : (trials + width - 1) / width);

  // Stripe counts are a pure function of the spec — never of realized
  // topology or results — so the unit list is deterministic. A point
  // whose lockstep schedule shares one controller across the cohort
  // (LockstepSchedule::kShared) collapses to a single whole-cell unit.
  std::vector<std::uint32_t> stripes(points.size(), stripes_per_point);
  std::vector<char> whole_cell(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const sim::EngineInfo* info = registry.find(points[i].engine);
    const bool lockstep = info != nullptr && info->supports_lockstep &&
                          static_cast<bool>(info->lockstep);
    if (lockstep &&
        spec_.lockstep_schedule == core::LockstepSchedule::kShared) {
      stripes[i] = 1;
      whole_cell[i] = 1;
    }
  }

  std::vector<std::size_t> order;
  if (spec_.shuffle_points) {
    // The execution order is itself a seeded derivation (the all-ones
    // stream id cannot collide with a grid index), so shuffled sweeps are
    // as reproducible as ordered ones — and output order is unaffected:
    // emission below is by list position, not completion order.
    order.resize(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng::Rng shuffle_rng(
        rng::stream_seed(spec_.master_seed, ~std::uint64_t{0}));
    shuffle_rng.shuffle(std::span<std::size_t>(order));
  }

  const TaskGraph graph(std::move(stripes), std::move(order));
  const auto states = std::make_unique<PointState[]>(points.size());

  const auto init_point = [&](const SweepPoint& point, PointState& st) {
    st.watch.reset();
    st.point_seed = rng::stream_seed(spec_.master_seed, point.index);
    st.topology = realize_topology(point, st.point_seed);
    st.x0 = build_config(spec_, point);
    st.info = registry.find(point.engine);
    st.outcomes.resize(trials);
    if (st.topology.connected.has_value() && !*st.topology.connected &&
        spec_.max_time == 0 && !starts_at_consensus(*st.x0)) {
      // Disconnected topology under the *default* budget: global
      // consensus needs every component (including each isolated vertex)
      // to align by coincidence, so most trials would grind through the
      // enormous default cap — the de-facto hang this guard exists for.
      // Record the trials as timeouts at that cap instead of simulating.
      // An explicit --budget bounds the cost the user signed up for, so
      // those sweeps run honestly and *measure* the coincidental-
      // consensus rate rather than hardcoding it to zero.
      TrialOutcome out;
      out.parallel_time = static_cast<double>(trial_budget(spec_, point)) /
                          static_cast<double>(point.n);
      std::fill(st.outcomes.begin(), st.outcomes.end(), out);
      st.short_circuit = true;
      return;
    }
    st.lockstep = st.info != nullptr && st.info->supports_lockstep &&
                  static_cast<bool>(st.info->lockstep);
  };

  const auto run_stripe = [&](const TaskUnit& unit) {
    const SweepPoint& point = points[unit.item];
    PointState& st = states[unit.item];
    std::call_once(st.once, [&] { init_point(point, st); });
    if (st.short_circuit || trials == 0) return;
    const std::size_t begin =
        whole_cell[unit.item] ? 0 : unit.stripe * width;
    const std::size_t end =
        whole_cell[unit.item] ? trials : std::min(begin + width, trials);
    if (st.lockstep) {
      run_lockstep_stripe(spec_, point, *st.x0, st.topology, st.point_seed,
                          *st.info, begin, end,
                          std::span<TrialOutcome>(st.outcomes));
    } else {
      for (std::size_t t = begin; t < end; ++t) {
        st.outcomes[t] = run_one(spec_, point, *st.x0, st.topology,
                                 rng::stream_seed(st.point_seed, t));
      }
    }
  };

  // Completed cells are buffered and the contiguous done prefix is
  // emitted under the mutex (so the callback never runs concurrently
  // with itself): output order and content are those of a sequential
  // run, byte for byte, at any thread count and stripe width.
  std::mutex mu;
  std::vector<std::optional<SweepCell>> done(points.size());
  std::size_t next_emit = 0;
  const auto on_point_done = [&](std::size_t item) {
    PointState& st = states[item];
    auto cell =
        aggregate_cell(spec_, points[item], st.outcomes, st.watch.seconds());
    cell.graph_edges = st.topology.edges;
    cell.connected = st.topology.connected;
    if (st.short_circuit) cell.status = "timeout";
    // Drop the point's working set before buffering the cell: on wide
    // grids the emission buffer would otherwise pin every outcome vector
    // until its cell reaches the front of the done prefix.
    st.outcomes = std::vector<TrialOutcome>();
    st.x0.reset();

    const std::lock_guard<std::mutex> lock(mu);
    done[item] = std::move(cell);
    while (next_emit < done.size() && done[next_emit].has_value()) {
      // Consume the slot before invoking the callback: if on_cell throws
      // (the exception resurfaces from TaskGraph::run), later items must
      // not re-emit the same cell.
      const SweepCell next = *std::move(done[next_emit]);
      done[next_emit].reset();
      ++next_emit;
      on_cell(next);
    }
  };

  graph.run(pool, run_stripe, on_point_done);
}

std::vector<std::string> Sweep::csv_header() {
  return {"engine",
          "graph",
          "graph_edges",
          "connected",
          "n",
          "k",
          "start",
          "bias_kind",
          "bias",
          "trials",
          "status",
          "converged_rate",
          "plurality_win_rate",
          "pt_mean",
          "pt_stddev",
          "pt_median",
          "pt_p95"};
}

std::vector<std::string> Sweep::csv_row(const SweepCell& cell) {
  const auto& pt = cell.parallel_time;
  return {cell.point.engine,
          cell.point.graph.has_value() ? sim::to_string(*cell.point.graph)
                                       : "-",
          cell.graph_edges.has_value() ? std::to_string(*cell.graph_edges)
                                       : "-",
          cell.connected.has_value() ? (*cell.connected ? "1" : "0") : "-",
          std::to_string(cell.point.n),
          std::to_string(cell.point.k),
          to_string(cell.point.start),
          to_string(cell.bias_kind),
          fmt(cell.point.bias, 6),
          std::to_string(cell.trials),
          cell.status,
          fmt(cell.converged_rate, 4),
          fmt(cell.plurality_win_rate, 4),
          fmt(pt.empty() ? 0.0 : pt.mean(), 4),
          fmt(pt.empty() ? 0.0 : pt.stddev(), 4),
          fmt(pt.empty() ? 0.0 : pt.median(), 4),
          fmt(pt.empty() ? 0.0 : pt.quantile(0.95), 4)};
}

std::string Sweep::json_line(const SweepCell& cell) {
  return json_line(csv_row(cell));
}

std::string Sweep::json_line(const std::vector<std::string>& row) {
  const auto header = csv_header();
  KUSD_CHECK_MSG(row.size() == header.size(),
                 "sweep: json_line row width does not match the schema");
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << header[i] << "\":";
    // engine, graph, start, bias_kind and status are name spellings;
    // graph_edges and connected are numeric when present and null for
    // engines without a graph axis (CSV spells that "-"); everything
    // else is numeric.
    if (header[i] == "engine" || header[i] == "graph" ||
        header[i] == "start" || header[i] == "bias_kind" ||
        header[i] == "status") {
      os << '"' << row[i] << '"';
    } else if ((header[i] == "graph_edges" || header[i] == "connected") &&
               row[i] == "-") {
      os << "null";
    } else {
      os << row[i];
    }
  }
  os << '}';
  return os.str();
}

}  // namespace kusd::runner
