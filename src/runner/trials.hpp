// Parallel Monte-Carlo trial runner.
//
// Every trial gets a deterministic, independent seed derived from
// (master_seed, trial_index), so experiment output is reproducible
// regardless of thread scheduling or thread count: results are collected
// by index.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace kusd::runner {

/// Run `trials` independent invocations of fn(seed) on an existing (idle)
/// pool and return the results of type T in trial order. Rejects negative
/// `trials`. Trials are striped over a bounded number of pool tasks, each
/// holding `fn` by reference, so the callable is never type-erased or
/// copied — a lambda with a fat capture list costs the same as a function
/// pointer, and the per-trial call inlines. If a trial throws, the first
/// exception propagates out (remaining trials in other stripes still run;
/// the result vector is abandoned).
template <typename T, typename Fn>
std::vector<T> run_trials(util::ThreadPool& pool, int trials,
                          std::uint64_t master_seed, Fn&& fn) {
  KUSD_CHECK_MSG(trials >= 0, "run_trials: negative trial count");
  std::vector<T> results(static_cast<std::size_t>(trials));
  if (trials == 0) return results;
  // A few stripes per worker keeps load balanced when trial costs vary
  // without paying one queue entry per trial.
  const int stripes = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(trials), 4 * pool.num_threads()));
  for (int s = 0; s < stripes; ++s) {
    pool.submit([&results, &fn, master_seed, s, stripes, trials] {
      for (int i = s; i < trials; i += stripes) {
        results[static_cast<std::size_t>(i)] =
            fn(rng::stream_seed(master_seed, static_cast<std::uint64_t>(i)));
      }
    });
  }
  pool.wait_idle();
  return results;
}

/// Same, with a pool of `threads` workers created for this batch.
template <typename T, typename Fn>
std::vector<T> run_trials(int trials, std::uint64_t master_seed, Fn&& fn,
                          std::size_t threads = 0) {
  KUSD_CHECK_MSG(trials >= 0, "run_trials: negative trial count");
  util::ThreadPool pool(threads);
  return run_trials<T>(pool, trials, master_seed, std::forward<Fn>(fn));
}

/// Convenience wrapper: run trials producing a double metric and collect
/// them into a Samples.
stats::Samples run_trials_samples(
    int trials, std::uint64_t master_seed,
    const std::function<double(std::uint64_t)>& fn, std::size_t threads = 0);

}  // namespace kusd::runner
