// Parallel Monte-Carlo trial runner.
//
// Every trial gets a deterministic, independent seed derived from
// (master_seed, trial_index), so experiment output is reproducible
// regardless of thread scheduling: results are collected by index.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rng/rng.hpp"
#include "stats/summary.hpp"
#include "util/thread_pool.hpp"

namespace kusd::runner {

/// Run `trials` independent invocations of fn(seed) in parallel and return
/// the results in trial order.
template <typename T>
std::vector<T> run_trials(int trials, std::uint64_t master_seed,
                          const std::function<T(std::uint64_t)>& fn,
                          std::size_t threads = 0) {
  std::vector<T> results(static_cast<std::size_t>(trials));
  util::ThreadPool pool(threads);
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t seed =
        rng::derive_stream(master_seed, static_cast<std::uint64_t>(i));
    pool.submit([&results, &fn, i, seed] {
      results[static_cast<std::size_t>(i)] = fn(seed);
    });
  }
  pool.wait_idle();
  return results;
}

/// Convenience wrapper: run trials producing a double metric and collect
/// them into a Samples.
stats::Samples run_trials_samples(
    int trials, std::uint64_t master_seed,
    const std::function<double(std::uint64_t)>& fn, std::size_t threads = 0);

}  // namespace kusd::runner
