// Parallel Monte-Carlo trial runner.
//
// Every trial gets a deterministic, independent seed derived from
// (master_seed, trial_index), so experiment output is reproducible
// regardless of thread scheduling or thread count: results are collected
// by index.
//
// The batch runs as a one-item TaskGraph whose stripes are *contiguous*
// trial ranges pulled by workers from a shared cursor — the same stripe
// decomposition runner::Sweep uses for its (point, stripe) units, so a
// stripe [begin, end) maps 1:1 onto a lockstep batch-kernel cohort with
// the same seeds. Striping is pure scheduling: seeds depend only on the
// trial index, never the stripe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "rng/rng.hpp"
#include "runner/task_graph.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace kusd::runner {

/// Run `trials` independent invocations of fn(seed) on an existing (idle)
/// pool and return the results of type T in trial order. Rejects negative
/// `trials`. Trials are striped over a bounded number of work units, each
/// holding `fn` by reference, so the callable is never type-erased or
/// copied — a lambda with a fat capture list costs the same as a function
/// pointer, and the per-trial call inlines. If a trial throws, the first
/// exception propagates out (workers stop claiming new stripes; the
/// result vector is abandoned).
template <typename T, typename Fn>
std::vector<T> run_trials(util::ThreadPool& pool, int trials,
                          std::uint64_t master_seed, Fn&& fn) {
  KUSD_CHECK_MSG(trials >= 0, "run_trials: negative trial count");
  std::vector<T> results(static_cast<std::size_t>(trials));
  if (trials == 0) return results;
  // A few stripes per worker keeps load balanced when trial costs vary
  // without paying one queue entry per trial.
  const auto n = static_cast<std::size_t>(trials);
  const std::size_t stripes = std::min(n, 4 * pool.num_threads());
  const TaskGraph graph({static_cast<std::uint32_t>(stripes)});
  graph.run(
      pool,
      [&results, &fn, master_seed, n, stripes](const TaskUnit& unit) {
        // Even contiguous partition of [0, n): stripe s owns
        // [s*n/stripes, (s+1)*n/stripes).
        const std::size_t begin = unit.stripe * n / stripes;
        const std::size_t end = (unit.stripe + 1) * n / stripes;
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = fn(rng::stream_seed(master_seed, i));
        }
      },
      [](std::size_t) {});
  return results;
}

/// Same, with a pool of `threads` workers created for this batch.
template <typename T, typename Fn>
std::vector<T> run_trials(int trials, std::uint64_t master_seed, Fn&& fn,
                          std::size_t threads = 0) {
  KUSD_CHECK_MSG(trials >= 0, "run_trials: negative trial count");
  util::ThreadPool pool(threads);
  return run_trials<T>(pool, trials, master_seed, std::forward<Fn>(fn));
}

/// Convenience wrapper: run trials producing a double metric and collect
/// them into a Samples.
stats::Samples run_trials_samples(
    int trials, std::uint64_t master_seed,
    const std::function<double(std::uint64_t)>& fn, std::size_t threads = 0);

}  // namespace kusd::runner
