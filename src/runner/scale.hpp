// Environment-controlled experiment scaling.
//
// All benches honor REPRO_SCALE (default 1.0): population sizes and trial
// counts are multiplied by it, so `REPRO_SCALE=4 ./bench_phases` runs the
// paper-scale version and `REPRO_SCALE=0.25 ...` a smoke-test version.
#pragma once

#include <cstdint>

namespace kusd::runner {

/// Value of REPRO_SCALE clamped to [0.05, 64]; 1.0 when unset or invalid.
[[nodiscard]] double repro_scale();

/// base * REPRO_SCALE, at least `min_value`.
[[nodiscard]] std::uint64_t scaled(std::uint64_t base,
                                   std::uint64_t min_value = 1);

/// Trial count scaled by sqrt(REPRO_SCALE) (statistics need fewer extra
/// trials than sizes), at least `min_trials`.
[[nodiscard]] int scaled_trials(int base, int min_trials = 4);

}  // namespace kusd::runner
