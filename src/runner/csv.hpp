// CSV export so the benches' series can be re-plotted downstream.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "pp/trajectory.hpp"

namespace kusd::runner {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);

  /// Push buffered rows to disk — call after each row when a long run's
  /// partial output must survive interruption.
  void flush() { out_.flush(); }

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  void write_cells(const std::vector<std::string>& cells);
  std::ofstream out_;
  std::size_t width_;
};

/// Write a recorded trajectory as t, undecided, xmax, second, sum_squares
/// rows. Lives here rather than on pp::Trajectory so the pp layer does not
/// depend upward on runner's CSV machinery.
void write_trajectory_csv(const pp::Trajectory& trajectory,
                          const std::string& path);

}  // namespace kusd::runner
