#include "runner/csv.hpp"

#include "util/check.hpp"

namespace kusd::runner {

namespace {
// RFC 4180 quoting: cells containing separators, quotes, or line breaks
// (\n or \r — bare CR also breaks naive readers) are wrapped in double
// quotes with embedded quotes doubled.
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  KUSD_CHECK_MSG(out_.good(), "cannot open CSV output file: " + path);
  write_cells(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  KUSD_CHECK_MSG(cells.size() == width_, "CSV row width mismatch");
  write_cells(cells);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace kusd::runner
