#include "runner/csv.hpp"

#include "pp/trajectory.hpp"
#include "util/check.hpp"

namespace kusd::runner {

namespace {
// RFC 4180 quoting: cells containing separators, quotes, or line breaks
// (\n or \r — bare CR also breaks naive readers) are wrapped in double
// quotes with embedded quotes doubled.
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  KUSD_CHECK_MSG(out_.good(), "cannot open CSV output file: " + path);
  write_cells(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  KUSD_CHECK_MSG(cells.size() == width_, "CSV row width mismatch");
  write_cells(cells);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void write_trajectory_csv(const pp::Trajectory& trajectory,
                          const std::string& path) {
  CsvWriter csv(path, {"t", "undecided", "xmax", "second", "sum_squares"});
  for (const auto& pt : trajectory.points()) {
    csv.write_row({std::to_string(pt.t), std::to_string(pt.undecided),
                   std::to_string(pt.xmax), std::to_string(pt.second),
                   std::to_string(pt.sum_squares)});
  }
}

}  // namespace kusd::runner
