// Grid sweeps over (engine, graph, n, k, start, bias): the experiment
// driver behind `kusd sweep`.
//
// A Sweep expands a SweepSpec into the cartesian grid of its axes and runs
// every grid point as a Monte-Carlo batch. Engines are sim::Registry
// names, resolved per trial through the registry — the sweep has no
// per-engine dispatch of its own, so a newly registered engine is
// sweepable with no changes here. The `graphs` axis applies to engines
// that take a topology (EngineInfo::uses_graph_axis); for such engines
// the topology is realized once per grid point from a deterministic
// stream and shared read-only across the point's trials — as a
// materialized pp::InteractionGraph for per-edge engines ("graph"), or as
// a pp::DegreeClassModel for aggregated engines ("graph-batched",
// EngineInfo::aggregated_topology), which never build an edge set and so
// sweep n far beyond materializable sizes.
//
// Topology summary columns. Each graph-axis point also records what was
// realized: `graph_edges` (measured edge count, or the aggregated
// model's expected count) and `connected` (BFS-measured, or "no isolated
// vertices" for aggregated models — the only disconnection an annealed
// model can express). On a disconnected realization global consensus
// needs every component to align by coincidence, so most trials run to
// their cap — under the *default* budgets (max_time == 0, tuned for
// connected complete-graph dynamics) that is a de-facto hang, and the
// sweep short-circuits the point: every trial is recorded as a timeout
// at the default cap (status = "timeout", converged_rate 0, parallel
// time = cap / n) with `connected` = 0 documenting why. An explicit
// budget (max_time != 0) bounds the cost the user chose, so those
// points run honestly and *measure* the coincidental-consensus rate
// (status stays "ok"; read it against connected = 0). Points already at
// consensus at t = 0 are exempt from the short-circuit.
//
// Execution is one work-stealing task graph over (point, trial-stripe)
// units (runner::TaskGraph): each unit owns a fixed contiguous stripe of
// one grid point's trials, and pool workers pull units from a shared
// cursor, so a worker that drew a cheap point immediately steals stripes
// of an expensive one — mixed grids of small and large points keep the
// pool full without a mode switch. Seeds derive from (master_seed, point
// index, trial index) — never from the stripe — so the decomposition is
// pure scheduling: CSV/JSONL output is byte-identical at any thread
// count and stripe width. Two refinements:
//
//  * lockstep-capable engines (EngineInfo::supports_lockstep) route each
//    whole stripe through the batch kernel with exactly the per-trial
//    seeds the scalar path would use (the kernel is per-stream
//    bit-identical, so stripes are invisible in the output);
//  * under LockstepSchedule::kShared one controller drives the whole
//    cell's batch, so the point collapses to a single whole-cell unit —
//    splitting a shared-schedule cohort would change its results.
//
// shuffle_points randomizes the *execution* order of points
// (deterministically from master_seed) for early coverage of the grid;
// completed cells are buffered and emitted in grid order regardless, so
// output order and content never depend on scheduling. The per-point
// aggregate is handed to the callback as soon as it is next in grid
// order, so output appears incrementally during long sweeps.
//
// run_selected() runs an arbitrary increasing subset of grid indices —
// the substrate of the sweep service's `--shard i/N` partitioning and
// `--resume` journal replay (runner/sweep_service.hpp), which both rest
// on the same invariant: a cell's bytes are a pure function of
// (spec, master_seed, grid index).
//
// The comparable metric across engines is *parallel time*
// (sim::Engine::parallel_time): interactions/n for the asynchronous
// engines (every/skip/batched/graph) and rounds for the synchronous ones
// (sync counts re-adoption sub-rounds too).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/batched_usd.hpp"
#include "pp/configuration.hpp"
#include "sim/graph_spec.hpp"
#include "stats/summary.hpp"
#include "util/thread_pool.hpp"

namespace kusd::runner {

enum class BiasKind { kNone, kAdditive, kMultiplicative };

/// Initial-support profile axis: how the decided agents are distributed
/// over the k opinions before any bias is applied.
struct StartProfile {
  enum class Kind {
    kUniform,    ///< split as evenly as possible (the PR-2 behaviour)
    kGeometric,  ///< Configuration::geometric with the given ratio
  };
  Kind kind = Kind::kUniform;
  /// Ratio of the geometric profile, in (0, 1]; ignored for kUniform.
  double ratio = 1.0;

  bool operator==(const StartProfile&) const = default;
};

[[nodiscard]] const char* to_string(BiasKind kind);
/// CLI spelling of a start profile: "uniform" or "geometric:<ratio>".
[[nodiscard]] std::string to_string(const StartProfile& start);
/// Parse "uniform" or "geometric:<ratio>" (ratio required, in (0, 1]).
[[nodiscard]] std::optional<StartProfile> parse_start_profile(
    const std::string& name);

struct SweepSpec {
  std::vector<pp::Count> ns = {100000};
  std::vector<int> ks = {8};
  /// Start-profile axis (geometric profiles require BiasKind::kNone: the
  /// bias factories build their own support shapes).
  std::vector<StartProfile> starts = {StartProfile{}};
  BiasKind bias_kind = BiasKind::kNone;
  /// beta for kAdditive, alpha for kMultiplicative; ignored (single
  /// implicit point) for kNone.
  std::vector<double> bias_values = {0.0};
  /// sim::Registry engine names.
  std::vector<std::string> engines = {"skip"};
  /// Topology axis; multiplies only the engines that take a topology
  /// (EngineInfo::uses_graph_axis) — other engines contribute a single
  /// implicit point with "-" in the `graph` column.
  std::vector<sim::GraphSpec> graphs = {sim::GraphSpec{}};
  /// Fraction of agents starting undecided (sync requires 0).
  double undecided_fraction = 0.0;
  /// Per-trial cap in the engine's native time unit; 0 picks each
  /// engine's default budget. The defaults are tuned for complete-graph
  /// dynamics — slow-mixing topologies (e.g. `--graph cycle`) need an
  /// explicit, much larger budget to converge.
  std::uint64_t max_time = 0;
  int trials = 25;
  std::uint64_t master_seed = 1;
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Chunk fraction for the batched engine (ChunkPolicy::kFixed).
  double batch_chunk_fraction = core::BatchedOptions{}.chunk_fraction;
  /// Chunk policy for the batched engine.
  core::ChunkPolicy batch_policy = core::ChunkPolicy::kFixed;
  /// Schedule ownership of the batched-lockstep engine: per-trial
  /// controllers (bit-identical to the scalar engine) or one shared
  /// controller + uniform stream per cell (throughput mode, KS-gated).
  core::LockstepSchedule lockstep_schedule = core::LockstepSchedule::kPerTrial;
  /// Trials per (point, stripe) work unit — the work-stealing grain (see
  /// the file comment). Pure scheduling: output is byte-identical at any
  /// width. Small widths balance mixed grids better; width >= trials
  /// degenerates to one unit per point. Must be >= 1.
  std::size_t stripe_width = 8;
  /// Execute points in a deterministically shuffled order (early grid
  /// coverage). Output order and content are unaffected.
  bool shuffle_points = false;
};

struct SweepPoint {
  std::string engine;
  /// Topology of this point; nullopt for engines without a graph axis.
  std::optional<sim::GraphSpec> graph;
  pp::Count n = 0;
  int k = 0;
  StartProfile start;
  double bias = 0.0;
  /// Position in grid order; seeds the point's trial batch.
  std::size_t index = 0;
};

/// Aggregate of one grid point's trial batch.
struct SweepCell {
  SweepPoint point;
  BiasKind bias_kind = BiasKind::kNone;
  int trials = 0;
  /// Realized topology summary, computed once per point (nullopt for
  /// engines without a graph axis): the measured edge count and BFS
  /// connectivity for materialized topologies, the expected edge count
  /// and "no isolated vertices" for aggregated ones.
  std::optional<std::uint64_t> graph_edges;
  std::optional<bool> connected;
  /// "ok", or "timeout" when a disconnected topology short-circuited the
  /// point at the budget (see the file comment).
  std::string status = "ok";
  double converged_rate = 0.0;
  double plurality_win_rate = 0.0;
  /// Per-trial parallel time (see file comment for the per-engine unit).
  stats::Samples parallel_time;
  /// Wall-clock cost of this point. Progress information only — it is
  /// deliberately not part of the CSV/JSONL schema, which stays
  /// byte-deterministic for a given (spec, master_seed).
  double wall_seconds = 0.0;
};

class Sweep {
 public:
  explicit Sweep(SweepSpec spec);

  [[nodiscard]] const SweepSpec& spec() const { return spec_; }

  /// The grid in output order: engine-major, then graph, n, k, start,
  /// bias.
  [[nodiscard]] std::vector<SweepPoint> grid() const;

  /// Run one grid point (trials in parallel) and aggregate it. The second
  /// form reuses an existing worker pool, as run() does across the grid.
  [[nodiscard]] SweepCell run_point(const SweepPoint& point) const;
  [[nodiscard]] SweepCell run_point(util::ThreadPool& pool,
                                    const SweepPoint& point) const;

  /// Run the whole grid, streaming each cell in grid order (cells are
  /// buffered as needed; see the file comment). The callback is never
  /// invoked concurrently with itself.
  void run(const std::function<void(const SweepCell&)>& on_cell) const;

  /// Run a subset of the grid — `indices` must be strictly increasing
  /// grid indices — streaming cells in that order. Each cell's bytes
  /// match what run() would emit for the same index: the substrate of
  /// sharding and resume.
  void run_selected(const std::vector<std::size_t>& indices,
                    const std::function<void(const SweepCell&)>& on_cell) const;

  /// Output schema shared by the CSV and JSONL emitters.
  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] static std::vector<std::string> csv_row(const SweepCell& cell);
  [[nodiscard]] static std::string json_line(const SweepCell& cell);
  /// JSONL from an already-formatted csv_row (the journal replay path:
  /// resumed cells re-emit from recorded fields, not recomputation).
  [[nodiscard]] static std::string json_line(
      const std::vector<std::string>& row);

 private:
  /// Shared execution core: the task graph over (point, stripe) units,
  /// with in-order emission. Every public run path funnels through here.
  void run_points_on(util::ThreadPool& pool,
                     const std::vector<SweepPoint>& points,
                     const std::function<void(const SweepCell&)>& on_cell)
      const;

  SweepSpec spec_;
};

}  // namespace kusd::runner
