// Grid sweeps over (engine, n, k, bias): the experiment driver behind
// `kusd sweep`.
//
// A Sweep expands a SweepSpec into the cartesian grid of its axes and runs
// every grid point as a parallel Monte-Carlo batch (run_trials). Results
// stream: the per-point aggregate is handed to a callback as soon as the
// point completes, so CSV/JSONL output appears incrementally during long
// sweeps instead of after them. All randomness is derived from
// (master_seed, point index, trial index), making sweeps bit-reproducible
// regardless of thread count.
//
// The comparable metric across engines is *parallel time*: interactions/n
// for the asynchronous engines (every/skip/batched) and rounds for the
// synchronous ones (sync counts re-adoption sub-rounds too).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/batched_usd.hpp"
#include "pp/configuration.hpp"
#include "stats/summary.hpp"
#include "util/thread_pool.hpp"

namespace kusd::runner {

/// Simulation engine axis of a sweep.
enum class SweepEngine {
  kEveryInteraction,  ///< UsdSimulator, exact, Θ(1) work per interaction
  kSkipUnproductive,  ///< UsdSimulator with geometric unproductive skips
  kBatchedRounds,     ///< BatchedUsdSimulator (chunked tau-leap, O(k)/chunk)
  kSynchronized,      ///< SyncUsd round model (exact, O(k)/round)
  kGossip,            ///< GossipUsd round model (exact, O(k)/round)
};

enum class BiasKind { kNone, kAdditive, kMultiplicative };

[[nodiscard]] const char* to_string(SweepEngine engine);
[[nodiscard]] const char* to_string(BiasKind kind);
/// Parse the CLI spelling ("every", "skip", "batched", "sync", "gossip").
[[nodiscard]] std::optional<SweepEngine> parse_engine(const std::string& name);

struct SweepSpec {
  std::vector<pp::Count> ns = {100000};
  std::vector<int> ks = {8};
  BiasKind bias_kind = BiasKind::kNone;
  /// beta for kAdditive, alpha for kMultiplicative; ignored (single
  /// implicit point) for kNone.
  std::vector<double> bias_values = {0.0};
  std::vector<SweepEngine> engines = {SweepEngine::kSkipUnproductive};
  /// Fraction of agents starting undecided (kSynchronized requires 0).
  double undecided_fraction = 0.0;
  int trials = 25;
  std::uint64_t master_seed = 1;
  /// Worker threads per grid point (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Chunk fraction for kBatchedRounds.
  double batch_chunk_fraction = core::BatchedOptions{}.chunk_fraction;
};

struct SweepPoint {
  SweepEngine engine;
  pp::Count n;
  int k;
  double bias;
  /// Position in grid order; seeds the point's trial batch.
  std::size_t index;
};

/// Aggregate of one grid point's trial batch.
struct SweepCell {
  SweepPoint point;
  BiasKind bias_kind;
  int trials;
  double converged_rate;
  double plurality_win_rate;
  /// Per-trial parallel time (see file comment for the per-engine unit).
  stats::Samples parallel_time;
  double wall_seconds;
};

class Sweep {
 public:
  explicit Sweep(SweepSpec spec);

  [[nodiscard]] const SweepSpec& spec() const { return spec_; }

  /// The grid in execution order: engine-major, then n, k, bias.
  [[nodiscard]] std::vector<SweepPoint> grid() const;

  /// Run one grid point (trials in parallel) and aggregate it. The second
  /// form reuses an existing worker pool, as run() does across the grid.
  [[nodiscard]] SweepCell run_point(const SweepPoint& point) const;
  [[nodiscard]] SweepCell run_point(util::ThreadPool& pool,
                                    const SweepPoint& point) const;

  /// Run the whole grid in order, streaming each completed cell.
  void run(const std::function<void(const SweepCell&)>& on_cell) const;

  /// Output schema shared by the CSV and JSONL emitters.
  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] static std::vector<std::string> csv_row(const SweepCell& cell);
  [[nodiscard]] static std::string json_line(const SweepCell& cell);

 private:
  SweepSpec spec_;
};

}  // namespace kusd::runner
