#include "runner/sweep_service.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <memory>
#include <string_view>
#include <utility>

#include "sim/registry.hpp"
#include "util/check.hpp"

namespace kusd::runner {

namespace {

/// Every service defect throws the repo-wide check error so callers and
/// tests have one exception type to catch; the message is the diagnostic.
[[noreturn]] void fail(const std::string& message) {
  throw util::CheckError(message);
}

// ---------------------------------------------------------------------------
// FNV-1a 64 over a canonical serialization: the digest and the per-row
// checksum share one accumulator so both are stable, documented values.

class Fnv64 {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ = (hash_ ^ p[i]) * 1099511628211ULL;
    }
  }
  void u64(std::uint64_t value) {
    unsigned char raw[8];
    for (int i = 0; i < 8; ++i) {
      raw[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    bytes(raw, sizeof raw);
  }
  /// Length-prefixed, so field boundaries can't alias ("ab","c" never
  /// hashes like "a","bc").
  void str(std::string_view text) {
    u64(text.size());
    bytes(text.data(), text.size());
  }
  /// Shortest round-trip spelling — the canonical form of a double.
  void real(double value) {
    char buffer[32];
    const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
    str(std::string_view(buffer, static_cast<std::size_t>(
                                     result.ptr - buffer)));
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;
};

std::string to_hex16(std::uint64_t value) {
  char buffer[17];
  for (int i = 15; i >= 0; --i) {
    buffer[i] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  }
  return std::string(buffer, 16);
}

std::optional<std::uint64_t> parse_hex16(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

std::uint64_t row_checksum(const std::vector<std::string>& row) {
  Fnv64 fnv;
  fnv.u64(row.size());
  for (const auto& field : row) fnv.str(field);
  return fnv.value();
}

// ---------------------------------------------------------------------------
// Minimal strict JSON for the journal's two line shapes: flat objects
// whose values are unsigned integers, strings, or arrays of strings.
// Anything else — and any syntax error — is a loud failure carrying the
// line's context, because a journal defect must never be silently
// skipped.

struct JsonValue {
  enum class Kind { kNumber, kString, kArray };
  Kind kind = Kind::kNumber;
  std::uint64_t number = 0;
  std::string string;
  std::vector<std::string> array;
};

class LineParser {
 public:
  LineParser(std::string_view text, std::string context)
      : text_(text), context_(std::move(context)) {}

  std::map<std::string, JsonValue> parse_object() {
    std::map<std::string, JsonValue> object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      advance();
    } else {
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        JsonValue value = parse_value();
        if (!object.emplace(std::move(key), std::move(value)).second) {
          fail(context_ + ": duplicate key in JSON object");
        }
        skip_ws();
        const char c = next();
        if (c == '}') break;
        if (c != ',') fail(context_ + ": expected ',' or '}'");
      }
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail(context_ + ": trailing bytes after JSON object");
    }
    return object;
  }

 private:
  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail(context_ + ": truncated JSON line");
    return text_[pos_];
  }
  void advance() { ++pos_; }
  char next() {
    const char c = peek();
    advance();
    return c;
  }
  void expect(char wanted) {
    if (next() != wanted) {
      fail(context_ + ": expected '" + std::string(1, wanted) + '\'');
    }
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(context_ + ": raw control character in JSON string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = next();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(context_ + ": bad \\u escape");
            }
          }
          // The writer only emits \u00XX for control bytes; anything
          // beyond one byte is not ours.
          if (value > 0xFF) fail(context_ + ": unsupported \\u escape");
          out.push_back(static_cast<char>(value));
          break;
        }
        default:
          fail(context_ + ": bad escape in JSON string");
      }
    }
  }

  JsonValue parse_value() {
    JsonValue value;
    const char c = peek();
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (c == '[') {
      advance();
      value.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        advance();
        return value;
      }
      while (true) {
        skip_ws();
        value.array.push_back(parse_string());
        skip_ws();
        const char sep = next();
        if (sep == ']') return value;
        if (sep != ',') fail(context_ + ": expected ',' or ']'");
      }
    }
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      fail(context_ + ": expected a string, array or unsigned integer");
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    const std::string_view digits = text_.substr(start, pos_ - start);
    const auto result = std::from_chars(
        digits.data(), digits.data() + digits.size(), value.number);
    if (result.ec != std::errc{} ||
        result.ptr != digits.data() + digits.size()) {
      fail(context_ + ": integer out of range");
    }
    return value;
  }

  std::string_view text_;
  std::string context_;
  std::size_t pos_ = 0;
};

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Journal lines.

std::string header_line(const JournalHeader& header) {
  std::string line = "{\"kusd_journal\":1";
  line += ",\"digest\":\"" + to_hex16(header.digest) + '"';
  line += ",\"points_begin\":" + std::to_string(header.points_begin);
  line += ",\"points_end\":" + std::to_string(header.points_end);
  line += ",\"points_total\":" + std::to_string(header.points_total);
  line += ",\"shard_index\":" + std::to_string(header.shard.index);
  line += ",\"shard_count\":" + std::to_string(header.shard.count);
  line += ",\"trials\":" + std::to_string(header.trials);
  line += "}\n";
  return line;
}

std::string cell_line(std::size_t index, const std::vector<std::string>& row) {
  std::string line = "{\"cell\":" + std::to_string(index);
  line += ",\"crc\":\"" + to_hex16(row_checksum(row)) + '"';
  line += ",\"row\":[";
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line += ',';
    line += '"' + json_escape(row[i]) + '"';
  }
  line += "]}\n";
  return line;
}

const JsonValue& require(const std::map<std::string, JsonValue>& object,
                         const std::string& key, JsonValue::Kind kind,
                         const std::string& context) {
  const auto it = object.find(key);
  if (it == object.end()) fail(context + ": missing key \"" + key + '"');
  if (it->second.kind != kind) {
    fail(context + ": key \"" + key + "\" has the wrong type");
  }
  return it->second;
}

JournalHeader parse_header(const std::string& line,
                           const std::string& context) {
  auto object = LineParser(line, context).parse_object();
  if (require(object, "kusd_journal", JsonValue::Kind::kNumber, context)
          .number != 1) {
    fail(context + ": unsupported journal version");
  }
  JournalHeader header;
  const auto digest = parse_hex16(
      require(object, "digest", JsonValue::Kind::kString, context).string);
  if (!digest) fail(context + ": malformed digest");
  header.digest = *digest;
  const auto number = [&](const char* key) {
    return require(object, key, JsonValue::Kind::kNumber, context).number;
  };
  header.points_begin = static_cast<std::size_t>(number("points_begin"));
  header.points_end = static_cast<std::size_t>(number("points_end"));
  header.points_total = static_cast<std::size_t>(number("points_total"));
  header.shard.index = static_cast<std::size_t>(number("shard_index"));
  header.shard.count = static_cast<std::size_t>(number("shard_count"));
  const std::uint64_t trials = number("trials");
  if (trials > 1'000'000'000) fail(context + ": trials out of range");
  header.trials = static_cast<int>(trials);

  if (header.shard.count == 0 || header.shard.index >= header.shard.count) {
    fail(context + ": invalid shard coordinates");
  }
  if (header.points_begin > header.points_end ||
      header.points_end > header.points_total) {
    fail(context + ": invalid point range");
  }
  const auto canonical = shard_range(header.points_total, header.shard);
  if (header.points_begin != canonical.begin ||
      header.points_end != canonical.end) {
    fail(context + ": point range does not match the shard block formula");
  }
  return header;
}

/// RAII stdio handle: journals stay closed on every exit path, and
/// write failures surface as exceptions instead of silent truncation.
struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_all(std::FILE* file, const std::string& text,
               const std::string& path) {
  if (std::fwrite(text.data(), 1, text.size(), file) != text.size() ||
      std::fflush(file) != 0) {
    fail("journal: write to " + path + " failed");
  }
}

}  // namespace

std::optional<ShardSpec> parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= text.size()) {
    return std::nullopt;
  }
  const auto parse_part =
      [&](std::size_t begin, std::size_t end) -> std::optional<std::size_t> {
    std::uint64_t value = 0;
    const auto result =
        std::from_chars(text.data() + begin, text.data() + end, value);
    if (result.ec != std::errc{} || result.ptr != text.data() + end) {
      return std::nullopt;
    }
    return static_cast<std::size_t>(value);
  };
  const auto index = parse_part(0, slash);
  const auto count = parse_part(slash + 1, text.size());
  if (!index || !count || *count == 0 || *index >= *count) {
    return std::nullopt;
  }
  return ShardSpec{*index, *count};
}

ShardRange shard_range(std::size_t points_total, const ShardSpec& shard) {
  KUSD_CHECK_MSG(shard.count >= 1 && shard.index < shard.count,
                 "shard: index must satisfy 0 <= index < count");
  return ShardRange{shard.index * points_total / shard.count,
                    (shard.index + 1) * points_total / shard.count};
}

std::uint64_t sweep_digest(const Sweep& sweep) {
  const SweepSpec& spec = sweep.spec();
  Fnv64 fnv;
  fnv.str("kusd-sweep-journal-v1");
  // Output schema: a column change invalidates recorded rows.
  const auto header = Sweep::csv_header();
  fnv.u64(header.size());
  for (const auto& column : header) fnv.str(column);
  // Everything cell bytes are a function of. Scheduling knobs (threads,
  // stripe_width, shuffle_points) and shard coordinates are deliberately
  // absent: they cannot change output, and shards must share a digest.
  fnv.u64(spec.master_seed);
  fnv.u64(static_cast<std::uint64_t>(spec.trials));
  fnv.str(to_string(spec.bias_kind));
  fnv.real(spec.undecided_fraction);
  fnv.u64(spec.max_time);
  fnv.real(spec.batch_chunk_fraction);
  fnv.u64(static_cast<std::uint64_t>(spec.batch_policy));
  fnv.u64(static_cast<std::uint64_t>(spec.lockstep_schedule));
  const auto points = sweep.grid();
  fnv.u64(points.size());
  for (const auto& point : points) {
    fnv.str(point.engine);
    fnv.str(point.graph.has_value() ? sim::to_string(*point.graph) : "-");
    fnv.u64(point.n);
    fnv.u64(static_cast<std::uint64_t>(point.k));
    fnv.str(to_string(point.start));
    fnv.real(point.bias);
  }
  // The registry contract of every swept engine: if an engine's caps or
  // capabilities changed since the journal was written, its recorded
  // cells may be unreproducible — refuse to mix them with fresh ones.
  const auto& registry = sim::Registry::instance();
  for (const auto& name : spec.engines) {
    const sim::EngineInfo* info = registry.find(name);
    KUSD_CHECK_MSG(info != nullptr, "digest: unknown engine '" + name + "'");
    fnv.str(name);
    fnv.u64(info->max_n);
    std::uint64_t flags = 0;
    flags |= info->requires_decided_start ? 1U : 0U;
    flags |= info->uses_graph_axis ? 2U : 0U;
    flags |= info->uses_chunk_options ? 4U : 0U;
    flags |= info->aggregated_topology ? 8U : 0U;
    flags |= info->supports_lockstep ? 16U : 0U;
    flags |= info->lockstep ? 32U : 0U;
    flags |= info->default_budget ? 64U : 0U;
    fnv.u64(flags);
  }
  return fnv.value();
}

Journal read_journal(const std::string& path) {
  const FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) fail("journal: cannot open " + path);
  std::string content;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file.get())) > 0) {
    content.append(buffer, got);
  }
  if (std::ferror(file.get()) != 0) fail("journal: cannot read " + path);
  if (content.empty()) fail("journal: " + path + " is empty (no header)");
  if (content.back() != '\n') {
    fail("journal: " + path + " ends mid-line (truncated write)");
  }

  Journal journal;
  const std::size_t schema_width = Sweep::csv_header().size();
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_number;
    const std::string context =
        "journal: " + path + ':' + std::to_string(line_number);
    if (line.empty()) fail(context + ": empty line");
    if (line_number == 1) {
      journal.header = parse_header(line, context);
      continue;
    }
    auto object = LineParser(line, context).parse_object();
    const auto index = static_cast<std::size_t>(
        require(object, "cell", JsonValue::Kind::kNumber, context).number);
    if (index < journal.header.points_begin ||
        index >= journal.header.points_end) {
      fail(context + ": cell index outside the journal's shard range");
    }
    const auto crc = parse_hex16(
        require(object, "crc", JsonValue::Kind::kString, context).string);
    if (!crc) fail(context + ": malformed crc");
    auto row =
        require(object, "row", JsonValue::Kind::kArray, context).array;
    if (row.size() != schema_width) {
      fail(context + ": row width does not match the output schema");
    }
    if (row_checksum(row) != *crc) {
      fail(context + ": row checksum mismatch (corrupt journal line)");
    }
    if (!journal.cells.emplace(index, std::move(row)).second) {
      fail(context + ": duplicate cell index");
    }
  }
  return journal;
}

void run_sweep_service(
    const Sweep& sweep, const SweepServiceOptions& options,
    const std::function<void(const SweepRowEvent&)>& on_row) {
  KUSD_CHECK_MSG(
      options.shard.count >= 1 && options.shard.index < options.shard.count,
      "sweep service: invalid shard (want 0 <= index < count)");
  const bool resuming = !options.resume_path.empty();
  KUSD_CHECK_MSG(!resuming || options.journal_path.empty() ||
                     options.journal_path == options.resume_path,
                 "sweep service: --resume appends to the resumed journal; "
                 "--journal must be absent or name the same file");

  const std::size_t points_total = sweep.grid().size();
  const ShardRange range = shard_range(points_total, options.shard);
  JournalHeader header;
  header.digest = sweep_digest(sweep);
  header.points_begin = range.begin;
  header.points_end = range.end;
  header.points_total = points_total;
  header.shard = options.shard;
  header.trials = sweep.spec().trials;

  std::map<std::size_t, std::vector<std::string>> replayed;
  if (resuming) {
    Journal journal = read_journal(options.resume_path);
    if (journal.header.digest != header.digest) {
      fail("resume: journal digest " + to_hex16(journal.header.digest) +
           " does not match this sweep (" + to_hex16(header.digest) +
           ") — the grid, seed, schema or engine contract changed");
    }
    if (journal.header.shard != header.shard ||
        journal.header.points_total != header.points_total ||
        journal.header.trials != header.trials) {
      fail("resume: journal was written by a different shard of the sweep");
    }
    replayed = std::move(journal.cells);
  }

  const std::string journal_path =
      resuming ? options.resume_path : options.journal_path;
  FilePtr journal;
  if (!journal_path.empty()) {
    journal.reset(std::fopen(journal_path.c_str(), resuming ? "ab" : "wb"));
    if (journal == nullptr) fail("journal: cannot open " + journal_path);
    if (!resuming) write_all(journal.get(), header_line(header), journal_path);
  }

  std::vector<std::size_t> todo;
  todo.reserve(range.end - range.begin - replayed.size());
  for (std::size_t i = range.begin; i < range.end; ++i) {
    if (replayed.count(i) == 0) todo.push_back(i);
  }

  // Computed cells arrive in increasing grid order (run_selected), so
  // interleaving is one forward walk over the replayed map: flush every
  // recorded row below the next computed index, emit the computed row,
  // repeat, then drain the tail.
  auto next_replay = replayed.cbegin();
  const auto replay_below = [&](std::size_t bound) {
    while (next_replay != replayed.cend() && next_replay->first < bound) {
      SweepRowEvent event;
      event.index = next_replay->first;
      event.row = &next_replay->second;
      on_row(event);
      ++next_replay;
    }
  };

  std::size_t computed = 0;
  sweep.run_selected(todo, [&](const SweepCell& cell) {
    replay_below(cell.point.index);
    const auto row = Sweep::csv_row(cell);
    if (journal != nullptr) {
      // Flushed before the row reaches the consumer: anything observed
      // downstream is covered by the journal, so a kill after this line
      // loses no emitted cell.
      write_all(journal.get(), cell_line(cell.point.index, row),
                journal_path);
    }
    SweepRowEvent event;
    event.index = cell.point.index;
    event.row = &row;
    event.cell = &cell;
    on_row(event);
    ++computed;
    if (options.after_cell) options.after_cell(computed);
  });
  replay_below(range.end);
}

void merge_journals(
    const std::vector<std::string>& journal_paths,
    const std::function<void(std::size_t index,
                             const std::vector<std::string>& row)>& on_row) {
  KUSD_CHECK_MSG(!journal_paths.empty(), "merge: no journals given");
  std::vector<Journal> journals;
  journals.reserve(journal_paths.size());
  for (const auto& path : journal_paths) {
    journals.push_back(read_journal(path));
  }

  const JournalHeader& first = journals.front().header;
  for (std::size_t i = 0; i < journals.size(); ++i) {
    const JournalHeader& header = journals[i].header;
    if (header.digest != first.digest) {
      fail("merge: " + journal_paths[i] + " has digest " +
           to_hex16(header.digest) + " but " + journal_paths.front() +
           " has " + to_hex16(first.digest) +
           " — the journals are from different sweeps");
    }
    if (header.points_total != first.points_total ||
        header.trials != first.trials ||
        header.shard.count != first.shard.count) {
      fail("merge: " + journal_paths[i] +
           " disagrees with the other journals on grid size, trials or "
           "shard count");
    }
    // A journal being merged must be finished: every cell of its range
    // present (read_journal already rejected out-of-range/duplicates).
    if (journals[i].cells.size() !=
        header.points_end - header.points_begin) {
      fail("merge: " + journal_paths[i] + " is incomplete (" +
           std::to_string(journals[i].cells.size()) + " of " +
           std::to_string(header.points_end - header.points_begin) +
           " cells) — resume it to completion first");
    }
  }
  if (journals.size() != first.shard.count) {
    fail("merge: got " + std::to_string(journals.size()) +
         " journals for a " + std::to_string(first.shard.count) +
         "-way shard set (a shard journal is missing or duplicated)");
  }

  // Sort by block start; the blocks must tile [0, points_total) exactly.
  std::vector<const Journal*> ordered;
  ordered.reserve(journals.size());
  for (const auto& journal : journals) ordered.push_back(&journal);
  std::sort(ordered.begin(), ordered.end(),
            [](const Journal* a, const Journal* b) {
              return a->header.points_begin < b->header.points_begin;
            });
  std::size_t expected_begin = 0;
  for (const Journal* journal : ordered) {
    if (journal->header.points_begin < expected_begin) {
      fail("merge: shard ranges overlap (shard " +
           std::to_string(journal->header.shard.index) +
           " begins inside the previous shard's block)");
    }
    if (journal->header.points_begin > expected_begin) {
      fail("merge: shard coverage has a gap before point " +
           std::to_string(journal->header.points_begin));
    }
    expected_begin = journal->header.points_end;
  }
  if (expected_begin != first.points_total) {
    fail("merge: shard coverage stops at point " +
         std::to_string(expected_begin) + " of " +
         std::to_string(first.points_total));
  }

  // Only now — everything validated — emit, in grid order.
  for (const Journal* journal : ordered) {
    for (const auto& [index, row] : journal->cells) {
      on_row(index, row);
    }
  }
}

}  // namespace kusd::runner
