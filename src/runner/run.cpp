#include "runner/run.hpp"

#include <span>
#include <string>

#include "core/bias.hpp"
#include "core/budget.hpp"
#include "pp/configuration.hpp"
#include "sim/registry.hpp"

namespace kusd::runner {

RunResult run_usd(const pp::Configuration& initial, std::uint64_t seed,
                  RunOptions options) {
  RunResult result;
  result.initial_plurality = initial.argmax();

  // All engine construction goes through the registry; the StepMode knob
  // is only a legacy spelling of the engine name.
  sim::EngineOptions engine_options;
  engine_options.batch = options.batch;
  engine_options.urn = options.urn;
  engine_options.graph = options.graph;
  const std::string name = options.engine.empty()
                               ? core::engine_name(options.mode)
                               : options.engine;
  const auto engine =
      sim::Registry::instance().create(name, initial, seed, engine_options);

  const std::uint64_t cap = options.max_interactions != 0
                                ? options.max_interactions
                                : engine->default_budget();
  // A disconnected topology cannot reach global consensus except by
  // per-component coincidence, so a default-budget run would grind
  // through the whole generous cap — the same de-facto hang the sweep
  // short-circuits. Report the run as the timeout it would have been
  // (parity with runner::Sweep: an explicit cap runs honestly, and a
  // configuration already at consensus is exempt).
  if (options.max_interactions == 0 &&
      !engine->topology_connected().value_or(true) && !engine->is_consensus()) {
    result.interactions = cap;
    result.parallel_time =
        static_cast<double>(cap) / static_cast<double>(initial.n());
    return result;
  }
  if (options.track_phases) {
    core::PhaseTracker tracker(initial.n(), options.alpha);
    const std::uint64_t interval = options.observe_interval != 0
                                       ? options.observe_interval
                                       : engine->default_observe_interval();
    result.converged = engine->run_observed(
        cap, interval,
        [&tracker](std::uint64_t t, std::span<const pp::Count> opinions,
                   pp::Count undecided) {
          tracker.observe(t, opinions, undecided);
        });
    result.phases = tracker.times();
  } else {
    result.converged = engine->run_to_consensus(cap);
  }

  result.interactions = engine->elapsed();
  result.parallel_time = engine->parallel_time();
  if (result.converged) {
    result.winner = engine->consensus_opinion();
    result.plurality_won = result.winner == result.initial_plurality;
    result.winner_initially_significant =
        core::is_significant(initial, result.winner, options.alpha);
  }
  return result;
}

}  // namespace kusd::runner
