// Work-stealing task graph over (item, stripe) work units.
//
// A TaskGraph decomposes a batch of heterogeneous items — grid points for
// runner::Sweep, a single trial batch for runner::run_trials — into fixed
// stripes, flattens the stripes into one unit list, and lets pool workers
// *pull* units from a shared atomic cursor instead of receiving a static
// assignment. Pulling over shared state is what keeps a mixed workload
// balanced: a worker that drew a cheap 1-stripe item immediately steals
// the next unit of someone else's 64-stripe item, so the pool never
// idles while any item still has unclaimed stripes. (Static striping —
// the pre-PR-10 sweep — underfilled the pool exactly on such mixed
// grids.)
//
// Determinism contract: the scheduler decides only *where and when* a
// unit runs, never what it computes. Callers derive all randomness from
// (item, stripe) indices, so results are a pure function of the unit id
// regardless of thread count, stripe claiming order, or execution order.
//
// Completion: when the last stripe of an item finishes, `on_item_done`
// fires exactly once for that item, on the worker that finished it.
// Calls to on_item_done for *different* items may race — callers that
// need serial emission (the sweep's in-order cell streaming) serialize
// under their own mutex.
//
// Failure: the first exception thrown by run_stripe or on_item_done wins.
// It is captured by the pool and rethrown from run(); once any unit has
// failed, workers stop claiming new units (in-flight units finish), so a
// poisoned batch is abandoned quickly instead of ground to completion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"

namespace kusd::runner {

/// One work unit: stripe `stripe` of item `item` (both indices into the
/// caller's item list / the item's stripe count).
struct TaskUnit {
  std::size_t item = 0;
  std::uint32_t stripe = 0;
};

class TaskGraph {
 public:
  /// `stripes_per_item[i]` is the number of stripes item i decomposes
  /// into; 0 is promoted to 1 so every item completes (and reports done)
  /// even when it has no work. `order` optionally reorders the *items*
  /// for execution (a permutation of [0, items)); stripes of one item
  /// stay consecutive in the unit list. Results must not depend on the
  /// order — it exists for early-coverage scheduling (shuffled sweeps).
  explicit TaskGraph(std::vector<std::uint32_t> stripes_per_item,
                     std::vector<std::size_t> order = {});

  [[nodiscard]] std::size_t num_items() const {
    return stripes_.size();
  }
  [[nodiscard]] std::size_t num_units() const { return units_.size(); }
  [[nodiscard]] std::uint32_t stripes_of(std::size_t item) const {
    return stripes_[item];
  }

  /// Run every unit on `pool` workers pulling from the shared cursor.
  /// Submits one claiming loop per worker (capped at the unit count),
  /// blocks until every unit is done or the batch failed, and rethrows
  /// the first exception. The pool must be idle on entry and is idle
  /// again on return, so graphs can share one pool back to back.
  void run(util::ThreadPool& pool,
           const std::function<void(const TaskUnit&)>& run_stripe,
           const std::function<void(std::size_t item)>& on_item_done) const;

 private:
  std::vector<std::uint32_t> stripes_;
  std::vector<TaskUnit> units_;
};

}  // namespace kusd::runner
