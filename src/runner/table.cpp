#include "runner/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace kusd::runner {

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_int(std::uint64_t value) {
  // Group digits with thin separators for readability.
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fmt_compact(double value) {
  char buf[64];
  if (value == 0.0) return "0";
  if (value >= 1e6 || value < 1e-2) {
    std::snprintf(buf, sizeof(buf), "%.2e", value);
  } else if (value >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  KUSD_CHECK_MSG(cells.size() == headers_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c]
         << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

void Table::print() const { print(std::cout); }

}  // namespace kusd::runner
