// Sample statistics used by the experiment harness and the property tests.
#pragma once

#include <cstddef>
#include <vector>

namespace kusd::stats {

/// Welford streaming accumulator: mean/variance/min/max without storage.
class Streaming {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance (0 if fewer than two samples).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stored samples: everything Streaming offers plus quantiles and
/// confidence intervals.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values);

  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Empirical quantile with linear interpolation, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stddev / sqrt(n)); 0 for fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Two-sample Kolmogorov–Smirnov statistic (sup-distance between empirical
/// CDFs). Used by the scheduler-equivalence property tests.
[[nodiscard]] double ks_statistic(std::vector<double> a,
                                  std::vector<double> b);

/// Asymptotic two-sample KS acceptance threshold at significance `alpha`
/// (e.g. 0.001): c(alpha) * sqrt((n+m)/(n*m)).
[[nodiscard]] double ks_threshold(std::size_t n, std::size_t m, double alpha);

}  // namespace kusd::stats
