// Least-squares fits used to verify the paper's asymptotic bounds: we fit
// scaling exponents from measured running times across n (or k) and check
// the exponent matches the claimed power.
#pragma once

#include <span>

namespace kusd::stats {

/// Result of an ordinary least-squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least-squares fit. Requires at least two points.
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

/// Fit y = C * x^e by regressing log y on log x; returns slope = e,
/// intercept = log C. All inputs must be positive.
[[nodiscard]] LinearFit loglog_fit(std::span<const double> xs,
                                   std::span<const double> ys);

}  // namespace kusd::stats
