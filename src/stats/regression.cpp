#include "stats/regression.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace kusd::stats {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  KUSD_CHECK_MSG(xs.size() == ys.size(), "x/y size mismatch");
  KUSD_CHECK_MSG(xs.size() >= 2, "need at least two points");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  KUSD_CHECK_MSG(sxx > 0.0, "degenerate x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit loglog_fit(std::span<const double> xs, std::span<const double> ys) {
  KUSD_CHECK(xs.size() == ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    KUSD_CHECK_MSG(xs[i] > 0.0 && ys[i] > 0.0,
                   "loglog_fit requires positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return linear_fit(lx, ly);
}

}  // namespace kusd::stats
