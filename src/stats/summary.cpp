#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kusd::stats {

void Streaming::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Streaming::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Streaming::stddev() const { return std::sqrt(variance()); }

Samples::Samples(std::vector<double> values) : values_(std::move(values)) {}

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Samples::mean() const {
  KUSD_CHECK(!values_.empty());
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::variance() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return s / static_cast<double>(values_.size() - 1);
}

double Samples::stddev() const { return std::sqrt(variance()); }

double Samples::min() const {
  KUSD_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  KUSD_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::quantile(double q) const {
  KUSD_CHECK(!values_.empty());
  KUSD_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of range");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Samples::ci95_halfwidth() const {
  if (values_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(values_.size()));
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  KUSD_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

double ks_threshold(std::size_t n, std::size_t m, double alpha) {
  KUSD_CHECK(alpha > 0.0 && alpha < 1.0);
  const double c = std::sqrt(-0.5 * std::log(alpha / 2.0));
  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  return c * std::sqrt((nn + mm) / (nn * mm));
}

}  // namespace kusd::stats
