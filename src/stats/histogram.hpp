// Fixed-bin histogram with an ASCII rendering, used by examples and the
// phase-trace tooling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kusd::stats {

class Histogram {
 public:
  /// Bins span [lo, hi) equally; values outside are clamped to the edge bins.
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double x);

  [[nodiscard]] std::size_t num_bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t bin_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Multi-line ASCII bar rendering (one line per bin).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace kusd::stats
