#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace kusd::stats {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  KUSD_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  KUSD_CHECK_MSG(num_bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(frac *
                                         static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "[%10.3g, %10.3g) %8zu |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += buf;
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace kusd::stats
