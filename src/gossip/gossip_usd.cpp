#include "gossip/gossip_usd.hpp"

#include "pp/configuration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::gossip {

GossipUsd::GossipUsd(const pp::Configuration& initial, rng::Rng rng)
    : opinions_(initial.opinions().begin(), initial.opinions().end()),
      undecided_(initial.undecided()),
      n_(initial.n()),
      engine_(initial.k()),
      rng_(rng) {
  KUSD_CHECK_MSG(initial.decided() >= 1,
                 "an all-undecided population never converges");
  for (int i = 0; i < initial.k(); ++i) {
    if (initial.opinion(i) == n_) winner_ = i;
  }
}

void GossipUsd::round() {
  KUSD_DCHECK(!winner_.has_value());
  const std::size_t k = opinions_.size();
  std::vector<pp::Count> next(k, 0);

  // Decided agents of opinion i: keep i iff the partner is undecided or of
  // the same opinion; otherwise become undecided. Undecided agents: adopt
  // the partner's opinion if decided. Both half-rounds sample partners from
  // the pre-round configuration.
  pp::Count next_undecided = engine_.decided_step(
      opinions_, undecided_, /*keep_on_undecided=*/true, next, rng_);
  next_undecided +=
      engine_.adoption_step(opinions_, undecided_, undecided_, next, rng_);

  opinions_ = std::move(next);
  undecided_ = next_undecided;
  ++rounds_;
  for (std::size_t i = 0; i < k; ++i) {
    if (opinions_[i] == n_) winner_ = static_cast<int>(i);
  }
}

bool GossipUsd::run_to_consensus(std::uint64_t max_rounds) {
  while (!winner_.has_value() && rounds_ < max_rounds) round();
  return winner_.has_value();
}

}  // namespace kusd::gossip
