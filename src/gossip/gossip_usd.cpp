#include "gossip/gossip_usd.hpp"

#include "util/check.hpp"

namespace kusd::gossip {

GossipUsd::GossipUsd(const pp::Configuration& initial, rng::Rng rng)
    : opinions_(initial.opinions().begin(), initial.opinions().end()),
      undecided_(initial.undecided()),
      n_(initial.n()),
      rng_(rng) {
  KUSD_CHECK_MSG(initial.decided() >= 1,
                 "an all-undecided population never converges");
  for (int i = 0; i < initial.k(); ++i) {
    if (initial.opinion(i) == n_) winner_ = i;
  }
}

void GossipUsd::round() {
  KUSD_DCHECK(!winner_.has_value());
  const std::size_t k = opinions_.size();
  // Partner-sampling weights: the pre-round state distribution.
  std::vector<double> weights(k + 1);
  for (std::size_t j = 0; j < k; ++j) {
    weights[j] = static_cast<double>(opinions_[j]);
  }
  weights[k] = static_cast<double>(undecided_);

  std::vector<pp::Count> next(k, 0);
  pp::Count next_undecided = 0;

  // Decided agents of opinion i: keep i iff the partner is undecided or of
  // the same opinion; otherwise become undecided.
  for (std::size_t i = 0; i < k; ++i) {
    if (opinions_[i] == 0) continue;
    const auto partners = rng_.multinomial(opinions_[i], weights);
    const pp::Count stay = partners[i] + partners[k];
    next[i] += stay;
    next_undecided += opinions_[i] - stay;
  }
  // Undecided agents: adopt the partner's opinion if decided.
  if (undecided_ > 0) {
    const auto partners = rng_.multinomial(undecided_, weights);
    for (std::size_t j = 0; j < k; ++j) next[j] += partners[j];
    next_undecided += partners[k];
  }

  opinions_ = std::move(next);
  undecided_ = next_undecided;
  ++rounds_;
  for (std::size_t i = 0; i < k; ++i) {
    if (opinions_[i] == n_) winner_ = static_cast<int>(i);
  }
}

bool GossipUsd::run_to_consensus(std::uint64_t max_rounds) {
  while (!winner_.has_value() && rounds_ < max_rounds) round();
  return winner_.has_value();
}

}  // namespace kusd::gossip
