// USD in the synchronous (parallel) gossip model — the comparator of
// Becchetti et al. [9] used by the Appendix D rate comparison (E8).
//
// In each round every agent independently samples one agent uniformly at
// random (with replacement, self included) and applies the USD rule to the
// sampled opinion, all updates computed from the pre-round configuration.
// The simulation is count-based: the partners of the m agents in a state
// are jointly multinomial over the pre-round state distribution, so one
// round costs O(k^2) binomial draws instead of O(n) samples.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/round_engine.hpp"
#include "pp/configuration.hpp"
#include "rng/rng.hpp"

namespace kusd::gossip {

class GossipUsd {
 public:
  GossipUsd(const pp::Configuration& initial, rng::Rng rng);

  /// Execute one synchronous round.
  void round();

  /// Returns true iff consensus was reached within `max_rounds`.
  bool run_to_consensus(std::uint64_t max_rounds);

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] pp::Count n() const { return n_; }
  [[nodiscard]] int k() const { return static_cast<int>(opinions_.size()); }
  [[nodiscard]] std::span<const pp::Count> opinions() const {
    return opinions_;
  }
  [[nodiscard]] pp::Count undecided() const { return undecided_; }
  [[nodiscard]] bool is_consensus() const { return winner_.has_value(); }
  [[nodiscard]] int consensus_opinion() const { return *winner_; }
  [[nodiscard]] pp::Configuration configuration() const {
    return pp::Configuration(opinions_, undecided_);
  }

 private:
  std::vector<pp::Count> opinions_;
  pp::Count undecided_;
  pp::Count n_;
  core::RoundEngine engine_;
  rng::Rng rng_;
  std::uint64_t rounds_ = 0;
  std::optional<int> winner_;
};

}  // namespace kusd::gossip
