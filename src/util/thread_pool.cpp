#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace kusd::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_exception_) {
    const std::exception_ptr error = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (error && !first_exception_) first_exception_ = std::move(error);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace kusd::util
