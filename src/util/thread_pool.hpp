// Minimal fixed-size thread pool used by the trial runner.
//
// Tasks are type-erased std::function<void()>; submit() returns immediately
// and wait_idle() blocks until every submitted task has completed. The pool
// joins its threads in the destructor (no detached threads).
//
// A task that throws does NOT take the process down: the first exception is
// captured and rethrown from the next wait_idle() call (later exceptions
// are dropped). An exception still pending at destruction is discarded
// after the queue drains.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kusd::util {

class ThreadPool {
 public:
  /// Create a pool with `num_threads` workers (defaults to hardware
  /// concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  /// Enqueue a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running. If any task
  /// threw since the last call, rethrows the first such exception.
  void wait_idle();

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_exception_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace kusd::util
