// Wall-clock stopwatch for the experiment harness.
#pragma once

#include <chrono>

namespace kusd::util {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kusd::util
