// Lightweight precondition / invariant checking.
//
// KUSD_CHECK is always on (it guards the public API against misuse and the
// simulators against silent state corruption); KUSD_DCHECK compiles away in
// release builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace kusd::util {

/// Thrown when a KUSD_CHECK precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "KUSD_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace kusd::util

#define KUSD_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr)) ::kusd::util::check_failed(#expr, __FILE__, __LINE__, \
                                            std::string{});            \
  } while (false)

#define KUSD_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) ::kusd::util::check_failed(#expr, __FILE__, __LINE__, \
                                            (msg));                    \
  } while (false)

#ifdef NDEBUG
#define KUSD_DCHECK(expr) ((void)0)
#else
#define KUSD_DCHECK(expr) KUSD_CHECK(expr)
#endif
