// Classic population protocols referenced by the paper's related work
// (Section 1.2), shipped as a zoo next to the USD:
//
//  * ExactMajorityProtocol — the 4-state exact majority protocol
//    (Draief & Vojnovic / Mertzios et al.): always identifies the k = 2
//    majority, even with initial margin 1, in expected O(n^2 log n)
//    interactions on the complete graph. The USD solves only *approximate*
//    majority but does so in O(n log n); putting both in one library makes
//    the paper's trade-off executable.
//  * LeaderElectionProtocol — the textbook pairwise-elimination leader
//    election (L, L -> L, F): from n leaders to 1 in Theta(n^2)
//    interactions; the primitive behind phase-clock constructions used by
//    the synchronized USD variants [5, 7, 15, 30].
//  * EpidemicProtocol — one-way epidemic (infected initiator infects the
//    responder): broadcast completes in Theta(n log n) interactions, the
//    canonical "parallel time O(log n)" yardstick of the model.
#pragma once

#include "pp/protocol.hpp"

namespace kusd::protocols {

/// 4-state exact majority: states A, B (strong) and a, b (weak).
/// Encoded as A=0, B=1, a=2, b=3.
///
///   A + B -> a + b   (strong opposites annihilate to weak)
///   A + b -> A + a   (strong converts weak; initiator-strong form)
///   B + a -> B + b
/// (only the responder changes per population-protocol convention; the
/// rules above are applied with the responder as the left operand).
class ExactMajorityProtocol final : public pp::PairProtocol {
 public:
  static constexpr int kStrongA = 0;
  static constexpr int kStrongB = 1;
  static constexpr int kWeakA = 2;
  static constexpr int kWeakB = 3;

  [[nodiscard]] int num_states() const override { return 4; }
  [[nodiscard]] pp::PairTransition apply(int responder,
                                         int initiator) const override;

  /// True iff the state "believes" A (strong or weak).
  [[nodiscard]] static bool believes_a(int state) {
    return state == kStrongA || state == kWeakA;
  }
};

/// Pairwise-elimination leader election: leader responder meeting a leader
/// initiator becomes a follower.
class LeaderElectionProtocol final : public pp::PairProtocol {
 public:
  static constexpr int kLeader = 0;
  static constexpr int kFollower = 1;

  [[nodiscard]] int num_states() const override { return 2; }
  [[nodiscard]] pp::PairTransition apply(int responder,
                                         int initiator) const override;
};

/// One-way epidemic: a susceptible responder meeting an infected initiator
/// becomes infected.
class EpidemicProtocol final : public pp::PairProtocol {
 public:
  static constexpr int kSusceptible = 0;
  static constexpr int kInfected = 1;

  [[nodiscard]] int num_states() const override { return 2; }
  [[nodiscard]] pp::PairTransition apply(int responder,
                                         int initiator) const override;
};

}  // namespace kusd::protocols
