#include "protocols/classic.hpp"


#include "pp/protocol.hpp"
namespace kusd::protocols {

pp::PairTransition ExactMajorityProtocol::apply(int responder,
                                                int initiator) const {
  // Strong opposites annihilate: the responder weakens, and (two-sided
  // transition) the initiator weakens as well.
  if (responder == kStrongA && initiator == kStrongB) {
    return {kWeakA, kWeakB};
  }
  if (responder == kStrongB && initiator == kStrongA) {
    return {kWeakB, kWeakA};
  }
  // A strong initiator converts a weak responder to its side.
  if (initiator == kStrongA && (responder == kWeakA || responder == kWeakB)) {
    return {kWeakA, initiator};
  }
  if (initiator == kStrongB && (responder == kWeakA || responder == kWeakB)) {
    return {kWeakB, initiator};
  }
  return {responder, initiator};
}

pp::PairTransition LeaderElectionProtocol::apply(int responder,
                                                 int initiator) const {
  if (responder == kLeader && initiator == kLeader) {
    return {kFollower, kLeader};
  }
  return {responder, initiator};
}

pp::PairTransition EpidemicProtocol::apply(int responder,
                                           int initiator) const {
  if (responder == kSusceptible && initiator == kInfected) {
    return {kInfected, kInfected};
  }
  return {responder, initiator};
}

}  // namespace kusd::protocols
