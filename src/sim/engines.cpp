#include "sim/engines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/batched_usd.hpp"
#include "core/budget.hpp"
#include "core/sync_usd.hpp"
#include "core/usd.hpp"
#include "gossip/gossip_usd.hpp"
#include "pp/graph.hpp"
#include "pp/graph_scheduler.hpp"
#include "rng/rng.hpp"
#include "sim/batched_graph_engine.hpp"
#include "sim/graph_spec.hpp"
#include "sim/lockstep_batched_engine.hpp"
#include "urn/urn.hpp"
#include "util/check.hpp"

namespace kusd::sim {

std::uint64_t sync_round_cap(pp::Count n) {
  const double lg = std::log2(static_cast<double>(n)) + 1.0;
  return static_cast<std::uint64_t>(64.0 * lg * lg) + 256;
}

std::uint64_t gossip_round_cap(pp::Count n, int k) {
  const double lg = std::log2(static_cast<double>(n)) + 1.0;
  return static_cast<std::uint64_t>(64.0 * static_cast<double>(k) * lg) + 256;
}

namespace {

/// every / skip: UsdSimulator stepped one (productive) interaction at a
/// time. The skip mode's geometric jumps may overshoot an advance target
/// by part of one jump, exactly as UsdSimulator's own run loop does.
class UsdEngine final : public Engine {
 public:
  UsdEngine(const pp::Configuration& initial, std::uint64_t seed,
            core::StepMode mode, urn::UrnEngine urn)
      : sim_(initial, rng::Rng(seed), core::UsdOptions{mode, urn}) {}

  void advance(std::uint64_t budget) override {
    const std::uint64_t target = saturating_add(sim_.interactions(), budget);
    while (!sim_.is_consensus() && sim_.interactions() < target) sim_.step();
  }
  std::span<const pp::Count> counts() const override {
    return sim_.opinions();
  }
  pp::Count undecided() const override { return sim_.undecided(); }
  pp::Count n() const override { return sim_.n(); }
  std::uint64_t elapsed() const override { return sim_.interactions(); }
  double parallel_time() const override {
    return static_cast<double>(sim_.interactions()) /
           static_cast<double>(sim_.n());
  }
  bool is_consensus() const override { return sim_.is_consensus(); }
  int consensus_opinion() const override { return sim_.consensus_opinion(); }
  std::uint64_t default_budget() const override {
    return core::default_interaction_cap(sim_.n(), sim_.k());
  }
  std::uint64_t default_observe_interval() const override {
    return std::max<std::uint64_t>(1, sim_.n() / 8);
  }

 private:
  core::UsdSimulator sim_;
};

/// batched: chunked tau-leap, clamped so advance() and observation
/// boundaries are exact.
class BatchedEngine final : public Engine {
 public:
  BatchedEngine(const pp::Configuration& initial, std::uint64_t seed,
                const core::ChunkOptions& options)
      : sim_(initial, rng::Rng(seed), options) {}

  void advance(std::uint64_t budget) override {
    const std::uint64_t target = saturating_add(sim_.interactions(), budget);
    while (!sim_.is_consensus() && sim_.interactions() < target) {
      sim_.step(target - sim_.interactions());
    }
  }
  std::span<const pp::Count> counts() const override {
    return sim_.opinions();
  }
  pp::Count undecided() const override { return sim_.undecided(); }
  pp::Count n() const override { return sim_.n(); }
  std::uint64_t elapsed() const override { return sim_.interactions(); }
  double parallel_time() const override {
    return static_cast<double>(sim_.interactions()) /
           static_cast<double>(sim_.n());
  }
  bool is_consensus() const override { return sim_.is_consensus(); }
  int consensus_opinion() const override { return sim_.consensus_opinion(); }
  std::uint64_t default_budget() const override {
    return core::default_interaction_cap(sim_.n(), sim_.k());
  }
  std::uint64_t default_observe_interval() const override {
    return std::max<std::uint64_t>(1, sim_.n() / 8);
  }

 private:
  core::BatchedUsdSimulator sim_;
};

/// sync: native time is super-rounds; parallel_time counts every
/// synchronous round including re-adoption sub-rounds (the comparable
/// metric the paper's polylog bounds are stated in).
class SyncEngine final : public Engine {
 public:
  SyncEngine(const pp::Configuration& initial, std::uint64_t seed)
      : sim_(initial, rng::Rng(seed)) {}

  void advance(std::uint64_t budget) override {
    const std::uint64_t target = saturating_add(sim_.super_rounds(), budget);
    while (!sim_.is_consensus() && sim_.super_rounds() < target) {
      sim_.super_round();
    }
  }
  std::span<const pp::Count> counts() const override {
    return sim_.opinions();
  }
  pp::Count undecided() const override { return 0; }  // fully decided between super-rounds
  pp::Count n() const override { return sim_.n(); }
  std::uint64_t elapsed() const override { return sim_.super_rounds(); }
  double parallel_time() const override {
    return static_cast<double>(sim_.total_rounds());
  }
  bool is_consensus() const override { return sim_.is_consensus(); }
  int consensus_opinion() const override { return sim_.consensus_opinion(); }
  std::uint64_t default_budget() const override {
    return sync_round_cap(sim_.n());
  }
  std::uint64_t default_observe_interval() const override { return 1; }

 private:
  core::SyncUsd sim_;
};

class GossipEngine final : public Engine {
 public:
  GossipEngine(const pp::Configuration& initial, std::uint64_t seed)
      : sim_(initial, rng::Rng(seed)) {}

  void advance(std::uint64_t budget) override {
    const std::uint64_t target = saturating_add(sim_.rounds(), budget);
    while (!sim_.is_consensus() && sim_.rounds() < target) sim_.round();
  }
  std::span<const pp::Count> counts() const override {
    return sim_.opinions();
  }
  pp::Count undecided() const override { return sim_.undecided(); }
  pp::Count n() const override { return sim_.n(); }
  std::uint64_t elapsed() const override { return sim_.rounds(); }
  double parallel_time() const override {
    return static_cast<double>(sim_.rounds());
  }
  bool is_consensus() const override { return sim_.is_consensus(); }
  int consensus_opinion() const override { return sim_.consensus_opinion(); }
  std::uint64_t default_budget() const override {
    return gossip_round_cap(sim_.n(), sim_.k());
  }
  std::uint64_t default_observe_interval() const override { return 1; }

 private:
  gossip::GossipUsd sim_;
};

/// graph: the USD transition function under the edge-restricted scheduler.
/// One uniformly random (oriented) edge per interaction; on the complete
/// topology this is the unrestricted model conditioned on responder !=
/// initiator, whose productive dynamics are identical (self-interactions
/// are unproductive for the USD).
class GraphUsdEngine final : public Engine {
 public:
  GraphUsdEngine(const pp::Configuration& initial, std::uint64_t seed,
                 const EngineOptions& options)
      : protocol_(initial.k()), n_(initial.n()), rng_(seed) {
    KUSD_CHECK_MSG(n_ <= std::numeric_limits<std::uint32_t>::max(),
                   "graph engine caps n below 2^32 (32-bit vertex ids)");
    KUSD_CHECK_MSG(initial.decided() >= 1,
                   "an all-undecided population never converges");
    if (options.shared_graph != nullptr) {
      KUSD_CHECK_MSG(options.shared_graph->num_vertices() == n_,
                     "shared topology has the wrong number of vertices");
      graph_ = options.shared_graph;
    } else {
      // Topology construction gets its own stream so the trial stream is
      // untouched: the same seed drives the same dynamics on a shared or
      // an owned copy of the same topology.
      rng::Rng topology_rng(rng::stream_seed(seed, kTopologyStream));
      owned_graph_.emplace(build_graph(options.graph, n_, topology_rng));
      graph_ = &*owned_graph_;
    }

    // Uniformly random embedding: the configuration's counts are laid out
    // in blocks and shuffled, so restricted topologies start from a random
    // labeling rather than adversarial contiguous arcs.
    std::vector<int> states;
    states.reserve(static_cast<std::size_t>(n_));
    for (int i = 0; i < initial.k(); ++i) {
      states.insert(states.end(),
                    static_cast<std::size_t>(initial.opinion(i)), i);
    }
    states.insert(states.end(),
                  static_cast<std::size_t>(initial.undecided()),
                  initial.k());
    rng_.shuffle(std::span<int>(states));
    scheduler_.emplace(protocol_, *graph_, std::move(states), rng_);

    for (int i = 0; i < initial.k(); ++i) {
      if (initial.opinion(i) == n_) winner_ = i;
    }
  }

  void advance(std::uint64_t budget) override {
    const std::uint64_t target =
        saturating_add(scheduler_->steps(), budget);
    const std::size_t k = counts().size();
    while (!winner_.has_value() && scheduler_->steps() < target) {
      // Consensus can only newly hold after an adoption empties the
      // undecided pool (a clash refills it), so the O(k) scan runs only
      // on 1 -> 0 transitions of the undecided count.
      const pp::Count undecided_before = undecided();
      scheduler_->step();
      if (undecided_before != 0 && undecided() == 0) {
        const auto c = counts();
        for (std::size_t i = 0; i < k; ++i) {
          if (c[i] == n_) winner_ = static_cast<int>(i);
        }
      }
    }
  }
  std::span<const pp::Count> counts() const override {
    const auto all = scheduler_->counts();
    return all.first(all.size() - 1);
  }
  pp::Count undecided() const override {
    const auto all = scheduler_->counts();
    return all[all.size() - 1];
  }
  pp::Count n() const override { return n_; }
  std::uint64_t elapsed() const override { return scheduler_->steps(); }
  double parallel_time() const override {
    return static_cast<double>(scheduler_->steps()) /
           static_cast<double>(n_);
  }
  bool is_consensus() const override { return winner_.has_value(); }
  int consensus_opinion() const override { return *winner_; }
  std::uint64_t default_budget() const override {
    return core::default_interaction_cap(n_, k());
  }
  std::uint64_t default_observe_interval() const override {
    return std::max<std::uint64_t>(1, n_ / 8);
  }
  std::optional<bool> topology_connected() const override {
    return graph_->is_connected();
  }

 private:
  core::UsdProtocol protocol_;
  pp::Count n_;
  rng::Rng rng_;
  std::optional<pp::InteractionGraph> owned_graph_;
  const pp::InteractionGraph* graph_ = nullptr;
  std::optional<pp::GraphScheduler> scheduler_;
  std::optional<int> winner_;
};

constexpr pp::Count kMaxN32 = (std::uint64_t{1} << 32) - 1;

}  // namespace

void register_builtin_engines(Registry& registry) {
  // Every engine publishes its default budget (EngineInfo::default_budget)
  // so drivers can report a cap without constructing one; the published
  // value must match what Engine::default_budget() would return (pinned by
  // tests/test_sim.cpp). The asynchronous engines share the interaction
  // cap.
  const auto interaction_budget = [](pp::Count n, int k) {
    return core::default_interaction_cap(n, k);
  };
  registry.add("every",
               {.factory =
                    [](const pp::Configuration& initial, std::uint64_t seed,
                       const EngineOptions& options) {
                      return std::make_unique<UsdEngine>(
                          initial, seed, core::StepMode::kEveryInteraction,
                          options.urn);
                    },
                .description = "exact chain, one interaction per step",
                .default_budget = interaction_budget,
                .max_n = kMaxN32});
  registry.add("skip",
               {.factory =
                    [](const pp::Configuration& initial, std::uint64_t seed,
                       const EngineOptions& options) {
                      return std::make_unique<UsdEngine>(
                          initial, seed, core::StepMode::kSkipUnproductive,
                          options.urn);
                    },
                .description =
                    "exact chain, geometric skips over unproductive runs",
                .default_budget = interaction_budget,
                .max_n = kMaxN32});
  registry.add("batched",
               {.factory =
                    [](const pp::Configuration& initial, std::uint64_t seed,
                       const EngineOptions& options) {
                      return std::make_unique<BatchedEngine>(initial, seed,
                                                             options.batch);
                    },
                .description =
                    "chunked tau-leap, O(k) per Theta(n) interactions",
                .default_budget = interaction_budget,
                .uses_chunk_options = true});
  registry.add(
      "batched-lockstep",
      {.factory =
           [](const pp::Configuration& initial, std::uint64_t seed,
              const EngineOptions& options) {
             return std::make_unique<LockstepBatchedEngine>(
                 initial, seed,
                 core::LockstepOptions{options.batch,
                                       options.lockstep_schedule});
           },
       .description =
           "chunked tau-leap advancing a whole trial batch in lockstep",
       .default_budget = interaction_budget,
       .uses_chunk_options = true,
       .supports_lockstep = true,
       .lockstep = [](const pp::Configuration& initial,
                      std::span<const std::uint64_t> seeds,
                      const EngineOptions& options, std::uint64_t budget) {
         return run_lockstep_trials(
             initial, seeds,
             core::LockstepOptions{options.batch, options.lockstep_schedule},
             budget);
       }});
  registry.add("sync",
               {.factory =
                    [](const pp::Configuration& initial, std::uint64_t seed,
                       const EngineOptions&) {
                      return std::make_unique<SyncEngine>(initial, seed);
                    },
                .description = "synchronized round model (exact, O(k)/round)",
                .default_budget = [](pp::Count n,
                                     int) { return sync_round_cap(n); },
                .requires_decided_start = true});
  registry.add("gossip",
               {.factory =
                    [](const pp::Configuration& initial, std::uint64_t seed,
                       const EngineOptions&) {
                      return std::make_unique<GossipEngine>(initial, seed);
                    },
                .description = "gossip/PULL round model (exact, O(k^2)/round)",
                .default_budget = [](pp::Count n, int k) {
                  return gossip_round_cap(n, k);
                }});
  registry.add("graph",
               {.factory =
                    [](const pp::Configuration& initial, std::uint64_t seed,
                       const EngineOptions& options) {
                      return std::make_unique<GraphUsdEngine>(initial, seed,
                                                              options);
                    },
                .description =
                    "edge-restricted scheduler over a GraphSpec topology",
                .default_budget = interaction_budget,
                .max_n = kMaxN32,
                .uses_graph_axis = true});
  registry.add(
      "graph-batched",
      {.factory =
           [](const pp::Configuration& initial, std::uint64_t seed,
              const EngineOptions& options) {
             return std::make_unique<BatchedGraphEngine>(initial, seed,
                                                         options);
           },
       .description =
           "degree-aggregated tau-leap over a GraphSpec topology (annealed)",
       .default_budget = interaction_budget,
       .uses_graph_axis = true,
       .uses_chunk_options = true,
       .aggregated_topology = true});
}

}  // namespace kusd::sim
