// String-keyed engine factory.
//
// The Registry maps an engine name — the spelling used by `--engine`, the
// sweep's `engine` CSV/JSONL column, and RunOptions::engine — to a factory
// plus the metadata the drivers need to validate a request upfront
// (population caps, start-profile constraints, which option groups the
// engine reads). All engine construction in runner::run_usd, runner::Sweep
// and kusd_cli goes through here; there is no per-engine switch anywhere
// above the adapters.
//
// Registering an engine:
//
//   sim::Registry::instance().add("my-engine", {
//       .factory = [](const pp::Configuration& x0, std::uint64_t seed,
//                     const sim::EngineOptions& options) {
//         return std::make_unique<MyEngine>(x0, seed, options);
//       },
//       .description = "one-line summary for --help and docs",
//   });
//
// after which `kusd run/sweep --engine my-engine` and RunOptions::engine =
// "my-engine" work with no further changes. Registration is not
// thread-safe against concurrent create(); register at startup.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pp/configuration.hpp"
#include "sim/engine.hpp"

namespace kusd::sim {

/// One trial's outcome from a lockstep batch run (EngineInfo::lockstep):
/// the fields runner::Sweep aggregates into a cell.
struct LockstepTrialResult {
  /// Cross-engine comparable time (interactions / n for the tau-leap
  /// kernel), at consensus or at the budget.
  double parallel_time = 0.0;
  bool converged = false;
  /// Consensus opinion; -1 when the trial timed out.
  int winner = -1;
};

struct EngineInfo {
  std::function<std::unique_ptr<Engine>(
      const pp::Configuration& initial, std::uint64_t seed,
      const EngineOptions& options)>
      factory;
  std::string description;
  /// The generous native-time cap Engine::default_budget() would return
  /// for an (n, k) population, published statically so drivers can report
  /// a budget without constructing (or running) an engine — e.g. the
  /// sweep's disconnected short-circuit records its timeout horizon from
  /// here. Unset falls back to core::default_interaction_cap.
  std::function<std::uint64_t(pp::Count n, int k)> default_budget;
  /// Largest supported population (0 = unlimited). The per-interaction
  /// and graph engines cap n below 2^32.
  pp::Count max_n = 0;
  /// The engine rejects configurations with undecided agents (sync).
  bool requires_decided_start = false;
  /// The engine reads EngineOptions::graph / shared_graph, so it
  /// participates in the sweep's `--graph` topology axis.
  bool uses_graph_axis = false;
  /// The engine reads EngineOptions::batch (chunk schedule).
  bool uses_chunk_options = false;
  /// The engine serves its `--graph` axis through degree-class
  /// aggregation (EngineOptions::shared_degrees, a pp::DegreeClassModel)
  /// and never materializes an edge set — so sweeps must not build one
  /// either (a materialized topology is Theta(n * d) memory; the whole
  /// point of an aggregated engine is to run where that is impossible).
  bool aggregated_topology = false;
  /// The engine ships a many-trial lockstep kernel: runner::Sweep routes a
  /// whole cell's trial batch through `lockstep` below instead of running
  /// Engine instances one seed at a time. The kernel must keep per-stream
  /// bit-identity (trial t of a batch equals the single-trial engine run
  /// with seeds[t]), so output stays byte-identical across execution
  /// modes and thread counts.
  bool supports_lockstep = false;
  /// The batch runner behind supports_lockstep: all of `seeds`' trials
  /// advanced from `initial` until consensus or `budget` native time,
  /// results in seed order. Unset (default) when the engine has no
  /// lockstep kernel.
  std::function<std::vector<LockstepTrialResult>(
      const pp::Configuration& initial, std::span<const std::uint64_t> seeds,
      const EngineOptions& options, std::uint64_t budget)>
      lockstep = nullptr;
};

class Registry {
 public:
  /// A fresh registry pre-populated with the built-in engines (every,
  /// skip, batched, batched-lockstep, sync, gossip, graph, graph-batched).
  Registry();

  /// The process-wide registry used by run_usd / Sweep / the CLI.
  static Registry& instance();

  /// Throws util::CheckError on an empty name, a duplicate, or a missing
  /// factory.
  void add(std::string name, EngineInfo info);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// nullptr when the name is unknown.
  [[nodiscard]] const EngineInfo* find(const std::string& name) const;
  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// The names() list joined with commas (for error messages / usage).
  [[nodiscard]] std::string names_joined() const;

  /// Construct an engine. Throws util::CheckError for unknown names (and
  /// whatever the engine's own validation throws).
  [[nodiscard]] std::unique_ptr<Engine> create(
      const std::string& name, const pp::Configuration& initial,
      std::uint64_t seed, const EngineOptions& options = {}) const;

 private:
  std::map<std::string, EngineInfo> engines_;
};

}  // namespace kusd::sim
