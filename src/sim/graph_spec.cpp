#include "sim/graph_spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "pp/degree_classes.hpp"
#include "pp/graph.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace kusd::sim {

std::string to_string(const GraphSpec& spec) {
  switch (spec.kind) {
    case GraphSpec::Kind::kComplete:
      return "complete";
    case GraphSpec::Kind::kCycle:
      return "cycle";
    case GraphSpec::Kind::kRegular:
      return "regular:" + std::to_string(spec.degree);
    case GraphSpec::Kind::kErdosRenyi: {
      if (spec.edge_probability == 0.0) return "er:auto";
      // Shortest round-trip formatting, like the start-profile axis: the
      // spelling in the output schema must parse back to exactly the p
      // that ran.
      char buffer[32];
      const auto result = std::to_chars(buffer, buffer + sizeof buffer,
                                        spec.edge_probability);
      return "er:" + std::string(buffer, result.ptr);
    }
  }
  return "?";
}

std::optional<GraphSpec> parse_graph_spec(const std::string& name) {
  if (name == "complete") return GraphSpec{};
  if (name == "cycle") return GraphSpec{GraphSpec::Kind::kCycle};
  const auto suffix = [&name](const char* prefix) -> std::optional<std::string> {
    const std::string p(prefix);
    if (name.rfind(p, 0) != 0) return std::nullopt;
    return name.substr(p.size());
  };
  if (const auto value = suffix("regular:")) {
    char* end = nullptr;
    const long degree = std::strtol(value->c_str(), &end, 10);
    if (end == value->c_str() || *end != '\0') return std::nullopt;
    if (degree < 1 || degree > std::numeric_limits<int>::max()) {
      return std::nullopt;
    }
    return GraphSpec{GraphSpec::Kind::kRegular, static_cast<int>(degree)};
  }
  if (const auto value = suffix("er:")) {
    if (*value == "auto") {
      return GraphSpec{GraphSpec::Kind::kErdosRenyi, 4, 0.0};
    }
    char* end = nullptr;
    const double p = std::strtod(value->c_str(), &end);
    if (end == value->c_str() || *end != '\0') return std::nullopt;
    if (!(p > 0.0 && p <= 1.0)) return std::nullopt;
    return GraphSpec{GraphSpec::Kind::kErdosRenyi, 4, p};
  }
  return std::nullopt;
}

double auto_edge_probability(pp::Count n) {
  const double dn = static_cast<double>(n);
  return std::clamp(2.0 * std::log(dn) / dn, 0.0,
                    1.0);  // > threshold ln n / n
}

pp::InteractionGraph build_graph(const GraphSpec& spec, pp::Count n,
                                 rng::Rng& rng) {
  KUSD_CHECK_MSG(n >= 2 && n <= std::numeric_limits<std::uint32_t>::max(),
                 "graph topologies need 2 <= n < 2^32 (32-bit vertex ids)");
  const auto vertices = static_cast<std::uint32_t>(n);
  switch (spec.kind) {
    case GraphSpec::Kind::kComplete:
      return pp::InteractionGraph::complete(vertices);
    case GraphSpec::Kind::kCycle:
      return pp::InteractionGraph::cycle(vertices);
    case GraphSpec::Kind::kRegular:
      KUSD_CHECK_MSG(
          spec.degree >= 1 && static_cast<pp::Count>(spec.degree) < n,
          "regular:<d> needs 1 <= d < n");
      KUSD_CHECK_MSG((n * static_cast<pp::Count>(spec.degree)) % 2 == 0,
                     "regular:<d> needs n * d even");
      return pp::InteractionGraph::random_regular(vertices, spec.degree, rng);
    case GraphSpec::Kind::kErdosRenyi: {
      const double p = spec.edge_probability == 0.0
                           ? auto_edge_probability(n)
                           : spec.edge_probability;
      KUSD_CHECK_MSG(p > 0.0 && p <= 1.0,
                     "er:<p> needs an edge probability in (0, 1]");
      return pp::InteractionGraph::erdos_renyi(vertices, p, rng);
    }
  }
  KUSD_CHECK_MSG(false, "unreachable graph kind");
}

pp::DegreeClassModel degree_class_model(const GraphSpec& spec, pp::Count n,
                                        rng::Rng& rng) {
  KUSD_CHECK_MSG(n >= 2, "a topology needs at least two vertices");
  switch (spec.kind) {
    case GraphSpec::Kind::kComplete:
      return pp::DegreeClassModel::regular(n, static_cast<double>(n - 1));
    case GraphSpec::Kind::kCycle:
      return pp::DegreeClassModel::regular(n, 2.0);
    case GraphSpec::Kind::kRegular:
      KUSD_CHECK_MSG(
          spec.degree >= 1 && static_cast<pp::Count>(spec.degree) < n,
          "regular:<d> needs 1 <= d < n");
      KUSD_CHECK_MSG((n * static_cast<pp::Count>(spec.degree)) % 2 == 0,
                     "regular:<d> needs n * d even");
      return pp::DegreeClassModel::regular(
          n, static_cast<double>(spec.degree));
    case GraphSpec::Kind::kErdosRenyi: {
      const double p = spec.edge_probability == 0.0
                           ? auto_edge_probability(n)
                           : spec.edge_probability;
      KUSD_CHECK_MSG(p > 0.0 && p <= 1.0,
                     "er:<p> needs an edge probability in (0, 1]");
      return pp::DegreeClassModel::binomial(n, p, kMaxDegreeClasses, rng);
    }
  }
  KUSD_CHECK_MSG(false, "unreachable graph kind");
}

}  // namespace kusd::sim
