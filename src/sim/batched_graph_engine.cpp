#include "sim/batched_graph_engine.hpp"

#include <algorithm>

#include "core/budget.hpp"
#include "pp/configuration.hpp"
#include "pp/degree_classes.hpp"
#include "rng/rng.hpp"
#include "sim/graph_spec.hpp"
#include "util/check.hpp"

namespace kusd::sim {

namespace {

pp::DegreeClassModel resolve_model(const EngineOptions& options, pp::Count n,
                                   std::uint64_t seed) {
  if (options.shared_degrees != nullptr) return *options.shared_degrees;
  // Same stream discipline as the materialized graph engine: topology
  // aggregation gets its own stream so the trial stream drives the same
  // dynamics on a shared or an owned copy of the same model.
  rng::Rng topology_rng(rng::stream_seed(seed, kTopologyStream));
  return degree_class_model(options.graph, n, topology_rng);
}

}  // namespace

BatchedGraphEngine::BatchedGraphEngine(const pp::Configuration& initial,
                                       std::uint64_t seed,
                                       const EngineOptions& options)
    : n_(initial.n()),
      model_(resolve_model(options, initial.n(), seed)),
      controller_(options.batch, initial.n()),
      engine_(initial.k(), static_cast<int>(model_.num_classes())),
      rng_(seed) {
  KUSD_CHECK_MSG(model_.num_vertices() == n_,
                 "degree model covers the wrong number of vertices");
  KUSD_CHECK_MSG(model_.total_degree() > 0.0,
                 "degree model has no interacting vertices");
  KUSD_CHECK_MSG(initial.decided() >= 1,
                 "an all-undecided population never converges");

  const auto k = static_cast<std::size_t>(initial.k());
  const std::size_t classes = model_.num_classes();
  class_weights_.reserve(classes);
  for (const auto& c : model_.classes()) class_weights_.push_back(c.degree);
  class_counts_.assign(classes * k, 0);
  class_undecided_.assign(classes, 0);
  totals_.assign(initial.opinions().begin(), initial.opinions().end());
  undecided_total_ = initial.undecided();

  if (classes == 1) {
    for (std::size_t j = 0; j < k; ++j) class_counts_[j] = totals_[j];
    class_undecided_[0] = undecided_total_;
  } else {
    // Uniformly random embedding, aggregated: each state's agents are
    // split over the classes proportionally to class size (the
    // multinomial limit of the per-vertex random labeling the
    // materialized engine shuffles explicitly — an O(1/sqrt(n))
    // perturbation of the exact hypergeometric split, below the annealed
    // approximation's own error). State totals stay exact.
    std::vector<double> size_weights;
    size_weights.reserve(classes);
    for (const auto& c : model_.classes()) {
      size_weights.push_back(static_cast<double>(c.size));
    }
    for (std::size_t j = 0; j < k; ++j) {
      const auto split = rng_.multinomial(totals_[j], size_weights);
      for (std::size_t c = 0; c < classes; ++c) {
        class_counts_[c * k + j] = split[c];
      }
    }
    const auto split = rng_.multinomial(undecided_total_, size_weights);
    for (std::size_t c = 0; c < classes; ++c) class_undecided_[c] = split[c];
  }

  for (std::size_t j = 0; j < k; ++j) {
    if (totals_[j] == n_) winner_ = static_cast<int>(j);
  }
}

void BatchedGraphEngine::step(std::uint64_t max_length) {
  KUSD_DCHECK(!winner_.has_value());
  KUSD_DCHECK(max_length >= 1);
  std::uint64_t m = std::min(
      controller_.propose_classes(class_counts_, class_undecided_,
                                  class_weights_),
      max_length);
  // A frozen-rate draw can overshoot a per-class count; halve and redraw.
  // m == 1 realizes exactly one event of the annealed chain and always
  // succeeds, so near-consensus states fall back to the exact
  // per-interaction limit of the model.
  while (true) {
    ++chunks_;
    if (engine_.try_async_class_chunk(class_counts_, class_undecided_,
                                      class_weights_, m, rng_)) {
      break;
    }
    controller_.on_reject();
    m = std::max<std::uint64_t>(1, m / 2);
  }
  interactions_ += m;
  refresh_totals();
}

void BatchedGraphEngine::refresh_totals() {
  const std::size_t k = totals_.size();
  const std::size_t classes = class_undecided_.size();
  std::fill(totals_.begin(), totals_.end(), 0);
  undecided_total_ = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    undecided_total_ += class_undecided_[c];
    for (std::size_t j = 0; j < k; ++j) {
      totals_[j] += class_counts_[c * k + j];
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (totals_[j] == n_) winner_ = static_cast<int>(j);
  }
}

void BatchedGraphEngine::advance(std::uint64_t budget) {
  const std::uint64_t target = saturating_add(interactions_, budget);
  while (!winner_.has_value() && interactions_ < target) {
    step(target - interactions_);
  }
}

std::uint64_t BatchedGraphEngine::default_budget() const {
  return core::default_interaction_cap(n_, k());
}

std::uint64_t BatchedGraphEngine::default_observe_interval() const {
  return std::max<std::uint64_t>(1, n_ / 8);
}

}  // namespace kusd::sim
