// Interaction-topology axis of the sim layer.
//
// A GraphSpec is the declarative, sweep-able description of an interaction
// topology: which family, plus the family's parameter. It is spelled the
// way the CLI spells it —
//
//   complete | cycle | regular:<d> | er:<p> | er:auto
//
// — and round-trips through to_string/parse_graph_spec so the `graph`
// column of sweep output parses back to exactly the topology that ran.
// build_graph resolves a spec into a concrete pp::InteractionGraph at a
// population size n (er:auto picks p = 2 ln n / n, comfortably above the
// G(n, p) connectivity threshold ln n / n).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "pp/configuration.hpp"
#include "pp/degree_classes.hpp"
#include "pp/graph.hpp"
#include "rng/rng.hpp"

namespace kusd::sim {

/// Stream id used to derive topology-construction seeds from a trial or
/// point seed (cannot collide with trial indices, which are small).
inline constexpr std::uint64_t kTopologyStream = 0x746F706F6C6F6779ULL;

struct GraphSpec {
  enum class Kind {
    kComplete,    ///< K_n — the paper's (unrestricted) model
    kCycle,       ///< C_n — the slowest-mixing standard topology
    kRegular,     ///< near-d-regular via the configuration model
    kErdosRenyi,  ///< G(n, p)
  };
  Kind kind = Kind::kComplete;
  /// Degree of kRegular; ignored otherwise.
  int degree = 4;
  /// Edge probability of kErdosRenyi; 0 means "auto" (resolved per n as
  /// auto_edge_probability). Ignored for other kinds.
  double edge_probability = 0.0;

  bool operator==(const GraphSpec&) const = default;
};

/// CLI spelling: "complete", "cycle", "regular:<d>", "er:<p>" or "er:auto".
[[nodiscard]] std::string to_string(const GraphSpec& spec);
/// Parse the CLI spelling; nullopt on malformed names or out-of-range
/// parameters (degree < 1, p outside (0, 1]).
[[nodiscard]] std::optional<GraphSpec> parse_graph_spec(
    const std::string& name);

/// The p that "er:auto" resolves to at population size n: 2 ln n / n,
/// clamped to (0, 1].
[[nodiscard]] double auto_edge_probability(pp::Count n);

/// Materialize the spec at population size n. `rng` drives the random
/// families (regular, ER) and is untouched for the deterministic ones, so
/// topology construction is reproducible from a seeded stream. Throws
/// util::CheckError when n exceeds 32-bit vertex ids or the family's
/// parameter is infeasible at this n (e.g. odd n * d for regular:<d>).
[[nodiscard]] pp::InteractionGraph build_graph(const GraphSpec& spec,
                                               pp::Count n, rng::Rng& rng);

/// Degree-class bucket cap of er:<p> aggregation (degree_class_model).
inline constexpr int kMaxDegreeClasses = 48;

/// Aggregate the spec at population size n into a pp::DegreeClassModel —
/// the O(classes) topology summary the "graph-batched" engine runs on
/// instead of a materialized edge set, so n is NOT capped at 2^32 here.
/// Degree-regular families (complete, cycle, regular:<d>) collapse to one
/// class; er:<p> (and er:auto) realizes binomial degree-class sizes from
/// `rng` (deterministic from a seeded stream, like build_graph).
/// Parameter validation matches build_graph, so both engines accept
/// exactly the same specs.
[[nodiscard]] pp::DegreeClassModel degree_class_model(const GraphSpec& spec,
                                                      pp::Count n,
                                                      rng::Rng& rng);

}  // namespace kusd::sim
