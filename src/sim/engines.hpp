// Built-in engine adapters and their registration.
//
// The adapters wrap the concrete simulators (core::UsdSimulator,
// core::BatchedUsdSimulator, core::SyncUsd, gossip::GossipUsd,
// pp::GraphScheduler) behind sim::Engine without changing their dynamics:
// each adapter drives the exact step/chunk/round calls the simulator's own
// run loop would, so seeded trajectories are identical to driving the
// simulator directly.
#pragma once

#include <cstdint>

#include "pp/configuration.hpp"
#include "sim/registry.hpp"

namespace kusd::sim {

/// Register the built-in engines (every, skip, batched, sync, gossip,
/// graph) into `registry`. Called once by the Registry constructor.
void register_builtin_engines(Registry& registry);

/// Generous round caps used as the sync/gossip default budgets: the
/// synchronized variant is O(log^2 n) super-rounds w.h.p., gossip
/// O(k log n) rounds.
[[nodiscard]] std::uint64_t sync_round_cap(pp::Count n);
[[nodiscard]] std::uint64_t gossip_round_cap(pp::Count n, int k);

}  // namespace kusd::sim
