// sim adapters over core::LockstepRoundEngine.
//
// Two surfaces, one kernel:
//
//  * LockstepBatchedEngine — the registry's `batched-lockstep` entry as a
//    normal single-trial sim::Engine (a one-trial lockstep batch), so
//    every driver written against the Engine interface (run_usd,
//    observers, the CLI) works unchanged. Because the kernel is
//    per-stream bit-identical to the scalar tau-leap, this adapter's
//    trajectory equals the `batched` engine's for the same (initial,
//    seed, options).
//  * run_lockstep_trials — the many-trial batch entry point published
//    through EngineInfo::lockstep, which runner::Sweep calls once per
//    cell instead of constructing trials one seed at a time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/chunk_controller.hpp"
#include "core/lockstep_usd.hpp"
#include "pp/configuration.hpp"
#include "sim/engine.hpp"
#include "sim/registry.hpp"

namespace kusd::sim {

class LockstepBatchedEngine final : public Engine {
 public:
  LockstepBatchedEngine(const pp::Configuration& initial, std::uint64_t seed,
                        const core::LockstepOptions& options)
      : sim_(initial, std::span<const std::uint64_t>(&seed, 1), options) {}

  void advance(std::uint64_t budget) override {
    sim_.advance_all(saturating_add(sim_.interactions(0), budget));
  }
  std::span<const pp::Count> counts() const override {
    return sim_.counts(0);
  }
  pp::Count undecided() const override { return sim_.undecided(0); }
  pp::Count n() const override { return sim_.n(); }
  std::uint64_t elapsed() const override { return sim_.interactions(0); }
  double parallel_time() const override {
    return static_cast<double>(sim_.interactions(0)) /
           static_cast<double>(sim_.n());
  }
  bool is_consensus() const override { return sim_.is_consensus(0); }
  int consensus_opinion() const override { return sim_.consensus_opinion(0); }
  std::uint64_t default_budget() const override;
  std::uint64_t default_observe_interval() const override {
    return std::max<std::uint64_t>(1, sim_.n() / 8);
  }

 private:
  core::LockstepRoundEngine sim_;
};

/// The EngineInfo::lockstep runner of `batched-lockstep`: one lockstep
/// kernel pass over the whole seed batch, results in seed order. Under
/// the per-trial schedule each trial's outcome is bit-identical to the
/// single-trial engine run with the same seed and budget; under the
/// shared schedule the batch shares one chunk controller and uniform
/// stream (self-deterministic, KS-gated — see core/lockstep_usd.hpp).
[[nodiscard]] std::vector<LockstepTrialResult> run_lockstep_trials(
    const pp::Configuration& initial, std::span<const std::uint64_t> seeds,
    const core::LockstepOptions& options, std::uint64_t budget);

}  // namespace kusd::sim
