#include "sim/lockstep_batched_engine.hpp"

#include "core/budget.hpp"
#include "core/lockstep_usd.hpp"
#include "pp/configuration.hpp"

namespace kusd::sim {

std::uint64_t LockstepBatchedEngine::default_budget() const {
  return core::default_interaction_cap(sim_.n(), sim_.k());
}

std::vector<LockstepTrialResult> run_lockstep_trials(
    const pp::Configuration& initial, std::span<const std::uint64_t> seeds,
    const core::LockstepOptions& options, std::uint64_t budget) {
  core::LockstepRoundEngine kernel(initial, seeds, options);
  kernel.advance_all(budget);
  std::vector<LockstepTrialResult> results(seeds.size());
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    results[t].converged = kernel.is_consensus(t);
    results[t].winner =
        results[t].converged ? kernel.consensus_opinion(t) : -1;
    results[t].parallel_time = static_cast<double>(kernel.interactions(t)) /
                               static_cast<double>(kernel.n());
  }
  return results;
}

}  // namespace kusd::sim
