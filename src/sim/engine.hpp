// The unified simulator interface.
//
// Every way of running the USD — per-interaction, geometric-skip, chunked
// tau-leap, synchronized rounds, gossip rounds, graph-restricted — is a
// sim::Engine: construct from a pp::Configuration and a 64-bit seed,
// advance() through native time, inspect incremental counts()/undecided(),
// and compare across engines through parallel_time(). The experiment
// drivers (runner::run_usd, runner::Sweep, kusd_cli) are written once
// against this interface and resolve concrete engines through the
// string-keyed sim::Registry, so adding an engine is a one-file change:
// implement the adapter, register it, and every driver (run/sweep/bench,
// CSV/JSONL schema, CLI parsing) picks it up.
//
// Native time. Each engine counts time in its own natural unit —
// interactions for the asynchronous engines (every/skip/batched/graph),
// super-rounds for sync, rounds for gossip. advance() budgets,
// elapsed(), default_budget() and observer timestamps are all in native
// units; parallel_time() is the cross-engine comparable metric
// (interactions / n for the asynchronous engines, total rounds for the
// synchronous ones).
//
// Observation. run_observed() fires the observer before the first step,
// at interval boundaries, and once more after the last step. Boundary
// exactness is engine-dependent but never worse than the engine's step
// granularity: the batched engine clamps chunks to land exactly on every
// boundary, per-interaction engines land exactly by construction, and the
// skip engine fires at the first productive step past a boundary (its
// jumps are not splittable without resampling).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "core/chunk_controller.hpp"
#include "pp/configuration.hpp"
#include "sim/graph_spec.hpp"
#include "urn/urn.hpp"

namespace kusd::pp {
class DegreeClassModel;
class InteractionGraph;
}  // namespace kusd::pp

namespace kusd::sim {

/// Snapshot hook: (native time, per-opinion counts, undecided count).
using Observer =
    std::function<void(std::uint64_t t, std::span<const pp::Count> opinions,
                       pp::Count undecided)>;

/// Per-engine knobs, passed through Registry::create. Engines read only
/// the fields that concern them and ignore the rest, so one options
/// struct serves every registry entry.
struct EngineOptions {
  /// Chunk schedule of the "batched" engine.
  core::ChunkOptions batch;
  /// Schedule ownership of the "batched-lockstep" engine: per-trial
  /// controllers (bit-identical to the scalar tau-leap, the default) or
  /// one shared controller + uniform stream per batch (throughput mode,
  /// KS-gated). Other engines ignore it.
  core::LockstepSchedule lockstep_schedule = core::LockstepSchedule::kPerTrial;
  /// Urn backend of the "every"/"skip" engines.
  urn::UrnEngine urn = urn::UrnEngine::kAuto;
  /// Topology of the graph engines (ignored when shared_graph /
  /// shared_degrees is set, except that callers should keep the two
  /// consistent for reporting).
  GraphSpec graph;
  /// Pre-built topology for the "graph" engine, not owned: a sweep builds
  /// the graph once per grid point and shares it across trials. Must have
  /// exactly n vertices. nullptr = the engine builds its own from `graph`
  /// with a seed-derived stream.
  const pp::InteractionGraph* shared_graph = nullptr;
  /// Pre-built degree-class aggregation for aggregated graph engines
  /// ("graph-batched"), not owned; the sweep's analogue of shared_graph
  /// for engines that never materialize an edge set. Must cover exactly n
  /// vertices. nullptr = the engine aggregates its own from `graph` with
  /// a seed-derived stream.
  const pp::DegreeClassModel* shared_degrees = nullptr;
};

/// Overflow-safe native-time target arithmetic for advance()
/// implementations: elapsed + budget, saturating at the uint64 max.
[[nodiscard]] inline std::uint64_t saturating_add(std::uint64_t a,
                                                  std::uint64_t b) {
  return b > ~std::uint64_t{0} - a ? ~std::uint64_t{0} : a + b;
}

class Engine {
 public:
  virtual ~Engine() = default;

  /// Advance by at most `budget` additional native time units, stopping
  /// early at consensus. Engines whose steps are coarser than one unit
  /// may overshoot the final step (see the file comment); the batched
  /// engine clamps and is exact.
  virtual void advance(std::uint64_t budget) = 0;

  /// Per-opinion counts (k entries), maintained incrementally.
  [[nodiscard]] virtual std::span<const pp::Count> counts() const = 0;
  [[nodiscard]] virtual pp::Count undecided() const = 0;
  [[nodiscard]] virtual pp::Count n() const = 0;
  /// Native time elapsed so far.
  [[nodiscard]] virtual std::uint64_t elapsed() const = 0;
  /// Cross-engine comparable time (see the file comment).
  [[nodiscard]] virtual double parallel_time() const = 0;
  [[nodiscard]] virtual bool is_consensus() const = 0;
  /// Only valid when is_consensus().
  [[nodiscard]] virtual int consensus_opinion() const = 0;
  /// A generous native-time cap for runs that should reach consensus
  /// (the per-engine analogue of core::default_interaction_cap).
  [[nodiscard]] virtual std::uint64_t default_budget() const = 0;
  /// Native-time observation interval giving phase-tracking resolution
  /// well below phase lengths (n/8 interactions; 1 round).
  [[nodiscard]] virtual std::uint64_t default_observe_interval() const = 0;

  /// Whether the engine's realized topology can carry every agent to one
  /// opinion: BFS connectivity for materialized edge sets, "no isolated
  /// vertices" for aggregated degree models. nullopt for engines without
  /// a topology (complete-graph dynamics are always connected). Drivers
  /// use a `false` here to short-circuit default-budget runs that could
  /// only end in a timeout (see runner::run_usd and runner::Sweep).
  [[nodiscard]] virtual std::optional<bool> topology_connected() const {
    return std::nullopt;
  }

  [[nodiscard]] int k() const { return static_cast<int>(counts().size()); }

  /// Run until consensus or until `max_native` total native time has
  /// elapsed. Returns true iff consensus was reached.
  bool run_to_consensus(std::uint64_t max_native);

  /// Like run_to_consensus, observing before the first step, at each
  /// multiple of `interval`, and after the last step (see the file
  /// comment for per-engine boundary exactness).
  bool run_observed(std::uint64_t max_native, std::uint64_t interval,
                    const Observer& observer);
};

}  // namespace kusd::sim
