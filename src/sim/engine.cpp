#include "sim/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kusd::sim {

bool Engine::run_to_consensus(std::uint64_t max_native) {
  while (!is_consensus() && elapsed() < max_native) {
    advance(max_native - elapsed());
  }
  return is_consensus();
}

bool Engine::run_observed(std::uint64_t max_native, std::uint64_t interval,
                          const Observer& observer) {
  KUSD_CHECK_MSG(interval > 0, "observer interval must be positive");
  observer(elapsed(), counts(), undecided());
  std::uint64_t next = elapsed() + interval;
  while (!is_consensus() && elapsed() < max_native) {
    // Advancing to the boundary (not the cap) lets exact engines land on
    // it; coarse-stepping engines overshoot by at most one step, and the
    // catch-up loop below re-aligns `next` either way.
    advance(std::min(next, max_native) - elapsed());
    if (elapsed() >= next) {
      observer(elapsed(), counts(), undecided());
      do {
        next += interval;
      } while (next <= elapsed());
    }
  }
  observer(elapsed(), counts(), undecided());
  return is_consensus();
}

}  // namespace kusd::sim
