#include "sim/registry.hpp"

#include <utility>

#include "pp/configuration.hpp"
#include "sim/engines.hpp"
#include "util/check.hpp"

namespace kusd::sim {

Registry::Registry() { register_builtin_engines(*this); }

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::string name, EngineInfo info) {
  KUSD_CHECK_MSG(!name.empty(), "engine name must be non-empty");
  KUSD_CHECK_MSG(info.factory != nullptr,
                 "engine '" + name + "' needs a factory");
  const auto [it, inserted] = engines_.emplace(std::move(name),
                                               std::move(info));
  KUSD_CHECK_MSG(inserted, "engine '" + it->first + "' already registered");
}

bool Registry::contains(const std::string& name) const {
  return engines_.count(name) != 0;
}

const EngineInfo* Registry::find(const std::string& name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : &it->second;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& [name, info] : engines_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string Registry::names_joined() const {
  std::string out;
  for (const auto& [name, info] : engines_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::unique_ptr<Engine> Registry::create(const std::string& name,
                                         const pp::Configuration& initial,
                                         std::uint64_t seed,
                                         const EngineOptions& options) const {
  const EngineInfo* info = find(name);
  KUSD_CHECK_MSG(info != nullptr, "unknown engine '" + name +
                                      "' (registered: " + names_joined() +
                                      ")");
  return info->factory(initial, seed, options);
}

}  // namespace kusd::sim
