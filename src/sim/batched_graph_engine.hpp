// "graph-batched": degree-aggregated tau-leaping over a GraphSpec
// topology — graph sweeps at the batched engine's population scale.
//
// The per-interaction "graph" engine is faithful to one realized edge set
// but stores O(n) vertex states and advances one edge per step, which
// stalls graph sweeps orders of magnitude below the batched engine's
// 10^9 populations. This engine is the aggregation-over-structure escape:
// the topology is collapsed to a pp::DegreeClassModel (a handful of
// (degree, size) classes), vertex state to per-(class, opinion) counts,
// and whole Theta(n)-interaction chunks advance through one multinomial
// draw over the (state-pair x degree-class) event families
// (core::RoundEngine::try_async_class_chunk) with chunk lengths scheduled
// by the same error-controlled core::ChunkController the batched engine
// uses. Chunks that overshoot a count are halved and redrawn down to
// m = 1 — a single interaction of the annealed chain, which is always
// exact — so near consensus the engine degrades gracefully to the exact
// per-interaction limit of its model, the role pp::GraphScheduler plays
// for the materialized engine.
//
// Model and its limits. The aggregation is the *annealed* (mean-field)
// scheduler: each interaction samples responder and initiator
// independently with probability proportional to degree, rather than
// along a fixed edge set. On `complete` this is exactly the
// edge-restricted scheduler's law (up to unproductive self-interactions),
// KS-tested against the per-interaction graph engine. On random regular
// and dense ER topologies it carries the standard O(1/d) mean-field bias:
// the quenched chain is *slower* (local opinion clustering the mean field
// does not see) — measured ~+50% consensus time at d = 8, ~+10% at
// d = 32, and below KS detectability at property-test scale by d = 64
// (tests/test_batched_graph.cpp pins both the dense agreement and the
// sparse bias direction/magnitude; bench_graph_batched records them).
// It deliberately does NOT capture slow mixing from low conductance:
// `cycle` runs at complete-graph speed here. Use the per-interaction
// "graph" engine when the quenched geometry is the point; use this
// engine when degree structure at scale is (see docs/architecture.md).
//
// Sparse er:<p> realizes a zero-degree class (isolated vertices), the
// aggregated analogue of a disconnected topology: such populations never
// reach consensus and the sweep reports them as connected=0 / timeout
// instead of running them (see runner::Sweep).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/chunk_controller.hpp"
#include "core/round_engine.hpp"
#include "pp/configuration.hpp"
#include "pp/degree_classes.hpp"
#include "rng/rng.hpp"
#include "sim/engine.hpp"

namespace kusd::sim {

class BatchedGraphEngine final : public Engine {
 public:
  BatchedGraphEngine(const pp::Configuration& initial, std::uint64_t seed,
                     const EngineOptions& options);

  void advance(std::uint64_t budget) override;
  [[nodiscard]] std::span<const pp::Count> counts() const override {
    return totals_;
  }
  [[nodiscard]] pp::Count undecided() const override {
    return undecided_total_;
  }
  [[nodiscard]] pp::Count n() const override { return n_; }
  [[nodiscard]] std::uint64_t elapsed() const override {
    return interactions_;
  }
  [[nodiscard]] double parallel_time() const override {
    return static_cast<double>(interactions_) / static_cast<double>(n_);
  }
  [[nodiscard]] bool is_consensus() const override {
    return winner_.has_value();
  }
  [[nodiscard]] int consensus_opinion() const override { return *winner_; }
  [[nodiscard]] std::uint64_t default_budget() const override;
  [[nodiscard]] std::uint64_t default_observe_interval() const override;
  /// The aggregated notion of connectivity: a realized zero-degree class
  /// is the only disconnection an annealed model can express.
  [[nodiscard]] std::optional<bool> topology_connected() const override {
    return !model_.has_isolated_vertices();
  }

  // ---- Introspection (tests, benches) ----
  /// Multinomial chunks drawn so far (including halved retries).
  [[nodiscard]] std::uint64_t chunks() const { return chunks_; }
  [[nodiscard]] const pp::DegreeClassModel& degree_model() const {
    return model_;
  }
  /// Class-major per-(class, opinion) counts (classes * k entries).
  [[nodiscard]] std::span<const pp::Count> class_counts() const {
    return class_counts_;
  }
  [[nodiscard]] std::span<const pp::Count> class_undecided() const {
    return class_undecided_;
  }

 private:
  /// Advance one chunk, clamped to `max_length` interactions (halved on
  /// overshoot down to the always-exact m = 1).
  void step(std::uint64_t max_length);
  /// Recompute the k aggregated totals and the consensus flag (O(Ck)).
  void refresh_totals();

  pp::Count n_;
  pp::DegreeClassModel model_;
  std::vector<double> class_weights_;       // per-class degree
  std::vector<pp::Count> class_counts_;     // classes * k, class-major
  std::vector<pp::Count> class_undecided_;  // per class
  std::vector<pp::Count> totals_;           // k aggregated opinion counts
  pp::Count undecided_total_ = 0;
  core::ChunkController controller_;
  core::RoundEngine engine_;
  rng::Rng rng_;
  std::uint64_t interactions_ = 0;
  std::uint64_t chunks_ = 0;
  std::optional<int> winner_;
};

}  // namespace kusd::sim
