#include "rng/rng.hpp"

#include <algorithm>
#include <cmath>

#include "rng/binomial.hpp"
#include "util/check.hpp"

namespace kusd::rng {

std::uint64_t Rng::bounded(std::uint64_t bound) {
  KUSD_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::geometric_failures(double p) {
  KUSD_CHECK_MSG(p > 0.0 && p <= 1.0, "geometric parameter out of range");
  if (p == 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)), U in (0,1].
  double u = 1.0 - uniform01();  // (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  return rng::binomial(*this, n, p);
}

void Rng::multinomial_into(std::uint64_t n, std::span<const double> weights,
                           std::span<std::uint64_t> out) {
  KUSD_CHECK_MSG(out.size() == weights.size(),
                 "multinomial output size must match the weight count");
  std::fill(out.begin(), out.end(), 0);
  double remaining_weight = 0.0;
  for (double w : weights) {
    KUSD_CHECK_MSG(w >= 0.0, "multinomial weight must be non-negative");
    remaining_weight += w;
  }
  std::uint64_t remaining = n;
  for (std::size_t i = 0; i + 1 < weights.size() && remaining > 0; ++i) {
    if (remaining_weight <= 0.0) break;
    const double p = std::min(1.0, weights[i] / remaining_weight);
    const std::uint64_t draw = binomial(remaining, p);
    out[i] = draw;
    remaining -= draw;
    remaining_weight -= weights[i];
  }
  if (!weights.empty()) out.back() += remaining;
}

std::vector<std::uint64_t> Rng::multinomial(std::uint64_t n,
                                            std::span<const double> weights) {
  std::vector<std::uint64_t> out(weights.size(), 0);
  multinomial_into(n, weights, out);
  return out;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

}  // namespace kusd::rng
