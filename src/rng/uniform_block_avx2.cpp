// AVX2 tier of rng::uniform_block: four Philox-2x64-10 blocks (eight
// uniforms) per iteration. Same construction as the SSE2 tier at twice
// the lane width — see uniform_block_sse2.cpp for the exactness argument
// of the 32-bit-limb multiply and the u64 -> double graft; both are
// lane-width-independent, which is what keeps every tier bit-identical.
//
// Compiled with -mavx2 (and -ffp-contract=off, so no FMA contraction can
// alter a rounding) only in SIMD-enabled builds; the dispatcher guards
// all calls with a runtime cpuid probe.
#include <immintrin.h>

#include "rng/rng.hpp"
#include "rng/uniform_block_tiers.hpp"

namespace kusd::rng::detail {

namespace {

inline void mul_philox_full(__m256i a, __m256i& hi, __m256i& lo) {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i b_lo = _mm256_set1_epi64x(
      static_cast<long long>(kPhiloxMultiplier & 0xFFFFFFFFULL));
  const __m256i b_hi =
      _mm256_set1_epi64x(static_cast<long long>(kPhiloxMultiplier >> 32));
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i p00 = _mm256_mul_epu32(a, b_lo);
  const __m256i p01 = _mm256_mul_epu32(a, b_hi);
  const __m256i p10 = _mm256_mul_epu32(a_hi, b_lo);
  const __m256i p11 = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i mid = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(p00, 32),
                       _mm256_and_si256(p01, mask32)),
      _mm256_and_si256(p10, mask32));
  lo = _mm256_or_si256(_mm256_and_si256(p00, mask32),
                       _mm256_slli_epi64(mid, 32));
  hi = _mm256_add_epi64(
      _mm256_add_epi64(p11, _mm256_srli_epi64(mid, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(p01, 32),
                       _mm256_srli_epi64(p10, 32)));
}

inline __m256d to_unit(__m256i word) {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  const __m256i exp84 = _mm256_set1_epi64x(0x4530000000000000LL);  // 2^84
  const __m256d bias = _mm256_set1_pd(1.9342813118337666422669312e25);
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  const __m256i v = _mm256_srli_epi64(word, 11);
  const __m256i v_lo = _mm256_or_si256(_mm256_and_si256(v, mask32), exp52);
  const __m256i v_hi = _mm256_or_si256(_mm256_srli_epi64(v, 32), exp84);
  const __m256d d = _mm256_add_pd(
      _mm256_sub_pd(_mm256_castsi256_pd(v_hi), bias),
      _mm256_castsi256_pd(v_lo));
  return _mm256_mul_pd(d, scale);
}

}  // namespace

void uniform_block_avx2(std::uint64_t key, std::uint64_t counter_hi,
                        std::uint64_t counter_lo, std::span<double> out) {
  const __m256i weyl =
      _mm256_set1_epi64x(static_cast<long long>(kPhiloxWeyl));
  std::size_t i = 0;
  // Four independent round chains per iteration (16 blocks, 32 doubles):
  // one chain is a serial 10-round dependency whose emulated 64-bit
  // multiply leaves the integer ports mostly idle; four chains at the
  // same depth keep them saturated (measured ~1.7x over a single chain
  // on the dev container).
  for (; i + 32 <= out.size(); i += 32, counter_lo += 16) {
    __m256i x0[4], x1[4], k[4];
    for (int c = 0; c < 4; ++c) {
      const std::uint64_t base = counter_lo + 4ull * static_cast<unsigned>(c);
      x0[c] = _mm256_set_epi64x(static_cast<long long>(base + 3),
                                static_cast<long long>(base + 2),
                                static_cast<long long>(base + 1),
                                static_cast<long long>(base));
      x1[c] = _mm256_set1_epi64x(static_cast<long long>(counter_hi));
      k[c] = _mm256_set1_epi64x(static_cast<long long>(key));
    }
    for (int round = 0; round < 10; ++round) {
      for (int c = 0; c < 4; ++c) {
        __m256i hi, lo;
        mul_philox_full(x0[c], hi, lo);
        x0[c] = _mm256_xor_si256(_mm256_xor_si256(hi, k[c]), x1[c]);
        x1[c] = lo;
        k[c] = _mm256_add_epi64(k[c], weyl);
      }
    }
    for (int c = 0; c < 4; ++c) {
      const __m256d d0 = to_unit(x0[c]);
      const __m256d d1 = to_unit(x1[c]);
      const __m256d even = _mm256_unpacklo_pd(d0, d1);
      const __m256d odd = _mm256_unpackhi_pd(d0, d1);
      _mm256_storeu_pd(&out[i + 8 * static_cast<std::size_t>(c)],
                       _mm256_permute2f128_pd(even, odd, 0x20));
      _mm256_storeu_pd(&out[i + 8 * static_cast<std::size_t>(c) + 4],
                       _mm256_permute2f128_pd(even, odd, 0x31));
    }
  }
  for (; i + 8 <= out.size(); i += 8, counter_lo += 4) {
    __m256i x0 = _mm256_set_epi64x(static_cast<long long>(counter_lo + 3),
                                   static_cast<long long>(counter_lo + 2),
                                   static_cast<long long>(counter_lo + 1),
                                   static_cast<long long>(counter_lo));
    __m256i x1 = _mm256_set1_epi64x(static_cast<long long>(counter_hi));
    __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
    for (int round = 0; round < 10; ++round) {
      __m256i hi, lo;
      mul_philox_full(x0, hi, lo);
      x0 = _mm256_xor_si256(_mm256_xor_si256(hi, k), x1);
      x1 = lo;
      k = _mm256_add_epi64(k, weyl);
    }
    // Interleave per block: out[2j] from x0's lane j, out[2j + 1] from
    // x1's. unpack keeps 128-bit halves together, so a cross-half permute
    // restores block order.
    const __m256d d0 = to_unit(x0);
    const __m256d d1 = to_unit(x1);
    const __m256d even = _mm256_unpacklo_pd(d0, d1);
    const __m256d odd = _mm256_unpackhi_pd(d0, d1);
    _mm256_storeu_pd(&out[i], _mm256_permute2f128_pd(even, odd, 0x20));
    _mm256_storeu_pd(&out[i + 4], _mm256_permute2f128_pd(even, odd, 0x31));
  }
  // Ragged tail (< 4 full blocks): the scalar reference arithmetic.
  for (; i < out.size(); i += 2, ++counter_lo) {
    const auto block = philox2x64(counter_lo, counter_hi, key);
    out[i] = static_cast<double>(block[0] >> 11) * 0x1.0p-53;
    if (i + 1 < out.size()) {
      out[i + 1] = static_cast<double>(block[1] >> 11) * 0x1.0p-53;
    }
  }
}

}  // namespace kusd::rng::detail
