// In-repo binomial sampler: BINV inversion + BTRS transformed rejection.
//
// Replaces std::binomial_distribution for three reasons:
//
//  * Speed. The tau-leap engines draw one conditional binomial per event
//    family per chunk, each with a fresh (n, p); libstdc++'s sampler
//    re-runs its lgamma-heavy parameter setup on every construction,
//    which dominates the whole hot loop (~200 ns/draw at n = 1e8). BINV
//    costs a handful of multiplies for small means and BTRS (Hörmann,
//    "The generation of binomial random variates", 1993) accepts ~86% of
//    candidates with two uniforms and a few flops each.
//  * Thread cleanliness. glibc's lgamma() writes the process-global
//    `signgam` (POSIX mandates it), so concurrent trials drawing
//    binomials race on it — the one historical tsan suppression in this
//    tree. log_factorial below is a table + Stirling tail and calls no
//    libm function with hidden global state.
//  * Stream portability. The standard library's binomial algorithm is
//    unspecified, so seeded runs were only reproducible within one
//    standard library. This sampler consumes the Rng stream identically
//    everywhere.
//
// All samplers are exact-distribution (rejection, not approximation); the
// only inexactness is ~1e-12 relative error in the log-pmf used by BTRS's
// accept test, far below KS detectability (pinned by tests/test_rng.cpp).
#pragma once

#include <cstdint>
#include <span>

#include "rng/rng.hpp"

namespace kusd::rng {

/// ln(k!) with no lgamma: correctly-rounded literal table for small k,
/// Stirling series (two correction terms) beyond it, with the in-repo
/// log (detail::log_pos) so the value is a pure function of k on every
/// platform. Max relative error ~1e-13.
[[nodiscard]] double log_factorial(std::uint64_t k);

/// One Binomial(n, p) sample from `rng`'s stream; p in [0, 1]. The edge
/// cases n == 0, p == 0 (returns 0) and p == 1 (returns n) consume no
/// randomness, so callers skipping degenerate draws keep the same stream
/// position either way. p > 0.5 is served by reflection
/// (n - Binomial(n, 1 - p)).
[[nodiscard]] std::uint64_t binomial(Rng& rng, std::uint64_t n, double p);

/// Batched entry point for lockstep many-trial kernels: out[i] =
/// binomial(*rngs[i], ns[i], ps[i]). Each draw comes from its own trial's
/// stream, so every per-stream draw sequence is exactly what the scalar
/// call would produce — batching changes dispatch cost and execution
/// order, never per-stream results. Internally the batch is partitioned
/// into cohorts (degenerate / BINV / BTRS) with per-(n, p) setup
/// memoization, and the BTRS cohort runs through the lane-batched SIMD
/// kernel of the active tier (rng/simd.hpp), so draws may execute in any
/// order across the batch. All spans must have equal length, and the rng
/// pointers must be distinct within one call (one draw per stream);
/// callers needing several draws from one stream make several calls.
void binomial_batch(std::span<Rng* const> rngs,
                    std::span<const std::uint64_t> ns,
                    std::span<const double> ps, std::span<std::uint64_t> out);

/// Convenience overload over a contiguous Rng array (one draw per Rng).
void binomial_batch(std::span<Rng> rngs, std::span<const std::uint64_t> ns,
                    std::span<const double> ps, std::span<std::uint64_t> out);

class PhiloxUniformStream;

/// Shared-stream batch: out[i] = Binomial(ns[i], ps[i]) with every draw
/// consumed sequentially, in index order, from one counter-based uniform
/// stream (rng/uniform_block.hpp). This is the shared lockstep schedule's
/// sampler: no per-trial streams to gather, at the deliberate cost of
/// per-stream bit-identity to the scalar engine. Draw order is the
/// contract here, so this path is scalar (memoized, never lane-batched)
/// and self-deterministic by construction. Degenerate draws consume no
/// uniforms, exactly like the Rng paths.
void binomial_batch(PhiloxUniformStream& uniforms,
                    std::span<const std::uint64_t> ns,
                    std::span<const double> ps, std::span<std::uint64_t> out);

}  // namespace kusd::rng
