// SSE2 toolkit (W = 2) for the lane-batched BTRS kernel — compiled with
// baseline x86-64 flags only, so it is valid on every CPU the binary runs
// on and serves as the fallback vector tier. SSE2 has no packed floor
// (that is SSE4.1's roundpd), so floor_pd spills through std::floor;
// everything else stays in registers.
#include <emmintrin.h>

#include <cmath>
#include <cstdint>

#include "rng/binomial_lanes_impl.hpp"

namespace kusd::rng::detail {

namespace {

struct Sse2Ops {
  static constexpr int kWidth = 2;
  using VU = __m128i;
  using VD = __m128d;

  static VU load_u64(const std::uint64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store_u64(std::uint64_t* p, VU x) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), x);
  }
  static VD load_pd(const double* p) { return _mm_loadu_pd(p); }
  static void store_pd(double* p, VD x) { _mm_storeu_pd(p, x); }
  static VD set1_pd(double x) { return _mm_set1_pd(x); }

  static VU add_u64(VU a, VU b) { return _mm_add_epi64(a, b); }
  static VU xor_u64(VU a, VU b) { return _mm_xor_si128(a, b); }
  template <int N>
  static VU slli(VU x) {
    return _mm_slli_epi64(x, N);
  }
  template <int N>
  static VU rotl(VU x) {
    return _mm_or_si128(_mm_slli_epi64(x, N), _mm_srli_epi64(x, 64 - N));
  }
  /// mask ? b : a, with mask all-ones or all-zero per 64-bit lane.
  static VU blend_u64(VU a, VU b, VU mask) {
    return _mm_or_si128(_mm_and_si128(mask, b), _mm_andnot_si128(mask, a));
  }

  static VD add_pd(VD a, VD b) { return _mm_add_pd(a, b); }
  static VD sub_pd(VD a, VD b) { return _mm_sub_pd(a, b); }
  static VD mul_pd(VD a, VD b) { return _mm_mul_pd(a, b); }
  static VD div_pd(VD a, VD b) { return _mm_div_pd(a, b); }
  static VD sqrt_pd(VD a) { return _mm_sqrt_pd(a); }
  static VD abs_pd(VD a) {
    return _mm_andnot_pd(_mm_set1_pd(-0.0), a);
  }
  static VD cmpge_pd(VD a, VD b) { return _mm_cmpge_pd(a, b); }
  static VD cmple_pd(VD a, VD b) { return _mm_cmple_pd(a, b); }
  static VD and_pd(VD a, VD b) { return _mm_and_pd(a, b); }
  /// ~a & b (the intrinsic's operand order).
  static VD andnot_pd(VD a, VD b) { return _mm_andnot_pd(a, b); }
  /// mask ? b : a, with mask all-ones or all-zero per lane.
  static VD blend_pd(VD a, VD b, VD mask) {
    return _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a));
  }
  static int movemask_pd(VD a) { return _mm_movemask_pd(a); }
  static VU castpd_u64(VD a) { return _mm_castpd_si128(a); }
  static VD castu64_pd(VU a) { return _mm_castsi128_pd(a); }
  /// Per-lane std::floor (SSE2 has no packed floor instruction). Exact by
  /// definition, including the +-inf lanes a zero `us` produces.
  static VD floor_pd(VD a) {
    alignas(16) double tmp[2];
    _mm_store_pd(tmp, a);
    tmp[0] = std::floor(tmp[0]);
    tmp[1] = std::floor(tmp[1]);
    return _mm_load_pd(tmp);
  }

  /// u64 -> double, correctly rounded over the full u64 range: graft the
  /// 32-bit halves of v onto the exponents 2^52 and 2^84, then
  /// (hi_d - (2^84 + 2^52)) + lo_d. The subtraction is exact
  /// ((hi - 2^20) * 2^32 needs <= 33 significand bits) and the final add
  /// is one correctly-rounded operation whose real-valued sum is v, so
  /// the result equals static_cast<double>(v) bit-for-bit.
  static VD u64_to_double(VU v) {
    const __m128i mask32 = _mm_set1_epi64x(0xFFFFFFFFLL);
    const __m128i exp52 = _mm_set1_epi64x(0x4330000000000000LL);  // 2^52
    const __m128i exp84 = _mm_set1_epi64x(0x4530000000000000LL);  // 2^84
    const __m128d bias = _mm_set1_pd(1.9342813118337666422669312e25);
    const __m128i v_lo = _mm_or_si128(_mm_and_si128(v, mask32), exp52);
    const __m128i v_hi = _mm_or_si128(_mm_srli_epi64(v, 32), exp84);
    return _mm_add_pd(_mm_sub_pd(_mm_castsi128_pd(v_hi), bias),
                      _mm_castsi128_pd(v_lo));
  }

  /// (word >> 11) * 2^-53, the Rng::uniform01 mapping, bit-identical to
  /// the scalar expression (the conversion input is < 2^53, where the
  /// graft above is exact rather than merely correctly rounded).
  static VD to_unit(VU word) {
    return _mm_mul_pd(u64_to_double(_mm_srli_epi64(word, 11)),
                      _mm_set1_pd(0x1.0p-53));
  }
};

}  // namespace

void btrs_lanes_sse2(const LaneBatchView& batch) {
  // Two interleaved xmm pairs (W = 4): the dependency chains of the two
  // halves overlap in the OOO window, hiding most of the div/sqrt latency
  // a single xmm group would expose.
  btrs_lanes_run<DualOps<Sse2Ops>>(batch);
}

}  // namespace kusd::rng::detail
