// Internal: lane-batched BTRS cohort kernels.
//
// binomial_batch partitions a batch into cohorts (degenerate / BINV /
// BTRS) and hands the BTRS cohort — the sqrt/div-heavy one — to the lane
// kernel of the active SIMD tier through this view. Each lane consumes
// its own Rng stream, so every per-stream draw sequence stays bit-for-bit
// what the scalar sampler would have produced; only the cross-stream
// interleaving of work changes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rng/rng.hpp"

namespace kusd::rng::detail {

/// Cohort-gathered view of one BTRS batch: parallel arrays of the
/// reduced draws (p <= 0.5, np >= 10, non-degenerate; reflection is the
/// caller's job). The kernels write raw draws to outs and advance each
/// Rng exactly as the scalar sampler would have. Pointers in rngs must be
/// distinct.
struct LaneBatchView {
  Rng* const* rngs = nullptr;
  const std::uint64_t* ns = nullptr;
  const double* ps = nullptr;
  std::uint64_t* outs = nullptr;
  std::size_t size = 0;
};

// Per-ISA instantiations of the width-templated kernel
// (binomial_lanes_{sse2,avx2}.cpp). Definitions exist only in
// SIMD-enabled builds; the dispatcher in binomial.cpp gates every call on
// KUSD_SIMD_ENABLED and the active tier.
void btrs_lanes_sse2(const LaneBatchView& batch);
void btrs_lanes_avx2(const LaneBatchView& batch);

}  // namespace kusd::rng::detail
