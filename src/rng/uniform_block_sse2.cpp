// SSE2 tier of rng::uniform_block: two Philox-2x64-10 blocks (four
// uniforms) per iteration. SSE2 is part of the x86-64 baseline, so this
// TU carries no extra -m flags and serves as the fallback vector tier on
// pre-AVX2 hardware.
//
// Bit-identity with the scalar path holds because every step is either
// integer arithmetic (trivially exact) or one of the two floating-point
// sequences proved exact below (the u64 -> double graft in to_unit); no
// step depends on the lane width.
#include <emmintrin.h>

#include "rng/rng.hpp"
#include "rng/uniform_block_tiers.hpp"

namespace kusd::rng::detail {

namespace {

/// Full 64x64 -> 128 multiply of each lane by kPhiloxMultiplier, built
/// from 32-bit partial products (_mm_mul_epu32 is the widest SSE2
/// multiply): with a = (a_hi:a_lo) and b = (b_hi:b_lo),
///   lo = (a_lo*b_lo).lo | (mid << 32),
///   hi = a_hi*b_hi + (a_lo*b_hi).hi + (a_hi*b_lo).hi + (mid >> 32),
///   mid = (a_lo*b_lo).hi + (a_lo*b_hi).lo + (a_hi*b_lo).lo  (< 2^34).
inline void mul_philox_full(__m128i a, __m128i& hi, __m128i& lo) {
  const __m128i mask32 = _mm_set1_epi64x(0xFFFFFFFFLL);
  const __m128i b_lo =
      _mm_set1_epi64x(static_cast<long long>(kPhiloxMultiplier & 0xFFFFFFFFULL));
  const __m128i b_hi =
      _mm_set1_epi64x(static_cast<long long>(kPhiloxMultiplier >> 32));
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i p00 = _mm_mul_epu32(a, b_lo);
  const __m128i p01 = _mm_mul_epu32(a, b_hi);
  const __m128i p10 = _mm_mul_epu32(a_hi, b_lo);
  const __m128i p11 = _mm_mul_epu32(a_hi, b_hi);
  const __m128i mid = _mm_add_epi64(
      _mm_add_epi64(_mm_srli_epi64(p00, 32), _mm_and_si128(p01, mask32)),
      _mm_and_si128(p10, mask32));
  lo = _mm_or_si128(_mm_and_si128(p00, mask32), _mm_slli_epi64(mid, 32));
  hi = _mm_add_epi64(
      _mm_add_epi64(p11, _mm_srli_epi64(mid, 32)),
      _mm_add_epi64(_mm_srli_epi64(p01, 32), _mm_srli_epi64(p10, 32)));
}

/// (word >> 11) * 2^-53 with the u64 -> double conversion done exactly in
/// SSE2 (which has no 64-bit int -> double instruction): graft the 32-bit
/// halves of v = word >> 11 (< 2^53) onto the exponents 2^52 and 2^84,
/// then (hi_d - (2^84 + 2^52)) + lo_d == v with every operation exact —
/// so the result is bit-identical to the scalar
/// static_cast<double>(v) * 2^-53.
inline __m128d to_unit(__m128i word) {
  const __m128i mask32 = _mm_set1_epi64x(0xFFFFFFFFLL);
  const __m128i exp52 = _mm_set1_epi64x(0x4330000000000000LL);  // 2^52
  const __m128i exp84 = _mm_set1_epi64x(0x4530000000000000LL);  // 2^84
  const __m128d bias = _mm_set1_pd(1.9342813118337666422669312e25);
  const __m128d scale = _mm_set1_pd(0x1.0p-53);
  const __m128i v = _mm_srli_epi64(word, 11);
  const __m128i v_lo = _mm_or_si128(_mm_and_si128(v, mask32), exp52);
  const __m128i v_hi = _mm_or_si128(_mm_srli_epi64(v, 32), exp84);
  const __m128d d = _mm_add_pd(_mm_sub_pd(_mm_castsi128_pd(v_hi), bias),
                               _mm_castsi128_pd(v_lo));
  return _mm_mul_pd(d, scale);
}

}  // namespace

void uniform_block_sse2(std::uint64_t key, std::uint64_t counter_hi,
                        std::uint64_t counter_lo, std::span<double> out) {
  const __m128i weyl =
      _mm_set1_epi64x(static_cast<long long>(kPhiloxWeyl));
  std::size_t i = 0;
  // Two independent round chains per iteration (4 blocks, 8 doubles):
  // a single chain is a serial 10-round dependency, so pairing chains at
  // the same depth overlaps the emulated-multiply latency (the same
  // latency-hiding move as the AVX2 tier's four chains, kept at two here
  // to stay within the 16 xmm registers).
  for (; i + 8 <= out.size(); i += 8, counter_lo += 4) {
    __m128i a0 = _mm_set_epi64x(static_cast<long long>(counter_lo + 1),
                                static_cast<long long>(counter_lo));
    __m128i b0 = _mm_set_epi64x(static_cast<long long>(counter_lo + 3),
                                static_cast<long long>(counter_lo + 2));
    __m128i a1 = _mm_set1_epi64x(static_cast<long long>(counter_hi));
    __m128i b1 = a1;
    __m128i ka = _mm_set1_epi64x(static_cast<long long>(key));
    __m128i kb = ka;
    for (int round = 0; round < 10; ++round) {
      __m128i hia, loa, hib, lob;
      mul_philox_full(a0, hia, loa);
      mul_philox_full(b0, hib, lob);
      a0 = _mm_xor_si128(_mm_xor_si128(hia, ka), a1);
      b0 = _mm_xor_si128(_mm_xor_si128(hib, kb), b1);
      a1 = loa;
      b1 = lob;
      ka = _mm_add_epi64(ka, weyl);
      kb = _mm_add_epi64(kb, weyl);
    }
    {
      const __m128d d0 = to_unit(a0);
      const __m128d d1 = to_unit(a1);
      _mm_storeu_pd(&out[i], _mm_unpacklo_pd(d0, d1));
      _mm_storeu_pd(&out[i + 2], _mm_unpackhi_pd(d0, d1));
    }
    {
      const __m128d d0 = to_unit(b0);
      const __m128d d1 = to_unit(b1);
      _mm_storeu_pd(&out[i + 4], _mm_unpacklo_pd(d0, d1));
      _mm_storeu_pd(&out[i + 6], _mm_unpackhi_pd(d0, d1));
    }
  }
  for (; i + 4 <= out.size(); i += 4, counter_lo += 2) {
    __m128i x0 = _mm_set_epi64x(static_cast<long long>(counter_lo + 1),
                                static_cast<long long>(counter_lo));
    __m128i x1 = _mm_set1_epi64x(static_cast<long long>(counter_hi));
    __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
    for (int round = 0; round < 10; ++round) {
      __m128i hi, lo;
      mul_philox_full(x0, hi, lo);
      x0 = _mm_xor_si128(_mm_xor_si128(hi, k), x1);
      x1 = lo;
      k = _mm_add_epi64(k, weyl);
    }
    // Block j yields out[2j] from x0's lane j and out[2j + 1] from x1's.
    const __m128d d0 = to_unit(x0);
    const __m128d d1 = to_unit(x1);
    _mm_storeu_pd(&out[i], _mm_unpacklo_pd(d0, d1));
    _mm_storeu_pd(&out[i + 2], _mm_unpackhi_pd(d0, d1));
  }
  // Ragged tail (< 2 full blocks): the scalar reference arithmetic.
  for (; i < out.size(); i += 2, ++counter_lo) {
    const auto block = philox2x64(counter_lo, counter_hi, key);
    out[i] = static_cast<double>(block[0] >> 11) * 0x1.0p-53;
    if (i + 1 < out.size()) {
      out[i + 1] = static_cast<double>(block[1] >> 11) * 0x1.0p-53;
    }
  }
}

}  // namespace kusd::rng::detail
