#include "rng/binomial.hpp"

#include <array>
#include <cmath>

#include "util/check.hpp"

namespace kusd::rng {

namespace {

// Exact table size: large enough that the Stirling tail's worst case
// (k = kTableSize) is deep inside its accuracy regime.
constexpr std::size_t kTableSize = 128;

std::array<double, kTableSize> build_log_factorial_table() {
  std::array<double, kTableSize> table{};
  long double acc = 0.0L;
  for (std::size_t k = 1; k < kTableSize; ++k) {
    acc += std::log(static_cast<long double>(k));
    table[k] = static_cast<double>(acc);
  }
  return table;
}

constexpr double kHalfLogTwoPi = 0.91893853320467274178;  // ln(2*pi)/2

// BINV gives up after this many inversion steps and restarts with a fresh
// uniform: with np < 10 the region beyond is ~1e-60 probability, but a
// floating-point-underflowed pmf recurrence could otherwise spin to n.
constexpr std::uint64_t kBinvCutoff = 110;

/// ln(1 - p) without a libm call for small p: the Mercator series
/// truncated after p^5 has absolute error < p^6/6, so for p <= 1e-4 the
/// error in n * ln(q) stays below 1e-12 even at n = 1e8 — far inside the
/// sampler's documented log-domain tolerance. Matters because the
/// tau-leap draws mostly tiny per-family probabilities, making this the
/// common BINV setup path.
double log1m(double p) {
  if (p > 1e-4) return std::log1p(-p);
  const double p2 = p * p;
  return -(p + p2 * (0.5 + p * (1.0 / 3.0)) +
           p2 * p2 * (0.25 + p * 0.2));
}

/// exp(z) for |z| < 0.09 via a degree-7 Taylor polynomial: the truncation
/// error z^8/8! is below 1e-13 on that interval, matching libm's accuracy
/// for this use. Over half the tau-leap's BINV setups land here (tiny
/// family probabilities make n * ln(q) nearly zero), so skipping the
/// out-of-line exp call is a measurable share of the whole draw.
double exp_small(double z) {
  double acc = 1.0 / 5040.0;
  acc = acc * z + 1.0 / 720.0;
  acc = acc * z + 1.0 / 120.0;
  acc = acc * z + 1.0 / 24.0;
  acc = acc * z + 1.0 / 6.0;
  acc = acc * z + 0.5;
  acc = acc * z + 1.0;
  return acc * z + 1.0;
}

/// Inversion by sequential search for small means (np < 10, p <= 0.5).
std::uint64_t binv(Rng& rng, std::uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = (static_cast<double>(n) + 1.0) * s;
  const double z = static_cast<double>(n) * log1m(p);
  const double r0 = z > -0.09 ? exp_small(z) : std::exp(z);  // q^n
  for (;;) {
    double u = rng.uniform01();
    double r = r0;
    std::uint64_t x = 0;
    while (u > r) {
      if (x >= n) return n;  // all remaining mass sits at x = n
      u -= r;
      ++x;
      if (x > kBinvCutoff) break;
      r *= a / static_cast<double>(x) - s;
    }
    if (x <= kBinvCutoff) return x;
  }
}

// A squeeze-missing BTRS candidate within this distance of the mode runs
// the accept test in the linear domain (a short product of pmf ratios, no
// libm at all) instead of the log domain. pmf(m +- 64)/pmf(m) is at most
// ~exp(-64^2 / (2 * spq^2)) — far above double underflow for every spq
// this branch sees — and 64 terms of 1-2 ulp each keep the product's
// relative error ~1e-14, the same order as the log path.
constexpr double kNearModeWindow = 64.0;

/// Hörmann's BTRS transformed-rejection sampler (np >= 10, p <= 0.5):
/// ~86% of candidate pairs accept via the squeeze. The rest compare v
/// against the exact pmf ratio — multiplicatively when the candidate is
/// near the mode (the overwhelmingly common miss at small spq, where the
/// squeeze is weakest), in the log domain otherwise. Two uniforms per
/// candidate.
std::uint64_t btrs(Rng& rng, std::uint64_t n, double p) {
  const double dn = static_cast<double>(n);
  const double q = 1.0 - p;
  const double spq = std::sqrt(dn * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = dn * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double m = std::floor((dn + 1.0) * p);
  const double ratio = p / q;
  // The log-domain constants are only read on a far-from-mode squeeze
  // miss — a rare event the lazy setup keeps off the hot path (each is a
  // libm call, which would otherwise dominate the whole draw under the
  // tau-leap's fresh-(n, p)-per-call access pattern).
  double alpha = 0.0, log_ratio = 0.0, h = 0.0;
  bool slow_ready = false;
  for (;;) {
    const double u = rng.uniform01() - 0.5;
    const double v = rng.uniform01();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > dn) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
    const auto k = static_cast<std::uint64_t>(kd);
    if (std::abs(kd - m) <= kNearModeWindow) {
      // Accept iff v * alpha / (a/us^2 + b) <= pmf(k)/pmf(m); build the
      // ratio as a running product of one-step pmf ratios
      //   pmf(i)/pmf(i-1) = ((n - i + 1)/i) * p/q.
      double f = 1.0;
      if (kd > m) {
        for (double i = m + 1.0; i <= kd; i += 1.0) {
          f *= (dn - i + 1.0) / i * ratio;
        }
      } else {
        for (double i = kd + 1.0; i <= m; i += 1.0) {
          f *= i / ((dn - i + 1.0) * ratio);
        }
      }
      const double alpha_lin = (2.83 + 5.1 / b) * spq;
      if (v * alpha_lin <= f * (a / (us * us) + b)) return k;
      continue;
    }
    if (!slow_ready) {
      alpha = (2.83 + 5.1 / b) * spq;
      log_ratio = std::log(ratio);
      h = log_factorial(static_cast<std::uint64_t>(m)) +
          log_factorial(n - static_cast<std::uint64_t>(m));
      slow_ready = true;
    }
    const double lhs = std::log(v * alpha / (a / (us * us) + b));
    const double rhs = h - log_factorial(k) - log_factorial(n - k) +
                       (kd - m) * log_ratio;
    if (lhs <= rhs) return k;
  }
}

}  // namespace

double log_factorial(std::uint64_t k) {
  // Magic-static init is thread-safe and the table is read-only after.
  static const std::array<double, kTableSize> table =
      build_log_factorial_table();
  if (k < kTableSize) return table[k];
  const double dk = static_cast<double>(k);
  const double inv = 1.0 / dk;
  const double inv2 = inv * inv;
  return (dk + 0.5) * std::log(dk) - dk + kHalfLogTwoPi +
         inv * (1.0 / 12.0 - inv2 / 360.0);
}

std::uint64_t binomial(Rng& rng, std::uint64_t n, double p) {
  KUSD_CHECK_MSG(p >= 0.0 && p <= 1.0, "binomial probability out of range");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const bool reflect = p > 0.5;
  const double ps = reflect ? 1.0 - p : p;
  const std::uint64_t draw = static_cast<double>(n) * ps < 10.0
                                 ? binv(rng, n, ps)
                                 : btrs(rng, n, ps);
  return reflect ? n - draw : draw;
}

void binomial_batch(std::span<Rng* const> rngs,
                    std::span<const std::uint64_t> ns,
                    std::span<const double> ps,
                    std::span<std::uint64_t> out) {
  KUSD_CHECK_MSG(rngs.size() == ns.size() && ns.size() == ps.size() &&
                     ps.size() == out.size(),
                 "binomial_batch: span lengths must match");
  for (std::size_t i = 0; i < rngs.size(); ++i) {
    out[i] = binomial(*rngs[i], ns[i], ps[i]);
  }
}

void binomial_batch(std::span<Rng> rngs, std::span<const std::uint64_t> ns,
                    std::span<const double> ps,
                    std::span<std::uint64_t> out) {
  KUSD_CHECK_MSG(rngs.size() == ns.size() && ns.size() == ps.size() &&
                     ps.size() == out.size(),
                 "binomial_batch: span lengths must match");
  for (std::size_t i = 0; i < rngs.size(); ++i) {
    out[i] = binomial(rngs[i], ns[i], ps[i]);
  }
}

}  // namespace kusd::rng
