#include "rng/binomial.hpp"

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include "rng/binomial_detail.hpp"
#include "rng/binomial_lanes.hpp"
#include "rng/simd.hpp"
#include "rng/uniform_block.hpp"
#include "util/check.hpp"

namespace kusd::rng {

namespace {


/// Within-call memo of the last reduced (n, p) setup. The lockstep kernel
/// calls the batch with one event family's — frequently identical —
/// parameters across hundreds of trials, and the sweep's trial-inner
/// loops repeat (n, p) run-length-wise, so recomputing the sqrt/exp
/// setup per draw was pure waste. Correctness-neutral: the setup is a
/// pure function of (n, p), pinned by the bit-identity tests.
struct SetupCache {
  std::uint64_t n = 0;
  double p = -1.0;  // impossible reduced p: never matches
  bool is_btrs = false;
  detail::BinvSetup binv{};
  detail::BtrsSetup btrs{};
};

/// One reduced draw (validated p <= 0.5, degenerate cases already
/// resolved by the caller) through the memoized scalar samplers.
template <typename Uniforms>
std::uint64_t reduced_draw(Uniforms& uniforms, std::uint64_t n, double p,
                           SetupCache& cache) {
  if (n != cache.n || p != cache.p) {
    cache.n = n;
    cache.p = p;
    cache.is_btrs = static_cast<double>(n) * p >= detail::kBtrsCutoff;
    if (cache.is_btrs) {
      cache.btrs = detail::btrs_setup(n, p);
    } else {
      cache.binv = detail::binv_setup(n, p);
    }
  }
  return cache.is_btrs ? detail::btrs(uniforms, cache.btrs, n)
                       : detail::binv(uniforms, cache.binv, n);
}

/// BTRS lane kernel of the active tier, or nullptr when the build or the
/// tier is scalar-only.
using LanesFn = void (*)(const detail::LaneBatchView&);
LanesFn btrs_lanes_fn() {
#if defined(KUSD_SIMD_ENABLED)
  switch (simd::active_tier()) {
    case simd::Tier::kAvx2:
      return &detail::btrs_lanes_avx2;
    case simd::Tier::kSse2:
      return &detail::btrs_lanes_sse2;
    case simd::Tier::kScalar:
      break;
  }
#endif
  return nullptr;
}

struct BatchScratch {
  std::vector<std::size_t> btrs_index;
  std::vector<Rng*> lane_rngs;
  std::vector<std::uint64_t> lane_ns;
  std::vector<double> lane_ps;
  std::vector<std::uint64_t> lane_outs;
  std::vector<Rng*> pointers;  // contiguous-overload adapter
};

BatchScratch& scratch() {
  // One scratch per thread: binomial_batch runs concurrently from
  // independent sweep tasks, and each call fully consumes what it wrote,
  // so thread-local reuse is safe and keeps the hot path allocation-free
  // after warmup.
  thread_local BatchScratch scratch;
  return scratch;
}

/// Cohort pass over one batch: degenerate draws resolve inline (no
/// stream consumption), BINV draws run through the memoized scalar
/// sampler (cheap, and their inversion loop is too data-dependent to
/// lane-batch profitably), and BTRS draws — the sqrt/div/log-heavy
/// cohort — gather into the lane kernel of the active SIMD tier.
void batch_draw(std::span<Rng* const> rngs, std::span<const std::uint64_t> ns,
                std::span<const double> ps, std::span<std::uint64_t> out) {
  BatchScratch& sc = scratch();
  const LanesFn lanes = btrs_lanes_fn();
  sc.btrs_index.clear();
  SetupCache cache;
  for (std::size_t i = 0; i < rngs.size(); ++i) {
    const double p = ps[i];
    KUSD_CHECK_MSG(p >= 0.0 && p <= 1.0, "binomial probability out of range");
    const std::uint64_t n = ns[i];
    if (n == 0 || p == 0.0) {
      out[i] = 0;
      continue;
    }
    if (p == 1.0) {
      out[i] = n;
      continue;
    }
    const double reduced = p > 0.5 ? 1.0 - p : p;
    if (lanes != nullptr &&
        static_cast<double>(n) * reduced >= detail::kBtrsCutoff) {
      sc.btrs_index.push_back(i);
      continue;
    }
    const std::uint64_t draw = reduced_draw(*rngs[i], n, reduced, cache);
    out[i] = p > 0.5 ? n - draw : draw;
  }
  if (sc.btrs_index.empty()) return;
  sc.lane_rngs.clear();
  sc.lane_ns.clear();
  sc.lane_ps.clear();
  for (const std::size_t i : sc.btrs_index) {
    sc.lane_rngs.push_back(rngs[i]);
    sc.lane_ns.push_back(ns[i]);
    sc.lane_ps.push_back(ps[i] > 0.5 ? 1.0 - ps[i] : ps[i]);
  }
  sc.lane_outs.assign(sc.btrs_index.size(), 0);
  const detail::LaneBatchView view{sc.lane_rngs.data(), sc.lane_ns.data(),
                                   sc.lane_ps.data(), sc.lane_outs.data(),
                                   sc.btrs_index.size()};
  lanes(view);
  for (std::size_t j = 0; j < sc.btrs_index.size(); ++j) {
    const std::size_t i = sc.btrs_index[j];
    out[i] = ps[i] > 0.5 ? ns[i] - sc.lane_outs[j] : sc.lane_outs[j];
  }
}

}  // namespace

double log_factorial(std::uint64_t k) {
  return detail::log_factorial(k);
}

std::uint64_t binomial(Rng& rng, std::uint64_t n, double p) {
  KUSD_CHECK_MSG(p >= 0.0 && p <= 1.0, "binomial probability out of range");
  return detail::binomial_draw(rng, n, p);
}

void binomial_batch(std::span<Rng* const> rngs,
                    std::span<const std::uint64_t> ns,
                    std::span<const double> ps,
                    std::span<std::uint64_t> out) {
  KUSD_CHECK_MSG(rngs.size() == ns.size() && ns.size() == ps.size() &&
                     ps.size() == out.size(),
                 "binomial_batch: span lengths must match");
  batch_draw(rngs, ns, ps, out);
}

void binomial_batch(std::span<Rng> rngs, std::span<const std::uint64_t> ns,
                    std::span<const double> ps,
                    std::span<std::uint64_t> out) {
  KUSD_CHECK_MSG(rngs.size() == ns.size() && ns.size() == ps.size() &&
                     ps.size() == out.size(),
                 "binomial_batch: span lengths must match");
  BatchScratch& sc = scratch();
  sc.pointers.clear();
  for (Rng& rng : rngs) sc.pointers.push_back(&rng);
  batch_draw(sc.pointers, ns, ps, out);
}

void binomial_batch(PhiloxUniformStream& uniforms,
                    std::span<const std::uint64_t> ns,
                    std::span<const double> ps,
                    std::span<std::uint64_t> out) {
  KUSD_CHECK_MSG(ns.size() == ps.size() && ps.size() == out.size(),
                 "binomial_batch: span lengths must match");
  SetupCache cache;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const double p = ps[i];
    KUSD_CHECK_MSG(p >= 0.0 && p <= 1.0, "binomial probability out of range");
    const std::uint64_t n = ns[i];
    if (n == 0 || p == 0.0) {
      out[i] = 0;
      continue;
    }
    if (p == 1.0) {
      out[i] = n;
      continue;
    }
    const double reduced = p > 0.5 ? 1.0 - p : p;
    const std::uint64_t draw = reduced_draw(uniforms, n, reduced, cache);
    out[i] = p > 0.5 ? n - draw : draw;
  }
}

}  // namespace kusd::rng
