// The BINV/BTRS sampler arithmetic, shared by the scalar sampler
// (rng::binomial), the lane-batched cohort kernels (rng/binomial_lanes)
// and the shared-schedule stream sampler (the PhiloxUniformStream batch
// overload).
//
// Everything here is the single source of truth for the sampler's
// floating-point expressions. The lane kernels replay them term for
// term, which is what makes scalar/SIMD bit-identity hold by
// construction rather than by audit luck — and lets one set of tests pin
// all execution paths at once. The setup structs exist so per-(n, p)
// constants can be computed once and broadcast (or memoized) across a
// batch without changing a single rounding.
//
// `Uniforms` in the templated samplers is anything with a uniform01()
// returning doubles in [0, 1): rng::Rng (per-trial streams) or
// rng::PhiloxUniformStream (the shared lockstep schedule).
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "rng/binomial.hpp"

namespace kusd::rng::detail {

// BINV gives up after this many inversion steps and restarts with a fresh
// uniform: with np < 10 the region beyond is ~1e-60 probability, but a
// floating-point-underflowed pmf recurrence could otherwise spin to n.
inline constexpr std::uint64_t kBinvCutoff = 110;

// A squeeze-missing BTRS candidate within this distance of the mode runs
// the accept test in the linear domain (a short product of pmf ratios, no
// libm at all) instead of the log domain. pmf(m +- 64)/pmf(m) is at most
// ~exp(-64^2 / (2 * spq^2)) — far above double underflow for every spq
// this branch sees — and 64 terms of 1-2 ulp each keep the product's
// relative error ~1e-14, the same order as the log path.
inline constexpr double kNearModeWindow = 64.0;

// The np threshold splitting BINV (below) from BTRS cohorts.
inline constexpr double kBtrsCutoff = 10.0;

/// ln(1 - p) without a libm call for small p: the Mercator series
/// truncated after p^5 has absolute error < p^6/6, so for p <= 1e-4 the
/// error in n * ln(q) stays below 1e-12 even at n = 1e8 — far inside the
/// sampler's documented log-domain tolerance. Matters because the
/// tau-leap draws mostly tiny per-family probabilities, making this the
/// common BINV setup path.
inline double log1m(double p) {
  if (p > 1e-4) return std::log1p(-p);
  const double p2 = p * p;
  return -(p + p2 * (0.5 + p * (1.0 / 3.0)) +
           p2 * p2 * (0.25 + p * 0.2));
}

/// exp(z) for |z| < 0.09 via a degree-7 Taylor polynomial: the truncation
/// error z^8/8! is below 1e-13 on that interval, matching libm's accuracy
/// for this use. Over half the tau-leap's BINV setups land here (tiny
/// family probabilities make n * ln(q) nearly zero), so skipping the
/// out-of-line exp call is a measurable share of the whole draw.
inline double exp_small(double z) {
  double acc = 1.0 / 5040.0;
  acc = acc * z + 1.0 / 720.0;
  acc = acc * z + 1.0 / 120.0;
  acc = acc * z + 1.0 / 24.0;
  acc = acc * z + 1.0 / 6.0;
  acc = acc * z + 0.5;
  acc = acc * z + 1.0;
  return acc * z + 1.0;
}

/// Per-(n, p) constants of the BINV inversion (p <= 0.5, np < 10): a pure
/// function of (n, p), so batches memoize it across repeated pairs.
struct BinvSetup {
  double s = 0.0;
  double a = 0.0;
  double r0 = 0.0;  // q^n
};

inline BinvSetup binv_setup(std::uint64_t n, double p) {
  const double q = 1.0 - p;
  BinvSetup setup;
  setup.s = p / q;
  setup.a = (static_cast<double>(n) + 1.0) * setup.s;
  const double z = static_cast<double>(n) * log1m(p);
  setup.r0 = z > -0.09 ? exp_small(z) : std::exp(z);
  return setup;
}

/// Inversion by sequential search for small means (np < 10, p <= 0.5).
template <typename Uniforms>
std::uint64_t binv(Uniforms& uniforms, const BinvSetup& setup,
                   std::uint64_t n) {
  for (;;) {
    double u = uniforms.uniform01();
    double r = setup.r0;
    std::uint64_t x = 0;
    while (u > r) {
      if (x >= n) return n;  // all remaining mass sits at x = n
      u -= r;
      ++x;
      if (x > kBinvCutoff) break;
      r *= setup.a / static_cast<double>(x) - setup.s;
    }
    if (x <= kBinvCutoff) return x;
  }
}

// fdlibm's split of ln(2): kLn2Hi carries 32 significand bits, so
// e * kLn2Hi is exact for every exponent |e| <= 1074.
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kSqrt2 = 1.4142135623730951;

/// ln(x) for x in [0, inf) without libm: exponent peel-off via the bit
/// pattern, then the atanh series on the mantissa centered at 1,
///   ln(m) = 2 atanh(s) = 2s (1 + s^2/3 + s^4/5 + ...),
/// with m in [sqrt2/2, sqrt2] so |s| <= 0.1716 and the truncated tail
/// s^20/21 is below 3e-16 relative. Total error ~2 ulp — the same order
/// as a libm log, but with one fixed, exactly-specified operation
/// sequence: every accept decision downstream of this function is
/// identical on every platform and libm version, which a vendor log
/// (accurate but not correctly rounded) cannot promise. Every operation
/// is an IEEE-754 basic op, so SIMD lanes evaluating this expression
/// match the scalar path bit for bit as well.
inline double log_pos(double x) {
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  int e = static_cast<int>(bits >> 52) - 1023;
  if (e == -1023) {  // subnormal: renormalize first
    bits = std::bit_cast<std::uint64_t>(x * 0x1.0p54);
    e = static_cast<int>(bits >> 52) - 1023 - 54;
  }
  // Branchless range reduction to [sqrt2/2, sqrt2]: with the exponent
  // pinned, m > sqrt2 is an integer compare of mantissa fields, and
  // halving is an exponent-field decrement (grafting 0x3FE instead of
  // 0x3FF). A conditional `m *= 0.5` here is a 50/50 data-dependent
  // branch that mispredicts on half of all calls — and the accept test
  // makes up to six log_pos calls back to back.
  const std::uint64_t mant = bits & 0x000FFFFFFFFFFFFFULL;
  const bool big = mant > (std::bit_cast<std::uint64_t>(kSqrt2) &
                           0x000FFFFFFFFFFFFFULL);
  e += static_cast<int>(big);
  const double m = std::bit_cast<double>(
      mant | (big ? 0x3FE0000000000000ULL : 0x3FF0000000000000ULL));
  const double s = (m - 1.0) / (m + 1.0);
  const double z = s * s;
  // Estrin evaluation of sum z^k / (2k + 3), k = 0..9: same accuracy as
  // Horner but ~30 cycles of dependency depth instead of ~90 — the
  // accept test's log calls sit on the draw's critical path.
  const double z2 = z * z;
  const double z4 = z2 * z2;
  const double p0 = 1.0 / 3.0 + (1.0 / 5.0) * z;
  const double p1 = 1.0 / 7.0 + (1.0 / 9.0) * z;
  const double p2 = 1.0 / 11.0 + (1.0 / 13.0) * z;
  const double p3 = 1.0 / 15.0 + (1.0 / 17.0) * z;
  const double p4 = 1.0 / 19.0 + (1.0 / 21.0) * z;
  const double poly = (p0 + p1 * z2) + z4 * ((p2 + p3 * z2) + z4 * p4);
  const double de = static_cast<double>(e);
  return de * kLn2Hi + ((2.0 * s) * (z * poly) + (de * kLn2Lo + 2.0 * s));
}

inline constexpr double kHalfLogTwoPi =
    0.91893853320467274178;  // ln(2*pi)/2

// Exact-table size for log_factorial: large enough that the Stirling
// tail's worst case (k = kLogFactorialTableSize) is deep inside its
// accuracy regime.
inline constexpr std::size_t kLogFactorialTableSize = 128;

// ln(k!) for k < kLogFactorialTableSize, each entry the correctly-rounded
// double of the exact value (integer k! through 50-digit decimal ln). A
// literal table rather than a libm accumulation at startup: long-double
// log differs across platforms (x87 80-bit vs IEEE quad vs plain
// double), and a last-ulp table difference would make BTRS accept
// decisions — and so whole draw streams — platform-dependent.
inline constexpr std::array<double, kLogFactorialTableSize>
    kLogFactorialTable = {
      0x0.0p+0, 0x0.0p+0, 0x1.62e42fefa39efp-1, 0x1.cab0bfa2a2002p+0,
      0x1.96ca77c922cf9p+1, 0x1.326643c4479c9p+2, 0x1.a51273acf01cap+2, 0x1.10ce1f32dcc30p+3,
      0x1.5358e82fcb70dp+3, 0x1.99a8921a7f7cfp+3, 0x1.e357590954d15p+3, 0x1.180973f3a8d74p+4,
      0x1.3fcba16d50143p+4, 0x1.68d5a9c3b32cep+4, 0x1.930f3df162a42p+4, 0x1.be636a63fd346p+4,
      0x1.eabff061f1a84p+4, 0x1.0c0a63f2f353ap+5, 0x1.2329df2d5ee52p+5, 0x1.3ab8153363985p+5,
      0x1.52af57aed77bep+5, 0x1.6b0a8643472a9p+5, 0x1.83c4faba84f06p+5, 0x1.9cda78b856a45p+5,
      0x1.b6472034e8d14p+5, 0x1.d007622cd65e7p+5, 0x1.ea17f717c6794p+5, 0x1.023aeb67e4fefp+6,
      0x1.0f8f18d330240p+6, 0x1.1d07353917231p+6, 0x1.2aa208b59d0e5p+6, 0x1.385e6fd9e5a40p+6,
      0x1.463b59b942084p+6, 0x1.5437c633ace4ap+6, 0x1.6252c474896bap+6, 0x1.708b719e11658p+6,
      0x1.7ee0f79b26758p+6, 0x1.8d528c1243d96p+6, 0x1.9bdf6f75257a3p+6, 0x1.aa86ec2969812p+6,
      0x1.b94855c702ba2p+6, 0x1.c8230869ca105p+6, 0x1.d7166813e12eep+6, 0x1.e621e01eeba4fp+6,
      0x1.f544e2ba69cf1p+6, 0x1.023f743addd9fp+7, 0x1.09e7b7ea41ea9p+7, 0x1.119afe762626bp+7,
      0x1.19590c853a559p+7, 0x1.2121a930c6ec3p+7, 0x1.28f49ddeb1f31p+7, 0x1.30d1b61e86335p+7,
      0x1.38b8bf8931ddbp+7, 0x1.40a989a33a6cdp+7, 0x1.48a3e5c12af19p+7, 0x1.50a7a6ee08711p+7,
      0x1.58b4a1d39da73p+7, 0x1.60caaca474746p+7, 0x1.68e99f0757979p+7, 0x1.711152043b2c4p+7,
      0x1.79419ff26dc59p+7, 0x1.817a6467f6fb9p+7, 0x1.89bb7c2a0aea1p+7, 0x1.9204c51e7c761p+7,
      0x1.9a561e3e1a4bdp+7, 0x1.a2af6787e4609p+7, 0x1.ab1081f509726p+7, 0x1.b3794f6d9d7afp+7,
      0x1.bbe9b2bdfb621p+7, 0x1.c4618f8cc56f7p+7, 0x1.cce0ca5179100p+7, 0x1.d567484b8b7b6p+7,
      0x1.ddf4ef7a05a70p+7, 0x1.e689a69396befp+7, 0x1.ef2554ff15148p+7, 0x1.f7c7e2cc66183p+7,
      0x1.00389c56e3462p+8, 0x1.04909ff8b652bp+8, 0x1.08ebf13dbf263p+8, 0x1.0d4a85602b129p+8,
      0x1.11ac51df8932ap+8, 0x1.16114c7e34736p+8, 0x1.1a796b3ede1acp+8, 0x1.1ee4a46236d3ep+8,
      0x1.2352ee64b46d5p+8, 0x1.27c43ffc72962p+8, 0x1.2c3890172d057p+8, 0x1.30afd5d851956p+8,
      0x1.352a089728f1bp+8, 0x1.39a71fdd14947p+8, 0x1.3e271363e0df7p+8, 0x1.42a9db142a36ap+8,
      0x1.472f6f03d410cp+8, 0x1.4bb7c77491066p+8, 0x1.5042dcd27af64p+8, 0x1.54d0a7b2ba658p+8,
      0x1.596120d23c4ecp+8, 0x1.5df4411475a1cp+8, 0x1.628a018233bedp+8, 0x1.67225b4879462p+8,
      0x1.6bbd47b7669b6p+8, 0x1.705ac0412d89fp+8, 0x1.74fabe790f7bep+8, 0x1.799d3c1265c0ep+8,
      0x1.7e4232dfb367dp+8, 0x1.82e99cd1c0368p+8, 0x1.879373f6bc4fep+8, 0x1.8c3fb2796c21cp+8,
      0x1.90ee52a05c35fp+8, 0x1.959f4ecd1c8b3p+8, 0x1.9a52a17b831ccp+8, 0x1.9f084540f545ep+8,
      0x1.a3c034cbb7b2cp+8, 0x1.a87a6ae24493ap+8, 0x1.ad36e262a7cc0p+8, 0x1.b1f59641e0db5p+8,
      0x1.b6b6818b4a3ebp+8, 0x1.bb799f600610ap+8, 0x1.c03eeaf66facdp+8, 0x1.c5065f9992226p+8,
      0x1.c9cff8a8a340dp+8, 0x1.ce9bb196830eap+8, 0x1.d36985e93f7b8p+8, 0x1.d83971399c213p+8,
      0x1.dd0b6f329dea4p+8, 0x1.e1df7b911a74cp+8, 0x1.e6b592234b0c9p+8, 0x1.eb8daec863182p+8,
};

/// Inline body of rng::log_factorial (see binomial.hpp for the
/// contract). Lives here so the SIMD lane TUs compile it with their own
/// ISA flags: an out-of-line call from ymm-dirty code into a legacy-SSE
/// copy costs a dirty-upper-state penalty per instruction on every
/// Skylake-class core — measured at ~5x on the whole lane kernel.
inline double log_factorial(std::uint64_t k) {
  if (k < kLogFactorialTableSize) return kLogFactorialTable[k];
  const double dk = static_cast<double>(k);
  const double inv = 1.0 / dk;
  const double inv2 = inv * inv;
  return (dk + 0.5) * log_pos(dk) - dk + kHalfLogTwoPi +
         inv * (1.0 / 12.0 - inv2 / 360.0);
}

/// Per-(n, p) constants of Hörmann's BTRS sampler (p <= 0.5, np >= 10),
/// in the exact evaluation order of the original scalar sampler.
struct BtrsSetup {
  double dn = 0.0;
  double spq = 0.0;
  double b = 0.0;
  double a = 0.0;
  double c = 0.0;
  double v_r = 0.0;
  double m = 0.0;
  double ratio = 0.0;
};

inline BtrsSetup btrs_setup(std::uint64_t n, double p) {
  BtrsSetup setup;
  setup.dn = static_cast<double>(n);
  const double q = 1.0 - p;
  setup.spq = std::sqrt(setup.dn * p * q);
  setup.b = 1.15 + 2.53 * setup.spq;
  setup.a = -0.0873 + 0.0248 * setup.b + 0.01 * p;
  setup.c = setup.dn * p + 0.5;
  setup.v_r = 0.92 - 4.2 / setup.b;
  setup.m = std::floor((setup.dn + 1.0) * p);
  setup.ratio = p / q;
  return setup;
}

/// The log-domain accept constants, computed lazily on the first
/// far-from-mode squeeze miss of a draw and cached across that draw's
/// candidates — each is a libm call that would otherwise dominate the
/// whole draw under the tau-leap's fresh-(n, p)-per-call access pattern.
struct BtrsSlowTerms {
  double alpha = 0.0;
  double log_ratio = 0.0;
  double h = 0.0;
  bool ready = false;
};

/// Squeeze-miss accept test: compares v against the exact pmf ratio —
/// multiplicatively when the candidate is near the mode (the
/// overwhelmingly common miss at small spq, where the squeeze is
/// weakest), in the log domain otherwise. Consumes no randomness, so the
/// lane kernels run it scalar per lane without touching any stream.
inline bool btrs_accept(const BtrsSetup& setup, std::uint64_t n, double v,
                        double us, double kd, BtrsSlowTerms& slow) {
  const auto k = static_cast<std::uint64_t>(kd);
  if (std::abs(kd - setup.m) <= kNearModeWindow) {
    // Accept iff v * alpha / (a/us^2 + b) <= pmf(k)/pmf(m); build the
    // ratio as a running product of one-step pmf ratios
    //   pmf(i)/pmf(i-1) = ((n - i + 1)/i) * p/q.
    double f = 1.0;
    if (kd > setup.m) {
      for (double i = setup.m + 1.0; i <= kd; i += 1.0) {
        f *= (setup.dn - i + 1.0) / i * setup.ratio;
      }
    } else {
      for (double i = kd + 1.0; i <= setup.m; i += 1.0) {
        f *= i / ((setup.dn - i + 1.0) * setup.ratio);
      }
    }
    const double alpha_lin = (2.83 + 5.1 / setup.b) * setup.spq;
    return v * alpha_lin <= f * (setup.a / (us * us) + setup.b);
  }
  if (!slow.ready) {
    slow.alpha = (2.83 + 5.1 / setup.b) * setup.spq;
    slow.log_ratio = log_pos(setup.ratio);
    slow.h = log_factorial(static_cast<std::uint64_t>(setup.m)) +
             log_factorial(n - static_cast<std::uint64_t>(setup.m));
    slow.ready = true;
  }
  const double lhs =
      log_pos(v * slow.alpha / (setup.a / (us * us) + setup.b));
  const double rhs = slow.h - log_factorial(k) - log_factorial(n - k) +
                     (kd - setup.m) * slow.log_ratio;
  return lhs <= rhs;
}

/// Hörmann's BTRS transformed-rejection sampler (np >= 10, p <= 0.5):
/// ~86% of candidate pairs accept via the squeeze. Two uniforms per
/// candidate.
template <typename Uniforms>
std::uint64_t btrs(Uniforms& uniforms, const BtrsSetup& setup,
                   std::uint64_t n) {
  BtrsSlowTerms slow;
  for (;;) {
    const double u = uniforms.uniform01() - 0.5;
    const double v = uniforms.uniform01();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * setup.a / us + setup.b) * u + setup.c);
    if (kd < 0.0 || kd > setup.dn) continue;
    if (us >= 0.07 && v <= setup.v_r) return static_cast<std::uint64_t>(kd);
    if (btrs_accept(setup, n, v, us, kd, slow)) {
      return static_cast<std::uint64_t>(kd);
    }
  }
}

/// Full Binomial(n, p) draw from any uniform01 source: degenerate cases,
/// reflection for p > 0.5, and the BINV/BTRS split — the scalar reference
/// every batch path is pinned against. p must already be validated into
/// [0, 1] by the caller.
template <typename Uniforms>
std::uint64_t binomial_draw(Uniforms& uniforms, std::uint64_t n, double p) {
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const bool reflect = p > 0.5;
  const double ps = reflect ? 1.0 - p : p;
  std::uint64_t draw = 0;
  if (static_cast<double>(n) * ps < kBtrsCutoff) {
    const BinvSetup setup = binv_setup(n, ps);
    draw = binv(uniforms, setup, n);
  } else {
    const BtrsSetup setup = btrs_setup(n, ps);
    draw = btrs(uniforms, setup, n);
  }
  return reflect ? n - draw : draw;
}

}  // namespace kusd::rng::detail
