// Internal: per-ISA entry points of rng::uniform_block. Definitions live
// in uniform_block_{sse2,avx2}.cpp and exist only in SIMD-enabled builds
// (KUSD_SIMD=ON on x86-64); the dispatcher in uniform_block.cpp gates
// every call on KUSD_SIMD_ENABLED and the active tier, so scalar-only
// builds never reference them.
#pragma once

#include <cstdint>
#include <span>

namespace kusd::rng::detail {

void uniform_block_sse2(std::uint64_t key, std::uint64_t counter_hi,
                        std::uint64_t counter_lo, std::span<double> out);
void uniform_block_avx2(std::uint64_t key, std::uint64_t counter_hi,
                        std::uint64_t counter_lo, std::span<double> out);

}  // namespace kusd::rng::detail
