// Counter-based uniform keystream blocks: the vectorizable complement of
// the per-trial xoshiro streams.
//
// uniform_block fills a caller-provided span with uniforms in [0, 1)
// derived purely from (key, counter): Philox-2x64-10 block i of the
// keystream supplies out[2i] and out[2i + 1], each 64-bit word mapped
// exactly like Rng::uniform01 ((word >> 11) * 2^-53). Because the stream
// is a pure function of the counter, any sub-range can be regenerated
// independently — which is what lets the SSE2/AVX2 tiers compute lanes of
// blocks in parallel and what makes the shared lockstep schedule
// self-deterministic (one stream, no per-trial state to gather).
//
// Bit-identity: every tier is required — and tested, plus re-audited on
// each bench_simd_sampler run — to produce the same bytes as the scalar
// reference path for every (key, counter, length).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kusd::rng {

/// Fill `out` with uniforms in [0, 1): out[2i] / out[2i + 1] come from
/// the Philox block at counter (counter_lo + i, counter_hi) under `key`
/// (counter_lo wraps mod 2^64; counter_hi is never carried into).
/// Dispatched over the active SIMD tier; bit-identical across tiers.
void uniform_block(std::uint64_t key, std::uint64_t counter_hi,
                   std::uint64_t counter_lo, std::span<double> out);

/// Buffered sequential reader over the uniform_block keystream: uniform01
/// yields exactly the uniform_block(key, counter_hi, 0, ...) sequence,
/// refilled a batch of blocks at a time through the SIMD path. This is
/// the uniform source of the shared lockstep schedule: one stream,
/// consumed in deterministic batch order, replacing per-trial stream
/// bookkeeping. Satisfies the same uniform01() shape as Rng, so the
/// templated samplers in rng/binomial_detail.hpp draw from either.
class PhiloxUniformStream {
 public:
  PhiloxUniformStream(std::uint64_t key, std::uint64_t counter_hi)
      : key_(key), counter_hi_(counter_hi) {}

  /// Next uniform in [0, 1); same value contract as Rng::uniform01.
  double uniform01() {
    if (position_ == buffer_.size()) refill();
    return buffer_[position_++];
  }

 private:
  // 2 doubles per Philox block and a multiple of every lane width, so
  // refills always run the widest kernel with no ragged tail.
  static constexpr std::size_t kBufferSize = 512;

  void refill();

  std::uint64_t key_;
  std::uint64_t counter_hi_;
  std::uint64_t counter_lo_ = 0;
  std::size_t position_ = 0;
  std::vector<double> buffer_;
};

}  // namespace kusd::rng
