// AVX2 toolkit (W = 4) for the lane-batched BTRS kernel. Built with
// -mavx2 confined to this TU; the only entry point is reached through the
// runtime tier dispatch in binomial.cpp, so the instructions here never
// execute on hardware that lacks them.
#include <immintrin.h>

#include <cstdint>

#include "rng/binomial_lanes_impl.hpp"

namespace kusd::rng::detail {

namespace {

struct Avx2Ops {
  static constexpr int kWidth = 4;
  using VU = __m256i;
  using VD = __m256d;

  static VU load_u64(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store_u64(std::uint64_t* p, VU x) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x);
  }
  static VD load_pd(const double* p) { return _mm256_loadu_pd(p); }
  static void store_pd(double* p, VD x) { _mm256_storeu_pd(p, x); }
  static VD set1_pd(double x) { return _mm256_set1_pd(x); }

  static VU add_u64(VU a, VU b) { return _mm256_add_epi64(a, b); }
  static VU xor_u64(VU a, VU b) { return _mm256_xor_si256(a, b); }
  template <int N>
  static VU slli(VU x) {
    return _mm256_slli_epi64(x, N);
  }
  template <int N>
  static VU rotl(VU x) {
    return _mm256_or_si256(_mm256_slli_epi64(x, N),
                           _mm256_srli_epi64(x, 64 - N));
  }
  /// mask ? b : a, with mask all-ones or all-zero per 64-bit lane
  /// (blendv_epi8 selects per byte, which coincides for such masks).
  static VU blend_u64(VU a, VU b, VU mask) {
    return _mm256_blendv_epi8(a, b, mask);
  }

  static VD add_pd(VD a, VD b) { return _mm256_add_pd(a, b); }
  static VD sub_pd(VD a, VD b) { return _mm256_sub_pd(a, b); }
  static VD mul_pd(VD a, VD b) { return _mm256_mul_pd(a, b); }
  static VD div_pd(VD a, VD b) { return _mm256_div_pd(a, b); }
  static VD sqrt_pd(VD a) { return _mm256_sqrt_pd(a); }
  static VD abs_pd(VD a) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }
  static VD floor_pd(VD a) { return _mm256_floor_pd(a); }

  static VD cmpge_pd(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static VD cmple_pd(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static VD and_pd(VD a, VD b) { return _mm256_and_pd(a, b); }
  /// ~a & b (the intrinsic's operand order).
  static VD andnot_pd(VD a, VD b) { return _mm256_andnot_pd(a, b); }
  /// mask ? b : a, with mask all-ones or all-zero per lane.
  static VD blend_pd(VD a, VD b, VD mask) {
    return _mm256_blendv_pd(a, b, mask);
  }
  static int movemask_pd(VD a) { return _mm256_movemask_pd(a); }
  static VU castpd_u64(VD a) { return _mm256_castpd_si256(a); }
  static VD castu64_pd(VU a) { return _mm256_castsi256_pd(a); }

  /// u64 -> double, correctly rounded over the full u64 range — same
  /// exponent-graft construction as the SSE2 tier (see
  /// binomial_lanes_sse2.cpp for the exactness argument).
  static VD u64_to_double(VU v) {
    const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
    const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
    const __m256i exp84 = _mm256_set1_epi64x(0x4530000000000000LL);  // 2^84
    const __m256d bias = _mm256_set1_pd(1.9342813118337666422669312e25);
    const __m256i v_lo = _mm256_or_si256(_mm256_and_si256(v, mask32), exp52);
    const __m256i v_hi = _mm256_or_si256(_mm256_srli_epi64(v, 32), exp84);
    return _mm256_add_pd(_mm256_sub_pd(_mm256_castsi256_pd(v_hi), bias),
                         _mm256_castsi256_pd(v_lo));
  }

  /// (word >> 11) * 2^-53, the Rng::uniform01 mapping, bit-identical to
  /// the scalar expression.
  static VD to_unit(VU word) {
    return _mm256_mul_pd(u64_to_double(_mm256_srli_epi64(word, 11)),
                         _mm256_set1_pd(0x1.0p-53));
  }
};

}  // namespace

void btrs_lanes_avx2(const LaneBatchView& batch) {
  // Two interleaved ymm pairs (W = 8): a single ymm group is a serial
  // dependency chain that leaves the FP units idle; the dual halves give
  // the OOO window independent work at the same chain depth.
  btrs_lanes_run<DualOps<Avx2Ops>>(batch);
}

}  // namespace kusd::rng::detail
