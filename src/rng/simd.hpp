// Runtime SIMD tier dispatch for the sampling substrate.
//
// The vectorized kernels (rng/uniform_block, rng/binomial_lanes) are
// compiled per instruction-set tier and selected here at runtime, so one
// binary runs everywhere x86-64 runs and still uses the widest lanes the
// host CPU has. Every tier is bit-identical by contract (tested and
// re-audited by bench_simd_sampler), which makes the choice purely a
// throughput knob: results never depend on the machine that produced
// them.
//
// Builds configured with KUSD_SIMD=OFF (the CI `nosimd` leg) compile none
// of the tiered kernels and pin the dispatch to the scalar tier, proving
// the portable path keeps the full suite green on its own.
#pragma once

namespace kusd::rng::simd {

/// Instruction-set tiers of the vectorized sampling kernels, ordered by
/// lane width (scalar < SSE2 < AVX2). SSE2 is architectural on x86-64;
/// AVX2 is a runtime question answered once at startup.
enum class Tier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

[[nodiscard]] const char* to_string(Tier tier);

/// Widest tier this build + CPU combination can execute. Scalar-only when
/// the build disabled SIMD (KUSD_SIMD=OFF) or the target is not x86-64.
[[nodiscard]] Tier supported_tier();

/// The tier the dispatched kernels currently use. Defaults to
/// supported_tier(); the KUSD_SIMD environment variable
/// (auto|scalar|sse2|avx2, clamped to what the hardware supports) pins
/// the startup value, e.g. to reproduce a narrower machine's timing on a
/// wider one. Never affects results — only speed.
[[nodiscard]] Tier active_tier();

/// Force the active tier (clamped to supported_tier()); returns the tier
/// actually installed. For tests and the cross-tier bit-identity audits;
/// not meant to be raced against in-flight sampling.
Tier set_tier(Tier tier);

}  // namespace kusd::rng::simd
