// Deterministic random-number substrate.
//
// The whole reproduction is seeded: every trial derives an independent
// stream from (master_seed, trial_id) via a counter-based Philox block
// cipher, and all samplers are built on xoshiro256++ (Blackman & Vigna),
// a fast, high-quality generator whose state fits in four 64-bit words.
//
// Rng satisfies the C++ UniformRandomBitGenerator requirements, so it can
// also drive standard-library distributions where convenient.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace kusd::rng {

/// SplitMix64 step: the canonical 64-bit mixing function. Used for seeding
/// generator state from a 64-bit seed.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Philox-2x64 round constants (Salmon et al.). Namespace-scoped because
/// the SIMD keystream tiers (rng/uniform_block_*.cpp) replay the scalar
/// rounds lane-parallel and must use the identical constants.
inline constexpr std::uint64_t kPhiloxMultiplier = 0xD2B74407B1CE6E93ULL;
inline constexpr std::uint64_t kPhiloxWeyl = 0x9E3779B97F4A7C15ULL;

/// One Philox-2x64-10 block (Salmon et al., "Parallel random numbers: as
/// easy as 1, 2, 3"): a 10-round bijection of the 128-bit counter space
/// for every 64-bit key. Counter-based stream derivation rests on this
/// structural fact: for a fixed key (master seed), distinct counters are
/// *guaranteed* distinct 128-bit outputs — no hash-collision argument
/// needed.
[[nodiscard]] constexpr std::array<std::uint64_t, 2> philox2x64(
    std::uint64_t counter_lo, std::uint64_t counter_hi, std::uint64_t key) {
  std::uint64_t x0 = counter_lo, x1 = counter_hi;
  for (int round = 0; round < 10; ++round) {
    const auto product = static_cast<unsigned __int128>(kPhiloxMultiplier) * x0;
    const auto hi = static_cast<std::uint64_t>(product >> 64);
    const auto lo = static_cast<std::uint64_t>(product);
    x0 = hi ^ key ^ x1;
    x1 = lo;
    key += kPhiloxWeyl;
  }
  return {x0, x1};
}

/// Derive the seed of stream `id` from a master seed: the Philox block at
/// counter (id, 0) under key `master_seed`, folded to 64 bits. Unlike a
/// hash, the underlying 128-bit blocks are distinct by construction for
/// distinct ids, so stream independence rests on the cipher, and the only
/// residual collision risk is the 64-bit fold's birthday bound
/// (~m^2 / 2^65 over m ids; ~2.7e-8 for a million ids).
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t master_seed,
                                                  std::uint64_t id) {
  const auto block = philox2x64(id, 0, master_seed);
  return block[0] ^ block[1];
}

/// xoshiro256++ generator with convenience samplers for every distribution
/// the simulators need. Copyable (copies fork the stream deterministically).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xD1B54A32D192ED03ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64 bits.
  result_type operator()() { return next_u64(); }

  result_type next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection
  /// method (unbiased). bound must be positive.
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Number of failures before the first success of a Bernoulli(p) sequence
  /// (support {0, 1, 2, ...}). Exact inversion; p must be in (0, 1].
  std::uint64_t geometric_failures(double p);

  /// Binomial(n, p) sample. Exact, via the in-repo BINV/BTRS sampler
  /// (rng/binomial.hpp); p in [0, 1]. Degenerate draws (n == 0, p == 0,
  /// p == 1) consume no randomness.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Multinomial(n, weights): partition n into weights.size() buckets with
  /// probabilities proportional to weights. Exact via sequential
  /// conditional binomials; `out` must have weights.size() entries and is
  /// overwritten. Allocation-free (the hot-loop form).
  void multinomial_into(std::uint64_t n, std::span<const double> weights,
                        std::span<std::uint64_t> out);

  /// Allocating convenience form of multinomial_into (same draw sequence).
  std::vector<std::uint64_t> multinomial(std::uint64_t n,
                                         std::span<const double> weights);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Raw xoshiro state snapshot/restore: the lane-batched cohort sampler
  /// (rng/binomial_lanes) gathers trial streams into SoA lane arrays,
  /// steps them in parallel, and scatters them back. Round-tripping
  /// through these is the identity; installing anything other than a
  /// snapshot of a live stream forfeits the seeding-quality guarantees.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

  /// Fisher–Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) {
    return (x << s) | (x >> (64 - s));
  }

  std::array<std::uint64_t, 4> state_{};
  // Cached spare for normal().
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace kusd::rng
